package ssr

import (
	"bytes"
	"testing"

	"repro/internal/optimize"
)

// TestBuildRunsOptimizerOnce pins the single-pass sharded build: the
// Section 5 optimizer runs exactly once per Build, on the global
// distribution, no matter the shard count — shard cores receive the one
// plan as an override instead of each re-deriving it.
func TestBuildRunsOptimizerOnce(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		opt := goldenSnapshotOptions()
		opt.Shards = shards
		before := optimize.PlanRuns()
		if _, err := Build(goldenSnapshotCollection(), opt); err != nil {
			t.Fatalf("shards=%d: Build: %v", shards, err)
		}
		if got := optimize.PlanRuns() - before; got != 1 {
			t.Fatalf("shards=%d: Build ran the optimizer %d times, want exactly 1", shards, got)
		}
	}
}

// TestBuildWorkerCountDeterminism: shard builds run in parallel, but the
// worker split must never leak into the output — any Workers value
// serializes bit-identically.
func TestBuildWorkerCountDeterminism(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		opt := goldenSnapshotOptions()
		opt.Shards = 8
		opt.Workers = workers
		ix, err := Build(goldenSnapshotCollection(), opt)
		if err != nil {
			t.Fatalf("workers=%d: Build: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("workers=%d: Save: %v", workers, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: snapshot bytes differ from workers=1 build", workers)
		}
	}
}

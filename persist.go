package ssr

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/set"
)

// persistMagic guards the public snapshot format (which wraps the core
// snapshot with the string dictionary).
const persistMagic = "SSRPUB1\n"

// publicSnapshot is the gob payload of an ssr-level snapshot.
type publicSnapshot struct {
	// Names is the interned-element dictionary in id order (empty for
	// collections built purely with AddIDs).
	Names []string
	// Core is the inner index snapshot (see core.Save).
	Core []byte
}

// Save writes the index — including the element dictionary — to w. The
// snapshot reloads with Load into an index that answers queries
// identically.
func (ix *Index) Save(w io.Writer) error {
	var coreBuf bytes.Buffer
	if err := ix.inner.Save(&coreBuf); err != nil {
		return err
	}
	ix.coll.mu.Lock()
	names := ix.coll.dict.NamesInOrder()
	ix.coll.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("ssr: writing snapshot header: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&publicSnapshot{Names: names, Core: coreBuf.Bytes()}); err != nil {
		return fmt.Errorf("ssr: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// Load reconstructs an index saved with Save.
//
// If the saved index had deletions, sids are renumbered densely on load
// (the same renumbering core.Load applies).
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ssr: reading snapshot header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ssr: not an index snapshot (bad magic %q)", magic)
	}
	var snap publicSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ssr: decoding snapshot: %w", err)
	}
	inner, err := core.Load(bytes.NewReader(snap.Core))
	if err != nil {
		return nil, err
	}
	coll := NewCollection()
	coll.dict = set.DictionaryFromNames(snap.Names)
	// Rehydrate the collection views from the inner store so QuerySID and
	// Get keep working.
	sets, err := inner.Sets()
	if err != nil {
		return nil, err
	}
	coll.sets = sets
	return &Index{coll: coll, inner: inner}, nil
}

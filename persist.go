package ssr

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/set"
)

// persistMagic guards the public snapshot format (which wraps the core
// snapshot with the string dictionary).
const persistMagic = "SSRPUB1\n"

// publicSnapshot is the gob payload of an ssr-level snapshot.
type publicSnapshot struct {
	// Names is the interned-element dictionary in id order (empty for
	// collections built purely with AddIDs).
	Names []string
	// Core is the inner engine snapshot: a bare core snapshot for
	// single-shard indexes (byte-identical to previous releases), or a
	// sharded container (see engine.Save) — Load branches on its magic.
	Core []byte
}

// Save writes the index — including the element dictionary — to w. The
// snapshot reloads with Load into an index that answers queries
// identically.
//
// Capture order matters with concurrent mutation traffic: the engine is
// serialized first and the dictionary read after, and every Add interns
// its elements before touching the engine — so the captured dictionary is
// always a superset of the element ids the captured engine references.
// (The reverse order would let an Add intern-and-insert between the two
// captures, leaving the engine bytes referencing names the dictionary
// never recorded.)
func (ix *Index) Save(w io.Writer) error {
	var coreBuf bytes.Buffer
	if err := ix.inner.Save(&coreBuf); err != nil {
		return err
	}
	ix.coll.mu.Lock()
	names := ix.coll.dict.NamesInOrder()
	ix.coll.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("ssr: writing snapshot header: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&publicSnapshot{Names: names, Core: coreBuf.Bytes()}); err != nil {
		return fmt.Errorf("ssr: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// Load reconstructs an index saved with Save. Sids are preserved: deleted
// sids stay allocated as tombstones (queries never return them, Get/
// QuerySID see them as empty), so sid-addressed callers — including the
// durability layer's log replay — keep working across a save/load cycle.
// Snapshots from before the sid-preserving format load densely renumbered,
// as they always did.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ssr: reading snapshot header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ssr: not an index snapshot (bad magic %q)", magic)
	}
	var snap publicSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ssr: decoding snapshot: %w", err)
	}
	inner, err := engine.Load(bytes.NewReader(snap.Core))
	if err != nil {
		return nil, err
	}
	coll := NewCollection()
	coll.dict = set.DictionaryFromNames(snap.Names)
	// Rehydrate the sid-indexed collection views from the inner store so
	// QuerySID and Get keep working; tombstoned sids become empty views.
	bySID, err := inner.SetsBySID()
	if err != nil {
		return nil, err
	}
	coll.sets = make([]set.Set, len(bySID))
	for sid, s := range bySID {
		if s != nil {
			coll.sets[sid] = *s
		}
	}
	return &Index{coll: coll, inner: inner}, nil
}

package ssr

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/set"
)

// persistMagic guards the public snapshot format (which wraps the core
// snapshot with the string dictionary).
const persistMagic = "SSRPUB1\n"

// publicSnapshot is the gob payload of an ssr-level snapshot.
type publicSnapshot struct {
	// Names is the interned-element dictionary in id order (empty for
	// collections built purely with AddIDs).
	Names []string
	// Core is the inner index snapshot (see core.Save).
	Core []byte
}

// Save writes the index — including the element dictionary — to w. The
// snapshot reloads with Load into an index that answers queries
// identically.
//
// The dictionary and the core index are captured under one hold of the
// collection lock — the same lock every Add holds across its interning and
// core insert — so the two halves of the snapshot always agree even with
// concurrent mutation traffic. (Capturing them under separate acquisitions
// would let an Add slip between the core serialization and the dictionary
// read.)
func (ix *Index) Save(w io.Writer) error {
	ix.coll.mu.Lock()
	var coreBuf bytes.Buffer
	err := ix.inner.Save(&coreBuf)
	names := ix.coll.dict.NamesInOrder()
	ix.coll.mu.Unlock()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("ssr: writing snapshot header: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&publicSnapshot{Names: names, Core: coreBuf.Bytes()}); err != nil {
		return fmt.Errorf("ssr: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// Load reconstructs an index saved with Save. Sids are preserved: deleted
// sids stay allocated as tombstones (queries never return them, Get/
// QuerySID see them as empty), so sid-addressed callers — including the
// durability layer's log replay — keep working across a save/load cycle.
// Snapshots from before the sid-preserving format load densely renumbered,
// as they always did.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ssr: reading snapshot header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ssr: not an index snapshot (bad magic %q)", magic)
	}
	var snap publicSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ssr: decoding snapshot: %w", err)
	}
	inner, err := core.Load(bytes.NewReader(snap.Core))
	if err != nil {
		return nil, err
	}
	coll := NewCollection()
	coll.dict = set.DictionaryFromNames(snap.Names)
	// Rehydrate the sid-indexed collection views from the inner store so
	// QuerySID and Get keep working; tombstoned sids become empty views.
	bySID, err := inner.SetsBySID()
	if err != nil {
		return nil, err
	}
	coll.sets = make([]set.Set, len(bySID))
	for sid, s := range bySID {
		if s != nil {
			coll.sets[sid] = *s
		}
	}
	return &Index{coll: coll, inner: inner}, nil
}

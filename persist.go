package ssr

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/set"
	"repro/internal/simdist"
)

// gob assigns user type ids from a process-global counter in first-encode
// order, and those ids appear verbatim in the encoded bytes. Without
// pinning, a sharded Save running first in the process would shift the
// type id a later single-shard Save writes for publicSnapshot — the bytes
// would depend on call history, breaking the golden-fixture guarantee
// that Save output is a pure function of index state. Allocate every
// snapshot type here in one canonical order: the core snapshot types
// first and publicSnapshot immediately after (matching the order a fresh
// process's first single-shard Save would produce, which is what the
// golden fixture was generated from), then the remaining formats.
func init() {
	core.RegisterSnapshotGobTypes()
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(&publicSnapshot{}) //ssrvet:ignore droppederr -- zero-value encode to io.Discard cannot fail; run for the type-id side effect
	_ = enc.Encode(&tunerTrailer{})   //ssrvet:ignore droppederr -- zero-value encode to io.Discard cannot fail; run for the type-id side effect
	engine.RegisterSnapshotGobTypes()
	_ = enc.Encode(&shardCheckpoint{}) //ssrvet:ignore droppederr -- zero-value encode to io.Discard cannot fail; run for the type-id side effect
}

// persistMagic guards the public snapshot format (which wraps the core
// snapshot with the string dictionary).
const persistMagic = "SSRPUB1\n"

// publicSnapshot is the gob payload of an ssr-level snapshot.
type publicSnapshot struct {
	// Names is the interned-element dictionary in id order (empty for
	// collections built purely with AddIDs).
	Names []string
	// Core is the inner engine snapshot: a bare core snapshot for
	// single-shard indexes (byte-identical to previous releases), or a
	// sharded container (see engine.Save) — Load branches on its magic.
	Core []byte
}

// tunerTrailer is the adaptive-retune state, appended AFTER the
// publicSnapshot value on the same gob stream — and only when the index
// has actually retuned (generation > 0). Never-retuned indexes therefore
// write byte-identical snapshots to previous releases (the golden fixture
// stays valid), and old readers that stop after the first value skip the
// trailer harmlessly. Load treats a clean EOF in its place as a legacy
// snapshot.
type tunerTrailer struct {
	// Generation is the plan generation of the saved cores (how many
	// retunes the index has absorbed).
	Generation uint64
	// BaselineBins is the raw-bin image (simdist.RawBins) of the profile
	// the current plan was derived from; nil when unknown.
	BaselineBins []float64
}

// maxTrailerBins caps a decoded baseline against hostile gob input.
const maxTrailerBins = 1 << 20

// trailerHist reconstructs the baseline histogram (nil when absent).
func (tt *tunerTrailer) trailerHist() *simdist.Histogram {
	if tt == nil || tt.BaselineBins == nil {
		return nil
	}
	return simdist.FromBins(tt.BaselineBins)
}

// decodeTrailer reads an optional tunerTrailer as the stream's next gob
// value. A clean EOF means a legacy (pre-tuner or never-retuned)
// snapshot.
func decodeTrailer(dec *gob.Decoder) (*tunerTrailer, error) {
	var tt tunerTrailer
	if err := dec.Decode(&tt); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil
		}
		return nil, fmt.Errorf("ssr: decoding tuner trailer: %w", err)
	}
	if len(tt.BaselineBins) > maxTrailerBins {
		return nil, fmt.Errorf("ssr: tuner trailer carries %d histogram bins (limit %d)", len(tt.BaselineBins), maxTrailerBins)
	}
	return &tt, nil
}

// Save writes the index — including the element dictionary — to w. The
// snapshot reloads with Load into an index that answers queries
// identically.
//
// Capture order matters with concurrent mutation traffic: the engine is
// serialized first and the dictionary read after, and every Add interns
// its elements before touching the engine — so the captured dictionary is
// always a superset of the element ids the captured engine references.
// (The reverse order would let an Add intern-and-insert between the two
// captures, leaving the engine bytes referencing names the dictionary
// never recorded.)
func (ix *Index) Save(w io.Writer) error {
	// Tuner state is captured BEFORE the engine bytes: if a retune swaps
	// between the two captures, the trailer undersells the generation of
	// the (newer) cores it rides with — the benign direction, since the
	// plan itself always comes from the cores and a stale baseline at
	// worst re-triggers a drift check after recovery.
	gen, hist := ix.inner.TuneState()
	var coreBuf bytes.Buffer
	if err := ix.inner.Save(&coreBuf); err != nil {
		return err
	}
	ix.coll.mu.Lock()
	names := ix.coll.dict.NamesInOrder()
	ix.coll.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("ssr: writing snapshot header: %w", err)
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(&publicSnapshot{Names: names, Core: coreBuf.Bytes()}); err != nil {
		return fmt.Errorf("ssr: encoding snapshot: %w", err)
	}
	if gen > 0 {
		tt := tunerTrailer{Generation: gen}
		if hist != nil {
			tt.BaselineBins = hist.RawBins()
		}
		if err := enc.Encode(&tt); err != nil {
			return fmt.Errorf("ssr: encoding tuner trailer: %w", err)
		}
	}
	return bw.Flush()
}

// Load reconstructs an index saved with Save. Sids are preserved: deleted
// sids stay allocated as tombstones (queries never return them, Get/
// QuerySID see them as empty), so sid-addressed callers — including the
// durability layer's log replay — keep working across a save/load cycle.
// Snapshots from before the sid-preserving format load densely renumbered,
// as they always did.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ssr: reading snapshot header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ssr: not an index snapshot (bad magic %q)", magic)
	}
	dec := gob.NewDecoder(br)
	var snap publicSnapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("ssr: decoding snapshot: %w", err)
	}
	trailer, err := decodeTrailer(dec)
	if err != nil {
		return nil, err
	}
	inner, err := engine.Load(bytes.NewReader(snap.Core))
	if err != nil {
		return nil, err
	}
	if trailer != nil && trailer.Generation > 0 {
		inner.AdoptTuneState(trailer.Generation, trailer.trailerHist())
	}
	coll := NewCollection()
	coll.dict = set.DictionaryFromNames(snap.Names)
	// Rehydrate the sid-indexed collection views from the inner store so
	// QuerySID and Get keep working; tombstoned sids become empty views.
	bySID, err := inner.SetsBySID()
	if err != nil {
		return nil, err
	}
	coll.sets = make([]set.Set, len(bySID))
	for sid, s := range bySID {
		if s != nil {
			coll.sets[sid] = *s
		}
	}
	return &Index{coll: coll, inner: inner}, nil
}

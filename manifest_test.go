package ssr

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The MANIFEST version field is the forward-compatibility gate for the
// whole durable image: a reader must refuse versions it does not know
// (the image may rely on invariants this code predates) while
// tolerating unknown FIELDS within a known version, so additive
// evolution needs no bump. These tests pin both halves of that
// contract by rewriting a real sharded image's MANIFEST.

// buildShardedDir creates a small sharded durable image and returns its
// directory with the index closed, ready for MANIFEST surgery.
func buildShardedDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(3), DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("CreateDurable: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// rewriteManifest applies fn to the decoded MANIFEST JSON and writes the
// result back.
func rewriteManifest(t *testing.T, dir string, fn func(map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading MANIFEST: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decoding MANIFEST: %v", err)
	}
	fn(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatalf("writing MANIFEST: %v", err)
	}
}

func TestManifestCurrentVersionRoundTrips(t *testing.T) {
	dir := buildShardedDir(t)
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	var man durableManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Version != manifestVersion {
		t.Fatalf("freshly written MANIFEST carries version %d, want %d", man.Version, manifestVersion)
	}
	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer re.Close()
	if re.Shards() != 3 {
		t.Fatalf("reopened with %d shards, want 3", re.Shards())
	}
}

func TestManifestFutureVersionRefused(t *testing.T) {
	dir := buildShardedDir(t)
	rewriteManifest(t, dir, func(doc map[string]any) {
		doc["version"] = 99
	})
	_, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err == nil {
		t.Fatal("OpenDurable accepted a version-99 MANIFEST")
	}
	msg := err.Error()
	if !strings.Contains(msg, "version 99") || !strings.Contains(msg, "newer release") {
		t.Fatalf("future-version error should name the version and point at the newer release: %v", err)
	}
}

func TestManifestMissingVersionRefused(t *testing.T) {
	// A MANIFEST with no version field decodes as version 0 — below the
	// supported floor. Such an image was never written by any release of
	// this code, so refusing it beats guessing.
	dir := buildShardedDir(t)
	rewriteManifest(t, dir, func(doc map[string]any) {
		delete(doc, "version")
	})
	if _, err := OpenDurable(dir, DurableOptions{Sync: SyncNever}); err == nil {
		t.Fatal("OpenDurable accepted a MANIFEST without a version field")
	}
}

func TestManifestUnknownFieldsTolerated(t *testing.T) {
	dir := buildShardedDir(t)
	rewriteManifest(t, dir, func(doc map[string]any) {
		doc["x_future_hint"] = "replica-set-7"
		doc["x_extra"] = []any{1.0, 2.0}
	})
	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("unknown MANIFEST fields within a known version must load: %v", err)
	}
	defer re.Close()
	if re.Shards() != 3 {
		t.Fatalf("reopened with %d shards, want 3", re.Shards())
	}
}

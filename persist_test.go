package ssr

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicSaveLoadRoundTrip(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 24, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// String queries keep working (the dictionary round-tripped).
	want, _, err := ix.Query([]string{"dune", "foundation", "hyperion", "neuromancer"}, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.Query([]string{"dune", "foundation", "hyperion", "neuromancer"}, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reloaded index returned %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Get resolves names after reload.
	names, err := loaded.coll.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Errorf("Get(0) after reload = %v", names)
	}
}

func TestPublicLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("SSRPUB1\njunkjunk")); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestPublicSaveLoadIDCollection(t *testing.T) {
	c := NewCollection()
	for i := 0; i < 80; i++ {
		c.AddIDs(uint64(i*10), uint64(i*10+1), uint64(i*10+2))
	}
	ix, err := Build(c, Options{Budget: 16, MinHashes: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.QueryIDs([]uint64{0, 1, 2}, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].SID != 0 {
		t.Errorf("QueryIDs after reload = %v", got)
	}
}

// Command ssrvet is the repository's custom vet suite: a multichecker
// running the analyzers under internal/analysis with this repo's scoping
// policy. It complements stock `go vet` with checks for the invariants the
// paper's statistical guarantees rest on — reproducible randomness, sane
// probability arithmetic, honest error handling on the persistence paths,
// and no aliasing escapes from lock-guarded state.
//
// Usage:
//
//	go run ./cmd/ssrvet ./...
//	go run ./cmd/ssrvet -list
//	go run ./cmd/ssrvet -analyzers=seededrand,floatcmp ./internal/...
//
// Exit status is 1 when any diagnostic is reported, 2 on operational
// failure. Test files are not analyzed; the suite governs production code.
//
// Scoping policy (package import paths, applied on top of the patterns):
//
//	seededrand     repro/internal/... (all library code)
//	floatcmp       repro/internal/{lsh,optimize,simdist,eval}
//	droppederr     repro (persist.go and friends), repro/internal/{storage,textio,server,wal,recovery,engine,tuner}, repro/cmd/...
//	guardedescape  everywhere
//	lockorder      repro (durable.go, ssr.go), repro/internal/{engine,core,tuner,plan} — the documented lock hierarchy
//	maprange       repro, repro/internal/{core,engine,optimize,storage,textio,lsh,minhash} — pinned artifacts and signatures
//	atomicview     everywhere
//	looplife       everywhere
//
// Independently of any analyzer, every package is checked for
// //ssrvet:ignore directives lacking a `-- reason`: an unjustified
// suppression is itself reported.
//
// The analyzers themselves are policy-free; this binary is where the repo
// decides which invariant applies to which layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicview"
	"repro/internal/analysis/droppederr"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/guardedescape"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/looplife"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/seededrand"
)

// scopedAnalyzer pairs an analyzer with the repo's package scope for it.
type scopedAnalyzer struct {
	analyzer *analysis.Analyzer
	// inScope decides whether the analyzer runs on a package import path.
	inScope func(path string) bool
}

// prefixScope matches a path equal to one of the prefixes or nested under
// "prefix/".
func prefixScope(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

func everywhere(string) bool { return true }

// suite is the repo's analyzer × scope policy.
var suite = []scopedAnalyzer{
	{seededrand.Analyzer, prefixScope("repro/internal")},
	{floatcmp.Analyzer, prefixScope(
		"repro/internal/lsh",
		"repro/internal/optimize",
		"repro/internal/simdist",
		"repro/internal/eval",
	)},
	{droppederr.Analyzer, func(path string) bool {
		return path == "repro" || prefixScope(
			"repro/internal/storage",
			"repro/internal/textio",
			"repro/internal/server",
			"repro/internal/wal",
			"repro/internal/recovery",
			"repro/internal/engine",
			"repro/internal/tuner",
			"repro/internal/replica",
			"repro/cmd",
		)(path)
	}},
	{guardedescape.Analyzer, everywhere},
	{lockorder.New(lockorder.Repo()), func(path string) bool {
		// The packages participating in the documented lock hierarchy:
		// durable.go and Collection at the root, the engine's shard and
		// mapping locks, the core index lock, the drift tracker, and the
		// planner's cache mutexes (outside everything).
		return path == "repro" || prefixScope(
			"repro/internal/engine",
			"repro/internal/core",
			"repro/internal/tuner",
			"repro/internal/plan",
		)(path)
	}},
	{maprange.Analyzer, func(path string) bool {
		// The layers whose outputs are pinned byte-identical or feed
		// signatures: snapshots and gob at the root, index construction
		// and query results in core/engine, plan search in optimize, and
		// the serialization layers.
		return path == "repro" || prefixScope(
			"repro/internal/core",
			"repro/internal/engine",
			"repro/internal/optimize",
			"repro/internal/storage",
			"repro/internal/textio",
			"repro/internal/lsh",
			"repro/internal/minhash",
		)(path)
	}},
	{atomicview.Analyzer, everywhere},
	{looplife.Analyzer, everywhere},
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	namesFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ssrvet [-list] [-analyzers=a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, s := range suite {
			fmt.Printf("%-14s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
		return
	}

	active := suite
	if *namesFlag != "" {
		wanted := map[string]bool{}
		for _, n := range strings.Split(*namesFlag, ",") {
			wanted[strings.TrimSpace(n)] = true
		}
		active = nil
		for _, s := range suite {
			if wanted[s.analyzer.Name] {
				active = append(active, s)
				delete(wanted, s.analyzer.Name)
			}
		}
		if len(wanted) > 0 {
			var unknown []string
			for n := range wanted {
				unknown = append(unknown, n)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "ssrvet: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssrvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssrvet: %v\n", err)
		os.Exit(2)
	}

	type located struct {
		pos  string
		diag analysis.Diagnostic
	}
	var found []located
	for _, pkg := range pkgs {
		// An ignore directive with no justification is itself a finding:
		// suppressions are part of the invariant record, not an escape
		// hatch, so each one must say why the violation is deliberate.
		analysis.CheckIgnores(pkg.Files, func(d analysis.Diagnostic) {
			found = append(found, located{pos: pkg.Fset.Position(d.Pos).String(), diag: d})
		})
		for _, s := range active {
			if !s.inScope(pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  s.analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				found = append(found, located{pos: pkg.Fset.Position(d.Pos).String(), diag: d})
			}
			pass.BuildIgnores()
			if err := s.analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "ssrvet: %s on %s: %v\n", s.analyzer.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.diag.Category, f.diag.Message)
	}
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "ssrvet: %d problem(s) found\n", len(found))
		os.Exit(1)
	}
}

// Command ssrgen generates a synthetic web-log-like set collection (the
// substitute for the paper's proprietary HTTP logs — see DESIGN.md) and
// writes it as text: one set per line, elements space-separated.
//
// Usage:
//
//	ssrgen -n 200000 -preset set1 > set1.txt
//	ssrgen -n 1000 -preset set2 -o set2.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/textio"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 10000, "number of sets")
		preset = flag.String("preset", "set1", "workload preset: set1 or set2")
		seed   = flag.Int64("seed", 0, "seed override (0 = preset default)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var params workload.Params
	switch *preset {
	case "set1":
		params = workload.Set1Params(*n)
	case "set2":
		params = workload.Set2Params(*n)
	default:
		fmt.Fprintf(os.Stderr, "ssrgen: unknown preset %q (have: set1, set2)\n", *preset)
		os.Exit(1)
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	sets, err := workload.Generate(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssrgen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssrgen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := textio.WriteSets(w, sets); err != nil {
		fmt.Fprintf(os.Stderr, "ssrgen: %v\n", err)
		os.Exit(1)
	}
	// Close carries the final flush: a deferred, unchecked Close here would
	// report success on a workload file the kernel never finished writing.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ssrgen: closing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}

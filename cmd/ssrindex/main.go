// Command ssrindex builds a similar-set index over a text collection (one
// set per line, elements whitespace-separated — the ssrgen format) and
// answers range queries against it.
//
// Usage:
//
//	ssrgen -n 5000 -o sets.txt
//	ssrindex -data sets.txt -budget 200 -query 17 -lo 0.8 -hi 1.0
//	ssrindex -data sets.txt -budget 200 -plan        # just show the layout
//	ssrindex -data sets.txt -wal ./idx               # bootstrap a durable dir
//	ssrindex -wal ./idx -query 17                    # recover and query it
//
// The query set is referenced by line number (-query) so the tool stays
// format-agnostic; library users would pass their own sets through the
// public API. With -wal the index lives in a durability directory
// (write-ahead log + checkpoints, shared with ssrserver): the first run
// bootstraps it from -data, later runs recover from the directory alone
// and a clean exit flushes a final checkpoint.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ssr "repro"
	"repro/internal/textio"
)

func main() {
	var (
		data     = flag.String("data", "", "collection file (required; one set per line)")
		budget   = flag.Int("budget", 200, "hash-table budget")
		recall   = flag.Float64("recall", 0.9, "optimizer recall target")
		k        = flag.Int("k", 100, "min-hash signature length")
		seed     = flag.Int64("seed", 1, "build seed")
		shards   = flag.Int("shards", 1, "independent index shards (1 = classic monolithic layout)")
		queryIdx = flag.Int("query", -1, "line number of the query set (0-based)")
		lo       = flag.Float64("lo", 0.8, "lower similarity bound")
		hi       = flag.Float64("hi", 1.0, "upper similarity bound")
		plan     = flag.Bool("plan", false, "print the optimizer's plan and exit")
		limit    = flag.Int("limit", 20, "max matches to print")
		save     = flag.String("save", "", "write an index snapshot to this file after building")
		load     = flag.String("load", "", "load the index from a snapshot instead of building")
		walDir   = flag.String("wal", "", "durability directory (bootstrap from -data, or recover if it has state)")
		walPre   = flag.Int64("wal-prealloc", 0, "preallocate log segments in chunks of this many bytes (0 = plain append+fsync)")
		autotune = flag.Bool("autotune", false, "track similarity drift and hot-swap a re-derived plan in the background while this process runs")
		retune   = flag.Bool("retune", false, "re-derive the plan from the live collection once after opening (on a durable index the new plan is checkpointed)")
		signFam  = flag.String("sign-family", "", "signing family for stored signatures: classic (default) or superminhash; exact answers are identical either way")
		signBits = flag.Int("sign-bits", 0, "bits stored per hash value (1, 2, 4, 8, or 64; 0 = full 64-bit words); lower values pack signatures b-bit style")
	)
	flag.Parse()
	if *data == "" && *load == "" && *walDir == "" {
		fmt.Fprintln(os.Stderr, "ssrindex: -data, -load, or -wal is required")
		os.Exit(1)
	}
	if *walDir != "" && *load != "" {
		fmt.Fprintln(os.Stderr, "ssrindex: -wal and -load are mutually exclusive (the durability directory has its own checkpoints)")
		os.Exit(1)
	}
	signing := ssr.SigningOptions{Family: *signFam, BitsPerHash: *signBits}
	if err := run(*data, *budget, *recall, *k, *seed, *shards, *queryIdx, *lo, *hi, *plan, *limit, *save, *load, *walDir, *walPre, *autotune, *retune, signing); err != nil {
		fmt.Fprintf(os.Stderr, "ssrindex: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, budget int, recall float64, k int, seed int64, shards, queryIdx int, lo, hi float64, planOnly bool, limit int, savePath, loadPath, walDir string, walPre int64, autotune, retune bool, signing ssr.SigningOptions) (err error) {
	var ix *ssr.Index
	switch {
	case walDir != "":
		ix, err = openDurable(walDir, path, budget, recall, k, seed, shards, walPre, signing)
		if err != nil {
			return err
		}
		// A clean exit checkpoints; its error matters as much as the run's.
		defer func() {
			if cerr := ix.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	case loadPath != "":
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		start := time.Now()
		ix, err = ssr.Load(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("loaded snapshot %s (%d sets) in %v\n", loadPath, ix.Internal().Len(), time.Since(start).Round(time.Millisecond))
	default:
		coll, err := loadCollection(path)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d sets from %s\n", coll.Len(), path)

		start := time.Now()
		ix, err = ssr.Build(coll, ssr.Options{
			Budget:       budget,
			RecallTarget: recall,
			MinHashes:    k,
			Seed:         seed,
			Shards:       shards,
			Signing:      signing,
		})
		if err != nil {
			return err
		}
		fmt.Printf("built index in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if autotune {
		if err := ix.EnableAutoTune(ssr.TunePolicy{Seed: seed}); err != nil {
			return err
		}
	}
	if retune {
		rep, err := ix.Retune()
		if err != nil {
			return err
		}
		fmt.Printf("retuned: swapped=%v generation=%d drift=%.3f\n", rep.Swapped, rep.Generation, rep.Drift)
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		if err := ix.Save(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				return fmt.Errorf("%w (and closing %s: %v)", err, savePath, cerr)
			}
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, err := os.Stat(savePath)
		if err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s (%d bytes)\n", savePath, st.Size())
	}

	p := ix.Plan()
	fmt.Printf("plan: delta=%.3f cuts=%v expectedWorstRecall=%.3f recallMet=%v\n",
		p.Delta, p.Cuts, p.ExpectedWorstRecall, p.RecallMet)
	for _, fi := range p.FilterIndexes {
		fmt.Printf("  %s at %.3f: l=%d tables, r=%d sampled bits\n", fi.Kind, fi.Point, fi.Tables, fi.SampledBits)
	}
	if planOnly {
		return nil
	}
	if queryIdx < 0 {
		return fmt.Errorf("pass -query <line> to run a query, or -plan to stop here")
	}

	matches, stats, err := ix.QuerySID(queryIdx, lo, hi)
	if err != nil {
		return err
	}
	fmt.Printf("query set %d, range [%.2f, %.2f]: %d matches (%d candidates, %d random + %d sequential page reads, simulated I/O %v, CPU %v)\n",
		queryIdx, lo, hi, len(matches), stats.Candidates,
		stats.RandomPageReads, stats.SequentialPageReads,
		stats.SimulatedIOTime.Round(time.Microsecond), stats.CPUTime.Round(time.Microsecond))
	for i, m := range matches {
		if i >= limit {
			fmt.Printf("  ... and %d more\n", len(matches)-limit)
			break
		}
		fmt.Printf("  set %-8d similarity %.4f\n", m.SID, m.Similarity)
	}
	return nil
}

// openDurable recovers the durability directory, bootstrapping it from the
// collection file on first use.
func openDurable(walDir, path string, budget int, recall float64, k int, seed int64, shards int, walPre int64, signing ssr.SigningOptions) (*ssr.Index, error) {
	has, err := ssr.HasDurableState(walDir)
	if err != nil {
		return nil, err
	}
	if has {
		start := time.Now()
		ix, err := ssr.OpenDurable(walDir, ssr.DurableOptions{PreallocBytes: walPre})
		if err != nil {
			return nil, err
		}
		fmt.Printf("recovered durable index from %s (%d sets) in %v\n", walDir, ix.Internal().Len(), time.Since(start).Round(time.Millisecond))
		return ix, nil
	}
	if path == "" {
		return nil, fmt.Errorf("%s holds no durable state; pass -data <file> to bootstrap it", walDir)
	}
	coll, err := loadCollection(path)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ix, err := ssr.CreateDurable(walDir, coll, ssr.Options{
		Budget:       budget,
		RecallTarget: recall,
		MinHashes:    k,
		Seed:         seed,
		Shards:       shards,
		Signing:      signing,
	}, ssr.DurableOptions{PreallocBytes: walPre})
	if err != nil {
		return nil, err
	}
	fmt.Printf("bootstrapped durable index over %d sets into %s in %v\n", coll.Len(), walDir, time.Since(start).Round(time.Millisecond))
	return ix, nil
}

// loadCollection reads the one-set-per-line format via internal/textio.
func loadCollection(path string) (*ssr.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //ssrvet:ignore droppederr -- read-only fd; ReadSets fails on any read error
	sets, err := textio.ReadSets(f, path)
	if err != nil {
		return nil, err
	}
	coll := ssr.NewCollection()
	for _, s := range sets {
		if _, err := coll.AddIDs(s.Elems()...); err != nil {
			return nil, err
		}
	}
	return coll, nil
}

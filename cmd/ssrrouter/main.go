// Command ssrrouter fronts one primary and any number of followers as a
// single read/write endpoint: writes forward to the primary, reads are
// hedged across every caught-up backend (first answer wins), and batch
// queries scatter positionally over the ready set and gather back in
// order. Because followers mirror the primary byte for byte and report
// ready only when caught up, any backend's answer is the answer.
//
// Usage:
//
//	ssrserver -wal /data/primary -addr :8080 &
//	ssrserver -follow http://localhost:8080 -wal /data/f1 -addr :8081 &
//	ssrrouter -primary http://localhost:8080 -follower http://localhost:8081 -addr :8090
//	curl -s -X POST localhost:8090/query -d '{"elements":["a","b"],"lo":0.5,"hi":1.0}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/replica"
)

// followerList collects repeated -follower flags.
type followerList []string

func (f *followerList) String() string { return strings.Join(*f, ",") }

func (f *followerList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*f = append(*f, u)
		}
	}
	return nil
}

func main() {
	var followers followerList
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		primary    = flag.String("primary", "", "primary base URL (required; all writes land here)")
		hedgeDelay = flag.Duration("hedge-delay", 20*time.Millisecond, "fire a duplicate read at the next ready backend after this long")
		probeEvery = flag.Duration("probe-interval", time.Second, "backend /readyz probe period")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request upstream timeout")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "time limit for reading a request's headers")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "time limit for reading an entire request, body included")
		writeTimeout      = flag.Duration("write-timeout", 60*time.Second, "time limit for writing a response")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive limit for idle connections")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Var(&followers, "follower", "follower base URL (repeatable, or comma-separated)")
	flag.Parse()

	if *primary == "" {
		log.Fatal("ssrrouter: -primary is required")
	}
	rt := replica.NewRouter(replica.RouterOptions{
		Primary:    *primary,
		Followers:  followers,
		HedgeDelay: *hedgeDelay,
		ProbeEvery: *probeEvery,
		Timeout:    *timeout,
	})
	log.Printf("routing %s + %d follower(s) on %s", *primary, len(followers), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ssrrouter: draining requests: %v", err)
		}
		if err := rt.Close(); err != nil {
			log.Printf("ssrrouter: stopping prober: %v", err)
		}
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ssrrouter: %v", err)
	}
	<-done
}

// Command ssrbench regenerates the paper's evaluation figures and the
// design-lemma ablations (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	ssrbench -exp fig6a                 # Figure 6(a): 500-table budget
//	ssrbench -exp fig7a -n 20000        # Figure 7(a) at a larger scale
//	ssrbench -exp all                   # everything, in order
//	ssrbench -exp bench -json -out BENCH_parallel.json
//	                                    # parallel-pipeline report as JSON
//	ssrbench -exp shards -json -out BENCH_shards.json
//	                                    # sharded-engine report as JSON
//	ssrbench -exp drift -json -out BENCH_drift.json
//	                                    # adaptive re-tuning under drift
//	ssrbench -exp plan -json -out BENCH_plan.json
//	                                    # cost-based query planner report
//	ssrbench -exp replica -json -out BENCH_replica.json
//	                                    # replication lag + hedged-read report
//
// The paper's experiments used 200,000-set collections; the defaults here
// are laptop-scale but preserve the reported shapes. Raise -n and -queries
// to approach the original scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/planbench"
	"repro/internal/replbench"
	"repro/internal/shardbench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig6a, fig6b, fig7a, fig7b, filtercurve, rltradeoff, placement, allocation, intervals, dfigain, embedding, profile, bench, drift, shards, plan, screen, replica, all")
		n        = flag.Int("n", 0, "collection size per dataset (0 = default)")
		queries  = flag.Int("queries", 0, "number of random queries (0 = default)")
		budget   = flag.Int("budget", 0, "hash-table budget override (0 = per-experiment default)")
		k        = flag.Int("k", 0, "min-hash signature length (0 = default)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default)")
		recall   = flag.Float64("recall", 0, "optimizer recall target (0 = default 0.9)")
		sstar    = flag.Float64("sstar", 0.8, "turning point for filter-curve experiments")
		jsonFlag = flag.Bool("json", false, "emit the bench report as JSON (implies -exp bench)")
		outPath  = flag.String("out", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	cfg := experiments.Config{
		N:            *n,
		Queries:      *queries,
		Budget:       *budget,
		MinHashes:    *k,
		Seed:         *seed,
		RecallTarget: *recall,
	}
	shardCfg := shardbench.Config{
		N:         *n,
		Queries:   *queries,
		Budget:    *budget,
		MinHashes: *k,
		Seed:      *seed,
	}
	planCfg := planbench.Config{
		N:         *n,
		Queries:   *queries,
		Budget:    *budget,
		MinHashes: *k,
		Seed:      *seed,
	}
	replCfg := replbench.Config{
		N:         *n,
		Queries:   *queries,
		Budget:    *budget,
		MinHashes: *k,
		Seed:      *seed,
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssrbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ssrbench: closing %s: %v\n", *outPath, err)
				os.Exit(1)
			}
		}()
		out = f
	}
	if *jsonFlag {
		// JSON mode: the bench report goes to out as one JSON document; the
		// human-readable table stays on stderr for the build log. -exp picks
		// which report: shards for the sharded-engine bench, drift for the
		// adaptive re-tuning report, anything else for the parallel-pipeline
		// bench.
		var rep any
		var err error
		switch strings.ToLower(*exp) {
		case "shards":
			rep, err = shardbench.Run(os.Stderr, shardCfg)
		case "plan":
			rep, err = planbench.Run(os.Stderr, planCfg)
		case "replica":
			rep, err = replbench.Run(os.Stderr, replCfg)
		case "drift":
			rep, err = experiments.Drift(os.Stderr, cfg)
		case "screen":
			rep, err = experiments.Screen(os.Stderr, cfg)
		default:
			rep, err = experiments.Bench(os.Stderr, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssrbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "ssrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(out, strings.ToLower(*exp), cfg, shardCfg, planCfg, replCfg, *sstar); err != nil {
		fmt.Fprintf(os.Stderr, "ssrbench: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches one experiment (or all of them) to w.
func run(w io.Writer, exp string, cfg experiments.Config, shardCfg shardbench.Config, planCfg planbench.Config, replCfg replbench.Config, sstar float64) error {
	// The sharded-engine stress bench runs for minutes and mutates durable
	// scratch directories, so it is invoked by name only — never as part
	// of "all". The planner bench is likewise name-only: it is a report,
	// not one of the paper's figures.
	if exp == "shards" {
		_, err := shardbench.Run(w, shardCfg)
		return err
	}
	if exp == "plan" {
		_, err := planbench.Run(w, planCfg)
		return err
	}
	// The signing-family screening matrix builds six indexes; name-only,
	// like the planner bench.
	if exp == "screen" {
		_, err := experiments.Screen(w, cfg)
		return err
	}
	// The replication bench spins up live HTTP nodes and a follower
	// mirror; name-only, like the other system-level benches.
	if exp == "replica" {
		_, err := replbench.Run(w, replCfg)
		return err
	}
	type job struct {
		name string
		fn   func(io.Writer) error
	}
	jobs := []job{
		{"fig6a", func(w io.Writer) error { _, err := experiments.Fig6(w, 500, cfg); return err }},
		{"fig6b", func(w io.Writer) error { _, err := experiments.Fig6(w, 1000, cfg); return err }},
		{"fig7a", func(w io.Writer) error { _, err := experiments.Fig7(w, "Set1", 1000, cfg); return err }},
		{"fig7b", func(w io.Writer) error { _, err := experiments.Fig7(w, "Set2", 1000, cfg); return err }},
		{"filtercurve", func(w io.Writer) error { _, err := experiments.FilterCurve(w, sstar); return err }},
		{"rltradeoff", func(w io.Writer) error { _, err := experiments.RLTradeoff(w, sstar); return err }},
		{"placement", func(w io.Writer) error { _, err := experiments.Placement(w, cfg); return err }},
		{"allocation", func(w io.Writer) error { _, err := experiments.Allocation(w, cfg); return err }},
		{"intervals", func(w io.Writer) error { _, err := experiments.Intervals(w, cfg); return err }},
		{"dfigain", func(w io.Writer) error { _, err := experiments.DFIGain(w, cfg); return err }},
		{"embedding", func(w io.Writer) error { _, err := experiments.Embedding(w, cfg); return err }},
		{"profile", func(w io.Writer) error { _, err := experiments.Profile(w, cfg); return err }},
		{"bench", func(w io.Writer) error { _, err := experiments.Bench(w, cfg); return err }},
		{"drift", func(w io.Writer) error { _, err := experiments.Drift(w, cfg); return err }},
	}
	if exp != "all" {
		for _, j := range jobs {
			if j.name == exp {
				return j.fn(w)
			}
		}
		names := make([]string, len(jobs))
		for i, j := range jobs {
			names[i] = j.name
		}
		return fmt.Errorf("unknown experiment %q (have: %s, shards, plan, screen, replica, all)", exp, strings.Join(names, ", "))
	}
	for i, j := range jobs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "=== %s ===\n", j.name); err != nil {
			return err
		}
		if err := j.fn(w); err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
	}
	return nil
}

// Command ssrserver serves a similar-set index over HTTP/JSON (see
// internal/server for the endpoint reference).
//
// Usage:
//
//	ssrgen -n 5000 -o sets.txt
//	ssrserver -data sets.txt -budget 200 -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query/sid -d '{"sid":7,"lo":0.8,"hi":1.0}'
//
// A previously saved snapshot (see ssrindex -save) can be served directly
// with -snapshot, skipping the build. With -wal the index is durable:
// mutations (POST /sets, DELETE /sets/{sid}) are write-ahead logged to the
// given directory before they are acknowledged, the log is checkpointed
// and compacted as it grows, and a restart recovers everything up to the
// -wal-sync horizon. The first run against an empty -wal directory
// bootstraps it from -data; later runs ignore -data and recover from the
// directory alone.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (bounded by -shutdown-timeout) and, when durability is enabled, a
// final checkpoint is flushed so the next start skips log replay.
//
// Replication: a durable index (-wal) automatically serves the /replica/*
// stream endpoints, making it a primary any follower can tail. A follower
// runs with -follow http://primary:8080 plus its own -wal directory: it
// bootstraps from the primary's newest checkpoints, tails the WAL stream,
// serves reads only (mutations get 403), and reports ready on /readyz
// once its replication lag is within -lag-bound bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ssr "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/textio"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "collection file (one set per line)")
		snapshot = flag.String("snapshot", "", "index snapshot to serve (skips build)")
		budget   = flag.Int("budget", 200, "hash-table budget")
		recall   = flag.Float64("recall", 0.85, "optimizer recall target")
		k        = flag.Int("k", 100, "min-hash signature length")
		seed     = flag.Int64("seed", 1, "build seed")
		shards   = flag.Int("shards", 1, "independent index shards (1 = classic monolithic layout)")
		signFam  = flag.String("sign-family", "", "signing family for stored signatures: classic (default) or superminhash; exact answers are identical either way")
		signBits = flag.Int("sign-bits", 0, "bits stored per hash value (1, 2, 4, 8, or 64; 0 = full 64-bit words); lower values pack signatures b-bit style")

		walDir       = flag.String("wal", "", "durability directory (write-ahead log + checkpoints)")
		walSync      = flag.String("wal-sync", "always", "log sync policy: always, interval, never")
		walSyncEvery = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period under -wal-sync=interval")
		walCkptBytes = flag.Int64("wal-checkpoint-bytes", 8<<20, "checkpoint + rotate once the live log exceeds this size")
		walPrealloc  = flag.Int64("wal-prealloc", 0, "preallocate log segments in chunks of this many bytes (0 = plain append+fsync)")

		autotune      = flag.Bool("autotune", false, "track similarity drift online and hot-swap a re-derived plan when it passes the threshold (durable indexes checkpoint the new plan)")
		autotuneEvery = flag.Duration("autotune-interval", 30*time.Second, "drift evaluation period under -autotune")
		autotuneDrift = flag.Float64("autotune-drift", 0, "drift threshold (max CDF distance) that triggers a retune; 0 = default 0.15")

		follow   = flag.String("follow", "", "follower mode: primary base URL to mirror (requires -wal for the local mirror)")
		lagBound = flag.Int64("lag-bound", 1<<20, "follower readiness bound: /readyz reports ready once replication lag is within this many bytes")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "time limit for reading a request's headers")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "time limit for reading an entire request, body included")
		writeTimeout      = flag.Duration("write-timeout", 60*time.Second, "time limit for writing a response (replication streams extend their own deadline per frame)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive limit for idle connections")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	if *walDir != "" && *snapshot != "" {
		log.Fatal("ssrserver: -wal and -snapshot are mutually exclusive (the durability directory has its own checkpoints)")
	}

	var handler http.Handler
	var closeNode func() error
	if *follow != "" {
		if *walDir == "" {
			log.Fatal("ssrserver: -follow requires -wal <dir> for the local mirror")
		}
		mode, err := ssr.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("ssrserver: %v", err)
		}
		fol, err := replica.StartFollower(context.Background(), replica.FollowerOptions{
			Dir:     *walDir,
			Primary: *follow,
			Durable: ssr.DurableOptions{
				Sync:          mode,
				SyncEvery:     *walSyncEvery,
				PreallocBytes: *walPrealloc,
			},
			LagBoundBytes: *lagBound,
		})
		if err != nil {
			log.Fatalf("ssrserver: starting follower: %v", err)
		}
		closeNode = fol.Close
		handler = server.NewWithConfig(nil, server.Config{
			Role:     "follower",
			ReadOnly: true,
			Index:    fol.Index,
			Readiness: func() (bool, map[string]any) {
				st := fol.Status()
				return st.CaughtUp, map[string]any{
					"connected": st.Connected,
					"lagBytes":  st.LagBytes,
					"caughtUp":  st.CaughtUp,
					"resyncs":   st.Resyncs,
				}
			},
		})
		log.Printf("following %s into %s", *follow, *walDir)
	} else {
		signing := ssr.SigningOptions{Family: *signFam, BitsPerHash: *signBits}
		ix, err := openIndex(*data, *snapshot, *walDir, *walSync, *walSyncEvery, *walCkptBytes, *walPrealloc, *budget, *recall, *k, *seed, *shards, signing)
		if err != nil {
			log.Fatalf("ssrserver: %v", err)
		}
		if *autotune {
			policy := ssr.TunePolicy{CheckEvery: *autotuneEvery, DriftThreshold: *autotuneDrift, Seed: *seed}
			if err := ix.EnableAutoTune(policy); err != nil {
				log.Fatalf("ssrserver: enabling auto-tune: %v", err)
			}
			log.Printf("auto-tune enabled (interval %v); tuner state on GET /stats", *autotuneEvery)
		}
		closeNode = ix.Close
		cfg := server.Config{}
		if *walDir != "" {
			// A durable index is a primary: serve the replication stream.
			repl, err := replica.NewHandler(ix, replica.HandlerOptions{})
			if err != nil {
				log.Fatalf("ssrserver: replication handler: %v", err)
			}
			cfg.Role, cfg.Replication = "primary", repl
		}
		handler = server.NewWithConfig(ix, cfg)
		log.Printf("serving %d sets on %s", ix.Internal().Len(), *addr)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush a final checkpoint so restart skips replay.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ssrserver: draining requests: %v", err)
		}
		if err := closeNode(); err != nil {
			log.Printf("ssrserver: closing index: %v", err)
		}
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ssrserver: %v", err)
	}
	<-done
}

// openIndex resolves the three serving modes: durable (-wal), snapshot
// (-snapshot), or ephemeral build (-data).
func openIndex(data, snapshot, walDir, walSync string, walSyncEvery time.Duration, walCkptBytes, walPrealloc int64, budget int, recall float64, k int, seed int64, shards int, signing ssr.SigningOptions) (*ssr.Index, error) {
	if walDir == "" {
		return buildOrLoad(data, snapshot, budget, recall, k, seed, shards, signing)
	}
	mode, err := ssr.ParseSyncMode(walSync)
	if err != nil {
		return nil, err
	}
	dopt := ssr.DurableOptions{
		Sync:            mode,
		SyncEvery:       walSyncEvery,
		CheckpointBytes: walCkptBytes,
		PreallocBytes:   walPrealloc,
	}
	has, err := ssr.HasDurableState(walDir)
	if err != nil {
		return nil, err
	}
	if has {
		start := time.Now()
		ix, err := ssr.OpenDurable(walDir, dopt)
		if err != nil {
			return nil, err
		}
		log.Printf("recovered durable index from %s in %v", walDir, time.Since(start).Round(time.Millisecond))
		return ix, nil
	}
	if data == "" {
		return nil, fmt.Errorf("%s holds no durable state; pass -data <file> to bootstrap it", walDir)
	}
	coll, err := loadCollection(data)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ix, err := ssr.CreateDurable(walDir, coll, ssr.Options{
		Budget: budget, RecallTarget: recall, MinHashes: k, Seed: seed, Shards: shards,
		Signing: signing,
	}, dopt)
	if err != nil {
		return nil, err
	}
	log.Printf("bootstrapped durable index over %d sets into %s in %v", coll.Len(), walDir, time.Since(start).Round(time.Millisecond))
	return ix, nil
}

func buildOrLoad(data, snapshot string, budget int, recall float64, k int, seed int64, shards int, signing ssr.SigningOptions) (*ssr.Index, error) {
	switch {
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close() //ssrvet:ignore droppederr -- read-only fd; Load fails on any read error
		return ssr.Load(f)
	case data != "":
		coll, err := loadCollection(data)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ix, err := ssr.Build(coll, ssr.Options{
			Budget: budget, RecallTarget: recall, MinHashes: k, Seed: seed, Shards: shards,
			Signing: signing,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("built index over %d sets in %v", coll.Len(), time.Since(start).Round(time.Millisecond))
		return ix, nil
	default:
		return nil, fmt.Errorf("pass -data <file>, -snapshot <file>, or -wal <dir>")
	}
}

// loadCollection reads the one-set-per-line format via internal/textio.
func loadCollection(path string) (*ssr.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //ssrvet:ignore droppederr -- read-only fd; ReadSets fails on any read error
	sets, err := textio.ReadSets(f, path)
	if err != nil {
		return nil, err
	}
	coll := ssr.NewCollection()
	for _, s := range sets {
		if _, err := coll.AddIDs(s.Elems()...); err != nil {
			return nil, err
		}
	}
	return coll, nil
}

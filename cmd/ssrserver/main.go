// Command ssrserver serves a similar-set index over HTTP/JSON (see
// internal/server for the endpoint reference).
//
// Usage:
//
//	ssrgen -n 5000 -o sets.txt
//	ssrserver -data sets.txt -budget 200 -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query/sid -d '{"sid":7,"lo":0.8,"hi":1.0}'
//
// A previously saved snapshot (see ssrindex -save) can be served directly
// with -snapshot, skipping the build.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	ssr "repro"
	"repro/internal/server"
	"repro/internal/textio"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "collection file (one set per line)")
		snapshot = flag.String("snapshot", "", "index snapshot to serve (skips build)")
		budget   = flag.Int("budget", 200, "hash-table budget")
		recall   = flag.Float64("recall", 0.85, "optimizer recall target")
		k        = flag.Int("k", 100, "min-hash signature length")
		seed     = flag.Int64("seed", 1, "build seed")
	)
	flag.Parse()

	ix, err := buildOrLoad(*data, *snapshot, *budget, *recall, *k, *seed)
	if err != nil {
		log.Fatalf("ssrserver: %v", err)
	}
	log.Printf("serving %d sets on %s", ix.Internal().Len(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(ix),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

func buildOrLoad(data, snapshot string, budget int, recall float64, k int, seed int64) (*ssr.Index, error) {
	switch {
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ssr.Load(f)
	case data != "":
		coll, err := loadCollection(data)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ix, err := ssr.Build(coll, ssr.Options{
			Budget: budget, RecallTarget: recall, MinHashes: k, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("built index over %d sets in %v", coll.Len(), time.Since(start).Round(time.Millisecond))
		return ix, nil
	default:
		return nil, fmt.Errorf("pass -data <file> or -snapshot <file>")
	}
}

// loadCollection reads the one-set-per-line format via internal/textio.
func loadCollection(path string) (*ssr.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sets, err := textio.ReadSets(f, path)
	if err != nil {
		return nil, err
	}
	coll := ssr.NewCollection()
	for _, s := range sets {
		coll.AddIDs(s.Elems()...)
	}
	return coll, nil
}

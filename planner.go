// Public surface of the cost-based query planner.
//
// The planner prices each range query from the index's live similarity
// distribution (the auto-tuner's drift sketch when one is running, the
// build-time histogram otherwise) and the storage cost model, then
// executes the cheapest of three plans:
//
//   - fi-probe: the default filter-index pipeline (exact);
//   - direct-scan: a sequential heap scan that recomputes each stored
//     set's candidacy exactly (exact, byte-identical to fi-probe);
//   - screen-only: answers from signature estimates without fetching set
//     data (approximate; only under QueryOptions.AllowApproximate).
//
// Plan decisions and exact results are cached. Both caches carry an
// invalidation token — the plan generation plus per-shard mutation
// counters — captured before the query executes; any retune, recovery
// reload, insert, or delete changes the token, so stale entries are
// lazily evicted on the next lookup and never served.
package ssr

import "repro/internal/engine"

// PlannerPolicy tunes the cost-based query planner. The zero value
// selects defaults for every field.
type PlannerPolicy struct {
	// ResultCacheEntries bounds the query-result LRU cache. 0 means the
	// default (1024); negative disables result caching.
	ResultCacheEntries int
	// PlanCacheEntries bounds the plan-decision LRU cache, keyed on
	// bucketed similarity ranges. 0 means the default (256); negative
	// disables plan caching.
	PlanCacheEntries int
	// MutationTolerance is how many inserts/deletes a cached PLAN
	// decision survives before it is re-costed (cost estimates age
	// gracefully; cached RESULTS never tolerate any drift). 0 means the
	// default (1024).
	MutationTolerance int
	// ScreenWidthFactor gates the screen-only plan: the range width must
	// be at least this multiple of the estimator's 95%-confidence width.
	// 0 means the default (4).
	ScreenWidthFactor float64
	// ForcePlan, when non-empty, overrides the cost model: "fi-probe",
	// "direct-scan", or "screen-only" (the last still requires
	// AllowApproximate and otherwise falls back to fi-probe). Intended
	// for testing and benchmarking.
	ForcePlan string
}

func (p PlannerPolicy) toEngine() engine.PlannerPolicy {
	ep := engine.PlannerPolicy{
		ResultCacheEntries: p.ResultCacheEntries,
		PlanCacheEntries:   p.PlanCacheEntries,
		ScreenWidthFactor:  p.ScreenWidthFactor,
		ForcePlan:          p.ForcePlan,
	}
	if p.MutationTolerance > 0 {
		ep.MutationTolerance = uint64(p.MutationTolerance)
	}
	return ep
}

// EnablePlanner turns on the cost-based query planner with the given
// policy (zero value for defaults). Safe to call on a live index;
// concurrent queries pick the planner up on their next dispatch. Exact
// plans and all cached answers stay byte-identical to the default
// pipeline; only AllowApproximate queries can receive estimates.
func (ix *Index) EnablePlanner(p PlannerPolicy) {
	ix.inner.EnablePlanner(p.toEngine())
}

// DisablePlanner turns the planner off and drops its caches. Queries in
// flight finish under whichever mode they observed at dispatch.
func (ix *Index) DisablePlanner() { ix.inner.DisablePlanner() }

// PlannerEnabled reports whether the cost-based planner is active.
func (ix *Index) PlannerEnabled() bool { return ix.inner.PlannerEnabled() }

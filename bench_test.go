package ssr

// Benchmarks: one per paper artifact (Figure 6a/6b, Figure 7a/7b, the
// Figure 3 filter curves, and the Theorem 1 embedding validation) plus
// micro-benchmarks of every substrate on the query path. The figure
// benchmarks time one index query per iteration over the paper's workload
// and report measured recall, precision, and the simulated I/O microseconds
// per query as custom metrics; `cmd/ssrbench` prints the same data as full
// tables. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks use laptop-scale collections (see internal/experiments
// for the scaling flags of the full harness).

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/hashtable"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/scan"
	"repro/internal/set"
	"repro/internal/simdist"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fixture is a built index plus its workload, shared across benchmark
// iterations.
type fixture struct {
	ix      *core.Index
	sets    []set.Set
	queries []workload.Query
	model   storage.CostModel
}

var (
	fixtures   = map[string]*fixture{}
	fixturesMu sync.Mutex
)

// benchFixture builds (once) an index over a Set1-like collection with the
// given table budget.
func benchFixture(b *testing.B, name string, params workload.Params, budget int) *fixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	sets, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.Build(sets, core.Options{
		Embed:          embed.Options{K: 64, Bits: 8, Seed: 1},
		Plan:           optimize.Options{Budget: budget, RecallTarget: 0.75},
		PayloadPerElem: 110,
	})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 256, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{ix: ix, sets: sets, queries: qs, model: storage.DefaultCostModel()}
	fixtures[name] = f
	return f
}

// benchFig6 times index queries and reports measured recall/precision —
// the quantities Figure 6 plots per bucket.
func benchFig6(b *testing.B, budget int) {
	f := benchFixture(b, benchName("fig6", budget), workload.Set1Params(2000), budget)
	runner := eval.NewRunner(f.ix, f.sets)
	var recall, precision float64
	counted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		matches, stats, err := f.ix.Query(f.sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			b.Fatal(err)
		}
		_ = matches
		_ = stats
	}
	b.StopTimer()
	// Measure quality on a fixed sample (independent of b.N) so the
	// reported metrics are stable.
	outcomes, err := runner.Run(f.queries[:64])
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Truth > 0 {
			recall += o.Recall
			counted++
		}
		precision += o.Precision
	}
	if counted > 0 {
		b.ReportMetric(recall/float64(counted), "recall")
	}
	b.ReportMetric(precision/float64(len(outcomes)), "precision")
}

func benchName(prefix string, budget int) string {
	return prefix + "-" + string(rune('0'+budget/500))
}

// BenchmarkFig6a regenerates Figure 6(a): query quality at a 500-table
// budget.
func BenchmarkFig6a(b *testing.B) { benchFig6(b, 500) }

// BenchmarkFig6b regenerates Figure 6(b): query quality at a 1000-table
// budget.
func BenchmarkFig6b(b *testing.B) { benchFig6(b, 1000) }

// benchFig7 times the two Figure 7 contenders and reports their simulated
// I/O per query.
func benchFig7(b *testing.B, params workload.Params, name string) {
	f := benchFixture(b, name, params, 500)
	var indexIO, scanIO int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		_, stats, err := f.ix.Query(f.sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			b.Fatal(err)
		}
		indexIO += int64(stats.SimIOTime(f.model))
	}
	b.StopTimer()
	// One representative scan for the baseline I/O metric.
	_, sstats, err := scan.Query(f.ix.Store(), f.sets[f.queries[0].SID], f.queries[0].Lo, f.queries[0].Hi)
	if err != nil {
		b.Fatal(err)
	}
	scanIO = int64(sstats.SimIOTime(f.model))
	b.ReportMetric(float64(indexIO)/float64(b.N)/1e3, "index-io-µs/query")
	b.ReportMetric(float64(scanIO)/1e3, "scan-io-µs/query")
}

// BenchmarkFig7a regenerates Figure 7(a): Set1 response time, index vs scan.
func BenchmarkFig7a(b *testing.B) { benchFig7(b, workload.Set1Params(2000), "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b): Set2 response time, index vs scan.
func BenchmarkFig7b(b *testing.B) { benchFig7(b, workload.Set2Params(2000), "fig7b") }

// BenchmarkScanBaseline times the sequential-scan comparator on its own.
func BenchmarkScanBaseline(b *testing.B) {
	f := benchFixture(b, "scanbase", workload.Set1Params(2000), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, _, err := scan.Query(f.ix.Store(), f.sets[q.SID], q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterCurve regenerates the Figure 3 curve computation.
func BenchmarkFilterCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FilterCurve(io.Discard, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbeddingValidation regenerates the Theorem 1 table.
func BenchmarkEmbeddingValidation(b *testing.B) {
	cfg := experiments.Config{MinHashes: 32}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Embedding(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkJaccard measures exact similarity of two 100-element sets.
func BenchmarkJaccard(b *testing.B) {
	x := make([]set.Elem, 100)
	y := make([]set.Elem, 100)
	for i := range x {
		x[i] = set.Elem(i * 3)
		y[i] = set.Elem(i * 4)
	}
	sa, sb := set.New(x...), set.New(y...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sa.Jaccard(sb)
	}
}

// BenchmarkMinhashSign measures signing a 100-element set with k=100.
func BenchmarkMinhashSign(b *testing.B) {
	fam, err := minhash.NewFamily(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]set.Elem, 100)
	for i := range elems {
		elems[i] = set.Elem(i * 7)
	}
	s := set.New(elems...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fam.Sign(s)
	}
}

// BenchmarkEmbedFull measures the full S → H materialization (k=100, b=8:
// a 25600-bit vector).
func BenchmarkEmbedFull(b *testing.B) {
	e, err := embed.New(embed.Options{K: 100, Bits: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]set.Elem, 100)
	for i := range elems {
		elems[i] = set.Elem(i * 7)
	}
	s := set.New(elems...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Embed(s)
	}
}

// BenchmarkLazyKeyExtraction measures the lazy bucket-key path used at
// query time (r=16 bits straight from the signature, no materialization).
func BenchmarkLazyKeyExtraction(b *testing.B) {
	e, err := embed.New(embed.Options{K: 100, Bits: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]set.Elem, 100)
	for i := range elems {
		elems[i] = set.Elem(i * 7)
	}
	sig := e.Sign(set.New(elems...))
	positions := make([]int, 16)
	for i := range positions {
		positions[i] = i * 997 % e.Dimension()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.ExtractKey(sig, positions)
	}
}

// BenchmarkGroupInsert measures inserting a vector into an l=20 table
// group.
func BenchmarkGroupInsert(b *testing.B) {
	e, err := embed.New(embed.Options{K: 64, Bits: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, err := lsh.NewGroup(storage.NewPager(0), lsh.GroupOptions{
		Dim: e.Dimension(), R: 12, L: 20, Seed: 2, ExpectedEntries: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]set.Elem, 60)
	for i := range elems {
		elems[i] = set.Elem(i * 5)
	}
	src := e.Bits(e.Sign(set.New(elems...)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Insert(src, storage.SID(i))
	}
}

// BenchmarkBTree measures sid lookups in a 100k-key tree.
func BenchmarkBTree(b *testing.B) {
	pager := storage.NewPager(0)
	tree, err := btree.New(pager)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := uint64(0); i < n; i++ {
		if err := tree.Insert(i, btree.Value{Offset: i * 64, Length: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Lookup(uint64(i)%n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildIndex measures full index construction for 500 sets.
func BenchmarkBuildIndex(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(500))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Build(sets, core.Options{
			Embed: embed.Options{K: 32, Bits: 8, Seed: 1},
			Plan:  optimize.Options{Budget: 60, RecallTarget: 0.75},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild compares serial and parallel construction on the Figure 6
// fixture parameters (Set1 at 2000 sets, k=64, 500 tables). The parallel
// variant uses every CPU; the sub-benchmark ratio is the build speedup
// (bit-identical output is pinned by TestParallelBuildDeterminism).
func BenchmarkBuild(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(2000))
	if err != nil {
		b.Fatal(err)
	}
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Build(sets, core.Options{
					Embed:   embed.Options{K: 64, Bits: 8, Seed: 1},
					Plan:    optimize.Options{Budget: 500, RecallTarget: 0.75},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", bench(1))
	b.Run("parallel", bench(0))
}

// BenchmarkQueryBatch compares a serial query loop with one QueryBatch
// call over the same 256-query workload.
func BenchmarkQueryBatch(b *testing.B) {
	f := benchFixture(b, "batch", workload.Set1Params(2000), 500)
	batch := make([]core.BatchQuery, len(f.queries))
	for i, q := range f.queries {
		batch[i] = core.BatchQuery{Q: f.sets[q.SID], Lo: q.Lo, Hi: q.Hi}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := batch[i%len(batch)]
			if _, _, err := f.ix.QueryWithOptions(q.Q, q.Lo, q.Hi, core.QueryOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range f.ix.QueryBatch(batch, core.QueryOptions{}) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		// Normalize to per-query so the two sub-benchmarks compare directly.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/query")
	})
}

// BenchmarkQuerySteadyState measures the pooled-scratch query path with
// allocation reporting: steady-state queries should allocate only their
// result slices (run with -benchmem to verify).
func BenchmarkQuerySteadyState(b *testing.B) {
	f := benchFixture(b, "steady", workload.Set1Params(2000), 500)
	// Warm the scratch pool.
	for i := 0; i < 4; i++ {
		q := f.queries[i]
		if _, _, err := f.ix.Query(f.sets[q.SID], q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, _, err := f.ix.Query(f.sets[q.SID], q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryScreened is BenchmarkQuerySteadyState with signature
// screening at the default margin, isolating the screening saving.
func BenchmarkQueryScreened(b *testing.B) {
	f := benchFixture(b, "steady", workload.Set1Params(2000), 500)
	opt := core.QueryOptions{Screen: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, _, err := f.ix.QueryWithOptions(f.sets[q.SID], q.Lo, q.Hi, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIQuery measures an end-to-end query through the public
// ssr API.
func BenchmarkPublicAPIQuery(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(1000))
	if err != nil {
		b.Fatal(err)
	}
	c := NewCollection()
	for _, s := range sets {
		c.AddIDs(s.Elems()...)
	}
	ix, err := Build(c, Options{Budget: 100, RecallTarget: 0.75, MinHashes: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.QuerySID(i%1000, 0.7, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinhashEstimate measures signature-agreement similarity
// estimation (k=100).
func BenchmarkMinhashEstimate(b *testing.B) {
	fam, err := minhash.NewFamily(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]set.Elem, 80)
	y := make([]set.Elem, 80)
	for i := range x {
		x[i] = set.Elem(i)
		y[i] = set.Elem(i + 20)
	}
	a, c := fam.Sign(set.New(x...)), fam.Sign(set.New(y...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minhash.Estimate(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashtableProbe measures one bucket probe in a loaded table.
func BenchmarkHashtableProbe(b *testing.B) {
	tab, err := hashtable.New(storage.NewPager(0), hashtable.Options{ExpectedEntries: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<16; i++ {
		tab.Insert(uint64(i%997), storage.SID(i))
	}
	var dst []storage.SID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tab.Probe(uint64(i%997), nil, dst[:0])
	}
}

// BenchmarkSelfJoin measures the filter-powered similarity self-join over
// 1000 sets at threshold 0.8.
func BenchmarkSelfJoin(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := join.SelfJoin(sets, join.Options{Threshold: 0.8, Tables: 16, MinHashes: 64, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactJoin is the quadratic comparator for BenchmarkSelfJoin.
func BenchmarkExactJoin(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = join.Exact(sets, 0.8)
	}
}

// BenchmarkClusterLeaders measures leader clustering over the benchmark
// fixture.
func BenchmarkClusterLeaders(b *testing.B) {
	f := benchFixture(b, "cluster", workload.Set1Params(1000), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Leaders(engine.Wrap(f.ix), f.sets, cluster.Options{Lo: 0.5, Hi: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSave measures serializing the benchmark fixture.
func BenchmarkSnapshotSave(b *testing.B) {
	f := benchFixture(b, "snap", workload.Set1Params(1000), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := f.ix.Save(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkSnapshotLoad measures the deterministic rebuild from a snapshot
// (signatures cached, signing skipped).
func BenchmarkSnapshotLoad(b *testing.B) {
	f := benchFixture(b, "snapload", workload.Set1Params(1000), 100)
	var buf bytes.Buffer
	if err := f.ix.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Load(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopK measures nearest-neighbour retrieval.
func BenchmarkTopK(b *testing.B) {
	f := benchFixture(b, "topk", workload.Set1Params(1000), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.ix.TopK(f.sets[i%len(f.sets)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleDistribution measures the Lemma 1 one-pass pair sampler.
func BenchmarkSampleDistribution(b *testing.B) {
	sets, err := workload.Generate(workload.Set1Params(2000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simdist.SamplePairs(sets, 20000, 0, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

package ssr

import (
	"fmt"
	"testing"
)

// bookstore builds a small collection with known similarity structure.
func bookstore() *Collection {
	c := NewCollection()
	c.Add("dune", "foundation", "hyperion", "neuromancer") // 0
	c.Add("dune", "foundation", "hyperion", "snowcrash")   // 1: sim 3/5 with 0
	c.Add("dune", "foundation", "hyperion", "neuromancer") // 2: duplicate of 0
	c.Add("cookbook", "gardening", "carpentry")            // 3: disjoint
	c.Add("dune", "cookbook")                              // 4
	for i := 0; i < 60; i++ {
		c.Add(fmt.Sprintf("filler-%d-a", i), fmt.Sprintf("filler-%d-b", i))
	}
	return c
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{Budget: 10}); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := Build(NewCollection(), Options{Budget: 10}); err == nil {
		t.Error("empty collection accepted")
	}
	c := bookstore()
	if _, err := Build(c, Options{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestQueryFindsDuplicates(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 24, RecallTarget: 0.9, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	matches, stats, err := ix.Query([]string{"dune", "foundation", "hyperion", "neuromancer"}, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, m := range matches {
		found[m.SID] = true
		if m.Similarity != 1 {
			t.Errorf("match %d similarity %g, want 1", m.SID, m.Similarity)
		}
	}
	if !found[0] || !found[2] {
		t.Errorf("duplicates not retrieved: %v", matches)
	}
	if found[3] {
		t.Error("disjoint set retrieved at 0.9")
	}
	if stats.Results != len(matches) {
		t.Errorf("stats.Results = %d, matches = %d", stats.Results, len(matches))
	}
}

func TestQuerySID(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 24, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.QuerySID(0, 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	self := false
	for _, m := range matches {
		if m.SID == 0 {
			self = true
		}
	}
	if !self {
		t.Error("QuerySID did not retrieve the query set itself")
	}
	if _, _, err := ix.QuerySID(-1, 0, 1); err == nil {
		t.Error("negative sid accepted")
	}
	if _, _, err := ix.QuerySID(10000, 0, 1); err == nil {
		t.Error("out-of-range sid accepted")
	}
}

func TestQueryIDs(t *testing.T) {
	c := NewCollection()
	for i := 0; i < 50; i++ {
		c.AddIDs(uint64(i*100), uint64(i*100+1), uint64(i*100+2))
	}
	ix, err := Build(c, Options{Budget: 16, MinHashes: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.QueryIDs([]uint64{0, 1, 2}, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].SID != 0 {
		t.Errorf("QueryIDs = %v", matches)
	}
}

func TestQueryRangeValidation(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 16, MinHashes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]float64{{-0.1, 0.5}, {0.5, 1.1}, {0.8, 0.2}} {
		if _, _, err := ix.Query([]string{"x"}, r[0], r[1]); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestQueryUnknownElements(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 16, MinHashes: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A query of entirely unseen elements matches nothing at high sim.
	matches, _, err := ix.Query([]string{"totally", "unknown", "things"}, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("unknown-element query returned %v", matches)
	}
}

func TestAdd(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 24, MinHashes: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sid, err := ix.Add("dune", "foundation", "hyperion", "neuromancer")
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.QuerySID(0, 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SID == sid {
			found = true
		}
	}
	if !found {
		t.Error("dynamically added duplicate not retrieved")
	}
}

func TestPlanSummary(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, MinHashes: 48, RecallTarget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	p := ix.Plan()
	if len(p.Cuts) == 0 {
		t.Error("no cuts in plan")
	}
	if len(p.FilterIndexes) < 2 {
		t.Errorf("only %d filter indexes", len(p.FilterIndexes))
	}
	tables := 0
	sfi, dfi := 0, 0
	for _, fi := range p.FilterIndexes {
		tables += fi.Tables
		switch fi.Kind {
		case "SFI":
			sfi++
		case "DFI":
			dfi++
		default:
			t.Errorf("unknown kind %q", fi.Kind)
		}
		if fi.SampledBits < 1 {
			t.Errorf("fi at %g has r=%d", fi.Point, fi.SampledBits)
		}
	}
	if tables != 24 {
		t.Errorf("allocated %d tables, budget 24", tables)
	}
	if sfi == 0 || dfi == 0 {
		t.Errorf("plan lacks a kind: %d SFIs, %d DFIs", sfi, dfi)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		t.Errorf("delta = %g", p.Delta)
	}
}

func TestDistribution(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 16, MinHashes: 32})
	if err != nil {
		t.Fatal(err)
	}
	d := ix.Distribution()
	if len(d) == 0 {
		t.Fatal("empty distribution")
	}
	sum := 0.0
	for _, v := range d {
		if v < 0 {
			t.Fatal("negative mass")
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("distribution sums to %g", sum)
	}
}

func TestCollectionGet(t *testing.T) {
	c := NewCollection()
	c.Add("b", "a")
	names, err := c.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Get = %v", names)
	}
	if _, err := c.Get(5); err == nil {
		t.Error("out-of-range Get succeeded")
	}
}

func TestEstimateDistribution(t *testing.T) {
	c := bookstore()
	d, err := EstimateDistribution(c, 20, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("estimate sums to %g", sum)
	}
	if _, err := EstimateDistribution(NewCollection(), 10, 10, 1); err == nil {
		t.Error("empty collection accepted")
	}
}

func TestStatsIOAccounting(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, MinHashes: 48})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := ix.QuerySID(0, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RandomPageReads == 0 {
		t.Error("no random page reads recorded")
	}
	if stats.SimulatedIOTime <= 0 {
		t.Error("no simulated I/O time")
	}
}

func TestRemove(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 24, MinHashes: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Set 2 duplicates set 0; after removing it, a high-sim query from
	// set 0 must no longer return it.
	if err := ix.Remove(2); err != nil {
		t.Fatalf("remove: %v", err)
	}
	matches, _, err := ix.QuerySID(0, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.SID == 2 {
			t.Error("removed set still returned")
		}
	}
	if err := ix.Remove(2); err == nil {
		t.Error("double remove accepted")
	}
	if err := ix.Remove(-1); err == nil {
		t.Error("negative sid accepted")
	}
}

func TestQueryAutoPublic(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	matches, info, stats, err := ix.QueryAuto([]string{"dune", "foundation", "hyperion", "neuromancer"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != "index" && info.Path != "scan" {
		t.Errorf("path = %q", info.Path)
	}
	if stats.Results != len(matches) {
		t.Errorf("stats.Results = %d vs %d matches", stats.Results, len(matches))
	}
	if _, _, _, err := ix.QueryAuto([]string{"x"}, 0.9, 0.1); err == nil {
		t.Error("inverted range accepted")
	}
	if est, err := ix.EstimateAnswerSize(0, 1); err != nil || est <= 0 {
		t.Errorf("EstimateAnswerSize = %g, %v", est, err)
	}
}

package ssr

// Primary/follower replication plumbing. A durable index exposes a
// ReplicationSource: offset-addressable frame reads over each shard's
// generation chain, sealed checkpoints as shippable artifacts, change
// notification, and a settled-sid watermark. A follower opens the same
// durable layout with OpenReplica and mirrors the primary byte for byte:
// streamed records re-append through the identical canonical frame
// encoding, so the follower's local chain — and therefore its Save
// bytes — match the primary's for any sequential history, with exactly
// the guarantee crash recovery already gives. The HTTP transport and the
// follower driver live in internal/replica; this file is the index-side
// contract they build on.
//
// Why a watermark exists: the only cross-shard ordering that Save bytes
// depend on is dictionary intern order, and recovery normalizes it by
// replaying buffered shard tails as a k-way merge in ascending global
// sid. A live stream cannot wait for "all tails" — so the primary
// periodically publishes the frontier below which every allocated sid
// has either been logged or abandoned as a hole. A follower that has
// received everything the watermark covers can merge its per-shard
// queues below that frontier in sid order and land on exactly the state
// recovery would have produced.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/recovery"
	"repro/internal/wal"
)

// ErrReplicaReadOnly reports a mutation attempted on a follower index.
// Writes go to the primary; the follower's state changes only through
// the replication stream.
var ErrReplicaReadOnly = errors.New("ssr: index is a replication follower (read-only; write to the primary)")

// ErrCompactedSegment reports a resume position whose log segment the
// primary has compacted away. The follower cannot tail from there; it
// must re-bootstrap from the newest shipped checkpoint.
var ErrCompactedSegment = errors.New("ssr: log segment compacted away (re-bootstrap from the newest checkpoint)")

// WALPosition addresses a frame boundary in one shard's generation
// chain: byte Offset within log segment wal-<Generation>. It is the
// resume token of the replication stream — every position a follower
// ever holds lies on a frame boundary, so resuming from it can neither
// split nor duplicate a record.
type WALPosition struct {
	Generation uint64 `json:"generation"`
	Offset     int64  `json:"offset"`
}

// Before reports whether p addresses an earlier byte than q.
func (p WALPosition) Before(q WALPosition) bool {
	return p.Generation < q.Generation || (p.Generation == q.Generation && p.Offset < q.Offset)
}

func (p WALPosition) String() string {
	return fmt.Sprintf("%d:%d", p.Generation, p.Offset)
}

// ReplicationWatermark is one snapshot of the primary's settled
// frontier. Every insert with sid < SettledSID has either been appended
// to its owning shard's log at a position covered by Ends, or failed
// before logging and will never appear (a hole — recovery produces those
// too). A follower holding all bytes up to Ends can therefore merge its
// buffered records with sid < SettledSID in ascending sid order without
// waiting for anything else.
type ReplicationWatermark struct {
	SettledSID     uint32        `json:"settled_sid"`
	Ends           []WALPosition `json:"ends"`
	PlanGeneration uint64        `json:"plan_generation"`
}

// replTracker tracks in-flight sid reservations on the primary so the
// watermark never runs ahead of an insert that is reserved but not yet
// logged. Entries are registered before the engine reservation happens
// and removed once the record is durably appended (or the insert
// abandoned), so the floor over live entries — each bounded below by the
// allocation frontier read before its reservation — is a sound settled
// frontier.
type replTracker struct {
	mu      sync.Mutex
	nextTok uint64
	pending map[uint64]*replPending
}

type replPending struct {
	lb       uint32 // allocation frontier observed before the reservation
	g        uint32 // the reserved sid, once known
	assigned bool
}

// begin registers an in-flight insert. lb must be the engine's
// allocation frontier read by the caller BEFORE it reserves a sid, so
// the eventual sid is ≥ lb.
func (t *replTracker) begin(lb uint32) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTok++
	tok := t.nextTok
	if t.pending == nil {
		t.pending = make(map[uint64]*replPending)
	}
	t.pending[tok] = &replPending{lb: lb}
	return tok
}

// assign records the sid the reservation produced.
func (t *replTracker) assign(tok uint64, g uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.pending[tok]; p != nil {
		p.g, p.assigned = g, true
	}
}

// settle retires the entry: the record is durably logged, or the insert
// failed and its sid (if any) is a permanent hole.
func (t *replTracker) settle(tok uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.pending, tok)
}

// floor returns the settled frontier: the minimum over in-flight
// entries, capped by n — the allocation frontier the caller read BEFORE
// calling (that read order is what makes an empty scan sound: any
// reservation n covers was registered here first).
func (t *replTracker) floor(n uint32) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := n
	for _, p := range t.pending {
		b := p.lb
		if p.assigned {
			b = p.g
		}
		if b < w {
			w = b
		}
	}
	return w
}

// ReplicationSource is the primary-side handle internal/replica serves
// from. Obtain it with Index.ReplicationSource; all methods are safe for
// concurrent use.
type ReplicationSource struct {
	ix   *Index
	mu   sync.Mutex
	subs map[int]chan struct{}
	next int
}

// ReplicationSource returns the index's replication handle, creating it
// (and installing per-shard log notifiers) on first call. It errors on a
// non-durable index — there is no log to stream — and on a follower:
// chain replication is not supported, every follower tails the primary.
func (ix *Index) ReplicationSource() (*ReplicationSource, error) {
	if ix.dur == nil {
		return nil, fmt.Errorf("ssr: index is not durable (nothing to replicate)")
	}
	if ix.replica {
		return nil, fmt.Errorf("ssr: a follower cannot serve replication (tail the primary instead)")
	}
	d := ix.dur
	d.srcOnce.Do(func() {
		src := &ReplicationSource{ix: ix, subs: make(map[int]chan struct{})}
		for _, sh := range d.shards {
			sh.log.SetNotify(src.wake)
		}
		d.src = src
	})
	return d.src, nil
}

// Shards returns the number of replicated log lanes.
func (s *ReplicationSource) Shards() int { return len(s.ix.dur.shards) }

// PlanGeneration returns the live plan generation (0 = build plan). A
// follower whose generation differs must re-bootstrap: plans are derived
// from capture cuts a stream cannot reproduce.
func (s *ReplicationSource) PlanGeneration() uint64 { return s.ix.inner.PlanGeneration() }

// RawManifest returns the MANIFEST bytes of a sharded layout, or nil for
// the single-shard flat layout. Followers copy it verbatim so the mirror
// commits with the identical topology file.
func (s *ReplicationSource) RawManifest() ([]byte, error) {
	raw, err := readRawManifest(s.ix.dur.dir)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// Position returns shard si's live segment generation and logical size.
func (s *ReplicationSource) Position(si int) (WALPosition, error) {
	if si < 0 || si >= len(s.ix.dur.shards) {
		return WALPosition{}, fmt.Errorf("ssr: shard %d out of range [0, %d)", si, len(s.ix.dur.shards))
	}
	gen, off := s.ix.dur.shards[si].log.Position()
	return WALPosition{Generation: gen, Offset: off}, nil
}

// Watermark snapshots the settled frontier. The read order — frontier
// first, per-shard ends after — is load-bearing: any record settled
// before the frontier scan was appended before its shard's end was read,
// so everything below SettledSID lies within Ends.
func (s *ReplicationSource) Watermark() ReplicationWatermark {
	ix := s.ix
	n := uint32(ix.inner.NumAllocated())
	w := ix.dur.repl.floor(n)
	ends := make([]WALPosition, len(ix.dur.shards))
	for si, sh := range ix.dur.shards {
		gen, off := sh.log.Position()
		ends[si] = WALPosition{Generation: gen, Offset: off}
	}
	return ReplicationWatermark{SettledSID: w, Ends: ends, PlanGeneration: ix.inner.PlanGeneration()}
}

// ReadFrames reads whole verified frames of shard si's chain from pos:
// raw log bytes, so a follower appending them (or re-encoding the
// decoded records, which is byte-identical) reproduces the primary's
// file. next is the first position not returned. sealed reports that pos
// pointed into a finished older segment and the read exhausted it — next
// then addresses the start of the following generation. Reading at the
// live end returns no data and sealed false; wait on Subscribe and
// retry. A position inside a compacted-away generation returns
// ErrCompactedSegment.
func (s *ReplicationSource) ReadFrames(si int, pos WALPosition, maxBytes int) (data []byte, next WALPosition, sealed bool, err error) {
	if si < 0 || si >= len(s.ix.dur.shards) {
		return nil, pos, false, fmt.Errorf("ssr: shard %d out of range [0, %d)", si, len(s.ix.dur.shards))
	}
	sh := s.ix.dur.shards[si]
	for {
		liveGen, liveOff := sh.log.Position()
		if pos.Generation > liveGen {
			return nil, pos, false, fmt.Errorf("ssr: shard %d position %s is beyond the live generation %d", si, pos, liveGen)
		}
		path := sh.log.WALFilePath(pos.Generation)
		if pos.Generation == liveGen {
			if pos.Offset > liveOff {
				return nil, pos, false, fmt.Errorf("ssr: shard %d position %s is beyond the live segment end %d", si, pos, liveOff)
			}
			data, nextOff, err := wal.ReadFramesFile(path, pos.Offset, liveOff, maxBytes)
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					// Rotation raced our snapshot; the segment is sealed now.
					continue
				}
				return nil, pos, false, err
			}
			return data, WALPosition{Generation: pos.Generation, Offset: nextOff}, false, nil
		}
		// An older generation: complete on disk (rotation synced it before
		// the next generation was born), so a read that comes back short of
		// maxBytes has hit its true end.
		data, nextOff, err := wal.ReadFramesFile(path, pos.Offset, -1, maxBytes)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, pos, false, fmt.Errorf("%w: shard %d generation %d", ErrCompactedSegment, si, pos.Generation)
			}
			return nil, pos, false, err
		}
		if len(data) >= maxBytes {
			return data, WALPosition{Generation: pos.Generation, Offset: nextOff}, false, nil
		}
		return data, WALPosition{Generation: pos.Generation + 1}, true, nil
	}
}

// NewestCheckpoint returns the newest generation of shard si whose
// checkpoint seal verifies — the bootstrap artifact a follower fetches.
func (s *ReplicationSource) NewestCheckpoint(si int) (uint64, error) {
	if si < 0 || si >= len(s.ix.dur.shards) {
		return 0, fmt.Errorf("ssr: shard %d out of range [0, %d)", si, len(s.ix.dur.shards))
	}
	gen, found, err := recovery.NewestCheckpoint(s.ix.dur.shards[si].log.Dir())
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("ssr: shard %d holds no intact checkpoint", si)
	}
	return gen, nil
}

// OpenCheckpoint verifies and opens shard si's checkpoint of generation
// gen for shipping, returning the reader and the exact byte size.
func (s *ReplicationSource) OpenCheckpoint(si int, gen uint64) (io.ReadCloser, int64, error) {
	if si < 0 || si >= len(s.ix.dur.shards) {
		return nil, 0, fmt.Errorf("ssr: shard %d out of range [0, %d)", si, len(s.ix.dur.shards))
	}
	path := s.ix.dur.shards[si].log.CheckpointFilePath(gen)
	if err := recovery.VerifyCheckpoint(path); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, fmt.Errorf("%w: shard %d checkpoint %d", ErrCompactedSegment, si, gen)
		}
		return nil, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, errors.Join(err, f.Close())
	}
	return f, fi.Size(), nil
}

// Subscribe returns a channel that receives a (coalesced) signal after
// every append or rotation on any shard, and a cancel function. The
// channel has capacity one: a signal may stand for many changes.
func (s *ReplicationSource) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	s.mu.Lock()
	s.next++
	id := s.next
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
	return ch, cancel
}

// wake is the per-shard log notifier. It runs under the recovery log's
// internal mutex, so it only performs non-blocking sends.
func (s *ReplicationSource) wake() {
	s.mu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// --- follower side ---

// OpenReplica opens a durability directory as a replication follower.
// The index rejects external mutations (ErrReplicaReadOnly) and never
// rotates its logs on its own — automatic checkpoints are disabled and
// Close skips the final one — because its generation chain must stay in
// lockstep with the primary's: rotations happen only through
// ReplicaRotate when the stream says so. Local crash recovery is the
// ordinary OpenDurable path, and ReplicaPositions afterwards are the
// resume tokens to tail from.
func OpenReplica(dir string, opt DurableOptions) (*Index, error) {
	opt.CheckpointBytes = -1
	ix, err := OpenDurable(dir, opt)
	if err != nil {
		return nil, err
	}
	ix.replica = true
	return ix, nil
}

// IsReplica reports whether the index is a replication follower.
func (ix *Index) IsReplica() bool { return ix.replica }

// ReplicaPositions returns each shard's local chain position — the
// resume tokens a follower presents when (re)connecting.
func (ix *Index) ReplicaPositions() ([]WALPosition, error) {
	if ix.dur == nil {
		return nil, fmt.Errorf("ssr: index is not durable")
	}
	out := make([]WALPosition, len(ix.dur.shards))
	for si, sh := range ix.dur.shards {
		gen, off := sh.log.Position()
		out[si] = WALPosition{Generation: gen, Offset: off}
	}
	return out, nil
}

// ReplicaApply applies one streamed record to shard si and mirrors it
// into the local log lane, under the same apply-then-log lane mutex the
// primary used — so per-shard local log order equals per-shard apply
// order, and the re-encoded frame is byte-identical to the primary's.
// The caller (internal/replica's follower driver) is responsible for
// cross-shard sid ordering via the watermark; OpCheckpoint header frames
// are handled by ReplicaRotate, not here.
func (ix *Index) ReplicaApply(si int, rec wal.Record) error {
	d, sh, err := ix.replicaLane(si)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d.closed.Load() {
		return errClosed()
	}
	switch rec.Op {
	case wal.OpInsert:
		if len(d.shards) == 1 {
			sid, err := ix.add(rec.Elements)
			if err != nil {
				return err
			}
			if uint32(sid) != rec.SID {
				return fmt.Errorf("ssr: replicated insert landed on sid %d, stream carried %d", sid, rec.SID)
			}
		} else {
			s := ix.coll.intern(rec.Elements)
			if err := ix.inner.ApplyRecovered(si, rec.SID, s); err != nil {
				return err
			}
			ix.coll.record(int(rec.SID), s)
		}
	case wal.OpDelete:
		if err := ix.remove(int(rec.SID)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ssr: cannot replicate %s record", rec.Op)
	}
	if err := sh.log.Append(rec); err != nil {
		return fmt.Errorf("ssr: replicated record applied but not logged: %w", err)
	}
	return nil
}

// ReplicaRotate rotates shard si's local chain to generation nextGen,
// mirroring a primary-side checkpoint rotation. The local checkpoint is
// the follower's OWN snapshot (its recovery base); the fresh segment's
// header record is written locally and is byte-identical to the one the
// primary's stream carries, which the driver therefore skips.
func (ix *Index) ReplicaRotate(si int, nextGen uint64) error {
	d, sh, err := ix.replicaLane(si)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d.closed.Load() {
		return errClosed()
	}
	if got := sh.log.Seq(); got+1 != nextGen {
		return fmt.Errorf("ssr: shard %d rotation to generation %d from local generation %d (stream and chain disagree)", si, nextGen, got)
	}
	return sh.log.Checkpoint()
}

func (ix *Index) replicaLane(si int) (*durable, *durableShard, error) {
	if ix.dur == nil {
		return nil, nil, fmt.Errorf("ssr: index is not durable")
	}
	if !ix.replica {
		return nil, nil, fmt.Errorf("ssr: index is not a follower (only OpenReplica indexes accept replicated records)")
	}
	d := ix.dur
	if d.closed.Load() {
		return nil, nil, errClosed()
	}
	if si < 0 || si >= len(d.shards) {
		return nil, nil, fmt.Errorf("ssr: shard %d out of range [0, %d)", si, len(d.shards))
	}
	return d, d.shards[si], nil
}

// --- bootstrap plumbing (module-internal, like Index.Internal) ---

// DurableShardDir names shard si's subdirectory of a sharded durability
// directory. Exposed for internal/replica's bootstrap; not a stable API.
func DurableShardDir(dir string, si int) string { return shardDirPath(dir, si) }

// ImportShardCheckpoint writes a checkpoint fetched from a primary into
// shard si's chain at generation gen, verifying the seal before
// publishing. si is ignored (the flat layout) when shards is 1. Exposed
// for internal/replica's bootstrap; not a stable API.
func ImportShardCheckpoint(dir string, shards, si int, gen uint64, r io.Reader) error {
	target := dir
	if shards > 1 {
		target = shardDirPath(dir, si)
	}
	return recovery.ImportCheckpoint(target, gen, r)
}

// CommitRawManifest validates and atomically publishes raw MANIFEST
// bytes fetched from a primary — the LAST bootstrap step, exactly as in
// CreateDurable. Exposed for internal/replica's bootstrap; not a stable
// API.
func CommitRawManifest(dir string, raw []byte) error {
	if _, err := parseManifest(raw); err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("ssr: writing fetched manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ssr: committing fetched manifest: %w", err)
	}
	return nil
}

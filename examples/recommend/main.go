// Recommend: the collaborative-filtering scenario from the paper's
// introduction, at a realistic scale. A synthetic store population is
// generated with topical buying clusters; for a chosen user the program
// finds highly similar users and derives item recommendations from what
// those neighbours bought that the user has not, then runs the
// sale-targeting band query (owners of 40-70% of a bundle).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	ssr "repro"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 5000, "number of users")
		budget = flag.Int("budget", 200, "hash-table budget")
		user   = flag.Int("user", 4, "user (sid) to recommend for")
	)
	flag.Parse()

	// Generate a population with topical structure: users in the same
	// cluster buy overlapping item sets, exactly the regime where
	// similarity retrieval powers recommendations.
	sets, err := workload.Generate(workload.Set1Params(*n))
	if err != nil {
		log.Fatal(err)
	}
	c := ssr.NewCollection()
	for _, s := range sets {
		c.AddIDs(s.Elems()...)
	}

	ix, err := ssr.Build(c, ssr.Options{Budget: *budget, RecallTarget: 0.85, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d users; optimizer placed cuts at %v\n\n", c.Len(), ix.Plan().Cuts)

	// 1. Similar-user retrieval: the paper's Figure 2 query.
	neighbours, stats, err := ix.QuerySID(*user, 0.5, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users similar to user %d (0.5 <= sim < 1): %d found (from %d candidates)\n",
		*user, len(neighbours), stats.Candidates)
	limit := 8
	for i, m := range neighbours {
		if i >= limit {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  user %-6d similarity %.3f\n", m.SID, m.Similarity)
	}

	// 2. Derive recommendations: items the neighbours bought that the
	// target user has not, weighted by neighbour similarity.
	owned := make(map[uint64]bool, sets[*user].Len())
	for _, e := range sets[*user].Elems() {
		owned[e] = true
	}
	scores := make(map[uint64]float64)
	for _, m := range neighbours {
		for _, e := range sets[m.SID].Elems() {
			if !owned[e] {
				scores[e] += m.Similarity
			}
		}
	}
	type rec struct {
		item  uint64
		score float64
	}
	recs := make([]rec, 0, len(scores))
	for item, score := range scores {
		recs = append(recs, rec{item, score})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].score != recs[j].score {
			return recs[i].score > recs[j].score
		}
		return recs[i].item < recs[j].item
	})
	fmt.Printf("\ntop recommendations for user %d:\n", *user)
	for i, r := range recs {
		if i >= 5 {
			break
		}
		fmt.Printf("  item %-8d score %.2f\n", r.item, r.score)
	}

	// 3. Sale targeting: a bundle goes on sale; email users who own
	// 40-70% of it (paper: owners of most of the bundle are poor
	// targets — they already have the books).
	bundle := sets[*user].Elems()
	if len(bundle) > 12 {
		bundle = bundle[:12]
	}
	targets, _, err := ix.QueryIDs(bundle, 0.4, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsale-targeting band (40-70%% of a %d-item bundle): %d users\n", len(bundle), len(targets))
}

// Logparse: end-to-end from raw HTTP access logs — the paper's own data
// pipeline. A synthetic Common Log Format file is emitted (standing in for
// the Olympics/corporate logs), parsed into per-client page sets, indexed,
// and queried, with the cost-based router deciding between the filter
// indices and a sequential scan per query.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	ssr "repro"
	"repro/internal/weblog"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 1500, "number of synthetic clients")
		budget = flag.Int("budget", 120, "hash-table budget")
	)
	flag.Parse()

	// 1. Fabricate a raw access log: generate visitor page-sets, then emit
	// them as Common Log Format lines.
	sets, err := workload.Generate(workload.Set1Params(*n))
	if err != nil {
		log.Fatal(err)
	}
	clients := make([]string, len(sets))
	pages := make([][]string, len(sets))
	for i, s := range sets {
		clients[i] = fmt.Sprintf("10.%d.%d.%d", i>>16&255, i>>8&255, i&255)
		list := make([]string, 0, s.Len())
		for _, e := range s.Elems() {
			list = append(list, fmt.Sprintf("/page/%d", e))
		}
		pages[i] = list
	}
	var raw bytes.Buffer
	if err := weblog.EmitSynthetic(&raw, clients, pages); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw log: %d bytes, %d clients\n", raw.Len(), len(clients))

	// 2. Parse it back the way the paper did: one set of distinct request
	// paths per client IP.
	coll, parsedClients, err := ssr.FromAccessLog(&raw, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d client page-sets\n", coll.Len())

	// 3. Index and query with automatic access-path routing.
	ix, err := ssr.Build(coll, ssr.Options{
		Budget: *budget, RecallTarget: 0.8, Seed: 7,
		// Account pages at their raw log-string size so the router's
		// scan-vs-index economics match the original medium.
		PayloadBytesPerElement: 80,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range [][2]float64{{0.9, 1.0}, {0.4, 0.7}, {0.0, 1.0}} {
		query := pages[3]
		matches, route, _, err := ix.QueryAuto(query, r[0], r[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("range [%.1f, %.1f]: %4d matches via %-5s (predicted %5.0f candidates; index %v vs scan %v)\n",
			r[0], r[1], len(matches), route.Path, route.PredictedCandidates,
			route.IndexCost.Round(1e6), route.ScanCost.Round(1e6))
	}
	// Who is client 3's nearest neighbour?
	top, _, err := ix.TopK(pages[3], 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearest neighbours of client", parsedClients[3])
	for _, m := range top {
		fmt.Printf("  %s at similarity %.3f\n", parsedClients[m.SID], m.Similarity)
	}
}

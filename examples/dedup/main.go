// Dedup: near-duplicate detection via the set-similarity self-join — the
// mirrored-web-pages use case from the paper's introduction ("identify
// clusters of web pages which are similar but not copies of each other"
// and mirror identification à la Broder et al.). The program generates a
// collection with injected near-copies, joins it at a high threshold, and
// reports duplicate groups, comparing the filter-powered join's work
// against the quadratic brute force.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/join"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 3000, "number of sets")
		threshold = flag.Float64("t", 0.85, "duplicate similarity threshold")
	)
	flag.Parse()

	params := workload.Set1Params(*n)
	params.MirrorProb = 0.2 // plenty of near-copies to find
	sets, err := workload.Generate(params)
	if err != nil {
		log.Fatal(err)
	}

	pairs, stats, err := join.SelfJoin(sets, join.Options{
		Threshold: *threshold,
		Tables:    24,
		MinHashes: 96,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-join at threshold %.2f over %d sets:\n", *threshold, len(sets))
	fmt.Printf("  %d candidate pairs verified (brute force would verify %d)\n",
		stats.CandidatePairs, len(sets)*(len(sets)-1)/2)
	fmt.Printf("  %d duplicate pairs found\n\n", stats.Results)

	// Union the pairs into duplicate groups.
	parent := make([]storage.SID, len(sets))
	for i := range parent {
		parent[i] = storage.SID(i)
	}
	var find func(storage.SID) storage.SID
	find = func(x storage.SID) storage.SID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			parent[rb] = ra
		}
	}
	groups := make(map[storage.SID][]storage.SID)
	for i := range parent {
		r := find(storage.SID(i))
		groups[r] = append(groups[r], storage.SID(i))
	}
	sizes := map[int]int{}
	largest := 0
	for _, members := range groups {
		if len(members) < 2 {
			continue // singleton: not a duplicate group
		}
		sizes[len(members)]++
		if len(members) > largest {
			largest = len(members)
		}
	}
	fmt.Printf("duplicate groups by size:\n")
	for size := 2; size <= largest; size++ {
		if sizes[size] > 0 {
			fmt.Printf("  %3d groups of size %d\n", sizes[size], size)
		}
	}
}

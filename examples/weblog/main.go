// Weblog: the "what's related" scenario from the paper's introduction.
// Treating each visitor's page set as a document, the program clusters a
// synthetic web log by repeatedly picking an unclustered visitor and
// pulling in everyone similar-but-not-identical to it (the paper's
// suggested range query for finding related-but-not-copied pages), and
// separately flags exact-duplicate visitors (mirrors/proxies).
package main

import (
	"flag"
	"fmt"
	"log"

	ssr "repro"
	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 4000, "number of visitor sets")
		budget = flag.Int("budget", 200, "hash-table budget")
	)
	flag.Parse()

	sets, err := workload.Generate(workload.Set2Params(*n))
	if err != nil {
		log.Fatal(err)
	}
	c := ssr.NewCollection()
	for _, s := range sets {
		c.AddIDs(s.Elems()...)
	}
	ix, err := ssr.Build(c, ssr.Options{Budget: *budget, RecallTarget: 0.85, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d visitor page-sets\n", c.Len())

	// Mirror detection: near-identical visitors (NAT pools, re-dials,
	// mirrored crawls) — similarity above 0.95.
	mirrors := 0
	checked := 200
	for sid := 0; sid < checked; sid++ {
		matches, _, err := ix.QuerySID(sid, 0.95, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		// Exclude self (similarity 1 with itself).
		for _, m := range matches {
			if m.SID != sid {
				mirrors++
				break
			}
		}
	}
	fmt.Printf("mirror scan: %d of the first %d visitors have a >= 0.95 twin\n", mirrors, checked)

	// Related-but-not-copies clustering: leader clustering with the
	// paper's similar-but-distinct band, via the cluster package.
	const lo, hi = 0.5, 0.95
	res, err := cluster.Leaders(ix.Internal(), sets, cluster.Options{
		Lo: lo, Hi: hi, MaxClusters: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	clustered := 0
	for i, cl := range res.Clusters {
		clustered += len(cl.Members)
		fmt.Printf("cluster %2d: leader %-6d members %d\n", i, cl.Leader, len(cl.Members))
	}
	fmt.Printf("%d visitors grouped into %d related-content clusters (band [%.2f, %.2f]) using %d index queries\n",
		clustered, len(res.Clusters), lo, hi, res.Queries)
}

// Tuning: explores the paper's central accuracy/space knob. The same
// collection is indexed under increasing hash-table budgets and recall
// targets; for each configuration the program reports the optimizer's
// layout (number of filter indexes, their thresholds) and the measured
// recall/precision of a fixed query workload — the trade-off surface a
// deployment would navigate before committing space.
package main

import (
	"flag"
	"fmt"
	"log"

	ssr "repro"
	"repro/internal/set"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 3000, "collection size")
		queries = flag.Int("queries", 120, "queries per configuration")
	)
	flag.Parse()

	sets, err := workload.Generate(workload.Set1Params(*n))
	if err != nil {
		log.Fatal(err)
	}
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: *queries, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %7s %5s %22s %9s %10s %10s\n",
		"budget", "target", "FIs", "cuts", "recall", "precision", "cand/query")
	for _, budget := range []int{50, 200, 800} {
		for _, target := range []float64{0.9, 0.75, 0.6} {
			c := ssr.NewCollection()
			for _, s := range sets {
				c.AddIDs(s.Elems()...)
			}
			ix, err := ssr.Build(c, ssr.Options{Budget: budget, RecallTarget: target, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			recall, precision, cand := measure(ix, sets, qs)
			plan := ix.Plan()
			fmt.Printf("%8d %7.2f %5d %22s %9.3f %10.3f %10.0f\n",
				budget, target, len(plan.FilterIndexes), fmtCuts(plan.Cuts), recall, precision, cand)
		}
	}
	fmt.Println("\nreading the table: more budget and a looser recall target let the")
	fmt.Println("optimizer afford more similarity intervals (more, finer cuts), which")
	fmt.Println("shrinks candidate sets (higher precision) at some cost in recall —")
	fmt.Println("the Lemma 3 / Lemma 5 tension Figure 4 resolves.")
}

func fmtCuts(cuts []float64) string {
	s := "["
	for i, c := range cuts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", c)
	}
	return s + "]"
}

// measure runs the workload against the index, computing recall against a
// brute-force ground truth and precision as results over fetched
// candidates.
func measure(ix *ssr.Index, sets []set.Set, qs []workload.Query) (recall, precision, cand float64) {
	var recSum, precSum, candSum float64
	counted := 0
	for _, q := range qs {
		matches, stats, err := ix.QueryIDs(sets[q.SID].Elems(), q.Lo, q.Hi)
		if err != nil {
			log.Fatal(err)
		}
		truth := 0
		for _, s := range sets {
			sim := sets[q.SID].Jaccard(s)
			if sim >= q.Lo && sim <= q.Hi {
				truth++
			}
		}
		candSum += float64(stats.Candidates)
		if truth > 0 {
			recSum += float64(len(matches)) / float64(truth)
			counted++
		}
		if stats.Candidates > 0 {
			precSum += float64(len(matches)) / float64(stats.Candidates)
		} else {
			precSum++
		}
	}
	if counted == 0 {
		counted = 1
	}
	return recSum / float64(counted), precSum / float64(len(qs)), candSum / float64(len(qs))
}

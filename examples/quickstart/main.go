// Quickstart: build a similar-set index over a handful of shopping baskets
// and run the three query shapes from the paper's introduction — highly
// similar, a mid-similarity band, and highly dissimilar.
package main

import (
	"fmt"
	"log"

	ssr "repro"
)

func main() {
	// 1. Collect sets. Elements are plain strings; the universe is never
	// declared up front.
	c := ssr.NewCollection()
	baskets := map[string][]string{
		"ada":   {"dune", "foundation", "hyperion", "neuromancer", "snow crash"},
		"brin":  {"dune", "foundation", "hyperion", "neuromancer", "excession"},
		"cho":   {"dune", "foundation", "ubik", "solaris", "roadside picnic"},
		"dia":   {"cookbook", "gardening", "woodworking", "knots"},
		"evan":  {"dune", "cookbook", "gardening"},
		"filip": {"dune", "foundation", "hyperion", "neuromancer", "snow crash"}, // same as ada
	}
	names := make([]string, 0, len(baskets))
	for name := range baskets {
		names = append(names, name)
	}
	// Insert in a stable order so sids are reproducible.
	for _, name := range []string{"ada", "brin", "cho", "dia", "evan", "filip"} {
		c.Add(baskets[name]...)
	}
	_ = names

	// Pad the collection so the optimizer has a real distribution to
	// work with (tiny collections are fine too, just less interesting).
	for i := 0; i < 200; i++ {
		c.Add(fmt.Sprintf("zine-%d", i), fmt.Sprintf("zine-%d", i+1), fmt.Sprintf("zine-%d", i+2))
	}

	// 2. Build. The only required knob is the space budget (hash tables);
	// the optimizer chooses the filter-index layout for the recall target.
	ix, err := ssr.Build(c, ssr.Options{Budget: 40, RecallTarget: 0.9, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	plan := ix.Plan()
	cuts := make([]string, len(plan.Cuts))
	for i, c := range plan.Cuts {
		cuts[i] = fmt.Sprintf("%.3f", c)
	}
	fmt.Printf("index built: %d filter indexes at cuts %v (delta %.3f)\n\n",
		len(plan.FilterIndexes), cuts, plan.Delta)

	// 3. Query: who bought books most similar to ada's basket?
	show := func(title string, matches []ssr.Match, stats ssr.Stats) {
		fmt.Printf("%s\n", title)
		for _, m := range matches {
			fmt.Printf("  set %-3d similarity %.2f\n", m.SID, m.Similarity)
		}
		fmt.Printf("  (%d candidates fetched, %d page reads, simulated I/O %v)\n\n",
			stats.Candidates, stats.RandomPageReads+stats.SequentialPageReads, stats.SimulatedIOTime)
	}

	matches, stats, err := ix.Query(baskets["ada"], 0.9, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	show("highly similar to ada (>= 0.9):", matches, stats)

	// The sale-targeting query from the paper's introduction: users who
	// own between 40% and 70% of a themed bundle.
	bundle := []string{"dune", "foundation", "hyperion", "ubik", "solaris"}
	matches, stats, err = ix.Query(bundle, 0.4, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	show("own 40-70% of the sci-fi bundle:", matches, stats)

	// Highly dissimilar profiles (served by the Dissimilarity Filter
	// Indices).
	matches, stats, err = ix.Query(baskets["ada"], 0.0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("highly dissimilar to ada (<= 0.1): %d sets\n", len(matches))
	fmt.Printf("  (%d candidates fetched)\n", stats.Candidates)
}

package ssr

import (
	"fmt"
	"testing"
)

// TestGoldenDeterminism pins end-to-end determinism: two indexes built
// from the same collection with the same options must choose identical
// plans and answer identical results for every query. This is the
// regression guard for seed plumbing across minhash, bit sampling,
// distribution sampling, and the optimizer.
func TestGoldenDeterminism(t *testing.T) {
	build := func() *Index {
		c := NewCollection()
		for i := 0; i < 150; i++ {
			c.Add(
				fmt.Sprintf("page-%d", i%40),
				fmt.Sprintf("page-%d", (i+1)%40),
				fmt.Sprintf("page-%d", (i*7)%40),
				fmt.Sprintf("user-%d-private", i),
			)
		}
		ix, err := Build(c, Options{Budget: 30, MinHashes: 48, Seed: 12345})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	a, b := build(), build()

	pa, pb := a.Plan(), b.Plan()
	if len(pa.Cuts) != len(pb.Cuts) {
		t.Fatalf("plans differ: %v vs %v", pa.Cuts, pb.Cuts)
	}
	for i := range pa.Cuts {
		if pa.Cuts[i] != pb.Cuts[i] {
			t.Fatalf("cut %d differs: %g vs %g", i, pa.Cuts[i], pb.Cuts[i])
		}
	}
	if len(pa.FilterIndexes) != len(pb.FilterIndexes) {
		t.Fatalf("FI counts differ")
	}
	for i := range pa.FilterIndexes {
		if pa.FilterIndexes[i] != pb.FilterIndexes[i] {
			t.Fatalf("FI %d differs: %+v vs %+v", i, pa.FilterIndexes[i], pb.FilterIndexes[i])
		}
	}

	for _, r := range [][2]float64{{0.9, 1}, {0.4, 0.7}, {0, 0.1}, {0, 1}} {
		for sid := 0; sid < 20; sid++ {
			ma, sa, err := a.QuerySID(sid, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			mb, sb, err := b.QuerySID(sid, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if len(ma) != len(mb) {
				t.Fatalf("sid %d range %v: %d vs %d results", sid, r, len(ma), len(mb))
			}
			for i := range ma {
				if ma[i] != mb[i] {
					t.Fatalf("sid %d range %v: result %d differs", sid, r, i)
				}
			}
			if sa.Candidates != sb.Candidates {
				t.Fatalf("sid %d range %v: candidates %d vs %d", sid, r, sa.Candidates, sb.Candidates)
			}
			if sa.RandomPageReads != sb.RandomPageReads || sa.SequentialPageReads != sb.SequentialPageReads {
				t.Fatalf("sid %d range %v: I/O accounting differs", sid, r)
			}
		}
	}
}

// TestGoldenKnownAnswers pins exact behaviour on a crafted collection where
// every answer is known by construction and must be found regardless of
// randomness (identical vectors always collide; the disjoint set can never
// verify into a positive range).
func TestGoldenKnownAnswers(t *testing.T) {
	c := NewCollection()
	c.Add("a", "b", "c", "d", "e") // 0
	c.Add("a", "b", "c", "d", "e") // 1 = dup of 0
	c.Add("a", "b", "c", "d", "e") // 2 = dup of 0
	c.Add("v", "w", "x", "y", "z") // 3 disjoint island
	c.Add("v", "w", "x", "y", "z") // 4 = dup of 3
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), fmt.Sprintf("n%d", i+2))
	}
	ix, err := Build(c, Options{Budget: 20, MinHashes: 64, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sid  int
		want map[int]bool
	}{
		{0, map[int]bool{0: true, 1: true, 2: true}},
		{1, map[int]bool{0: true, 1: true, 2: true}},
		{3, map[int]bool{3: true, 4: true}},
	} {
		matches, _, err := ix.QuerySID(tc.sid, 0.999, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != len(tc.want) {
			t.Fatalf("sid %d: got %v, want %v", tc.sid, matches, tc.want)
		}
		for _, m := range matches {
			if !tc.want[m.SID] {
				t.Fatalf("sid %d: unexpected match %d", tc.sid, m.SID)
			}
			if m.Similarity != 1 {
				t.Fatalf("sid %d: similarity %g", tc.sid, m.Similarity)
			}
		}
	}
}

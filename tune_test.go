package ssr

import (
	"fmt"
	"testing"
	"time"
)

// driftFlood inserts n near-duplicate sets — a high-similarity mode the
// bookstore build-time profile lacks, so the drift sketch must move.
func driftFlood(t *testing.T, ix *Index, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := ix.Add("dune", "foundation", "hyperion", "neuromancer", fmt.Sprintf("flood-%d", i%3)); err != nil {
			t.Fatalf("flood insert %d: %v", i, err)
		}
	}
}

// waitForGeneration polls until the plan generation reaches want.
func waitForGeneration(t *testing.T, ix *Index, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ix.TunerState().PlanGeneration >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := ix.TunerState()
	t.Fatalf("plan generation stuck at %d (want %d); drift %.3f, mutations %d, pairs %d",
		st.PlanGeneration, want, st.LastDrift, st.Mutations, st.SampledPairs)
}

// TestManualRetune drives the public Retune on a non-durable index and
// checks the generation and bookkeeping surfaces.
func TestManualRetune(t *testing.T) {
	ix, err := Build(bookstore(), durableBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	driftFlood(t, ix, 40)
	rep, err := ix.Retune()
	if err != nil {
		t.Fatalf("Retune: %v", err)
	}
	if !rep.Swapped || rep.Generation != 1 {
		t.Fatalf("Retune report %+v, want swapped generation 1", rep)
	}
	st := ix.TunerState()
	if st.Enabled || st.AutoTuning {
		t.Fatalf("tuner state %+v claims tracking without EnableAutoTune", st)
	}
	if st.PlanGeneration != 1 || st.Retunes != 1 || st.LastRetune.IsZero() {
		t.Fatalf("tuner state %+v, want generation 1 with one recorded retune", st)
	}
	_, qs, err := ix.Query([]string{"dune", "foundation"}, 0.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if qs.PlanGeneration != 1 {
		t.Fatalf("query stats report generation %d, want 1", qs.PlanGeneration)
	}
}

// TestAutoTuneLifecycle builds with Options.AutoTune, drifts the
// collection, and waits for the background loop to hot-swap — then
// checks Close stops the loop.
func TestAutoTuneLifecycle(t *testing.T) {
	opt := durableBuildOpts()
	opt.AutoTune = true
	opt.TunePolicy = TunePolicy{CheckEvery: 5 * time.Millisecond, MinMutations: 32, MinPairs: 16, Seed: 11}
	ix, err := Build(bookstore(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	st := ix.TunerState()
	if !st.Enabled || !st.AutoTuning {
		t.Fatalf("tuner state %+v, want enabled and auto-tuning", st)
	}
	if err := ix.EnableAutoTune(TunePolicy{}); err == nil {
		t.Fatal("second EnableAutoTune succeeded")
	}

	driftFlood(t, ix, 300)
	waitForGeneration(t, ix, 1)
	st = ix.TunerState()
	if st.Retunes < 1 || st.LastRetune.IsZero() {
		t.Fatalf("tuner state %+v records no retune after a swap", st)
	}
	if st.LastDrift <= 0 {
		t.Fatalf("tuner state %+v records no drift measurement", st)
	}

	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ix.TunerState().AutoTuning {
		t.Fatal("auto-tune loop still reported running after Close")
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestAutoTuneDurable runs the loop on a durable sharded index: the
// background swap must checkpoint, so a reopen recovers the retuned
// plan.
func TestAutoTuneDurable(t *testing.T) {
	dir := t.TempDir()
	opt := durableShardedBuildOpts(3)
	opt.AutoTune = true
	opt.TunePolicy = TunePolicy{CheckEvery: 5 * time.Millisecond, MinMutations: 32, MinPairs: 16, Seed: 11}
	ix, err := CreateDurable(dir, bookstore(), opt, DurableOptions{Sync: SyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	driftFlood(t, ix, 300)
	waitForGeneration(t, ix, 1)
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	gen := ix.TunerState().PlanGeneration

	re, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer re.Close()
	if got := re.TunerState().PlanGeneration; got != gen {
		t.Fatalf("reopened at plan generation %d, want %d", got, gen)
	}
	assertSameIndex(t, re, ix)
}

# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

.PHONY: all build test vet ssrvet race crash replication fuzz-smoke bench-json bench-shards bench-drift bench-plan bench-screen bench-replica check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Stock go vet plus the repo's own analyzer suite — one target, so "it
# vets" always means both.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/ssrvet ./...

# The repo-specific analyzer suite alone: determinism (seededrand,
# maprange), float-comparison, dropped-error, lock-aliasing
# (guardedescape), lock-order, atomic-discipline, and goroutine-lifecycle
# invariants. Exits non-zero on findings.
ssrvet:
	$(GO) run ./cmd/ssrvet ./...

# The concurrency suites under the race detector (the mixed read/write
# stress tests in internal/core, internal/engine, and the public shard
# layer only mean something with -race on). CI runs the full tree; this
# is the fast local loop.
race:
	$(GO) test -race ./internal/core/ ./internal/engine/ ./internal/server/ ./internal/wal/ ./internal/recovery/ ./internal/tuner/
	$(GO) test -race -run 'TestShardedMixedStress|TestManualRetune|TestAutoTune' .

# The durability stack: WAL torn-tail/bit-flip sweeps, chained-checkpoint
# recovery, and the crash-injection harness — all under -race.
crash:
	$(GO) test -race ./internal/wal/ ./internal/recovery/
	$(GO) test -race -run 'Durable|CrashInjection|Sharded' .

# The replication suite under the race detector: wire-codec corruption
# sweeps, live follower mirroring (incl. stream cuts at swept byte
# offsets and a local-WAL truncation sweep at EVERY offset), rotation
# lockstep, retune-triggered resyncs, the hedged router, and the
# two-process SIGKILL crash/resume harness — each ending in a Save-byte
# equality check against the primary.
replication:
	$(GO) test -race ./internal/replica/

# A bounded run of every fuzz target; regressions in the corpus fail fast.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/storage/ -run '^$$' -fuzz FuzzSetEncoding -fuzztime $(FUZZTIME)
	$(GO) test ./internal/storage/ -run '^$$' -fuzz FuzzDecodeCorrupt -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ecc/ -run '^$$' -fuzz FuzzHadamardRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/minhash/ -run '^$$' -fuzz FuzzPackedSignatureRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal/ -run '^$$' -fuzz FuzzReplay -fuzztime $(FUZZTIME)
	$(GO) test ./internal/replica/ -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz FuzzLoad -fuzztime $(FUZZTIME)

# The parallel-pipeline benchmark report (build speedup, batched query
# latency, recall, simulated I/O, screening saving) as one JSON document.
# Tune scale with BENCH_N / BENCH_QUERIES / BENCH_BUDGET; the defaults are
# the laptop-scale Figure 6 configuration.
BENCH_N ?= 2000
BENCH_QUERIES ?= 256
BENCH_BUDGET ?= 500
bench-json:
	$(GO) run ./cmd/ssrbench -json -n $(BENCH_N) -queries $(BENCH_QUERIES) -budget $(BENCH_BUDGET) -out BENCH_parallel.json

# The sharded-engine report: build wall time, query percentiles, and
# concurrent durable insert throughput (write-only and mixed read/write)
# at shard counts 1/4/8, with a cross-shard-count answer checksum. Runs
# against the repo directory, not $TMPDIR — the fsync-overlap measurement
# needs a real disk. Takes a couple of minutes.
bench-shards:
	$(GO) run ./cmd/ssrbench -exp shards -json -out BENCH_shards.json

# The adaptive re-tuning report: recall/precision/candidate volume before
# drift, after a distribution-shifting insert stream on the stale plan,
# and after the drift-triggered retune — one query workload shared by the
# last two phases so the rows differ only in the plan that served them.
bench-drift:
	$(GO) run ./cmd/ssrbench -exp drift -json -n $(BENCH_N) -queries $(BENCH_QUERIES) -out BENCH_drift.json

# The query-planner report: repeat-query result-cache speedup and hit
# rate, wide-range screen-only vs fi-probe (with measured recall), and
# tiny-collection direct-scan vs fi-probe — plus checksums proving every
# exact plan answers byte-identically to the default pipeline
# (identicalResults in the JSON).
bench-plan:
	$(GO) run ./cmd/ssrbench -exp plan -json -out BENCH_plan.json

# The signing-family screening matrix: {classic, superminhash} ×
# b ∈ {64, 4, 1} over one collection and workload — screened fraction,
# signature bytes/set, estimator half-width, and a cross-family checksum
# proving exact answers are byte-identical for every family
# (identicalResults in the JSON).
bench-screen:
	$(GO) run ./cmd/ssrbench -exp screen -json -n $(BENCH_N) -queries $(BENCH_QUERIES) -budget $(BENCH_BUDGET) -out BENCH_screen.json

# The replication report: write-to-visible lag percentiles on a live
# follower, hedged scatter-gather read latency through the router vs
# direct primary reads, and a byte-identity check over every routed
# answer (identicalAnswers in the JSON).
bench-replica:
	$(GO) run ./cmd/ssrbench -exp replica -json -n $(BENCH_N) -queries $(BENCH_QUERIES) -out BENCH_replica.json

check: build vet test

package ssr

import (
	"fmt"
	"testing"
)

// TestQueryBatchMatchesQuery checks the public batch API returns, per
// entry, exactly what the single-query path returns.
func TestQueryBatchMatchesQuery(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, RecallTarget: 0.9, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := []BatchQuery{
		{Elements: []string{"dune", "foundation", "hyperion", "neuromancer"}, Lo: 0.9, Hi: 1.0},
		{Elements: []string{"dune", "foundation", "hyperion", "snowcrash"}, Lo: 0.5, Hi: 1.0},
		{Elements: []string{"cookbook", "gardening", "carpentry"}, Lo: 0.9, Hi: 1.0},
	}
	for _, workers := range []int{1, 4} {
		results := ix.QueryBatch(queries, QueryOptions{Workers: workers})
		if len(results) != len(queries) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, q := range queries {
			want, wantSt, err := ix.Query(q.Elements, q.Lo, q.Hi)
			if err != nil {
				t.Fatal(err)
			}
			r := results[i]
			if r.Err != nil {
				t.Fatalf("workers=%d entry %d: %v", workers, i, r.Err)
			}
			if len(r.Matches) != len(want) {
				t.Fatalf("workers=%d entry %d: %d vs %d matches", workers, i, len(r.Matches), len(want))
			}
			for j := range want {
				if r.Matches[j] != want[j] {
					t.Fatalf("workers=%d entry %d match %d differs", workers, i, j)
				}
			}
			if r.Stats.RandomPageReads != wantSt.RandomPageReads ||
				r.Stats.SequentialPageReads != wantSt.SequentialPageReads {
				t.Fatalf("workers=%d entry %d: I/O differs: %d/%d vs %d/%d", workers, i,
					r.Stats.RandomPageReads, r.Stats.SequentialPageReads,
					wantSt.RandomPageReads, wantSt.SequentialPageReads)
			}
		}
	}
}

// TestQueryBatchRangeValidation checks invalid ranges fail their own entry
// only.
func TestQueryBatchRangeValidation(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	results := ix.QueryBatch([]BatchQuery{
		{Elements: []string{"dune"}, Lo: -0.5, Hi: 1.0},
		{Elements: []string{"dune", "foundation", "hyperion", "neuromancer"}, Lo: 0.9, Hi: 1.0},
	}, QueryOptions{})
	if results[0].Err == nil {
		t.Error("negative lo accepted")
	}
	if results[1].Err != nil {
		t.Errorf("valid entry failed: %v", results[1].Err)
	}
	if len(results[1].Matches) != 2 {
		t.Errorf("valid entry matches = %+v", results[1].Matches)
	}
}

// TestQueryWithOptionsScreening smoke-tests the public screening knob: a
// full-width margin screens nothing and changes nothing.
func TestQueryWithOptionsScreening(t *testing.T) {
	ix, err := Build(bookstore(), Options{Budget: 24, MinHashes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	elems := []string{"dune", "foundation", "hyperion", "neuromancer"}
	plain, _, err := ix.Query(elems, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	screened, st, err := ix.QueryWithOptions(elems, 0.9, 1.0, QueryOptions{Screen: true, ScreenMargin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Screened != 0 {
		t.Errorf("margin=1 screened %d", st.Screened)
	}
	if len(screened) != len(plain) {
		t.Errorf("screening changed results: %d vs %d", len(screened), len(plain))
	}
}

// TestBuildWorkersIdentical checks the public Workers knob preserves
// results: serial and parallel builds answer identically.
func TestBuildWorkersIdentical(t *testing.T) {
	c := NewCollection()
	for i := 0; i < 150; i++ {
		c.Add(fmt.Sprintf("e-%d", i), fmt.Sprintf("e-%d", i+1), fmt.Sprintf("e-%d", i/2))
	}
	serial, err := Build(c, Options{Budget: 30, MinHashes: 48, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(c, Options{Budget: 30, MinHashes: 48, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for sid := 0; sid < 150; sid += 17 {
		a, _, err := serial.QuerySID(sid, 0.3, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := par.QuerySID(sid, 0.3, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("sid %d: %d vs %d matches", sid, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sid %d match %d differs: %+v vs %+v", sid, i, a[i], b[i])
			}
		}
	}
}

package ssr

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestAddIDsRejectsInternedCollisions pins the Add/AddIDs mixing contract:
// interned ids are dense from zero, so an external id below the current
// dictionary size would silently alias an interned element and corrupt
// every similarity the aliased sets participate in. Such ids must be
// rejected, ids at or above the dictionary size must keep working, and
// pure-AddIDs collections (empty dictionary) must accept any numbering.
func TestAddIDsRejectsInternedCollisions(t *testing.T) {
	pure := NewCollection()
	if _, err := pure.AddIDs(0, 1, 2); err != nil {
		t.Fatalf("pure AddIDs collection rejected id 0: %v", err)
	}

	c := NewCollection()
	c.Add("alpha", "beta", "gamma") // interns ids 0, 1, 2
	if _, err := c.AddIDs(1, 500); err == nil {
		t.Fatal("AddIDs accepted external id 1 inside the interned space [0, 3)")
	} else if !strings.Contains(err.Error(), "collides") {
		t.Fatalf("collision error does not explain itself: %v", err)
	}
	sid, err := c.AddIDs(3, 500)
	if err != nil {
		t.Fatalf("AddIDs rejected non-colliding ids: %v", err)
	}
	if sid != 1 {
		t.Fatalf("AddIDs sid = %d, want 1", sid)
	}
	// The rejected call must not have appended a set.
	if c.Len() != 2 {
		t.Fatalf("collection length %d after one rejected AddIDs, want 2", c.Len())
	}
	// Interning more elements moves the boundary.
	c.Add("delta") // id 3 now interned
	if _, err := c.AddIDs(3); err == nil {
		t.Fatal("AddIDs accepted id 3 after it was interned")
	}
}

// shardSweepQueries are fixed probes with mass at several similarity
// levels against goldenSnapshotCollection.
func shardSweepQueries() [][]string {
	var qs [][]string
	for base := 0; base < 12; base += 3 {
		var elems []string
		for j := 0; j < 9; j++ {
			elems = append(elems, fmt.Sprintf("e%d", base*6+j))
		}
		qs = append(qs, elems)
	}
	return qs
}

// TestPublicShardSweepIdenticalMatches builds the same collection at 1, 2,
// 3, and 8 shards through the public API and checks every query answers
// with the identical exact-verified match set — the cross-shard-count
// determinism contract (one global D_S profile ⇒ identical per-shard
// plans ⇒ identical candidacy ⇒ identical verified matches).
func TestPublicShardSweepIdenticalMatches(t *testing.T) {
	queries := shardSweepQueries()
	var want [][]Match
	for _, shards := range []int{1, 2, 3, 8} {
		opt := goldenSnapshotOptions()
		opt.Shards = shards
		ix, err := Build(goldenSnapshotCollection(), opt)
		if err != nil {
			t.Fatalf("shards=%d: Build: %v", shards, err)
		}
		if ix.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", ix.Shards(), shards)
		}
		var got [][]Match
		total := 0
		for qi, q := range queries {
			matches, stats, err := ix.Query(q, 0.3, 1.0)
			if err != nil {
				t.Fatalf("shards=%d query %d: %v", shards, qi, err)
			}
			if len(stats.PerShard) != shards {
				t.Fatalf("shards=%d query %d: %d per-shard stats", shards, qi, len(stats.PerShard))
			}
			var agg ShardStats
			for _, ps := range stats.PerShard {
				agg.Candidates += ps.Candidates
				agg.Results += ps.Results
			}
			if agg.Candidates != stats.Candidates || agg.Results != stats.Results {
				t.Fatalf("shards=%d query %d: per-shard stats (%d cand, %d res) do not sum to the aggregate (%d, %d)",
					shards, qi, agg.Candidates, agg.Results, stats.Candidates, stats.Results)
			}
			got = append(got, matches)
			total += len(matches)
		}
		if total == 0 {
			t.Fatalf("shards=%d: sweep found no matches at all (fixture too sparse to mean anything)", shards)
		}
		if want == nil {
			want = got
			continue
		}
		for qi := range queries {
			if fmt.Sprint(got[qi]) != fmt.Sprint(want[qi]) {
				t.Fatalf("shards=%d query %d: matches diverge from single-shard answer:\n  got  %v\n  want %v",
					shards, qi, got[qi], want[qi])
			}
		}
	}
}

// TestShardedSnapshotRoundTrip saves and reloads a 3-shard index through
// the public snapshot format: shard count, sid numbering, and query
// answers must all survive.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	opt := goldenSnapshotOptions()
	opt.Shards = 3
	ix, err := Build(goldenSnapshotCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 3 {
		t.Fatalf("reloaded with %d shards, want 3", re.Shards())
	}
	for qi, q := range shardSweepQueries() {
		a, _, err := ix.Query(q, 0.3, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := re.Query(q, 0.3, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("query %d: reloaded index diverged", qi)
		}
	}
	// A second Save must be byte-identical (deterministic serialization).
	var buf2 bytes.Buffer
	if err := re.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("sharded snapshot is not byte-stable across a save/load cycle")
	}
}

// TestBuildShardDeterminism: two public builds with the same (Seed,
// Shards) must serialize bit-identically.
func TestBuildShardDeterminism(t *testing.T) {
	opt := goldenSnapshotOptions()
	opt.Shards = 4
	a, err := Build(goldenSnapshotCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(goldenSnapshotCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("two identically-seeded sharded builds serialized differently")
	}
}

// TestShardedMixedStress is the public-API -race workhorse for the shard
// layer: concurrent Adds, Removes, and range queries against a durable
// multi-shard index. During the storm only absence of errors, deadlocks,
// and races is asserted; afterwards the surviving state must round-trip
// through close-and-recover bit-identically.
func TestShardedMixedStress(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(4),
		DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, perWriter = 4, 3, 25
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sid, err := ix.Add(fmt.Sprintf("stress-%d-%d", w, i), "shared-elem")
				if err != nil {
					errCh <- fmt.Errorf("writer %d add %d: %w", w, i, err)
					return
				}
				if i%6 == 2 {
					if err := ix.Remove(sid); err != nil {
						errCh <- fmt.Errorf("writer %d remove %d: %w", w, sid, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, _, err := ix.Query([]string{"dune", "foundation", "shared-elem"}, 0.2, 1.0); err != nil {
					errCh <- fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	before := saveBytes(t, ix)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !bytes.Equal(saveBytes(t, re), before) {
		t.Fatal("post-stress recovery produced a different snapshot")
	}
}

package ssr

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashOp is one step of the crash-harness workload, with enough metadata
// to check non-resurrection afterwards.
type crashOp struct {
	elements []string // insert when non-nil
	sid      int      // target for delete; assigned sid for insert
}

// crashWorkload interleaves inserts and deletes of the inserted sets so
// that several prefixes of the sequence contain completed deletes.
func crashWorkload() []crashOp {
	var ops []crashOp
	next := 65 // sids after bookstore()
	for i := 0; i < 18; i++ {
		if i%4 == 3 {
			// Delete the insert from two steps ago.
			ops = append(ops, crashOp{sid: next - 2})
			continue
		}
		ops = append(ops, crashOp{
			elements: []string{fmt.Sprintf("crash-%d-a", i), fmt.Sprintf("crash-%d-b", i), "dune"},
			sid:      next,
		})
		next++
	}
	return ops
}

// applyCrashOps drives ops through ix.
func applyCrashOps(t *testing.T, ix *Index, ops []crashOp) {
	t.Helper()
	for i, op := range ops {
		if op.elements != nil {
			sid, err := ix.Add(op.elements...)
			if err != nil {
				t.Fatalf("op %d: Add: %v", i, err)
			}
			if sid != op.sid {
				t.Fatalf("op %d: sid %d, want %d", i, sid, op.sid)
			}
		} else if err := ix.Remove(op.sid); err != nil {
			t.Fatalf("op %d: Remove(%d): %v", i, op.sid, err)
		}
	}
}

// copyDir clones the recorded durability directory for one corruption
// trial.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			copyDir(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recordCrashScenario builds a durable index, applies the workload, and
// "crashes" (closes the log with no final checkpoint). It returns the
// directory, the single live wal path, and the per-prefix reference
// snapshots: prefixes[k] is the Save output of an index that saw exactly
// ops[:k].
func recordCrashScenario(t *testing.T, ops []crashOp) (dir, walFile string, prefixes [][]byte) {
	t.Helper()
	dir = t.TempDir()
	ix, err := CreateDurable(dir, bookstore(), durableBuildOpts(),
		DurableOptions{Sync: SyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	applyCrashOps(t, ix, ops)
	// Simulated crash: release the log without the shutdown checkpoint, so
	// every mutation lives only in the tail log.
	if err := ix.dur.shards[0].log.Close(); err != nil {
		t.Fatal(err)
	}
	ix.dur.closed.Store(true)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			if walFile != "" {
				t.Fatalf("expected one wal segment, found %q and %q", walFile, e.Name())
			}
			walFile = e.Name()
		}
	}
	if walFile == "" {
		t.Fatal("no wal segment recorded")
	}

	// Reference snapshots for every prefix of the operation sequence.
	for k := 0; k <= len(ops); k++ {
		ref, err := Build(bookstore(), durableBuildOpts())
		if err != nil {
			t.Fatal(err)
		}
		applyCrashOps(t, ref, ops[:k])
		prefixes = append(prefixes, saveBytes(t, ref))
	}
	return dir, walFile, prefixes
}

// checkRecovered asserts the recovered index equals some prefix of the
// operation sequence (bit-identical snapshot) and that no delete completed
// within that prefix has been resurrected — neither in storage (the
// snapshot equality covers it) nor in the filter indices (probed with the
// deleted set's exact elements, which deterministically hash to its
// buckets).
func checkRecovered(t *testing.T, label string, re *Index, ops []crashOp, prefixes [][]byte) {
	t.Helper()
	snap := saveBytes(t, re)
	k := -1
	for i, want := range prefixes {
		if bytes.Equal(snap, want) {
			k = i
			break
		}
	}
	if k < 0 {
		t.Fatalf("%s: recovered state matches no prefix of the operation sequence", label)
	}
	for i := 0; i < k; i++ {
		if ops[i].elements != nil {
			continue
		}
		deleted := ops[i].sid
		elems := ops[opIndexOfInsert(ops, deleted)].elements
		matches, _, err := re.Query(elems, 0.999, 1.0)
		if err != nil {
			t.Fatalf("%s: probe query: %v", label, err)
		}
		for _, m := range matches {
			if m.SID == deleted {
				t.Fatalf("%s: deleted sid %d resurrected (prefix %d)", label, deleted, k)
			}
		}
	}
}

// opIndexOfInsert finds the op that inserted sid.
func opIndexOfInsert(ops []crashOp, sid int) int {
	for i, op := range ops {
		if op.elements != nil && op.sid == sid {
			return i
		}
	}
	panic("unknown sid")
}

// TestCrashInjectionTruncation recovers from every truncation point of the
// recorded log: no panics, and every outcome is some prefix of the
// operation sequence with no resurrected deletes.
func TestCrashInjectionTruncation(t *testing.T) {
	ops := crashWorkload()
	dir, walFile, prefixes := recordCrashScenario(t, ops)
	logData, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	for cut := 0; cut <= len(logData); cut++ {
		trial := filepath.Join(scratch, fmt.Sprintf("cut-%d", cut))
		copyDir(t, dir, trial)
		if err := os.WriteFile(filepath.Join(trial, walFile), logData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurable(trial, DurableOptions{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: OpenDurable: %v", cut, err)
		}
		checkRecovered(t, fmt.Sprintf("cut %d", cut), re, ops, prefixes)
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if err := os.RemoveAll(trial); err != nil {
			t.Fatal(err)
		}
	}
	// Anchor: the untouched log recovers the full sequence.
	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !bytes.Equal(saveBytes(t, re), prefixes[len(ops)]) {
		t.Fatal("full log did not recover the complete sequence")
	}
}

// TestCrashInjectionBitFlips recovers from a single flipped byte at every
// offset of the recorded log.
func TestCrashInjectionBitFlips(t *testing.T) {
	ops := crashWorkload()
	dir, walFile, prefixes := recordCrashScenario(t, ops)
	logData, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	for off := 0; off < len(logData); off++ {
		trial := filepath.Join(scratch, fmt.Sprintf("flip-%d", off))
		copyDir(t, dir, trial)
		corrupt := bytes.Clone(logData)
		corrupt[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(trial, walFile), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurable(trial, DurableOptions{Sync: SyncNever})
		if err != nil {
			t.Fatalf("flip at %d: OpenDurable: %v", off, err)
		}
		checkRecovered(t, fmt.Sprintf("flip %d", off), re, ops, prefixes)
		if err := re.Close(); err != nil {
			t.Fatalf("flip at %d: Close: %v", off, err)
		}
		if err := os.RemoveAll(trial); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashInjectionCheckpointCorruption: with only one checkpoint
// generation and a damaged checkpoint file, OpenDurable must fail with a
// clean error (never a panic, never silently empty state). Offsets are
// sampled — the recovery package's own tests cover every offset of the
// seal exhaustively.
func TestCrashInjectionCheckpointCorruption(t *testing.T) {
	ops := crashWorkload()
	dir, _, _ := recordCrashScenario(t, ops)
	var ckptFile string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") {
			ckptFile = e.Name()
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, ckptFile))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	for off := 0; off < len(data); off += 13 {
		trial := filepath.Join(scratch, fmt.Sprintf("ckpt-%d", off))
		copyDir(t, dir, trial)
		corrupt := bytes.Clone(data)
		corrupt[off] ^= 0x01
		if err := os.WriteFile(filepath.Join(trial, ckptFile), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDurable(trial, DurableOptions{}); err == nil {
			t.Fatalf("flip at %d: corrupt checkpoint opened successfully", off)
		}
		if err := os.RemoveAll(trial); err != nil {
			t.Fatal(err)
		}
	}
}

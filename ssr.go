// Package ssr is an approximate, tunable index for similar-set retrieval,
// reproducing "Efficient and Tunable Similar Set Retrieval" (Gionis,
// Gunopulos, Koudas; SIGMOD 2001).
//
// Given a collection of sets, the index answers set-similarity range
// queries: return every set whose Jaccard similarity with a query set lies
// inside [lo, hi]. Sets are embedded with min-wise independent permutations
// and error-correcting codes into a Hamming space, which is then indexed by
// batteries of bit-sampling hash tables (Similarity and Dissimilarity
// Filter Indices). The index is tunable: the caller fixes a space budget
// (number of hash tables) and a recall target, and the optimizer places and
// budgets the filter indices to maximize precision subject to that target.
//
// Basic use:
//
//	c := ssr.NewCollection()
//	for _, basket := range baskets {
//		c.Add(basket...) // string elements
//	}
//	ix, err := ssr.Build(c, ssr.Options{Budget: 200, RecallTarget: 0.9})
//	...
//	matches, stats, err := ix.Query(someBasket, 0.8, 1.0)
//
// Results are approximate: all returned matches are exact (candidates are
// verified against stored sets) but a tunable fraction of true matches may
// be missed; stats report the achieved filter behaviour.
package ssr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/simdist"
	"repro/internal/storage"
)

// Options tunes index construction. The zero value of every field selects a
// sensible default except Budget, which must be positive.
type Options struct {
	// Budget is the total number of hash tables the index may use — the
	// space constraint of the paper's Section 5 optimization. Required.
	Budget int
	// RecallTarget is the expected worst-case recall threshold T in (0, 1]
	// the optimizer must respect (default 0.9).
	RecallTarget float64
	// MinHashes is the signature length k (default 100, as in the paper).
	MinHashes int
	// HashBits is the truncation width b of each min-hash value; Hamming
	// codewords have 2^HashBits bits (default 8).
	HashBits int
	// MaxFilterIndices caps the optimizer's interval-growing loop
	// (default 16).
	MaxFilterIndices int
	// PageSize is the simulated disk page size in bytes (default 4096).
	PageSize int
	// PayloadBytesPerElement makes the simulated disk account each element
	// at its original record size (e.g. ~100 bytes for a URL string) even
	// though elements are stored as compact ids. It only affects the I/O
	// cost model (Stats, QueryAuto routing), not results.
	PayloadBytesPerElement int
	// Seed makes the whole build reproducible (default 1).
	Seed int64
	// DistSample is the number of set pairs sampled to estimate the
	// similarity distribution; 0 picks a size-based default, negative
	// forces the exact O(N²) computation.
	DistSample int
	// UniformPlacement switches partition-point placement from equidepth
	// (the paper's choice) to uniform. For ablation studies.
	UniformPlacement bool
	// UniformAllocation switches hash-table budgeting from greedy
	// (the paper's choice) to uniform. For ablation studies.
	UniformAllocation bool
	// Workers bounds build parallelism (signing, distribution sampling,
	// filter population). 0 uses every CPU, 1 forces a serial build; every
	// value produces a bit-identical index.
	Workers int
	// Shards splits the index into independently locked partitions: writes
	// to different shards proceed concurrently, and in durable mode each
	// shard keeps its own write-ahead log and checkpoints. Queries scatter
	// across all shards and gather; because every shard is planned from
	// the one global similarity distribution, query results are identical
	// for every shard count. 0 or 1 (the default) builds the classic
	// monolithic index, bit-identical to previous releases.
	Shards int
	// AutoTune starts adaptive re-tuning: an online sketch tracks how the
	// collection's similarity distribution drifts under inserts and
	// deletes, and when it drifts past TunePolicy's threshold the
	// Section 5 plan is re-derived in the background and hot-swapped
	// without blocking queries. Equivalent to calling EnableAutoTune on
	// the built index.
	AutoTune bool
	// TunePolicy tunes AutoTune's decision rule; the zero value selects
	// defaults. Ignored unless AutoTune is set.
	TunePolicy TunePolicy
	// Planner enables the cost-based query planner: each range query is
	// priced from the live similarity distribution and the storage cost
	// model, then executed by the cheapest of fi-probe (the default
	// pipeline), direct-scan, or — only with QueryOptions.AllowApproximate
	// — screen-only, with plan decisions and exact results cached and
	// invalidated by plan-generation and mutation counters. Exact plans
	// and all cached answers are byte-identical to the default pipeline.
	// Equivalent to calling EnablePlanner on the built index.
	Planner bool
	// PlannerPolicy tunes the planner; the zero value selects defaults.
	// Ignored unless Planner is set.
	PlannerPolicy PlannerPolicy
	// Signing selects the signing family for STORED signatures — the
	// per-set sketches used by screening, similarity estimation, and the
	// tuner's drift sketch. The Hamming embedding, filter keys, and
	// candidate generation always use classic full-width min-hashes, so
	// exact query answers are byte-identical for every family; Signing
	// trades stored-signature memory against estimator confidence. The
	// zero value keeps today's classic 64-bit representation.
	Signing SigningOptions
}

// SigningOptions configures the signature representation (Options.Signing).
type SigningOptions struct {
	// Family is "classic" (k independent min-wise permutations, the
	// default) or "superminhash" (Ertl's SuperMinHash: one pass per
	// element, lower estimator variance for small sets — the screen gate
	// relaxes accordingly).
	Family string
	// BitsPerHash stores only the low b bits of each of the k hash values,
	// packed 64/b to a word (b-bit minwise hashing). Allowed values are
	// 1, 2, 4, 8, and 64; 0 selects 64 (full width, today's layout). b=4
	// cuts signature memory 16× while screening with the unbiased b-bit
	// estimator; the 95% confidence half-width widens by 1/(1−2⁻ᵇ).
	BitsPerHash int
}

// Collection accumulates sets before building an index. Elements are
// strings, interned internally; the universe never has to be declared.
// A Collection is safe for concurrent reads after building; Add calls must
// not race with each other (guarded internally, but sid assignment order
// then depends on scheduling).
type Collection struct {
	mu   sync.Mutex
	dict *set.Dictionary
	sets []set.Set
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{dict: set.NewDictionary()}
}

// Add interns the elements and appends the set, returning its sid.
// Duplicate elements are collapsed.
func (c *Collection) Add(elements ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sets = append(c.sets, c.dict.InternSet(elements...))
	return len(c.sets) - 1
}

// AddIDs appends a set of pre-interned (or externally numbered) elements.
// Mixing AddIDs and Add in one collection is allowed only if the caller's
// numbering cannot collide with interned ids: interned ids are dense from
// zero, so any external id below the current dictionary size would silently
// alias an interned element (two distinct elements comparing equal, which
// corrupts every similarity the aliased sets participate in). Such
// collisions are rejected with an error instead.
func (c *Collection) AddIDs(elements ...uint64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	interned := uint64(c.dict.Len())
	for _, e := range elements {
		if e < interned {
			return 0, fmt.Errorf("ssr: external id %d collides with the interned id space [0, %d); use ids at or above the dictionary size or intern via Add", e, interned)
		}
	}
	c.sets = append(c.sets, set.New(elements...))
	return len(c.sets) - 1, nil
}

// Len returns the number of sets added.
func (c *Collection) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sets)
}

// Get returns the elements of set sid, resolved back to strings. Sets added
// with AddIDs return an error for ids that were never interned.
func (c *Collection) Get(sid int) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sid < 0 || sid >= len(c.sets) {
		return nil, fmt.Errorf("ssr: sid %d out of range", sid)
	}
	return c.dict.Names(c.sets[sid])
}

// intern converts query elements under the collection's dictionary,
// assigning fresh ids to unseen elements (they can only reduce similarity,
// exactly as unseen elements do).
func (c *Collection) intern(elements []string) set.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dict.InternSet(elements...)
}

// record stores set s at sid position, growing the slice as needed —
// inserts on a sharded index can complete out of submission order, so
// positions between the recorded one and the end may be briefly empty
// while their inserts are in flight.
func (c *Collection) record(sid int, s set.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.sets) <= sid {
		c.sets = append(c.sets, set.Set{})
	}
	c.sets[sid] = s
}

// Match is one query result.
type Match struct {
	// SID is the matching set's identifier (its Add order).
	SID int
	// Similarity is the exact Jaccard similarity with the query.
	Similarity float64
}

// Stats reports per-query cost and filter behaviour. On a sharded index
// the top-level counters aggregate across all shards and PerShard breaks
// them down by shard.
type Stats struct {
	// Candidates is how many sets the filter stage proposed.
	Candidates int
	// Results is how many verified into the requested range.
	Results int
	// Screened is how many candidates signature screening rejected without
	// a page fetch (0 unless QueryOptions.Screen is set).
	Screened int
	// ScreenedFraction is Screened/Candidates — the share of filter
	// proposals the signing family's estimator rejected before any page
	// fetch (0 when there were no candidates or screening was off).
	ScreenedFraction float64
	// SignatureBytesPerSet is the stored signature footprint per set under
	// the index's signing family (k·8 bytes for classic-64, k·b/8 for
	// b-bit packing).
	SignatureBytesPerSet int
	// RandomPageReads and SequentialPageReads count simulated disk I/O.
	RandomPageReads, SequentialPageReads int64
	// SimulatedIOTime converts those reads under the default cost model
	// (random read = 8 × sequential, the paper's rtn).
	SimulatedIOTime time.Duration
	// CPUTime is the measured in-memory processing time (summed across
	// shards; shards execute concurrently, so this exceeds wall time).
	CPUTime time.Duration
	// PlanGeneration identifies the plan that answered the query: 0 is
	// the build-time plan, and every adaptive retune increments it. All
	// shards of one query always answer from the same generation.
	PlanGeneration uint64
	// ShardsQueried is how many shards the scatter actually probed;
	// ShardsPruned is how many the per-shard summaries proved unable to
	// contribute, skipped without being touched. They sum to the shard
	// count. Pruning is sound (upper bounds only), so matches never depend
	// on it — only the I/O and candidate accounting of skipped shards.
	ShardsQueried, ShardsPruned int
	// GatherTime is the wall time of the final cross-shard merge — the
	// gather half of scatter-gather (zero on an unsharded index).
	GatherTime time.Duration
	// PlanChosen is the query planner's chosen plan: "fi-probe",
	// "direct-scan", "screen-only", "mixed", or "cached" (answered from
	// the result cache). Empty when the planner is disabled.
	PlanChosen string
	// CacheHits / CacheMisses count result-cache outcomes for this query
	// (both zero when the planner or its result cache is disabled).
	CacheHits, CacheMisses int
	// PerShard holds each shard's own accounting, indexed by shard number
	// (one entry on an unsharded index; zero-valued entries for pruned
	// shards).
	PerShard []ShardStats
}

// ShardStats is one shard's share of a query's work.
type ShardStats struct {
	// Candidates and Results are the shard's filter proposals and verified
	// matches.
	Candidates, Results int
	// RandomPageReads and SequentialPageReads count the shard's simulated
	// disk I/O.
	RandomPageReads, SequentialPageReads int64
}

// Index answers similarity range queries over a built collection.
// It is safe for concurrent use. With Options.Shards > 1 the index is
// partitioned across independently locked shards: writes to different
// shards proceed concurrently and queries scatter-gather, with identical
// results to the monolithic layout.
type Index struct {
	coll  *Collection
	inner *engine.Engine
	// dur is non-nil for indices opened through OpenDurable/CreateDurable:
	// mutations then pass through the write-ahead log before they are
	// acknowledged. See durable.go.
	dur *durable
	// tune holds the auto-tuning loop's lifecycle and swap bookkeeping.
	// See tune.go.
	tune tuneRuntime
	// replica marks a replication follower (OpenReplica): external
	// mutations are rejected and the state changes only through the
	// replication stream. See replication.go.
	replica bool
}

// Build constructs the index over the collection per the paper's pipeline.
// The collection must not be mutated afterwards.
func Build(c *Collection, opt Options) (*Index, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("ssr: empty collection")
	}
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("ssr: Options.Budget must be positive")
	}
	eopt := embed.DefaultOptions()
	if opt.MinHashes > 0 {
		eopt.K = opt.MinHashes
	}
	if opt.HashBits > 0 {
		eopt.Bits = opt.HashBits
	}
	if opt.Seed != 0 {
		eopt.Seed = opt.Seed
	}
	popt := optimize.Options{
		Budget:       opt.Budget,
		RecallTarget: opt.RecallTarget,
		MaxFIs:       opt.MaxFilterIndices,
	}
	if opt.UniformPlacement {
		popt.Placement = optimize.Uniform
	}
	if opt.UniformAllocation {
		popt.Allocation = optimize.UniformTables
	}
	if opt.Shards > engine.MaxShards {
		return nil, fmt.Errorf("ssr: Options.Shards %d exceeds the maximum %d", opt.Shards, engine.MaxShards)
	}
	c.mu.Lock()
	sets := make([]set.Set, len(c.sets))
	copy(sets, c.sets)
	c.mu.Unlock()
	inner, err := engine.Build(sets, engine.Options{
		Shards:     opt.Shards,
		RouterSeed: opt.Seed,
		Core: core.Options{
			Embed:          eopt,
			Plan:           popt,
			PageSize:       opt.PageSize,
			PayloadPerElem: opt.PayloadBytesPerElement,
			DistSample:     opt.DistSample,
			DistSeed:       opt.Seed,
			Workers:        opt.Workers,
			Signing: minhash.Config{
				Base:        opt.Signing.Family,
				BitsPerHash: opt.Signing.BitsPerHash,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{coll: c, inner: inner}
	if opt.Planner {
		ix.EnablePlanner(opt.PlannerPolicy)
	}
	if opt.AutoTune {
		if err := ix.EnableAutoTune(opt.TunePolicy); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Shards returns the number of independently locked partitions the index
// runs on (1 for the classic monolithic layout).
func (ix *Index) Shards() int { return ix.inner.NumShards() }

// SetShardPruning toggles summary-based shard pruning on a sharded index
// (enabled by default). Pruning skips shards whose summaries prove they
// cannot contribute to a query; it is sound — matches are byte-identical
// either way — so the switch exists for benchmarking and verification.
func (ix *Index) SetShardPruning(enabled bool) { ix.inner.SetShardPruning(enabled) }

// Query returns the sets whose Jaccard similarity with the query elements
// lies in [lo, hi], sorted by descending similarity.
func (ix *Index) Query(elements []string, lo, hi float64) ([]Match, Stats, error) {
	return ix.query(ix.coll.intern(elements), lo, hi)
}

// QuerySID uses an existing collection member as the query set.
func (ix *Index) QuerySID(sid int, lo, hi float64) ([]Match, Stats, error) {
	ix.coll.mu.Lock()
	ok := sid >= 0 && sid < len(ix.coll.sets)
	var q set.Set
	if ok {
		q = ix.coll.sets[sid]
	}
	ix.coll.mu.Unlock()
	if !ok {
		return nil, Stats{}, fmt.Errorf("ssr: sid %d out of range", sid)
	}
	return ix.query(q, lo, hi)
}

// QuerySIDWithOptions is QuerySID with explicit query options
// (screening, workers, AllowApproximate).
func (ix *Index) QuerySIDWithOptions(sid int, lo, hi float64, opt QueryOptions) ([]Match, Stats, error) {
	ix.coll.mu.Lock()
	ok := sid >= 0 && sid < len(ix.coll.sets)
	var q set.Set
	if ok {
		q = ix.coll.sets[sid]
	}
	ix.coll.mu.Unlock()
	if !ok {
		return nil, Stats{}, fmt.Errorf("ssr: sid %d out of range", sid)
	}
	return ix.queryOpts(q, lo, hi, opt)
}

// QueryIDs queries with externally numbered elements (matching AddIDs).
func (ix *Index) QueryIDs(elements []uint64, lo, hi float64) ([]Match, Stats, error) {
	return ix.query(set.New(elements...), lo, hi)
}

func (ix *Index) query(q set.Set, lo, hi float64) ([]Match, Stats, error) {
	return ix.queryOpts(q, lo, hi, QueryOptions{})
}

func (ix *Index) queryOpts(q set.Set, lo, hi float64, opt QueryOptions) ([]Match, Stats, error) {
	if lo < 0 || hi > 1 || lo > hi {
		return nil, Stats{}, fmt.Errorf("ssr: invalid similarity range [%g, %g]", lo, hi)
	}
	matches, qs, err := ix.inner.QueryWithOptions(q, lo, hi, opt.toCore())
	if err != nil {
		return nil, Stats{}, err
	}
	return convertMatches(matches), ix.convertStats(qs), nil
}

// convertMatches maps internal matches to the public type.
func convertMatches(matches []core.Match) []Match {
	out := make([]Match, len(matches))
	for i, m := range matches {
		out[i] = Match{SID: int(m.SID), Similarity: m.Similarity}
	}
	return out
}

// convertStats maps internal query stats to the public type under the
// default cost model, carrying the per-shard breakdown through and
// annotating the signing family's screening behaviour.
func (ix *Index) convertStats(qs engine.QueryStats) Stats {
	model := storage.DefaultCostModel()
	st := Stats{
		Candidates:           qs.Candidates,
		Results:              qs.Results,
		Screened:             qs.Screened,
		SignatureBytesPerSet: ix.inner.SignatureBytesPerSet(),
		RandomPageReads:      qs.IndexIO.Rand() + qs.FetchIO.Rand(),
		SequentialPageReads:  qs.IndexIO.Seq() + qs.FetchIO.Seq(),
		SimulatedIOTime:      qs.SimIOTime(model),
		CPUTime:              qs.CPU,
		PlanGeneration:       qs.PlanGeneration,
		ShardsQueried:        qs.ShardsQueried,
		ShardsPruned:         qs.ShardsPruned,
		GatherTime:           qs.Gather,
		PlanChosen:           qs.Plan,
		CacheHits:            qs.CacheHits,
		CacheMisses:          qs.CacheMisses,
	}
	if st.Candidates > 0 {
		st.ScreenedFraction = float64(st.Screened) / float64(st.Candidates)
	}
	for i := range qs.PerShard {
		ps := &qs.PerShard[i]
		st.PerShard = append(st.PerShard, ShardStats{
			Candidates:          ps.Candidates,
			Results:             ps.Results,
			RandomPageReads:     ps.IndexIO.Rand() + ps.FetchIO.Rand(),
			SequentialPageReads: ps.IndexIO.Seq() + ps.FetchIO.Seq(),
		})
	}
	return st
}

// QueryOptions tunes the query processor. The zero value reproduces Query's
// default behaviour.
type QueryOptions struct {
	// Screen skips the page fetch for candidates whose similarity, estimated
	// from the stored min-hash signatures alone, falls outside the query
	// range widened by ScreenMargin. Returned matches stay exact; a small
	// fraction of true matches (those whose estimate errs by more than the
	// margin) may additionally be missed. Screened counts appear in Stats.
	Screen bool
	// ScreenMargin is the widening ε on the Jaccard scale; 0 selects the
	// 95%-confidence bound for the index's signature length.
	ScreenMargin float64
	// Workers bounds query parallelism (batch fan-out and per-query
	// candidate verification). 0 uses every CPU, 1 forces serial processing.
	Workers int
	// AllowApproximate permits the query planner (Options.Planner) to
	// answer from signature estimates alone — the screen-only plan — when
	// the range is wide relative to the estimator's 95%-confidence width
	// and the cost model favours it. Returned similarities are then
	// ESTIMATES, not exact Jaccard, and sets near the range boundary can
	// be missed or misplaced; Stats.PlanChosen reports "screen-only" when
	// it happened. Ignored when the planner is disabled — no other path
	// ever returns approximate similarities.
	AllowApproximate bool
}

func (o QueryOptions) toCore() core.QueryOptions {
	return core.QueryOptions{
		Screen:           o.Screen,
		ScreenMargin:     o.ScreenMargin,
		Workers:          o.Workers,
		AllowApproximate: o.AllowApproximate,
	}
}

// QueryWithOptions is Query with explicit processor tunables.
func (ix *Index) QueryWithOptions(elements []string, lo, hi float64, opt QueryOptions) ([]Match, Stats, error) {
	return ix.queryOpts(ix.coll.intern(elements), lo, hi, opt)
}

// BatchQuery is one entry of a QueryBatch call.
type BatchQuery struct {
	// Elements is the query set.
	Elements []string
	// Lo, Hi is the Jaccard similarity range.
	Lo, Hi float64
}

// BatchResult is the outcome of one batch entry — exactly what Query would
// have returned for it.
type BatchResult struct {
	Matches []Match
	Stats   Stats
	Err     error
}

// QueryBatch answers many range queries concurrently over a consistent
// point-in-time view of the index (concurrent Add/Remove calls order before
// or after the whole batch). Results are positional: result i answers query
// i. Options apply to every entry.
func (ix *Index) QueryBatch(queries []BatchQuery, opt QueryOptions) []BatchResult {
	inner := make([]core.BatchQuery, len(queries))
	results := make([]BatchResult, len(queries))
	ok := make([]bool, len(queries))
	for i, bq := range queries {
		if bq.Lo < 0 || bq.Hi > 1 || bq.Lo > bq.Hi {
			results[i].Err = fmt.Errorf("ssr: invalid similarity range [%g, %g]", bq.Lo, bq.Hi)
			continue
		}
		inner[i] = core.BatchQuery{Q: ix.coll.intern(bq.Elements), Lo: bq.Lo, Hi: bq.Hi}
		ok[i] = true
	}
	// Invalid entries keep their error; valid ones run in one core batch.
	valid := make([]core.BatchQuery, 0, len(inner))
	pos := make([]int, 0, len(inner))
	for i, v := range ok {
		if v {
			valid = append(valid, inner[i])
			pos = append(pos, i)
		}
	}
	for j, r := range ix.inner.QueryBatch(valid, opt.toCore()) {
		i := pos[j]
		if r.Err != nil {
			results[i].Err = r.Err
			continue
		}
		results[i] = BatchResult{Matches: convertMatches(r.Matches), Stats: ix.convertStats(r.Stats)}
	}
	return results
}

// Add inserts a new set into the collection and the live index, returning
// its sid. The filter-index layout is not re-optimized. On a durable index
// the insert is logged before it is acknowledged.
func (ix *Index) Add(elements ...string) (int, error) {
	if ix.replica {
		return 0, ErrReplicaReadOnly
	}
	if ix.dur != nil {
		return ix.dur.add(ix, elements)
	}
	return ix.add(elements)
}

// add is the in-memory insert path. Interning happens before the engine
// insert and recording after it, with the collection lock held only for
// those two leaf steps — never across the engine call — so concurrent
// adds to different shards proceed in parallel. The ordering keeps
// snapshots consistent: elements are in the dictionary before any engine
// state references them (Save captures engine bytes first, names after,
// so the captured dictionary is always a superset of what the captured
// engine needs), and the engine assigns the global sid, so two concurrent
// adds can never disagree with it.
func (ix *Index) add(elements []string) (int, error) {
	s := ix.coll.intern(elements)
	g, err := ix.inner.Insert(s)
	if err != nil {
		return 0, err
	}
	ix.coll.record(int(g), s)
	return int(g), nil
}

// EstimateAnswerSize predicts how many sets a query with range [lo, hi]
// would return on average, from the similarity distribution the index was
// tuned to — useful for choosing ranges and for cost decisions before
// running anything.
func (ix *Index) EstimateAnswerSize(lo, hi float64) (float64, error) {
	return ix.inner.EstimateAnswerSize(lo, hi)
}

// RouteInfo explains a QueryAuto access-path decision.
type RouteInfo struct {
	// Path is "index" or "scan" — or, on a sharded index, "mixed" when
	// different shards chose different paths (partitions can legitimately
	// disagree near the cost crossover).
	Path string
	// PredictedCandidates is the modeled candidate count of the index
	// path.
	PredictedCandidates float64
	// IndexCost and ScanCost are the modeled I/O times.
	IndexCost, ScanCost time.Duration
}

// QueryAuto models both access paths (filter indices vs sequential scan)
// under the paper's I/O cost model and runs the cheaper one — the
// Section 6 decision rule (the index wins while the predicted result is
// below roughly |S|·a/rtn). The scan path is exact; the index path is the
// usual one-sided approximation.
func (ix *Index) QueryAuto(elements []string, lo, hi float64) ([]Match, RouteInfo, Stats, error) {
	if lo < 0 || hi > 1 || lo > hi {
		return nil, RouteInfo{}, Stats{}, fmt.Errorf("ssr: invalid similarity range [%g, %g]", lo, hi)
	}
	model := storage.DefaultCostModel()
	rp, err := ix.inner.RouteQuery(lo, hi, model)
	if err != nil {
		return nil, RouteInfo{}, Stats{}, err
	}
	info := RouteInfo{
		Path:                rp.Route.String(),
		PredictedCandidates: rp.PredictedCandidates,
		IndexCost:           rp.IndexCost,
		ScanCost:            rp.ScanCost,
	}
	matches, path, qs, err := ix.inner.QueryAuto(ix.coll.intern(elements), lo, hi, model)
	if err != nil {
		return nil, info, Stats{}, err
	}
	// Report the path(s) that actually ran: on a sharded index each shard
	// routes independently, which can differ from the aggregate prediction.
	info.Path = path
	return convertMatches(matches), info, ix.convertStats(qs), nil
}

// TopK returns the k sets most similar to the query elements, best first
// (approximate nearest neighbours; similarities of returned matches are
// exact).
func (ix *Index) TopK(elements []string, k int) ([]Match, Stats, error) {
	return ix.topK(ix.coll.intern(elements), k)
}

// TopKSID uses an existing collection member as the query set.
func (ix *Index) TopKSID(sid, k int) ([]Match, Stats, error) {
	ix.coll.mu.Lock()
	ok := sid >= 0 && sid < len(ix.coll.sets)
	var q set.Set
	if ok {
		q = ix.coll.sets[sid]
	}
	ix.coll.mu.Unlock()
	if !ok {
		return nil, Stats{}, fmt.Errorf("ssr: sid %d out of range", sid)
	}
	return ix.topK(q, k)
}

func (ix *Index) topK(q set.Set, k int) ([]Match, Stats, error) {
	matches, qs, err := ix.inner.TopK(q, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return convertMatches(matches), ix.convertStats(qs), nil
}

// Remove deletes set sid from the index and collection bookkeeping. The
// sid is never reused; queries simply stop returning it. On a durable
// index the delete is logged before it is acknowledged.
func (ix *Index) Remove(sid int) error {
	if ix.replica {
		return ErrReplicaReadOnly
	}
	if ix.dur != nil {
		return ix.dur.remove(ix, sid)
	}
	return ix.remove(sid)
}

// remove is the in-memory delete path.
func (ix *Index) remove(sid int) error {
	if sid < 0 {
		return fmt.Errorf("ssr: sid %d out of range", sid)
	}
	return ix.inner.Delete(uint32(sid))
}

// FilterIndexSummary describes one built filter index.
type FilterIndexSummary struct {
	// Point is the partition point on the Jaccard scale.
	Point float64
	// Kind is "SFI" or "DFI".
	Kind string
	// Tables is the number of hash tables allocated (l).
	Tables int
	// SampledBits is the per-table bit sample size (r).
	SampledBits int
}

// PlanSummary exposes the tunable layout the optimizer chose.
type PlanSummary struct {
	// Cuts are the interior partition points.
	Cuts []float64
	// Delta is the equal-mass SFI/DFI split point.
	Delta float64
	// FilterIndexes lists the built structures.
	FilterIndexes []FilterIndexSummary
	// ExpectedWorstRecall and ExpectedWorstPrecision are the optimizer's
	// model predictions over interval-aligned queries.
	ExpectedWorstRecall, ExpectedWorstPrecision float64
	// RecallMet reports whether the recall target was attainable within
	// the budget.
	RecallMet bool
}

// Plan returns the layout the optimizer chose, for inspection and tuning.
func (ix *Index) Plan() PlanSummary {
	p := ix.inner.Plan()
	sum := PlanSummary{
		Cuts:                   append([]float64(nil), p.Cuts...),
		Delta:                  p.Delta,
		ExpectedWorstRecall:    p.WorstRecall,
		ExpectedWorstPrecision: p.WorstPrecision,
		RecallMet:              p.RecallMet,
	}
	for _, fi := range ix.inner.FilterIndexes() {
		sum.FilterIndexes = append(sum.FilterIndexes, FilterIndexSummary{
			Point:       fi.Point,
			Kind:        fi.Kind.String(),
			Tables:      fi.Tables,
			SampledBits: fi.R,
		})
	}
	return sum
}

// Distribution returns the similarity histogram the index was tuned to,
// with the given resolution collapsed to n points (n <= 0 returns the raw
// bin count). Values are normalized masses per bin.
func (ix *Index) Distribution() []float64 {
	h := ix.inner.Distribution()
	out := make([]float64, h.Bins())
	total := h.Total()
	if total == 0 {
		return out
	}
	n := h.Bins()
	for i := 0; i < n; i++ {
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		out[i] = h.Mass(lo, hi) / total
	}
	return out
}

// Len returns the number of live sets in the index (inserts minus
// removals).
func (ix *Index) Len() int { return ix.inner.Len() }

// Internal exposes the underlying engine for benchmark and experiment
// code inside this module. It is not part of the stable API.
func (ix *Index) Internal() *engine.Engine { return ix.inner }

// Sets returns a copy of the collection's set views (internal use by the
// benchmark harness).
func (ix *Index) Sets() []set.Set {
	ix.coll.mu.Lock()
	defer ix.coll.mu.Unlock()
	out := make([]set.Set, len(ix.coll.sets))
	copy(out, ix.coll.sets)
	return out
}

// EstimateDistribution estimates the collection's similarity distribution
// without building an index — useful for choosing a budget before Build.
// It returns normalized per-bin masses over [0, 1].
func EstimateDistribution(c *Collection, bins, samplePairs int, seed int64) ([]float64, error) {
	c.mu.Lock()
	sets := make([]set.Set, len(c.sets))
	copy(sets, c.sets)
	c.mu.Unlock()
	if len(sets) < 2 {
		return nil, fmt.Errorf("ssr: need at least 2 sets")
	}
	if samplePairs <= 0 {
		samplePairs = 20000
	}
	maxPairs := len(sets) * (len(sets) - 1) / 2
	if samplePairs > maxPairs {
		samplePairs = maxPairs
	}
	h, err := simdist.SamplePairs(sets, samplePairs, bins, seed)
	if err != nil {
		return nil, err
	}
	out := make([]float64, h.Bins())
	total := h.Total()
	n := h.Bins()
	for i := 0; i < n; i++ {
		out[i] = h.Mass(float64(i)/float64(n), float64(i+1)/float64(n))
		if total > 0 {
			out[i] /= total
		}
	}
	return out, nil
}

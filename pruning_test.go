package ssr

import (
	"fmt"
	"testing"
)

// Shard-pruning soundness tests. The engine may answer a scatter query
// without probing shards whose summaries prove they cannot contribute
// (internal/engine/prune.go). The contract under test: the match list is
// byte-identical with pruning forced on vs off, on every path (range,
// batch, top-k), at every shard count, across mutations, retunes, and
// durable recovery — pruning changes accounting, never answers.
//
// Whole-shard pruning fires in sparse regimes — shards left empty (or
// near-empty) by routing or deletes, and shards whose live set sizes are
// all far from the query's. On large hash-routed collections every shard
// is a statistical sample of the whole, so little prunes; the positive
// controls below therefore use small and size-skewed collections where
// pruning provably triggers, keeping the identity assertion non-vacuous.

// sizeSkewedCollection interleaves huge and tiny sets with no overlap, so
// shards that happen to hold only tiny sets cannot reach a high range
// from a huge query (the size-histogram prune).
func sizeSkewedCollection() *Collection {
	c := NewCollection()
	for i := 0; i < 40; i++ {
		n := 4
		if i%2 == 0 {
			n = 400
		}
		var elems []string
		for j := 0; j < n; j++ {
			elems = append(elems, fmt.Sprintf("x%d-%d", i, j))
		}
		c.Add(elems...)
	}
	return c
}

// sparseCollection has fewer sets than the shard counts under test, so
// some shards are empty (the occupancy prune).
func sparseCollection() *Collection {
	c := NewCollection()
	for i := 0; i < 6; i++ {
		var elems []string
		for j := 0; j < 10; j++ {
			elems = append(elems, fmt.Sprintf("s%d-e%d", i, j))
		}
		c.Add(elems...)
	}
	return c
}

// pruneProbeRanges mixes regimes: narrow high ranges (the pruning
// target), ranges crossing the plan's cut, and the full range.
var pruneProbeRanges = [][2]float64{
	{0.9, 1.0}, {0.75, 0.85}, {0.5, 1.0}, {0.1, 0.9}, {0.0, 1.0},
}

// assertPruningIdentity runs every (sid, range) probe twice — pruning on,
// then off — and fails on any divergence in the match list. It returns
// the total shards pruned, for positive-control assertions.
func assertPruningIdentity(t *testing.T, ix *Index, label string, sids []int) int {
	t.Helper()
	shards := ix.Shards()
	totalPruned := 0
	for _, sid := range sids {
		for _, r := range pruneProbeRanges {
			ix.SetShardPruning(true)
			on, stOn, errOn := ix.QuerySID(sid, r[0], r[1])
			ix.SetShardPruning(false)
			off, stOff, errOff := ix.QuerySID(sid, r[0], r[1])
			ix.SetShardPruning(true)
			if (errOn == nil) != (errOff == nil) {
				t.Fatalf("%s sid=%d [%g,%g]: error diverges with pruning: on=%v off=%v",
					label, sid, r[0], r[1], errOn, errOff)
			}
			if errOn != nil {
				continue
			}
			if fmt.Sprint(on) != fmt.Sprint(off) {
				t.Fatalf("%s sid=%d [%g,%g]: matches diverge with pruning:\n  on  %v\n  off %v",
					label, sid, r[0], r[1], on, off)
			}
			if stOn.ShardsQueried+stOn.ShardsPruned != shards {
				t.Fatalf("%s sid=%d [%g,%g]: queried %d + pruned %d != %d shards",
					label, sid, r[0], r[1], stOn.ShardsQueried, stOn.ShardsPruned, shards)
			}
			if stOff.ShardsPruned != 0 {
				t.Fatalf("%s sid=%d [%g,%g]: pruning off still reported %d pruned shards",
					label, sid, r[0], r[1], stOff.ShardsPruned)
			}
			totalPruned += stOn.ShardsPruned
		}
	}
	return totalPruned
}

// TestShardPruningSoundness is the core identity property across
// collections and shard counts, with positive controls that pruning
// actually fired on the adversarial collections.
func TestShardPruningSoundness(t *testing.T) {
	sids := []int{0, 1, 5, 17, 30, 39}
	collections := []struct {
		name      string
		fresh     func() *Collection
		opt       Options
		sids      []int
		wantPrune bool // must prune at shards=8 or the control is vacuous
	}{
		{"golden", goldenSnapshotCollection, goldenSnapshotOptions(), sids, false},
		{"size-skewed", sizeSkewedCollection, goldenSnapshotOptions(), sids, true},
		{"sparse", sparseCollection, goldenSnapshotOptions(), []int{0, 2, 5}, true},
	}
	for _, tc := range collections {
		for _, shards := range []int{1, 4, 8} {
			opt := tc.opt
			opt.Shards = shards
			ix, err := Build(tc.fresh(), opt)
			if err != nil {
				t.Fatalf("%s shards=%d: Build: %v", tc.name, shards, err)
			}
			label := fmt.Sprintf("%s shards=%d", tc.name, shards)
			pruned := assertPruningIdentity(t, ix, label, tc.sids)
			if shards == 1 && pruned != 0 {
				t.Fatalf("%s: single-shard index pruned %d shards", label, pruned)
			}
			if shards == 8 && tc.wantPrune && pruned == 0 {
				t.Fatalf("%s: positive control failed — no shard was ever pruned", label)
			}
		}
	}
}

// TestShardPruningSoundnessAfterMutations pins the identity through the
// summary's maintenance paths: inserts, deletes, and a full retune
// (which rebuilds every shard's summary from the new plan's buckets).
func TestShardPruningSoundnessAfterMutations(t *testing.T) {
	opt := goldenSnapshotOptions()
	opt.Shards = 4
	ix, err := Build(sizeSkewedCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var added []int
	for i := 0; i < 30; i++ {
		n := 3 + (i%4)*120
		var elems []string
		for j := 0; j < n; j++ {
			elems = append(elems, fmt.Sprintf("mut%d-%d", i, j))
		}
		sid, err := ix.Add(elems...)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, sid)
	}
	for i := 0; i < len(added); i += 3 {
		if err := ix.Remove(added[i]); err != nil {
			t.Fatal(err)
		}
	}
	assertPruningIdentity(t, ix, "post-mutation", []int{0, 1, 17, added[1], added[4]})

	if _, err := ix.Retune(); err != nil {
		t.Fatalf("Retune: %v", err)
	}
	if pruned := assertPruningIdentity(t, ix, "post-retune", []int{0, 1, 17, added[1], added[4]}); pruned == 0 {
		t.Fatal("post-retune positive control failed — no shard was ever pruned")
	}
}

// TestShardPruningSoundnessAfterRecovery pins that summaries rebuilt by
// durable recovery (checkpoint load + WAL replay) prune identically.
func TestShardPruningSoundnessAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := goldenSnapshotOptions()
	opt.Shards = 4
	ix, err := CreateDurable(dir, sizeSkewedCollection(), opt, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		var elems []string
		for j := 0; j < 5+(i%3)*150; j++ {
			elems = append(elems, fmt.Sprintf("rec%d-%d", i, j))
		}
		if _, err := ix.Add(elems...); err != nil {
			t.Fatal(err)
		}
	}
	ix.SetShardPruning(false)
	var want [][]Match
	for _, r := range pruneProbeRanges {
		m, _, err := ix.QuerySID(0, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	pruned := assertPruningIdentity(t, re, "recovered", []int{0, 1, 17, 41, 50})
	if pruned == 0 {
		t.Fatal("recovered positive control failed — no shard was ever pruned")
	}
	for i, r := range pruneProbeRanges {
		m, _, err := re.QuerySID(0, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(m) != fmt.Sprint(want[i]) {
			t.Fatalf("range [%g,%g]: recovered pruned answers diverge from pre-crash unpruned answers", r[0], r[1])
		}
	}
}

// TestQueryBatchPruningSoundness: the batch path prunes per (query, shard)
// and splits its worker pool over participating shards only; every entry
// must still answer exactly like its standalone query.
func TestQueryBatchPruningSoundness(t *testing.T) {
	opt := goldenSnapshotOptions()
	opt.Shards = 8
	ix, err := Build(sizeSkewedCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var batch []BatchQuery
	for i := 0; i < 40; i += 5 {
		var elems []string
		n := 4
		if i%2 == 0 {
			n = 400
		}
		for j := 0; j < n; j++ {
			elems = append(elems, fmt.Sprintf("x%d-%d", i, j))
		}
		for _, r := range pruneProbeRanges {
			batch = append(batch, BatchQuery{Elements: elems, Lo: r[0], Hi: r[1]})
		}
	}
	// An invalid entry must keep failing identically with pruning on.
	batch = append(batch, BatchQuery{Elements: []string{"x0-0"}, Lo: 0.9, Hi: 0.1})

	for _, workers := range []int{1, 3, 16} {
		res := ix.QueryBatch(batch, QueryOptions{Workers: workers})
		totalPruned := 0
		for i, r := range res {
			q := batch[i]
			want, _, wantErr := ix.Query(q.Elements, q.Lo, q.Hi)
			if (r.Err == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d entry %d: batch err %v, standalone err %v", workers, i, r.Err, wantErr)
			}
			if r.Err != nil {
				continue
			}
			if fmt.Sprint(r.Matches) != fmt.Sprint(want) {
				t.Fatalf("workers=%d entry %d [%g,%g]: batch matches diverge from standalone:\n  batch %v\n  solo  %v",
					workers, i, q.Lo, q.Hi, r.Matches, want)
			}
			if r.Stats.ShardsQueried+r.Stats.ShardsPruned != 8 {
				t.Fatalf("workers=%d entry %d: queried %d + pruned %d != 8",
					workers, i, r.Stats.ShardsQueried, r.Stats.ShardsPruned)
			}
			totalPruned += r.Stats.ShardsPruned
		}
		if totalPruned == 0 {
			t.Fatalf("workers=%d: batch positive control failed — no shard was ever pruned", workers)
		}
	}
}

// TestTopKPruningSoundness: top-k answers are identical with pruning on
// vs off, and a sparse index (empty shards) demonstrably skips them.
func TestTopKPruningSoundness(t *testing.T) {
	for _, tc := range []struct {
		name      string
		coll      func() *Collection
		sids      []int
		wantPrune bool
	}{
		{"golden", goldenSnapshotCollection, []int{0, 7, 40}, false},
		{"sparse", sparseCollection, []int{0, 3, 5}, true},
	} {
		opt := goldenSnapshotOptions()
		opt.Shards = 8
		ix, err := Build(tc.coll(), opt)
		if err != nil {
			t.Fatal(err)
		}
		totalPruned := 0
		for _, sid := range tc.sids {
			for _, k := range []int{1, 3, 10} {
				ix.SetShardPruning(true)
				on, st, errOn := ix.TopKSID(sid, k)
				ix.SetShardPruning(false)
				off, _, errOff := ix.TopKSID(sid, k)
				ix.SetShardPruning(true)
				if (errOn == nil) != (errOff == nil) {
					t.Fatalf("%s sid=%d k=%d: error diverges: on=%v off=%v", tc.name, sid, k, errOn, errOff)
				}
				if errOn != nil {
					continue
				}
				if fmt.Sprint(on) != fmt.Sprint(off) {
					t.Fatalf("%s sid=%d k=%d: top-k diverges with pruning:\n  on  %v\n  off %v",
						tc.name, sid, k, on, off)
				}
				if st.ShardsQueried+st.ShardsPruned != 8 {
					t.Fatalf("%s sid=%d k=%d: queried %d + pruned %d != 8",
						tc.name, sid, k, st.ShardsQueried, st.ShardsPruned)
				}
				totalPruned += st.ShardsPruned
			}
		}
		if tc.wantPrune && totalPruned == 0 {
			t.Fatalf("%s: top-k positive control failed — no shard was ever pruned", tc.name)
		}
	}
}

package ssr

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// durableBuildOpts keeps durable tests fast and deterministic.
func durableBuildOpts() Options {
	return Options{Budget: 24, MinHashes: 48, Seed: 3}
}

// mutation is one step of a recorded workload, replayable against any
// index.
type mutation struct {
	insert []string // nil means delete
	delete int
}

// workloadOps is a mixed insert/delete sequence over the bookstore
// collection's element vocabulary.
func workloadOps(n int) []mutation {
	var ops []mutation
	next := 65 // bookstore() seeds 65 sets
	for i := 0; i < n; i++ {
		switch {
		case i%5 == 3 && next > 66:
			ops = append(ops, mutation{insert: nil, delete: next - 2})
		default:
			ops = append(ops, mutation{insert: []string{
				fmt.Sprintf("wal-%d-a", i), fmt.Sprintf("wal-%d-b", i), "dune",
			}})
			next++
		}
	}
	return ops
}

// applyOps drives the mutations through the public API.
func applyOps(t *testing.T, ix *Index, ops []mutation) {
	t.Helper()
	for i, op := range ops {
		if op.insert != nil {
			if _, err := ix.Add(op.insert...); err != nil {
				t.Fatalf("op %d: Add: %v", i, err)
			}
		} else {
			if err := ix.Remove(op.delete); err != nil {
				t.Fatalf("op %d: Remove(%d): %v", i, op.delete, err)
			}
		}
	}
}

// saveBytes snapshots an index to memory.
func saveBytes(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// assertSameIndex checks that two indices hold identical state: identical
// snapshots (bit-identical, the acceptance criterion) and identical query
// results.
func assertSameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, want)) {
		t.Fatal("snapshots differ")
	}
	queries := [][]string{
		{"dune", "foundation", "hyperion", "neuromancer"},
		{"wal-0-a", "wal-0-b", "dune"},
		{"cookbook", "gardening", "carpentry"},
	}
	for _, q := range queries {
		a, _, err := want.Query(q, 0.2, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := got.Query(q, 0.2, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %v: %+v vs %+v", q, b, a)
		}
	}
}

func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(30)

	// Reference: pure in-memory index over the same operation sequence.
	ref, err := Build(bookstore(), durableBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	// Durable twin.
	ix, err := CreateDurable(dir, bookstore(), durableBuildOpts(), DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("CreateDurable: %v", err)
	}
	applyOps(t, ix, ops)
	assertSameIndex(t, ix, ref)
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Mutations after close fail; queries keep working.
	if _, err := ix.Add("post-close"); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := ix.Remove(0); err == nil {
		t.Fatal("Remove after Close succeeded")
	}
	if _, _, err := ix.Query([]string{"dune"}, 0.5, 1.0); err != nil {
		t.Fatalf("Query after Close: %v", err)
	}

	// Reopen: state must equal the reference exactly.
	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer re.Close()
	assertSameIndex(t, re, ref)
	// And it accepts further mutations mirroring the reference.
	if _, err := ref.Add("after", "reopen"); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Add("after", "reopen"); err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, re, ref)
}

// TestDurableReopenWithoutClose simulates a crash (no final checkpoint):
// the tail log alone must carry every acknowledged mutation.
func TestDurableReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(20)
	ref, err := Build(bookstore(), durableBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	ix, err := CreateDurable(dir, bookstore(), durableBuildOpts(), DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ix, ops)
	// No Close: drop the index on the floor, as a crash would.
	_ = ix

	re, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("OpenDurable after simulated crash: %v", err)
	}
	defer re.Close()
	assertSameIndex(t, re, ref)
}

// TestDurableAutoCheckpoint drives enough traffic through a tiny
// CheckpointBytes threshold to force several rotations and verifies
// compaction bounds the directory while recovery stays exact.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(120)
	ref, err := Build(bookstore(), durableBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	ix, err := CreateDurable(dir, bookstore(), durableBuildOpts(),
		DurableOptions{Sync: SyncNever, CheckpointBytes: 512, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ix, ops)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Keep=1: at most current + one prior generation of each kind.
	if len(entries) > 4 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("compaction left %d files: %v", len(entries), names)
	}
	re, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameIndex(t, re, ref)
}

func TestDurableOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDurable(filepath.Join(dir, "empty"), DurableOptions{}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("OpenDurable on empty dir: %v, want ErrNoDurableState", err)
	}
	ix, err := CreateDurable(dir, bookstore(), durableBuildOpts(), DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateDurable(dir, bookstore(), durableBuildOpts(), DurableOptions{}); err == nil {
		t.Fatal("CreateDurable over existing state succeeded")
	}
	has, err := HasDurableState(dir)
	if err != nil || !has {
		t.Fatalf("HasDurableState = %v, %v", has, err)
	}
}

func TestNonDurableIndexNoops(t *testing.T) {
	ix, err := Build(bookstore(), durableBuildOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("Close of non-durable index: %v", err)
	}
	if err := ix.Checkpoint(); err == nil {
		t.Fatal("Checkpoint of non-durable index succeeded")
	}
	var nilIx *Index
	if err := nilIx.Close(); err != nil {
		t.Fatalf("Close of nil index: %v", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncInterval.String() != "interval" {
		t.Errorf("SyncInterval.String() = %q", SyncInterval.String())
	}
}

package ssr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/weblog"
	"repro/internal/workload"
)

func TestFromAccessLog(t *testing.T) {
	// Emit a synthetic log with known structure, parse it back, index it,
	// and retrieve the planted near-duplicate clients.
	clients := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4"}
	pages := [][]string{
		{"/a", "/b", "/c", "/d"},
		{"/a", "/b", "/c", "/d"}, // duplicate of client 0
		{"/a", "/x", "/y"},
		{"/p", "/q", "/r"},
	}
	var buf bytes.Buffer
	if err := weblog.EmitSynthetic(&buf, clients, pages); err != nil {
		t.Fatal(err)
	}
	c, gotClients, err := FromAccessLog(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotClients) != 4 || c.Len() != 4 {
		t.Fatalf("clients = %v, len = %d", gotClients, c.Len())
	}
	// Pad so the optimizer has a distribution, then index.
	for i := 0; i < 60; i++ {
		c.Add("/filler-"+string(rune('a'+i%26)), "/filler2-"+string(rune('a'+(i*3)%26)), "/f3-"+string(rune('a'+(i*7)%26)))
	}
	ix, err := Build(c, Options{Budget: 16, MinHashes: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.QuerySID(0, 0.99, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SID == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("duplicate client not retrieved: %v", matches)
	}
}

func TestFromAccessLogEmpty(t *testing.T) {
	if _, _, err := FromAccessLog(strings.NewReader("garbage\n"), 1); err == nil {
		t.Error("garbage log accepted")
	}
}

func TestSimilarPairs(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(300))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection()
	for _, s := range sets {
		c.AddIDs(s.Elems()...)
	}
	ix, err := Build(c, Options{Budget: 30, MinHashes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ix.SimilarPairs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("unordered pair %+v", p)
		}
		if got := sets[p.A].Jaccard(sets[p.B]); got != p.Similarity || got < 0.8 {
			t.Fatalf("pair %+v: true similarity %g", p, got)
		}
	}
	if len(pairs) == 0 {
		t.Error("no pairs found in a mirrored workload")
	}
}

func TestClustersPublic(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(300))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollection()
	for _, s := range sets {
		c.AddIDs(s.Elems()...)
	}
	ix, err := Build(c, Options{Budget: 30, MinHashes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ix.Clusters(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters in a clustered workload")
	}
	seen := map[int]bool{}
	for _, cl := range clusters {
		if len(cl.Members) < 2 {
			t.Errorf("undersized cluster %+v", cl)
		}
		for _, m := range cl.Members {
			if seen[m] {
				t.Fatalf("sid %d in two clusters", m)
			}
			seen[m] = true
		}
	}
}

func TestBulkOpsRejectDeletedIndex(t *testing.T) {
	c := bookstore()
	ix, err := Build(c, Options{Budget: 16, MinHashes: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SimilarPairs(0.8); err == nil {
		t.Error("SimilarPairs on deleted-from index accepted")
	}
	if _, err := ix.Clusters(0.5, 1); err == nil {
		t.Error("Clusters on deleted-from index accepted")
	}
}

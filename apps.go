package ssr

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/join"
	"repro/internal/weblog"
)

// FromAccessLog builds a Collection from a raw NCSA Common/Combined-format
// HTTP access log, one set of distinct request paths per client — exactly
// the preprocessing the paper applied to its web logs. Clients with fewer
// than minPages distinct pages are dropped (minPages <= 1 keeps everyone).
// The returned client list is aligned with the collection's sids.
func FromAccessLog(r io.Reader, minPages int) (*Collection, []string, error) {
	parsed, err := weblog.Parse(r, minPages)
	if err != nil {
		return nil, nil, err
	}
	if len(parsed.Clients) == 0 {
		return nil, nil, fmt.Errorf("ssr: no clients with >= %d pages in log (%d lines, %d malformed)",
			minPages, parsed.Lines, parsed.Malformed)
	}
	c := NewCollection()
	for _, pages := range parsed.Pages {
		c.Add(pages...)
	}
	return c, parsed.Clients, nil
}

// PairMatch is one similar pair from SimilarPairs, with A < B.
type PairMatch struct {
	A, B       int
	Similarity float64
}

// SimilarPairs returns every pair of collection sets with similarity at
// least threshold (a set-similarity self-join), sorted by descending
// similarity. Reported pairs are exact; a pair may be missed with the
// filter's false-negative probability at its similarity level.
func (ix *Index) SimilarPairs(threshold float64) ([]PairMatch, error) {
	if err := ix.requireNoDeletions("SimilarPairs"); err != nil {
		return nil, err
	}
	sets, err := ix.inner.Sets()
	if err != nil {
		return nil, err
	}
	pairs, _, err := join.SelfJoin(sets, join.Options{
		Threshold: threshold,
		Tables:    24,
		MinHashes: ix.inner.Embedder().K(),
		Seed:      1,
	})
	if err != nil {
		return nil, err
	}
	out := make([]PairMatch, len(pairs))
	for i, p := range pairs {
		out[i] = PairMatch{A: int(p.A), B: int(p.B), Similarity: p.Similarity}
	}
	return out, nil
}

// ClusterResult is one leader cluster from Clusters.
type ClusterResult struct {
	// Leader is the sid the cluster grew from.
	Leader int
	// Members holds all member sids including the leader, ascending.
	Members []int
}

// Clusters groups the collection by similarity band using leader
// clustering (each unassigned set pulls in every unassigned set within
// [lo, hi] of it). Sets in no cluster of size >= 2 are omitted.
func (ix *Index) Clusters(lo, hi float64) ([]ClusterResult, error) {
	if err := ix.requireNoDeletions("Clusters"); err != nil {
		return nil, err
	}
	sets, err := ix.inner.Sets()
	if err != nil {
		return nil, err
	}
	res, err := cluster.Leaders(ix.inner, sets, cluster.Options{Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	out := make([]ClusterResult, len(res.Clusters))
	for i, c := range res.Clusters {
		members := make([]int, len(c.Members))
		for j, m := range c.Members {
			members[j] = int(m)
		}
		out[i] = ClusterResult{Leader: int(c.Leader), Members: members}
	}
	return out, nil
}

// requireNoDeletions guards the bulk operations whose sid numbering would
// drift on a deleted-from index.
func (ix *Index) requireNoDeletions(op string) error {
	if ix.inner.NumAllocated() != ix.inner.Len() {
		return fmt.Errorf("ssr: %s requires an index without deletions (%d of %d sids live); rebuild first",
			op, ix.inner.Len(), ix.inner.NumAllocated())
	}
	return nil
}

package ssr

import (
	"bytes"
	"fmt"
	"testing"
)

// signingSweepConfigs is the matrix the cross-family invariants are pinned
// over: the classic-64 baseline, b-bit packed classic, and SuperMinHash at
// full and packed widths.
func signingSweepConfigs() []SigningOptions {
	return []SigningOptions{
		{}, // classic-64, the historical layout
		{Family: "classic", BitsPerHash: 8},
		{Family: "classic", BitsPerHash: 4},
		{Family: "classic", BitsPerHash: 1},
		{Family: "superminhash"},
		{Family: "superminhash", BitsPerHash: 4},
	}
}

func signingLabel(s SigningOptions) string {
	fam := s.Family
	if fam == "" {
		fam = "classic"
	}
	bits := s.BitsPerHash
	if bits == 0 {
		bits = 64
	}
	return fmt.Sprintf("%s/%d", fam, bits)
}

// TestSigningFamilySweepIdenticalMatches is the tentpole invariant: exact
// query answers are identical for every signing family at every shard
// count, because candidate generation and verification never touch the
// stored (family-governed) representation.
func TestSigningFamilySweepIdenticalMatches(t *testing.T) {
	queries := shardSweepQueries()
	var want [][]Match
	for _, signing := range signingSweepConfigs() {
		for _, shards := range []int{1, 3} {
			opt := goldenSnapshotOptions()
			opt.Shards = shards
			opt.Signing = signing
			ix, err := Build(goldenSnapshotCollection(), opt)
			if err != nil {
				t.Fatalf("%s shards=%d: Build: %v", signingLabel(signing), shards, err)
			}
			var got [][]Match
			total := 0
			for qi, q := range queries {
				matches, _, err := ix.Query(q, 0.3, 1.0)
				if err != nil {
					t.Fatalf("%s shards=%d query %d: %v", signingLabel(signing), shards, qi, err)
				}
				got = append(got, matches)
				total += len(matches)
			}
			if total == 0 {
				t.Fatalf("%s shards=%d: sweep found no matches at all", signingLabel(signing), shards)
			}
			if want == nil {
				want = got
				continue
			}
			for qi := range queries {
				if fmt.Sprint(got[qi]) != fmt.Sprint(want[qi]) {
					t.Fatalf("%s shards=%d query %d: matches diverge from classic-64 single-shard answer:\n  got  %v\n  want %v",
						signingLabel(signing), shards, qi, got[qi], want[qi])
				}
			}
		}
	}
}

// TestSigningFamilySnapshotRoundTrip saves and reloads each non-default
// family: the reload must answer identically, report the same family
// configuration, and re-serialize byte-for-byte (Save → Load → Save is a
// fixed point, including the family trailer).
func TestSigningFamilySnapshotRoundTrip(t *testing.T) {
	queries := shardSweepQueries()
	for _, signing := range signingSweepConfigs() {
		opt := goldenSnapshotOptions()
		opt.Signing = signing
		ix, err := Build(goldenSnapshotCollection(), opt)
		if err != nil {
			t.Fatalf("%s: Build: %v", signingLabel(signing), err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", signingLabel(signing), err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Load: %v", signingLabel(signing), err)
		}
		var buf2 bytes.Buffer
		if err := loaded.Save(&buf2); err != nil {
			t.Fatalf("%s: re-Save: %v", signingLabel(signing), err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: Save → Load → Save is not a fixed point (%d vs %d bytes)",
				signingLabel(signing), buf.Len(), buf2.Len())
		}
		if got, want := loaded.Internal().SigningConfig(), ix.Internal().SigningConfig(); got != want {
			t.Fatalf("%s: signing config lost in round trip: %+v vs %+v", signingLabel(signing), got, want)
		}
		for qi, q := range queries {
			m1, s1, err := ix.Query(q, 0.3, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			m2, s2, err := loaded.Query(q, 0.3, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(m1) != fmt.Sprint(m2) {
				t.Fatalf("%s query %d: reload answers differ", signingLabel(signing), qi)
			}
			if s1.SignatureBytesPerSet != s2.SignatureBytesPerSet {
				t.Fatalf("%s query %d: SignatureBytesPerSet differs after reload: %d vs %d",
					signingLabel(signing), qi, s1.SignatureBytesPerSet, s2.SignatureBytesPerSet)
			}
		}
	}
}

// TestSigningFamilyMutationParity drives the same insert/delete stream
// through a classic-64 index and each non-default family and requires
// identical exact answers afterwards — this exercises the non-recoverable
// Delete path (fetch + re-sign before the store forgets the set) and the
// packed Insert path.
func TestSigningFamilyMutationParity(t *testing.T) {
	queries := shardSweepQueries()
	mutate := func(ix *Index) error {
		for i := 0; i < 6; i++ {
			elems := []string{"e0", "e1", "e2", "e3", fmt.Sprintf("m%d", i)}
			if _, err := ix.Add(elems...); err != nil {
				return err
			}
		}
		for _, sid := range []int{3, 17, 60, 121} {
			if err := ix.Remove(sid); err != nil {
				return err
			}
		}
		return nil
	}
	var want [][]Match
	for _, signing := range signingSweepConfigs() {
		opt := goldenSnapshotOptions()
		opt.Signing = signing
		ix, err := Build(goldenSnapshotCollection(), opt)
		if err != nil {
			t.Fatalf("%s: Build: %v", signingLabel(signing), err)
		}
		if err := mutate(ix); err != nil {
			t.Fatalf("%s: mutating: %v", signingLabel(signing), err)
		}
		var got [][]Match
		for qi, q := range queries {
			matches, _, err := ix.Query(q, 0.3, 1.0)
			if err != nil {
				t.Fatalf("%s query %d: %v", signingLabel(signing), qi, err)
			}
			got = append(got, matches)
		}
		if want == nil {
			want = got
			continue
		}
		for qi := range queries {
			if fmt.Sprint(got[qi]) != fmt.Sprint(want[qi]) {
				t.Fatalf("%s query %d: post-mutation matches diverge from classic-64:\n  got  %v\n  want %v",
					signingLabel(signing), qi, got[qi], want[qi])
			}
		}
	}
}

// TestSigningStatsSurface checks the public Stats carry the family's
// screening accounting: ScreenedFraction = Screened/Candidates and a
// packed family reports the shrunken signature footprint.
func TestSigningStatsSurface(t *testing.T) {
	opt := goldenSnapshotOptions()
	opt.Signing = SigningOptions{Family: "classic", BitsPerHash: 4}
	ix, err := Build(goldenSnapshotCollection(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// k=24 at 4 bits/hash packs into 2 words = 16 bytes; classic-64 would
	// be 24·8 = 192 — a 12× cut.
	if got := ix.Internal().SignatureBytesPerSet(); got != 16 {
		t.Fatalf("SignatureBytesPerSet = %d, want 16", got)
	}
	_, stats, err := ix.QueryWithOptions(shardSweepQueries()[0], 0.3, 1.0, QueryOptions{Screen: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SignatureBytesPerSet != 16 {
		t.Fatalf("Stats.SignatureBytesPerSet = %d, want 16", stats.SignatureBytesPerSet)
	}
	if stats.Candidates > 0 {
		want := float64(stats.Screened) / float64(stats.Candidates)
		if stats.ScreenedFraction != want {
			t.Fatalf("ScreenedFraction = %g, want %g", stats.ScreenedFraction, want)
		}
	}
}

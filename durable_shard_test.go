package ssr

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durableShardedBuildOpts is durableBuildOpts plus sharding.
func durableShardedBuildOpts(shards int) Options {
	o := durableBuildOpts()
	o.Shards = shards
	return o
}

// TestDurableShardedLifecycle mirrors TestDurableLifecycle on a 3-shard
// index: the durable index tracks an in-memory twin bit-for-bit, survives
// close/reopen, and the directory uses the sharded layout (MANIFEST plus
// one subdirectory per shard).
func TestDurableShardedLifecycle(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(30)

	ref, err := Build(bookstore(), durableShardedBuildOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(3), DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("CreateDurable: %v", err)
	}
	applyOps(t, ix, ops)
	assertSameIndex(t, ix, ref)

	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatalf("sharded bootstrap wrote no MANIFEST: %v", err)
	}
	for si := 0; si < 3; si++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%03d", si))
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("shard dir %s: %v", sub, err)
		}
		var hasCkpt bool
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "checkpoint-") {
				hasCkpt = true
			}
		}
		if !hasCkpt {
			t.Fatalf("shard dir %s holds no checkpoint", sub)
		}
	}

	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := ix.Add("post-close"); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := ix.Remove(0); err == nil {
		t.Fatal("Remove after Close succeeded")
	}
	if _, _, err := ix.Query([]string{"dune"}, 0.5, 1.0); err != nil {
		t.Fatalf("Query after Close: %v", err)
	}

	re, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer re.Close()
	if re.Shards() != 3 {
		t.Fatalf("reopened with %d shards, want 3", re.Shards())
	}
	assertSameIndex(t, re, ref)
	if _, err := ref.Add("after", "reopen"); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Add("after", "reopen"); err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, re, ref)
}

// TestDurableShardedReopenWithoutClose simulates a whole-process crash (no
// final checkpoint on any shard): every shard's tail log alone must carry
// its acknowledged mutations.
func TestDurableShardedReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(20)
	ref, err := Build(bookstore(), durableShardedBuildOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(4), DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ix, ops)
	// No Close: drop the index on the floor, as a crash would.
	_ = ix

	re, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("OpenDurable after simulated crash: %v", err)
	}
	defer re.Close()
	assertSameIndex(t, re, ref)
}

// liveOpSIDs simulates which workload sids are live after every op has
// been applied except the target shard's ops at per-shard rank >= j. Both
// the insert and the delete of a sid route to the same shard (routing is
// by sid), so per-shard prefixes are internally consistent.
func liveOpSIDs(ops []crashOp, owner []int, target, j int) map[int]bool {
	live := make(map[int]bool)
	rank := 0
	for i, op := range ops {
		applied := true
		if owner[i] == target {
			applied = rank < j
			rank++
		}
		if !applied {
			continue
		}
		if op.elements != nil {
			live[op.sid] = true
		} else {
			delete(live, op.sid)
		}
	}
	return live
}

// TestDurableShardedCrashPrefixRecovery truncates ONE shard's tail log at
// every byte boundary and recovers: the result must always be "every
// other shard complete, the damaged shard at some prefix of its own log",
// the prefix must grow monotonically with the truncation point, and no
// delete inside the recovered prefix may resurrect — neither in storage
// nor in the filter tables.
func TestDurableShardedCrashPrefixRecovery(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	ops := crashWorkload()

	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(shards),
		DurableOptions{Sync: SyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	applyCrashOps(t, ix, ops)
	owner := make([]int, len(ops))
	for i, op := range ops {
		owner[i] = ix.Internal().ShardOf(uint32(op.sid))
	}
	// Simulated crash: release every shard's log without the shutdown
	// checkpoint, so all mutations live only in the tail logs.
	for _, sh := range ix.dur.shards {
		if err := sh.log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ix.dur.closed.Store(true)

	// Damage the shard that owns the most operations (and at least one
	// delete, so resurrection is actually exercised).
	perShard := make([]int, shards)
	hasDelete := make([]bool, shards)
	for i := range ops {
		perShard[owner[i]]++
		if ops[i].elements == nil {
			hasDelete[owner[i]] = true
		}
	}
	target := 0
	for si := 1; si < shards; si++ {
		if hasDelete[si] && (!hasDelete[target] || perShard[si] > perShard[target]) {
			target = si
		}
	}
	if !hasDelete[target] {
		t.Fatalf("no shard owns a delete (distribution %v); grow the workload", perShard)
	}
	targetOps := perShard[target]

	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%03d", target))
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	walFile := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			if walFile != "" {
				t.Fatalf("expected one wal segment in %s, found %q and %q", shardDir, walFile, e.Name())
			}
			walFile = e.Name()
		}
	}
	if walFile == "" {
		t.Fatalf("no wal segment in %s", shardDir)
	}
	logData, err := os.ReadFile(filepath.Join(shardDir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	// checkTrial returns every prefix length of the target shard's log
	// whose resulting state matches the recovered liveness. Distinct
	// prefixes can be observationally identical (a truncated insert+delete
	// pair of the same sid leaves no trace), so the match is a set.
	checkTrial := func(label string, re *Index) []int {
		t.Helper()
		bySID, err := re.Internal().SetsBySID()
		if err != nil {
			t.Fatalf("%s: SetsBySID: %v", label, err)
		}
		liveGot := make(map[int]bool)
		for sid, s := range bySID {
			if s == nil {
				continue
			}
			if sid < 65 {
				continue // bookstore base set, always live
			}
			liveGot[sid] = true
		}
		base := 0
		for sid := 0; sid < 65 && sid < len(bySID); sid++ {
			if bySID[sid] != nil {
				base++
			}
		}
		if base != 65 {
			t.Fatalf("%s: only %d of 65 base sets recovered", label, base)
		}
		var cands []int
		for cand := 0; cand <= targetOps; cand++ {
			want := liveOpSIDs(ops, owner, target, cand)
			if len(want) != len(liveGot) {
				continue
			}
			same := true
			for sid := range want {
				if !liveGot[sid] {
					same = false
					break
				}
			}
			if same {
				cands = append(cands, cand)
			}
		}
		if len(cands) == 0 {
			t.Fatalf("%s: recovered liveness %v matches no prefix of shard %d's log", label, liveGot, target)
		}
		// Non-resurrection: deletes inside the longest matching prefix
		// must not answer queries for their exact elements. (If the true
		// prefix is shorter, those sids were never inserted and the probe
		// must still come back empty.)
		j := cands[len(cands)-1]
		rank := 0
		for i, op := range ops {
			inPrefix := owner[i] != target || rank < j
			if owner[i] == target {
				rank++
			}
			if op.elements != nil || !inPrefix {
				continue
			}
			elems := ops[opIndexOfInsert(ops, op.sid)].elements
			matches, _, err := re.Query(elems, 0.999, 1.0)
			if err != nil {
				t.Fatalf("%s: probe query: %v", label, err)
			}
			for _, m := range matches {
				if m.SID == op.sid {
					t.Fatalf("%s: deleted sid %d resurrected (prefix %d)", label, op.sid, j)
				}
			}
		}
		return cands
	}

	scratch := t.TempDir()
	prevJ := 0
	for cut := 0; cut <= len(logData); cut++ {
		trial := filepath.Join(scratch, fmt.Sprintf("cut-%d", cut))
		copyDir(t, dir, trial)
		if err := os.WriteFile(filepath.Join(trial, fmt.Sprintf("shard-%03d", target), walFile), logData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurable(trial, DurableOptions{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: OpenDurable: %v", cut, err)
		}
		cands := checkTrial(fmt.Sprintf("cut %d", cut), re)
		// Monotone: some matching prefix must be at least as long as the
		// shortest prefix the previous (shorter) truncation guaranteed.
		j := -1
		for _, c := range cands {
			if c >= prevJ {
				j = c
				break
			}
		}
		if j < 0 {
			t.Fatalf("cut %d: recovered prefix shrank below %d (matches %v) as more bytes survived", cut, prevJ, cands)
		}
		prevJ = j
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		if err := os.RemoveAll(trial); err != nil {
			t.Fatal(err)
		}
	}
	if prevJ != targetOps {
		t.Fatalf("full log recovered prefix %d of %d shard-%d operations", prevJ, targetOps, target)
	}
}

// TestDurableShardedSnapshotBitFlip flips a byte in one shard's tail log:
// recovery must degrade to a prefix, never fail or corrupt other shards.
func TestDurableShardedBitFlips(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	ops := crashWorkload()
	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(shards),
		DurableOptions{Sync: SyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	applyCrashOps(t, ix, ops)
	for _, sh := range ix.dur.shards {
		if err := sh.log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ix.dur.closed.Store(true)

	shardDir := filepath.Join(dir, "shard-000")
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	walFile := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			walFile = e.Name()
		}
	}
	if walFile == "" {
		t.Fatal("no wal segment in shard-000")
	}
	logData, err := os.ReadFile(filepath.Join(shardDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	// Every 7th offset keeps the sweep fast while still hitting every
	// frame section (headers, lengths, payloads, checksums).
	for off := 0; off < len(logData); off += 7 {
		trial := filepath.Join(scratch, "flip")
		copyDir(t, dir, trial)
		corrupt := bytes.Clone(logData)
		corrupt[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(trial, "shard-000", walFile), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurable(trial, DurableOptions{Sync: SyncNever})
		if err != nil {
			t.Fatalf("flip at %d: OpenDurable: %v", off, err)
		}
		// The index must be functional whatever survived.
		if _, _, err := re.Query([]string{"dune"}, 0.2, 1.0); err != nil {
			t.Fatalf("flip at %d: Query: %v", off, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("flip at %d: Close: %v", off, err)
		}
		if err := os.RemoveAll(trial); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableShardedPrealloc: with WAL preallocation enabled, each shard's
// live segment carries zero padding on disk; a copy taken mid-flight (the
// crash image, padding included) recovers to exactly the acknowledged
// state.
func TestDurableShardedPrealloc(t *testing.T) {
	dir := t.TempDir()
	ops := workloadOps(25)
	ref, err := Build(bookstore(), durableShardedBuildOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	const chunk = 1 << 16
	ix, err := CreateDurable(dir, bookstore(), durableShardedBuildOpts(3),
		DurableOptions{Sync: SyncAlways, PreallocBytes: chunk})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ix, ops)

	// Snapshot the directory while the index is live: every shard's open
	// segment should be padded out to the preallocation chunk.
	crash := t.TempDir()
	copyDir(t, dir, crash)
	padded := 0
	for si := 0; si < 3; si++ {
		sub := filepath.Join(crash, fmt.Sprintf("shard-%03d", si))
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), "wal-") {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size()%chunk == 0 {
				padded++
			}
		}
	}
	if padded == 0 {
		t.Fatal("no shard segment shows preallocation padding")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(crash, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("OpenDurable on padded crash image: %v", err)
	}
	defer re.Close()
	assertSameIndex(t, re, ref)

	// The cleanly closed original must also reopen identically: Close trims
	// the padding, so both images describe the same logical log.
	re2, err := OpenDurable(dir, DurableOptions{Sync: SyncNever})
	if err != nil {
		t.Fatalf("OpenDurable on closed dir: %v", err)
	}
	defer re2.Close()
	assertSameIndex(t, re2, ref)
}

// Package ecc implements the error-correcting codes used to embed min-hash
// signatures into Hamming space (Section 3.2 of the paper).
//
// The construction needs a code in which every pair of distinct codewords is
// at Hamming distance exactly m/2, where m is the code length: then a vector
// of k b-bit min-hash values that agree in s·k coordinates maps to a D = m·k
// bit string at Hamming distance (1-s)/2·D (Theorem 1).
//
// The Hadamard code has this property exactly: the codeword for a b-bit
// message u has length m = 2^b, with bit x equal to the GF(2) inner product
// <u, x>. For u != w, <u,x> and <w,x> differ on exactly half of all x, so
// d(C(u), C(w)) = 2^(b-1) = m/2 for every distinct pair.
//
// The paper mentions simplex codes; the simplex code is the Hadamard code
// with the x = 0 column (which is constantly zero) punctured, giving length
// 2^b - 1 and pairwise distance exactly 2^(b-1) — i.e. (m+1)/2. Both are
// provided; Hadamard is the default since its distance is exactly m/2.
package ecc

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// Code is a binary error-correcting code over b-bit messages with the
// equidistance property required by Theorem 1.
type Code interface {
	// MessageBits returns b, the number of message bits encoded.
	MessageBits() int
	// Length returns m, the codeword length in bits.
	Length() int
	// Distance returns the (exact) pairwise distance between any two
	// distinct codewords.
	Distance() int
	// Bit returns bit pos of the codeword for message v. Only the low
	// MessageBits bits of v are used. This is the lazy access path: filter
	// indices sample individual codeword bits without materialising the
	// whole embedded vector.
	Bit(v uint64, pos int) byte
	// AppendCodeword appends the codeword bits for message v to dst
	// starting at bit offset off. dst must have at least off+Length bits.
	AppendCodeword(dst bitvec.Vector, off int, v uint64)
}

// parity returns the GF(2) inner product <u, x> of two words.
func parity(u, x uint64) byte {
	return byte(bits.OnesCount64(u&x) & 1)
}

// Hadamard is the length-2^b Hadamard code. Distinct codewords are at
// distance exactly 2^(b-1) = m/2.
type Hadamard struct {
	b    int
	m    int
	mask uint64
}

// NewHadamard returns the Hadamard code over b-bit messages, 1 <= b <= 20.
// The upper bound keeps codewords (2^b bits) to a sane size.
func NewHadamard(b int) (*Hadamard, error) {
	if b < 1 || b > 20 {
		return nil, fmt.Errorf("ecc: hadamard message bits must be in [1,20], got %d", b)
	}
	return &Hadamard{b: b, m: 1 << uint(b), mask: (1 << uint(b)) - 1}, nil
}

// MessageBits returns b.
func (h *Hadamard) MessageBits() int { return h.b }

// Length returns m = 2^b.
func (h *Hadamard) Length() int { return h.m }

// Distance returns 2^(b-1), exactly half the length.
func (h *Hadamard) Distance() int { return h.m / 2 }

// Bit returns <v, pos> over GF(2).
func (h *Hadamard) Bit(v uint64, pos int) byte {
	return parity(v&h.mask, uint64(pos))
}

// AppendCodeword writes the 2^b codeword bits of v into dst at offset off.
func (h *Hadamard) AppendCodeword(dst bitvec.Vector, off int, v uint64) {
	v &= h.mask
	for x := 0; x < h.m; x++ {
		if parity(v, uint64(x)) == 1 {
			dst.Set(off + x)
		}
	}
}

// Decode recovers the b-bit message from a clean Hadamard codeword: message
// bit i is codeword bit 2^i, because <u, 2^i> = u_i. This is exact-inverse
// decoding (no error correction); it exists so the encode path is testable
// as a round trip. It errors if cw is shorter than the code length or is
// not a codeword at all (bit 0, the <u,0> coordinate, must be zero).
func (h *Hadamard) Decode(cw bitvec.Vector) (uint64, error) {
	if cw.Len() < h.m {
		return 0, fmt.Errorf("ecc: codeword has %d bits, hadamard(b=%d) needs %d", cw.Len(), h.b, h.m)
	}
	if cw.Bit(0) != 0 {
		return 0, fmt.Errorf("ecc: not a hadamard codeword (bit 0 is set)")
	}
	var v uint64
	for i := 0; i < h.b; i++ {
		if cw.Bit(1<<uint(i)) == 1 {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// Simplex is the length-(2^b - 1) simplex code: the Hadamard code with the
// all-zero coordinate punctured. Distinct codewords are at distance exactly
// 2^(b-1) (slightly more than half the length, since the length is odd).
type Simplex struct {
	b    int
	m    int
	mask uint64
}

// NewSimplex returns the simplex code over b-bit messages, 1 <= b <= 20.
func NewSimplex(b int) (*Simplex, error) {
	if b < 1 || b > 20 {
		return nil, fmt.Errorf("ecc: simplex message bits must be in [1,20], got %d", b)
	}
	return &Simplex{b: b, m: 1<<uint(b) - 1, mask: (1 << uint(b)) - 1}, nil
}

// MessageBits returns b.
func (s *Simplex) MessageBits() int { return s.b }

// Length returns m = 2^b - 1.
func (s *Simplex) Length() int { return s.m }

// Distance returns 2^(b-1).
func (s *Simplex) Distance() int { return (s.m + 1) / 2 }

// Bit returns bit pos of the codeword: <v, pos+1> (position 0 of the
// Hadamard code is punctured).
func (s *Simplex) Bit(v uint64, pos int) byte {
	return parity(v&s.mask, uint64(pos+1))
}

// AppendCodeword writes the 2^b - 1 codeword bits of v into dst at offset off.
func (s *Simplex) AppendCodeword(dst bitvec.Vector, off int, v uint64) {
	v &= s.mask
	for x := 1; x <= s.m; x++ {
		if parity(v, uint64(x)) == 1 {
			dst.Set(off + x - 1)
		}
	}
}

// Identity is the trivial "code" that emits the b message bits unchanged —
// the straightforward embedding the paper shows to be broken (Example 1:
// disagreeing min-hash values still share bits). It exists so tests and
// benchmarks can demonstrate the distortion the real codes remove.
type Identity struct{ b int }

// NewIdentity returns the identity mapping over b-bit messages.
func NewIdentity(b int) (*Identity, error) {
	if b < 1 || b > 64 {
		return nil, fmt.Errorf("ecc: identity message bits must be in [1,64], got %d", b)
	}
	return &Identity{b: b}, nil
}

// MessageBits returns b.
func (c *Identity) MessageBits() int { return c.b }

// Length returns b: the message is its own codeword.
func (c *Identity) Length() int { return c.b }

// Distance returns 1, the minimum distance of the identity map.
func (c *Identity) Distance() int { return 1 }

// Bit returns message bit pos.
func (c *Identity) Bit(v uint64, pos int) byte {
	return byte((v >> uint(pos)) & 1)
}

// AppendCodeword writes the b message bits of v into dst at offset off.
func (c *Identity) AppendCodeword(dst bitvec.Vector, off int, v uint64) {
	for i := 0; i < c.b; i++ {
		if (v>>uint(i))&1 == 1 {
			dst.Set(off + i)
		}
	}
}

// Encode materialises the full codeword of v as a Vector. It is a
// convenience for tests; production paths use Bit or AppendCodeword.
func Encode(c Code, v uint64) bitvec.Vector {
	out := bitvec.New(c.Length())
	c.AppendCodeword(out, 0, v)
	return out
}

package ecc

import (
	"testing"
)

// FuzzHadamardRoundTrip checks, for arbitrary (b, v, w) triples, the two
// properties Theorem 1 rests on: Encode→Decode is the identity on b-bit
// messages, and any two distinct codewords sit at Hamming distance exactly
// m/2 = 2^(b-1). It also cross-checks the lazy Bit access path against the
// materialised codeword (filter indices only ever use Bit, tests mostly use
// Encode; they must agree bit for bit).
func FuzzHadamardRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint64(1))
	f.Add(uint8(8), uint64(0x5a), uint64(0xa5))
	f.Add(uint8(12), uint64(4095), uint64(0))
	f.Add(uint8(20), uint64(123456), uint64(654321))
	f.Add(uint8(255), uint64(1), uint64(2)) // b out of range: constructor must reject
	f.Fuzz(func(t *testing.T, b uint8, v, w uint64) {
		h, err := NewHadamard(int(b))
		if err != nil {
			if b >= 1 && b <= 20 {
				t.Fatalf("NewHadamard(%d) rejected a valid b: %v", b, err)
			}
			return
		}

		v &= uint64(1)<<b - 1
		w &= uint64(1)<<b - 1

		// Round trip: Decode(Encode(v)) == v.
		cv := Encode(h, v)
		got, err := h.Decode(cv)
		if err != nil {
			t.Fatalf("b=%d v=%#x: decode: %v", b, v, err)
		}
		if got != v {
			t.Fatalf("b=%d: round trip %#x -> %#x", b, v, got)
		}

		// Lazy Bit agrees with the materialised codeword everywhere.
		for pos := 0; pos < h.Length(); pos++ {
			if h.Bit(v, pos) != cv.Bit(pos) {
				t.Fatalf("b=%d v=%#x: Bit(%d)=%d but codeword bit is %d",
					b, v, pos, h.Bit(v, pos), cv.Bit(pos))
			}
		}

		// Equidistance: distinct messages sit at distance exactly m/2.
		cw := Encode(h, w)
		dist := 0
		for pos := 0; pos < h.Length(); pos++ {
			if cv.Bit(pos) != cw.Bit(pos) {
				dist++
			}
		}
		switch {
		case v == w && dist != 0:
			t.Fatalf("b=%d: equal messages %#x at distance %d", b, v, dist)
		case v != w && dist != h.Distance():
			t.Fatalf("b=%d: messages %#x,%#x at distance %d, want exactly %d",
				b, v, w, dist, h.Distance())
		}
	})
}

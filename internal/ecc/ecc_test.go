package ecc

import (
	"testing"

	"repro/internal/bitvec"
)

func TestHadamardEquidistance(t *testing.T) {
	// The load-bearing property (Theorem 1's requirement): every pair of
	// distinct codewords is at distance exactly m/2.
	for _, b := range []int{1, 2, 3, 4, 6} {
		code, err := NewHadamard(b)
		if err != nil {
			t.Fatal(err)
		}
		m := code.Length()
		if m != 1<<uint(b) {
			t.Fatalf("b=%d: length %d, want %d", b, m, 1<<uint(b))
		}
		n := uint64(1) << uint(b)
		words := make([]bitvec.Vector, n)
		for v := uint64(0); v < n; v++ {
			words[v] = Encode(code, v)
		}
		for u := uint64(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				d := words[u].HammingDistance(words[v])
				if d != m/2 {
					t.Fatalf("b=%d: d(C(%d), C(%d)) = %d, want %d", b, u, v, d, m/2)
				}
			}
		}
	}
}

func TestSimplexEquidistance(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 6} {
		code, err := NewSimplex(b)
		if err != nil {
			t.Fatal(err)
		}
		if code.Length() != 1<<uint(b)-1 {
			t.Fatalf("b=%d: length %d", b, code.Length())
		}
		n := uint64(1) << uint(b)
		want := 1 << uint(b-1)
		for u := uint64(0); u < n; u++ {
			cu := Encode(code, u)
			for v := u + 1; v < n; v++ {
				if d := cu.HammingDistance(Encode(code, v)); d != want {
					t.Fatalf("b=%d: d(C(%d), C(%d)) = %d, want %d", b, u, v, d, want)
				}
			}
		}
	}
}

func TestBitMatchesAppendCodeword(t *testing.T) {
	codes := []Code{}
	if h, err := NewHadamard(5); err == nil {
		codes = append(codes, h)
	}
	if s, err := NewSimplex(5); err == nil {
		codes = append(codes, s)
	}
	if id, err := NewIdentity(5); err == nil {
		codes = append(codes, id)
	}
	for _, code := range codes {
		for v := uint64(0); v < 32; v++ {
			full := Encode(code, v)
			for pos := 0; pos < code.Length(); pos++ {
				if got, want := code.Bit(v, pos), full.Bit(pos); got != want {
					t.Fatalf("%T v=%d pos=%d: Bit=%d, codeword=%d", code, v, pos, got, want)
				}
			}
		}
	}
}

func TestHadamardMasksHighBits(t *testing.T) {
	code, _ := NewHadamard(4)
	// Bits above b must be ignored.
	a := Encode(code, 0x5)
	b := Encode(code, 0xF5) // same low 4 bits
	if !a.Equal(b) {
		t.Error("high message bits leaked into the codeword")
	}
}

func TestIdentityIsBroken(t *testing.T) {
	// Example 1 of the paper: under the identity embedding, distinct
	// values still share bits, so the distance is NOT a fixed fraction.
	code, _ := NewIdentity(3)
	d12 := Encode(code, 1).HammingDistance(Encode(code, 2)) // 001 vs 010 → 2
	d13 := Encode(code, 1).HammingDistance(Encode(code, 3)) // 001 vs 011 → 1
	if d12 == d13 {
		t.Error("expected unequal pairwise distances for identity code")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewHadamard(0); err == nil {
		t.Error("Hadamard(0) accepted")
	}
	if _, err := NewHadamard(21); err == nil {
		t.Error("Hadamard(21) accepted")
	}
	if _, err := NewSimplex(0); err == nil {
		t.Error("Simplex(0) accepted")
	}
	if _, err := NewIdentity(65); err == nil {
		t.Error("Identity(65) accepted")
	}
}

func TestDistanceAccessors(t *testing.T) {
	h, _ := NewHadamard(8)
	if h.Distance() != 128 || h.Length() != 256 || h.MessageBits() != 8 {
		t.Errorf("hadamard(8) = (%d,%d,%d)", h.MessageBits(), h.Length(), h.Distance())
	}
	s, _ := NewSimplex(8)
	if s.Distance() != 128 || s.Length() != 255 {
		t.Errorf("simplex(8) = (%d,%d)", s.Length(), s.Distance())
	}
	id, _ := NewIdentity(8)
	if id.Length() != 8 || id.Distance() != 1 {
		t.Errorf("identity(8) = (%d,%d)", id.Length(), id.Distance())
	}
}

func TestAppendCodewordOffset(t *testing.T) {
	code, _ := NewHadamard(3)
	dst := bitvec.New(3 * code.Length())
	code.AppendCodeword(dst, 0, 5)
	code.AppendCodeword(dst, code.Length(), 5)
	code.AppendCodeword(dst, 2*code.Length(), 2)
	// First two codewords identical, third differs in exactly m/2 bits.
	m := code.Length()
	for i := 0; i < m; i++ {
		if dst.Bit(i) != dst.Bit(m+i) {
			t.Fatalf("offset copy differs at bit %d", i)
		}
	}
	diff := 0
	for i := 0; i < m; i++ {
		if dst.Bit(i) != dst.Bit(2*m+i) {
			diff++
		}
	}
	if diff != m/2 {
		t.Errorf("offset codeword distance = %d, want %d", diff, m/2)
	}
}

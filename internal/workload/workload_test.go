package workload

import (
	"testing"

	"repro/internal/set"
	"repro/internal/simdist"
)

func TestGenerateBasics(t *testing.T) {
	sets, err := Generate(Set1Params(500))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 500 {
		t.Fatalf("got %d sets", len(sets))
	}
	for i, s := range sets {
		if s.Len() < 2 {
			t.Errorf("set %d has %d elements", i, s.Len())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("set %d invalid: %v", i, err)
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	a, err := Generate(Set1Params(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Set1Params(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("set %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := Set1Params(50)
	a, _ := Generate(p)
	p.Seed = 999
	b, _ := Generate(p)
	same := 0
	for i := range a {
		if a[i].Equal(b[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical collections")
	}
}

// TestSimilarityDistributionShape checks the property that makes the
// workload a faithful substitute for the paper's logs: the pairwise
// similarity distribution drops sharply as similarity grows, but has a
// non-empty high-similarity tail (mirrors/revisits).
func TestSimilarityDistributionShape(t *testing.T) {
	for name, params := range map[string]Params{
		"set1": Set1Params(600),
		"set2": Set2Params(600),
	} {
		sets, err := Generate(params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := simdist.ExactPairs(sets, 50)
		total := h.Total()
		low := h.Mass(0, 0.2) / total
		mid := h.Mass(0.2, 0.5) / total
		high := h.Mass(0.5, 0.8) / total
		tail := h.Mass(0.8, 1) / total
		if low < mid || mid < high || high < tail {
			t.Errorf("%s: distribution not dropping: low=%.3f mid=%.3f high=%.3f tail=%.3f", name, low, mid, high, tail)
		}
		if tail == 0 {
			t.Errorf("%s: no high-similarity tail; high-similarity queries would be vacuous", name)
		}
		if low < 0.35 {
			t.Errorf("%s: low-similarity mass %.3f, want the bulk at low similarity like web logs", name, low)
		}
	}
}

func TestMirrorsCreateNearDuplicates(t *testing.T) {
	p := Set1Params(300)
	p.MirrorProb = 0.5
	sets, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// With heavy mirroring there must exist pairs above 0.6 similarity.
	found := false
	for i := 0; i < len(sets) && !found; i++ {
		for j := i + 1; j < len(sets); j++ {
			if sets[i].Jaccard(sets[j]) > 0.6 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no near-duplicate pairs despite 50% mirror probability")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Params{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	p := Set1Params(10)
	p.ZipfS = 0.5
	if _, err := Generate(p); err == nil {
		t.Error("ZipfS <= 1 accepted")
	}
	p = Set1Params(10)
	p.NoiseFrac = 1.0
	if _, err := Generate(p); err == nil {
		t.Error("NoiseFrac = 1 accepted")
	}
	p = Set1Params(10)
	p.MirrorProb = 1.0
	if _, err := Generate(p); err == nil {
		t.Error("MirrorProb = 1 accepted")
	}
	p = Set1Params(10)
	p.MirrorNoise = -0.1
	if _, err := Generate(p); err == nil {
		t.Error("negative MirrorNoise accepted")
	}
	p = Set1Params(10)
	p.DepthSigma = -1
	if _, err := Generate(p); err == nil {
		t.Error("negative DepthSigma accepted")
	}
}

func TestGenerateDefaults(t *testing.T) {
	sets, err := Generate(Params{N: 20, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 20 {
		t.Errorf("got %d sets", len(sets))
	}
}

func TestDepthRatioDrivesSimilarity(t *testing.T) {
	// With one topic and no noise, two visitors' sets are nested prefixes:
	// similarity = shallower depth / deeper depth, never zero.
	p := Params{N: 30, Topics: 1, GlobalPages: 10, TopicPages: 500,
		MeanDepth: 50, DepthSigma: 0.8, NoisePool: 100, NoiseFrac: 0, ZipfS: 1.5, Seed: 5}
	sets, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			a, b := sets[i], sets[j]
			want := float64(min(a.Len(), b.Len())) / float64(max(a.Len(), b.Len()))
			got := a.Jaccard(b)
			if got < want-1e-9 || got > want+1e-9 {
				t.Fatalf("pair (%d,%d): similarity %g, want depth ratio %g", i, j, got, want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestElementRanges(t *testing.T) {
	p := Params{N: 50, Topics: 3, GlobalPages: 10, TopicPages: 50,
		MeanDepth: 20, DepthSigma: 0.5, NoisePool: 1000, NoiseFrac: 0.3, ZipfS: 1.5, Seed: 5}
	sets, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	limit := set.Elem(p.GlobalPages + p.Topics*p.TopicPages + p.NoisePool)
	for _, s := range sets {
		for _, e := range s.Elems() {
			if e >= limit {
				t.Fatalf("element %d beyond id space %d", e, limit)
			}
		}
	}
}

func TestQueries(t *testing.T) {
	qs, err := Queries(1000, QueryParams{Count: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if q.SID < 0 || q.SID >= 1000 {
			t.Errorf("query %d sid %d out of range", i, q.SID)
		}
		if q.Lo < 0 || q.Hi > 1 || q.Lo > q.Hi {
			t.Errorf("query %d range [%g,%g] invalid", i, q.Lo, q.Hi)
		}
	}
	fixed, err := Queries(1000, QueryParams{Count: 200, Seed: 3, FixedWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range fixed {
		w := q.Hi - q.Lo
		if w < 0.05-1e-9 || w > 0.3+1e-9 {
			t.Errorf("fixed-width query %d width %g outside default bounds", i, w)
		}
	}
}

func TestQueriesValidation(t *testing.T) {
	if _, err := Queries(0, QueryParams{Count: 5}); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := Queries(10, QueryParams{Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Queries(10, QueryParams{Count: 5, MinWidth: 0.5, MaxWidth: 0.1}); err == nil {
		t.Error("inverted widths accepted")
	}
}

func TestQueriesReproducible(t *testing.T) {
	a, _ := Queries(100, QueryParams{Count: 50, Seed: 7})
	b, _ := Queries(100, QueryParams{Count: 50, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs between identical-seed runs", i)
		}
	}
}

// Package workload generates synthetic set collections and query workloads.
//
// The paper evaluates on two proprietary HTTP-log datasets (the Nagano
// winter-Olympics site and a corporate site), each parsed into 200,000 sets
// of log strings per client IP. Those logs are not available, so this
// package builds the closest synthetic equivalent using a visit-depth
// model: site pages are popularity-ranked, every visitor walks a prefix of
// that ranking (front page and hot links first) whose depth is lognormally
// distributed, deeper visitors branch into one of several topical sections,
// and every visitor adds a personal fringe of long-tail pages. Two
// visitors' similarity is then governed by the ratio of their depths —
// shallow pairs look alike, deep cross-topic pairs diverge — which spreads
// the pairwise-similarity distribution across the whole [0, 1] range with
// most mass at low similarity (the sharp drop the paper reports) and a
// genuine high-similarity tail (shallow visitors and mirrored IPs).
// Everything is seeded and reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/set"
)

// Params controls the generator.
type Params struct {
	// N is the number of sets (visitors).
	N int
	// Topics is the number of site sections deep visitors branch into.
	Topics int
	// GlobalPages is the length of the shared head of the page ranking
	// (front page, navigation, hot content) every visitor walks first.
	GlobalPages int
	// TopicPages is the length of each topic's ranking tail.
	TopicPages int
	// MeanDepth is the mean number of ranked pages a visitor reaches.
	MeanDepth int
	// DepthSigma is the lognormal shape of the depth distribution
	// (0 selects 0.9). Larger values spread visit depths — and therefore
	// pairwise similarities — more widely.
	DepthSigma float64
	// NoisePool is the number of long-tail URLs personal fringes draw
	// from.
	NoisePool int
	// NoiseFrac is the fraction of a visitor's set that is personal
	// fringe rather than ranked prefix.
	NoiseFrac float64
	// ZipfS is the Zipf exponent for fringe-URL popularity (must be > 1;
	// 0 selects 1.4).
	ZipfS float64
	// MirrorProb is the probability that a visitor is generated as a
	// noisy near-copy of an earlier one (revisits under a new IP, NAT
	// pools, mirrors) — extra very-high-similarity mass.
	MirrorProb float64
	// MirrorNoise is the mean fraction of a mirrored set that is
	// resampled (per-mirror fraction drawn from (0, 2·MirrorNoise)).
	MirrorNoise float64
	// Seed makes generation reproducible.
	Seed int64
}

// Set1Params mimics the Olympics-log collection: a huge hot head (every
// visitor hits the event front pages), eight event sections, substantial
// mirroring.
func Set1Params(n int) Params {
	return Params{
		N: n, Topics: 8, GlobalPages: 30, TopicPages: 600,
		MeanDepth: 50, DepthSigma: 1.5,
		NoisePool: 50000, NoiseFrac: 0.15, ZipfS: 1.4,
		MirrorProb: 0.20, MirrorNoise: 0.12, Seed: 101,
	}
}

// Set2Params mimics the corporate-site collection: a smaller shared head,
// more sections, deeper visits, less mirroring.
func Set2Params(n int) Params {
	return Params{
		N: n, Topics: 16, GlobalPages: 20, TopicPages: 800,
		MeanDepth: 65, DepthSigma: 1.3,
		NoisePool: 80000, NoiseFrac: 0.2, ZipfS: 1.3,
		MirrorProb: 0.13, MirrorNoise: 0.15, Seed: 202,
	}
}

func (p Params) withDefaults() (Params, error) {
	if p.N < 1 {
		return p, fmt.Errorf("workload: N must be >= 1, got %d", p.N)
	}
	if p.Topics < 1 {
		p.Topics = 1
	}
	if p.GlobalPages < 1 {
		p.GlobalPages = 20
	}
	if p.TopicPages < 1 {
		p.TopicPages = 500
	}
	if p.MeanDepth < 2 {
		p.MeanDepth = 40
	}
	if p.DepthSigma == 0 {
		p.DepthSigma = 0.9
	}
	if p.DepthSigma < 0 {
		return p, fmt.Errorf("workload: DepthSigma must be >= 0, got %g", p.DepthSigma)
	}
	if p.NoisePool < 1 {
		p.NoisePool = 10000
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.4
	}
	if p.ZipfS <= 1 {
		return p, fmt.Errorf("workload: ZipfS must be > 1, got %g", p.ZipfS)
	}
	if p.NoiseFrac < 0 || p.NoiseFrac >= 1 {
		return p, fmt.Errorf("workload: NoiseFrac must be in [0,1), got %g", p.NoiseFrac)
	}
	if p.MirrorProb < 0 || p.MirrorProb >= 1 {
		return p, fmt.Errorf("workload: MirrorProb must be in [0,1), got %g", p.MirrorProb)
	}
	if p.MirrorNoise < 0 || p.MirrorNoise > 1 {
		return p, fmt.Errorf("workload: MirrorNoise must be in [0,1], got %g", p.MirrorNoise)
	}
	return p, nil
}

// Element id layout: the shared head occupies [0, GlobalPages); topic t's
// tail occupies [GlobalPages + t·TopicPages, ...); fringe URLs follow all
// topic tails.

// rankedElem returns the element id of ranking position idx in topic t.
func rankedElem(p Params, topic, idx int) set.Elem {
	if idx < p.GlobalPages {
		return set.Elem(idx)
	}
	return set.Elem(p.GlobalPages + topic*p.TopicPages + (idx - p.GlobalPages))
}

// noiseElem maps a fringe-pool rank to its element id.
func noiseElem(p Params, rank uint64) set.Elem {
	return set.Elem(p.GlobalPages+p.Topics*p.TopicPages) + set.Elem(rank)
}

// Generate produces the collection.
func Generate(p Params) ([]set.Set, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	noise := newZipf(rng, p.ZipfS, p.NoisePool)

	sets := make([]set.Set, 0, p.N)
	for i := 0; i < p.N; i++ {
		if i > 0 && rng.Float64() < p.MirrorProb {
			src := sets[rng.Intn(i)]
			sets = append(sets, mirror(rng, src, p, noise))
			continue
		}
		sets = append(sets, drawSet(rng, p, rng.Intn(p.Topics), noise))
	}
	return sets, nil
}

// drawSet samples one visitor: a depth-long prefix of the topic's page
// ranking plus a personal fringe.
func drawSet(rng *rand.Rand, p Params, topic int, noise *zipf) set.Set {
	depth := lognormalDepth(rng, p.MeanDepth, p.DepthSigma)
	maxDepth := p.GlobalPages + p.TopicPages
	if depth > maxDepth {
		depth = maxDepth
	}
	elems := make(map[set.Elem]struct{}, depth)
	for idx := 0; idx < depth; idx++ {
		elems[rankedElem(p, topic, idx)] = struct{}{}
	}
	fringe := int(p.NoiseFrac / (1 - p.NoiseFrac) * float64(depth))
	for j := 0; j < fringe; j++ {
		elems[noiseElem(p, noise.draw(rng))] = struct{}{}
	}
	return fromElemSet(elems)
}

// lognormalDepth draws a visit depth with the requested mean.
func lognormalDepth(rng *rand.Rand, mean int, sigma float64) int {
	mu := math.Log(float64(mean)) - sigma*sigma/2
	d := int(math.Exp(rng.NormFloat64()*sigma+mu) + 0.5)
	if d < 2 {
		d = 2
	}
	return d
}

// mirror produces a noisy near-copy of src: a per-mirror noise fraction
// drawn uniformly from (0, 2·MirrorNoise) of the elements is dropped and
// replaced with fresh fringe draws, spreading mirror similarities across
// the high range instead of spiking at one value.
func mirror(rng *rand.Rand, src set.Set, p Params, noise *zipf) set.Set {
	frac := rng.Float64() * 2 * p.MirrorNoise
	if frac > 1 {
		frac = 1
	}
	elems := make(map[set.Elem]struct{}, src.Len())
	for _, e := range src.Elems() {
		if rng.Float64() >= frac {
			elems[e] = struct{}{}
		}
	}
	for len(elems) < src.Len() {
		elems[noiseElem(p, noise.draw(rng))] = struct{}{}
	}
	return fromElemSet(elems)
}

func fromElemSet(elems map[set.Elem]struct{}) set.Set {
	out := make([]set.Elem, 0, len(elems))
	for e := range elems {
		out = append(out, e)
	}
	return set.New(out...)
}

// zipf is a bounded Zipf sampler over [0, n) with exponent s. It wraps
// math/rand's rejection sampler with a deterministic construction order so
// collections are reproducible across runs.
type zipf struct {
	z *rand.Zipf
	n int
}

func newZipf(rng *rand.Rand, s float64, n int) *zipf {
	if n < 1 {
		n = 1
	}
	return &zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
}

func (z *zipf) draw(rng *rand.Rand) uint64 {
	if z.n == 1 {
		return 0
	}
	return z.z.Uint64()
}

// Query is one range-similarity query of a workload.
type Query struct {
	// SID is the collection index the query set was drawn from.
	SID int
	// Lo, Hi delimit the target similarity range [σ1, σ2].
	Lo, Hi float64
}

// QueryParams controls query workload generation.
type QueryParams struct {
	// Count is the number of queries.
	Count int
	// FixedWidth, when true, draws a range width uniformly from
	// [MinWidth, MaxWidth] and places it uniformly. When false (the
	// default, matching the paper's "bounds ... chosen at random"), the
	// two bounds are independent uniforms, sorted.
	FixedWidth bool
	// MinWidth, MaxWidth bound the range width in FixedWidth mode
	// (defaults 0.05 and 0.3).
	MinWidth, MaxWidth float64
	// MinLo, in FixedWidth mode, floors the lower bound of every range:
	// lo is drawn uniformly from [MinLo, 1-w] instead of [0, 1-w]. Zero
	// (the default) reproduces the unfloored stream exactly. Use a high
	// floor to build narrow high-similarity workloads where most shards
	// hold no qualifying sets.
	MinLo float64
	// Seed makes the workload reproducible.
	Seed int64
}

// Queries draws Count queries per the paper's methodology: the query set is
// chosen at random from the collection and the bounds of the similarity
// range are chosen at random as well.
func Queries(collectionSize int, p QueryParams) ([]Query, error) {
	if collectionSize < 1 {
		return nil, fmt.Errorf("workload: empty collection")
	}
	if p.Count < 1 {
		return nil, fmt.Errorf("workload: query count must be >= 1, got %d", p.Count)
	}
	minW, maxW := p.MinWidth, p.MaxWidth
	if minW <= 0 {
		minW = 0.05
	}
	if maxW <= 0 {
		maxW = 0.3
	}
	if minW > maxW {
		return nil, fmt.Errorf("workload: MinWidth %g > MaxWidth %g", minW, maxW)
	}
	if p.MinLo < 0 || p.MinLo+minW > 1 {
		return nil, fmt.Errorf("workload: MinLo %g leaves no room for width %g", p.MinLo, minW)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]Query, p.Count)
	for i := range out {
		var lo, hi float64
		if p.FixedWidth {
			w := minW + rng.Float64()*(maxW-minW)
			if w > 1-p.MinLo {
				w = 1 - p.MinLo
			}
			lo = p.MinLo + rng.Float64()*(1-p.MinLo-w)
			hi = lo + w
		} else {
			lo, hi = rng.Float64(), rng.Float64()
			if lo > hi {
				lo, hi = hi, lo
			}
		}
		out[i] = Query{
			SID: rng.Intn(collectionSize),
			Lo:  lo,
			Hi:  hi,
		}
	}
	return out, nil
}

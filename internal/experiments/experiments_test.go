package experiments

import (
	"io"
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast.
func tinyCfg() Config {
	return Config{N: 600, Queries: 40, MinHashes: 32, Seed: 1, RecallTarget: 0.7}
}

func TestFig6ProducesRows(t *testing.T) {
	var sb strings.Builder
	rows, err := Fig6(&sb, 60, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sawSet1, sawSet2 := false, false
	for _, r := range rows {
		switch r.Dataset {
		case "Set1":
			sawSet1 = true
		case "Set2":
			sawSet2 = true
		default:
			t.Errorf("unknown dataset %q", r.Dataset)
		}
		if r.Recall < 0 || r.Recall > 1 || r.Precision < 0 || r.Precision > 1 {
			t.Errorf("row %+v out of range", r)
		}
	}
	if !sawSet1 || !sawSet2 {
		t.Error("missing a dataset")
	}
	if !strings.Contains(sb.String(), "recall") {
		t.Error("missing header in rendered table")
	}
}

func TestFig6RecallNearTarget(t *testing.T) {
	cfg := tinyCfg()
	rows, err := Fig6(io.Discard, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket-average recall should sit at or above roughly the optimizer
	// target minus model slack.
	totalQ, weighted := 0, 0.0
	for _, r := range rows {
		totalQ += r.Count
		weighted += float64(r.Count) * r.Recall
	}
	if totalQ == 0 {
		t.Fatal("no queries bucketed")
	}
	if avg := weighted / float64(totalQ); avg < cfg.RecallTarget-0.15 {
		t.Errorf("average measured recall %.3f far below target %.2f", avg, cfg.RecallTarget)
	}
}

func TestFig7ProducesRows(t *testing.T) {
	rows, err := Fig7(io.Discard, "Set1", 60, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.ScanIO <= 0 {
			t.Errorf("bucket %s: no scan I/O", r.Bucket)
		}
		if r.IndexIO <= 0 {
			t.Errorf("bucket %s: no index I/O", r.Bucket)
		}
	}
}

func TestFig7UnknownDataset(t *testing.T) {
	if _, err := Fig7(io.Discard, "nope", 60, tinyCfg()); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFilterCurve(t *testing.T) {
	curves, err := FilterCurve(io.Discard, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) == 0 {
		t.Fatal("no curves")
	}
	for _, c := range curves {
		// Each curve is an S-shape: nondecreasing from ~0 to 1.
		prev := -1.0
		for _, pt := range c.Points {
			if pt.P < prev-1e-9 {
				t.Fatalf("curve (r=%d,l=%d) decreasing at s=%g", c.R, c.L, pt.S)
			}
			prev = pt.P
		}
		if c.Points[0].P > 0.01 {
			t.Errorf("curve (r=%d,l=%d) starts at %g", c.R, c.L, c.Points[0].P)
		}
		if last := c.Points[len(c.Points)-1].P; last < 0.99 {
			t.Errorf("curve (r=%d,l=%d) ends at %g", c.R, c.L, last)
		}
	}
	if _, err := FilterCurve(io.Discard, 1.5); err == nil {
		t.Error("invalid sStar accepted")
	}
}

func TestRLTradeoff(t *testing.T) {
	rows, err := RLTradeoff(io.Discard, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Width must shrink (curves sharpen) as l grows — the Section 5
	// trade-off.
	for i := 1; i < len(rows); i++ {
		if rows[i].Width10To90 > rows[i-1].Width10To90+1e-9 {
			t.Errorf("width grew from %.4f to %.4f at l=%d",
				rows[i-1].Width10To90, rows[i].Width10To90, rows[i].L)
		}
		if rows[i].R < rows[i-1].R {
			t.Errorf("r shrank as l grew at l=%d", rows[i].L)
		}
	}
	if _, err := RLTradeoff(io.Discard, 0); err == nil {
		t.Error("invalid sStar accepted")
	}
}

func TestPlacementAblation(t *testing.T) {
	rows, err := Placement(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var eq, un PlanCompareRow
	for _, r := range rows {
		switch r.Strategy {
		case "equidepth":
			eq = r
		case "uniform":
			un = r
		}
	}
	// Lemma 4: equidepth at least matches uniform on worst-case precision.
	if eq.WorstPrecision < un.WorstPrecision-1e-9 {
		t.Errorf("equidepth precision %.4f below uniform %.4f", eq.WorstPrecision, un.WorstPrecision)
	}
}

func TestAllocationAblation(t *testing.T) {
	rows, err := Allocation(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var greedy, uniform PlanCompareRow
	for _, r := range rows {
		switch r.Strategy {
		case "greedy":
			greedy = r
		case "uniform":
			uniform = r
		}
	}
	// Lemma 6: greedy at least roughly matches uniform on worst recall.
	if greedy.WorstRecall < uniform.WorstRecall-0.1 {
		t.Errorf("greedy worst recall %.3f well below uniform %.3f", greedy.WorstRecall, uniform.WorstRecall)
	}
}

func TestIntervalsSweep(t *testing.T) {
	rows, err := Intervals(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Lemma 5 shape: precision with the most cuts beats precision with one
	// cut.
	if last, first := rows[len(rows)-1], rows[0]; last.WorstPrecision <= first.WorstPrecision {
		t.Errorf("precision did not improve with intervals: %.4f (1) vs %.4f (%d)",
			first.WorstPrecision, last.WorstPrecision, last.Cuts)
	}
}

func TestDFIGain(t *testing.T) {
	cfg := tinyCfg()
	cfg.Queries = 20
	rows, err := DFIGain(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Section 4.2's motivation: for every low range, the DFI combination
	// materializes fewer sids than the SFI-only one.
	for _, r := range rows {
		if r.DFIFetched > r.SFIOnlyFetched {
			t.Errorf("range [%.2f,%.2f]: DFI fetched %.1f > SFI-only %.1f",
				r.Lo, r.Hi, r.DFIFetched, r.SFIOnlyFetched)
		}
	}
}

func TestEmbedding(t *testing.T) {
	rows, err := Embedding(io.Discard, Config{MinHashes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Theorem 1: the Hadamard embedding tracks (1-s)/2 on average...
		if diff := r.Hadamard - r.Expected; diff > 0.08 || diff < -0.08 {
			t.Errorf("sim %.2f: hadamard %.3f vs expected %.3f", r.Similarity, r.Hadamard, r.Expected)
		}
		// ...and exactly per codeword: disagreeing codewords are at
		// exactly m/2, so the spread is zero.
		if r.HadamardSpread > 1e-12 {
			t.Errorf("sim %.2f: hadamard per-codeword spread %.4f, want 0", r.Similarity, r.HadamardSpread)
		}
	}
	// The identity embedding is right only in expectation (Example 1):
	// at similarity 0 its per-codeword distances scatter widely.
	last := rows[len(rows)-1]
	if last.Similarity != 0 {
		t.Fatalf("last row similarity = %g, want 0", last.Similarity)
	}
	if last.IdentitySpread < 0.05 {
		t.Errorf("identity per-codeword spread %.4f unexpectedly tight at s=0", last.IdentitySpread)
	}
}

func TestProfile(t *testing.T) {
	res, err := Profile(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 20 {
		t.Fatalf("bins = %d", len(res.Bins))
	}
	sum := 0.0
	for _, m := range res.Bins {
		if m < 0 {
			t.Fatal("negative mass")
		}
		sum += m
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("bins sum to %g", sum)
	}
	if res.Delta <= 0 || res.Delta >= 1 {
		t.Errorf("delta = %g", res.Delta)
	}
	for k, cuts := range res.Cuts {
		if len(cuts) != k-1 {
			t.Errorf("k=%d: %d cuts", k, len(cuts))
		}
	}
	if len(res.Plans) != 3 {
		t.Fatalf("plans = %d", len(res.Plans))
	}
	for _, p := range res.Plans {
		if p.TableSpend != p.Budget {
			t.Errorf("budget %d: spent %d", p.Budget, p.TableSpend)
		}
	}
}

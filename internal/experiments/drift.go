// The drift experiment: quantify what adaptive re-tuning buys on a
// Figure 6-style workload whose insert stream shifts the similarity
// distribution, and verify the drift tracker fires on its own.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// DriftPhase is one measurement point of the drift experiment: a query
// workload evaluated against the engine at one moment of its life.
type DriftPhase struct {
	// Phase names the moment: "before", "drifted", "retuned".
	Phase string
	// Sets is the live collection size at evaluation time.
	Sets int
	// Queries is the number of evaluated queries.
	Queries int
	// Recall and Precision are means over the workload (per-query, with
	// the Definition 9 conventions: 1 on empty truth / empty candidates).
	Recall    float64
	Precision float64
	// MeanCandidates is the average filter-stage candidate count — the
	// fetch cost a mistuned plan inflates.
	MeanCandidates float64
	// PlanGeneration is the generation that answered the workload.
	PlanGeneration uint64
}

// DriftReport is the JSON document of the drift experiment.
type DriftReport struct {
	// BaseSets / FloodSets size the two halves of the collection: the
	// near-duplicate build-time workload and the diverse insert stream
	// that drifts D_S away from it.
	BaseSets  int
	FloodSets int
	// Budget and MinHashes echo the build configuration.
	Budget    int
	MinHashes int
	// Drift is the tracker's max-CDF-distance when the retune decision
	// was taken; Threshold is the firing level it was compared against.
	Drift     float64
	Threshold float64
	// TrackerFired is true when MaybeRetune swapped on its own — the
	// drift gate, not a manual override, triggered the rebuild.
	TrackerFired bool
	// Phases holds the three measurement points in order.
	Phases []DriftPhase
}

// driftMirrorParams is the near-duplicate collection the index is built
// over: a small page universe visited through ~90% mirrors, so nearly all
// pairwise mass sits in one high-similarity mode and the equidepth cuts
// concentrate there. The topology is fixed (it defines the build-time
// distribution's shape); only the collection size scales.
func driftMirrorParams(n int, seed int64) workload.Params {
	return workload.Params{
		N: n, Topics: 4, GlobalPages: 30, TopicPages: 40,
		MeanDepth: 40, DepthSigma: 4, NoisePool: 200, NoiseFrac: 0.05,
		ZipfS: 1.2, MirrorProb: 0.9, MirrorNoise: 0.03, Seed: seed,
	}
}

// evalDrift runs one query workload against the engine and aggregates
// recall, precision, and candidate volume. The live collection doubles as
// the ground-truth oracle, exactly as eval.Runner does for core indexes;
// sets must be the engine's live sets in global-sid order.
func evalDrift(e *engine.Engine, sets []set.Set, queries []workload.Query, phase string) (DriftPhase, error) {
	p := DriftPhase{Phase: phase, Sets: len(sets), Queries: len(queries)}
	var recall, precision, candidates float64
	for _, q := range queries {
		qset := sets[q.SID]
		matches, st, err := e.Query(qset, q.Lo, q.Hi)
		if err != nil {
			return DriftPhase{}, fmt.Errorf("drift %s query: %w", phase, err)
		}
		truth := 0
		for _, s := range sets {
			sim := qset.Jaccard(s)
			if sim >= q.Lo && sim <= q.Hi {
				truth++
			}
		}
		// Verification makes every returned match correct, so hits =
		// |matches| and precision is results over fetched candidates.
		r, pr := 1.0, 1.0
		if truth > 0 {
			r = float64(len(matches)) / float64(truth)
		}
		if st.Candidates > 0 {
			pr = float64(len(matches)) / float64(st.Candidates)
		}
		recall += r
		precision += pr
		candidates += float64(st.Candidates)
		p.PlanGeneration = st.PlanGeneration
	}
	n := float64(len(queries))
	p.Recall = recall / n
	p.Precision = precision / n
	p.MeanCandidates = candidates / n
	return p, nil
}

// Drift measures adaptive re-tuning end to end. The index is built over
// a near-duplicate-heavy collection, so its equidepth cuts and table
// allocation concentrate on a high-similarity mode; then a Figure 6-style
// diverse insert stream (Set1) doubles the collection and shifts D_S
// toward low similarity. Queries over the grown collection now fall into
// intervals whose filter points sit far from their ranges, and the stale
// plan loses recall. The drift tracker fires (MaybeRetune — the gated
// path, with a forced Retune fallback so the report is always
// three-phased), the plan is re-derived from the live collection, and the
// same query workload is evaluated once more: the drifted and re-tuned
// phases share one workload, so their rows differ only in the plan that
// served them, and the re-tuned row restores the lost recall.
func Drift(w io.Writer, cfg Config) (*DriftReport, error) {
	cfg = cfg.withDefaults()
	budget := 500
	if cfg.Budget > 0 {
		budget = cfg.Budget
	}
	base, err := workload.Generate(driftMirrorParams(cfg.N, cfg.Seed+11))
	if err != nil {
		return nil, fmt.Errorf("generating base workload: %w", err)
	}
	e, err := engine.Build(base, engine.Options{
		Core: core.Options{
			Embed: embed.Options{K: cfg.MinHashes, Bits: 8, Seed: cfg.Seed},
			Plan: optimize.Options{
				Budget:       budget,
				RecallTarget: cfg.RecallTarget,
			},
			DistSeed:       cfg.Seed,
			PayloadPerElem: 110,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("building drift index: %w", err)
	}
	if err := e.EnableTuning(tuner.Config{
		Rand:         rand.New(rand.NewSource(cfg.Seed + 97)),
		MinMutations: 64,
		MinPairs:     64,
	}); err != nil {
		return nil, fmt.Errorf("enabling tuning: %w", err)
	}

	rep := &DriftReport{
		BaseSets:  len(base),
		Budget:    budget,
		MinHashes: cfg.MinHashes,
		Threshold: tuner.DefaultDriftThreshold,
	}

	// Phase 1: the build-time workload on the build-time plan.
	qsBefore, err := workload.Queries(len(base), workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	before, err := evalDrift(e, base, qsBefore, "before")
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, before)

	// The drift stream: a diverse Figure 6-style workload, twice the base
	// size, pulling the pairwise mass down and away from the mirror mode.
	flood, err := workload.Generate(workload.Set1Params(2 * cfg.N))
	if err != nil {
		return nil, fmt.Errorf("generating drift stream: %w", err)
	}
	live := make([]set.Set, 0, len(base)+len(flood))
	live = append(live, base...)
	for _, s := range flood {
		if _, err := e.Insert(s); err != nil {
			return nil, fmt.Errorf("inserting drift stream: %w", err)
		}
		live = append(live, s)
	}
	rep.FloodSets = len(flood)

	// Phase 2: the grown collection on the now-stale plan. The same
	// query workload is reused for phase 3.
	qsAfter, err := workload.Queries(len(live), workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 61})
	if err != nil {
		return nil, err
	}
	drifted, err := evalDrift(e, live, qsAfter, "drifted")
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, drifted)

	// The retune: the gated path first, so the report also certifies the
	// tracker's decision rule end to end.
	res, err := e.MaybeRetune()
	if err != nil {
		return nil, fmt.Errorf("maybe-retune: %w", err)
	}
	rep.TrackerFired = res.Swapped
	rep.Drift = res.Drift
	if !res.Swapped {
		if res, err = e.Retune(); err != nil {
			return nil, fmt.Errorf("forced retune: %w", err)
		}
	}

	// Phase 3: the identical workload on the re-tuned plan.
	retuned, err := evalDrift(e, live, qsAfter, "retuned")
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, retuned)

	fmt.Fprintf(w, "Drift (budget %d tables, k=%d, %d-set mirror base + %d-set diverse stream, %d queries/phase)\n",
		budget, cfg.MinHashes, rep.BaseSets, rep.FloodSets, cfg.Queries)
	fmt.Fprintf(w, "tracker: drift %.3f vs threshold %.3f, fired=%v (generation %d)\n",
		rep.Drift, rep.Threshold, rep.TrackerFired, res.Generation)
	fmt.Fprintf(w, "%-9s %8s %8s %8s %12s %4s\n", "phase", "sets", "recall", "prec", "candidates", "gen")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "%-9s %8d %8.3f %8.3f %12.1f %4d\n",
			p.Phase, p.Sets, p.Recall, p.Precision, p.MeanCandidates, p.PlanGeneration)
	}
	return rep, nil
}

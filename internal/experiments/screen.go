package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ScreenRow is one signing-family configuration's measurements.
type ScreenRow struct {
	// Family and BitsPerHash identify the configuration.
	Family      string `json:"family"`
	BitsPerHash int    `json:"bitsPerHash"`
	// SignatureBytesPerSet is the stored signature footprint per set.
	SignatureBytesPerSet int `json:"signatureBytesPerSet"`
	// Eps95 is the family's 95%-confidence estimator half-width — the
	// margin screening widens the query range by.
	Eps95 float64 `json:"eps95"`
	// ScreenedFraction is screened candidates / produced candidates over
	// the screened replay of the workload.
	ScreenedFraction float64 `json:"screenedFraction"`
	// ScreenedSimIOMicros is the mean per-query simulated I/O of the
	// screened replay (rtn = 8 cost model).
	ScreenedSimIOMicros float64 `json:"screenedSimIOMicros"`
	// ExactChecksum fingerprints the UNSCREENED exact answers (sid +
	// similarity bits per match, query order). Identical across rows —
	// candidate generation never depends on the signing family.
	ExactChecksum uint64 `json:"exactChecksum"`
}

// ScreenReport is the cross-family screening matrix: {classic,
// superminhash} × b ∈ {64, 4, 1} over one collection and workload.
type ScreenReport struct {
	N         int `json:"n"`
	Budget    int `json:"budget"`
	MinHashes int `json:"minHashes"`
	Queries   int `json:"queries"`
	// PlainSimIOMicros is the unscreened per-query simulated I/O —
	// the baseline every row's ScreenedSimIOMicros is saving against.
	PlainSimIOMicros float64 `json:"plainSimIOMicros"`
	// IdenticalResults is true iff every row's exact answers carry the
	// same checksum — the signing-family invariant the CI smoke asserts.
	IdenticalResults bool        `json:"identicalResults"`
	Rows             []ScreenRow `json:"rows"`
}

// screenConfigs is the benchmarked matrix.
var screenConfigs = []minhash.Config{
	{Base: "classic", BitsPerHash: 64},
	{Base: "classic", BitsPerHash: 4},
	{Base: "classic", BitsPerHash: 1},
	{Base: "superminhash", BitsPerHash: 64},
	{Base: "superminhash", BitsPerHash: 4},
	{Base: "superminhash", BitsPerHash: 1},
}

// Screen builds one index per signing-family configuration over the same
// collection and replays the same query workload through each: unscreened
// for the exact-answer checksum, screened at the family's default margin
// for the screening measurements.
func Screen(w io.Writer, cfg Config) (*ScreenReport, error) {
	cfg = cfg.withDefaults()
	budget := cfg.Budget
	if budget <= 0 {
		budget = 500
	}
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, err
	}
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	batch := make([]core.BatchQuery, len(qs))
	for i, q := range qs {
		batch[i] = core.BatchQuery{Q: sets[q.SID], Lo: q.Lo, Hi: q.Hi}
	}
	model := storage.DefaultCostModel()
	nq := float64(len(qs))

	rep := &ScreenReport{
		N:                cfg.N,
		Budget:           budget,
		MinHashes:        cfg.MinHashes,
		Queries:          len(qs),
		IdenticalResults: true,
	}
	fmt.Fprintf(w, "Signing-family screening matrix (N=%d, budget %d, k=%d, %d queries)\n",
		cfg.N, budget, cfg.MinHashes, len(qs))
	for _, scfg := range screenConfigs {
		opts := core.Options{
			Embed:          embed.Options{K: cfg.MinHashes, Bits: 8, Seed: cfg.Seed},
			Plan:           optimize.Options{Budget: budget, RecallTarget: cfg.RecallTarget},
			DistSeed:       cfg.Seed,
			PayloadPerElem: 110,
			Signing:        scfg,
		}
		ix, err := core.Build(sets, opts)
		if err != nil {
			return nil, fmt.Errorf("building %s/%d: %w", scfg.Base, scfg.BitsPerHash, err)
		}

		// Exact replay: the answers must not depend on the family.
		sum := fnv.New64a()
		var plainIO time.Duration
		for i, r := range ix.QueryBatch(batch, core.QueryOptions{}) {
			if r.Err != nil {
				return nil, fmt.Errorf("%s/%d query %d: %w", scfg.Base, scfg.BitsPerHash, i, r.Err)
			}
			plainIO += r.Stats.SimIOTime(model)
			var buf [16]byte
			for _, m := range r.Matches {
				put64(buf[:8], uint64(m.SID))
				put64(buf[8:], math.Float64bits(m.Similarity))
				sum.Write(buf[:]) //ssrvet:ignore droppederr -- hash.Hash Write never errors
			}
		}
		checksum := sum.Sum64()

		// Screened replay at the family's default (Eps95) margin.
		var screenedIO time.Duration
		var screened, candidates int
		for i, r := range ix.QueryBatch(batch, core.QueryOptions{Screen: true}) {
			if r.Err != nil {
				return nil, fmt.Errorf("%s/%d screened query %d: %w", scfg.Base, scfg.BitsPerHash, i, r.Err)
			}
			screenedIO += r.Stats.SimIOTime(model)
			screened += r.Stats.Screened
			candidates += r.Stats.Candidates
		}

		row := ScreenRow{
			Family:               scfg.Base,
			BitsPerHash:          scfg.BitsPerHash,
			SignatureBytesPerSet: ix.SignatureBytesPerSet(),
			Eps95:                ix.Eps95(),
			ScreenedSimIOMicros:  float64(screenedIO.Microseconds()) / nq,
			ExactChecksum:        checksum,
		}
		if candidates > 0 {
			row.ScreenedFraction = float64(screened) / float64(candidates)
		}
		if rep.PlainSimIOMicros == 0 {
			rep.PlainSimIOMicros = float64(plainIO.Microseconds()) / nq
		}
		if len(rep.Rows) > 0 && checksum != rep.Rows[0].ExactChecksum {
			rep.IdenticalResults = false
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(w, "  %-13s b=%-2d  %4d B/set  eps95 %.4f  screened %5.1f%%  sim I/O %8.1fµs/q  checksum %016x\n",
			row.Family, row.BitsPerHash, row.SignatureBytesPerSet, row.Eps95,
			100*row.ScreenedFraction, row.ScreenedSimIOMicros, row.ExactChecksum)
	}
	fmt.Fprintf(w, "  plain (unscreened) sim I/O %8.1fµs/q   identicalResults=%v\n",
		rep.PlainSimIOMicros, rep.IdenticalResults)
	return rep, nil
}

// put64 writes v big-endian (checksum input only; endianness just has to
// be fixed).
func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

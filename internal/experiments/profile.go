package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/optimize"
	"repro/internal/simdist"
	"repro/internal/workload"
)

// ProfileResult summarizes a collection the way the Section 5 optimizer
// sees it.
type ProfileResult struct {
	// Bins is the normalized similarity histogram (coarsened to 20 bins).
	Bins []float64
	// Delta is the equal-mass SFI/DFI split point.
	Delta float64
	// Cuts maps interval counts to their equidepth cut positions.
	Cuts map[int][]float64
	// Plans holds the optimizer's outcome per budget.
	Plans []ProfilePlan
}

// ProfilePlan is one budget's plan summary.
type ProfilePlan struct {
	Budget     int
	CutCount   int
	AvgRecall  float64
	RecallMet  bool
	TableSpend int
}

// Profile renders everything a deployment would inspect before committing
// space: the similarity distribution (ASCII histogram), δ, equidepth cut
// positions at several granularities, and what the Figure 4 optimizer does
// with growing budgets.
func Profile(w io.Writer, cfg Config) (*ProfileResult, error) {
	cfg = cfg.withDefaults()
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, err
	}
	sample := 50 * cfg.N
	if maxPairs := cfg.N * (cfg.N - 1) / 2; sample > maxPairs {
		sample = maxPairs
	}
	hist, err := simdist.SamplePairs(sets, sample, 0, cfg.Seed+5)
	if err != nil {
		return nil, err
	}

	res := &ProfileResult{Delta: hist.Delta(), Cuts: map[int][]float64{}}
	fmt.Fprintf(w, "Collection profile (Set1-like, N=%d, %d sampled pairs)\n\n", cfg.N, sample)
	fmt.Fprintf(w, "similarity distribution D_S (normalized mass per 0.05 band):\n")
	const bins = 20
	total := hist.Total()
	maxMass := 0.0
	masses := make([]float64, bins)
	for i := 0; i < bins; i++ {
		m := hist.Mass(float64(i)/bins, float64(i+1)/bins)
		if total > 0 {
			m /= total
		}
		masses[i] = m
		if m > maxMass {
			maxMass = m
		}
	}
	res.Bins = masses
	for i, m := range masses {
		bar := 0
		if maxMass > 0 {
			bar = int(m / maxMass * 50)
		}
		fmt.Fprintf(w, "  [%.2f,%.2f) %6.3f %s\n", float64(i)/bins, float64(i+1)/bins, m, strings.Repeat("#", bar))
	}
	fmt.Fprintf(w, "\nδ (equal-mass split, Eq. 15): %.3f\n", res.Delta)

	for _, k := range []int{2, 4, 8} {
		cuts, err := hist.Equidepth(k)
		if err != nil {
			return nil, err
		}
		res.Cuts[k] = cuts
		fmt.Fprintf(w, "equidepth cuts (k=%d): %s\n", k, fmtFloats(cuts))
	}

	fmt.Fprintf(w, "\noptimizer outcomes (recall target %.2f):\n", cfg.RecallTarget)
	fmt.Fprintf(w, "%8s %6s %10s %10s\n", "budget", "cuts", "avgRecall", "met")
	for _, budget := range []int{50, 200, 800} {
		plan, err := optimize.BuildPlan(hist, optimize.Options{
			Budget: budget, RecallTarget: cfg.RecallTarget, SignatureK: cfg.MinHashes,
		})
		if err != nil {
			return nil, err
		}
		spend := 0
		for _, fi := range plan.FIs {
			spend += fi.Tables
		}
		pp := ProfilePlan{
			Budget: budget, CutCount: len(plan.Cuts),
			AvgRecall: plan.AvgRecall, RecallMet: plan.RecallMet, TableSpend: spend,
		}
		res.Plans = append(res.Plans, pp)
		fmt.Fprintf(w, "%8d %6d %10.3f %10v\n", pp.Budget, pp.CutCount, pp.AvgRecall, pp.RecallMet)
	}
	return res, nil
}

func fmtFloats(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/eval"
	"repro/internal/optimize"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BenchReport quantifies the parallel build pipeline and the concurrent
// query paths on one machine: build throughput serial vs parallel, query
// latency serial vs batched, answer quality, and the simulated-I/O saving
// of signature screening. The JSON shape is consumed by `make bench-json`
// and the CI bench-smoke artifact.
type BenchReport struct {
	// GOMAXPROCS is the worker ceiling the parallel paths ran with.
	GOMAXPROCS int `json:"gomaxprocs"`
	// N, Budget, MinHashes, Queries echo the configuration.
	N         int `json:"n"`
	Budget    int `json:"budget"`
	MinHashes int `json:"minHashes"`
	Queries   int `json:"queries"`

	// SerialBuildMillis and ParallelBuildMillis are wall times of one
	// Workers=1 and one Workers=GOMAXPROCS build of the same collection.
	SerialBuildMillis   float64 `json:"serialBuildMillis"`
	ParallelBuildMillis float64 `json:"parallelBuildMillis"`
	// BuildSpeedup is serial/parallel.
	BuildSpeedup float64 `json:"buildSpeedup"`
	// BuildSetsPerSec is parallel build throughput.
	BuildSetsPerSec float64 `json:"buildSetsPerSec"`

	// SerialQueryMicros and BatchQueryMicros are mean wall microseconds per
	// query: a serial Query loop versus one QueryBatch call over the same
	// workload.
	SerialQueryMicros float64 `json:"serialQueryMicros"`
	BatchQueryMicros  float64 `json:"batchQueryMicros"`
	// QuerySpeedup is serial/batch.
	QuerySpeedup float64 `json:"querySpeedup"`

	// MeanRecall and MeanPrecision are measured against exact answers over
	// the query workload (recall averaged over queries with non-empty
	// truth).
	MeanRecall    float64 `json:"meanRecall"`
	MeanPrecision float64 `json:"meanPrecision"`

	// SimIOMicrosPerQuery is the simulated I/O time per query under the
	// paper's cost model (rtn = 8), unscreened.
	SimIOMicrosPerQuery float64 `json:"simIOMicrosPerQuery"`
	// ScreenedSimIOMicros is the same with signature screening at the
	// default (Chernoff 95%) margin.
	ScreenedSimIOMicros float64 `json:"screenedSimIOMicros"`
	// ScreenedFraction is screened candidates / produced candidates.
	ScreenedFraction float64 `json:"screenedFraction"`
	// SignatureBytesPerSet is the stored signature footprint per set under
	// the index's signing family (classic-64 here: k·8 bytes).
	SignatureBytesPerSet int `json:"signatureBytesPerSet"`
}

// Bench builds the Set1 collection serially and in parallel, replays the
// query workload through the serial and batched paths, and reports the
// measurements. Both builds must be bit-identical (guaranteed by
// core.Options.Workers and pinned by the core determinism tests), so every
// quality number applies to both.
func Bench(w io.Writer, cfg Config) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	budget := cfg.Budget
	if budget <= 0 {
		budget = 500
	}
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Embed:          embed.Options{K: cfg.MinHashes, Bits: 8, Seed: cfg.Seed},
		Plan:           optimize.Options{Budget: budget, RecallTarget: cfg.RecallTarget},
		DistSeed:       cfg.Seed,
		PayloadPerElem: 110,
	}

	build := func(workers int) (*core.Index, time.Duration, error) {
		o := opts
		o.Workers = workers
		start := time.Now()
		ix, err := core.Build(sets, o)
		return ix, time.Since(start), err
	}
	_, serialBuild, err := build(1)
	if err != nil {
		return nil, err
	}
	ix, parallelBuild, err := build(0)
	if err != nil {
		return nil, err
	}

	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	batch := make([]core.BatchQuery, len(qs))
	for i, q := range qs {
		batch[i] = core.BatchQuery{Q: sets[q.SID], Lo: q.Lo, Hi: q.Hi}
	}

	// Serial loop: one query at a time, the pre-batch baseline.
	model := storage.DefaultCostModel()
	var simIO time.Duration
	serialStart := time.Now()
	for i, q := range qs {
		_, stats, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		simIO += stats.SimIOTime(model)
	}
	serialWall := time.Since(serialStart)

	// Batched: one QueryBatch call over the same workload.
	batchStart := time.Now()
	results := ix.QueryBatch(batch, core.QueryOptions{})
	batchWall := time.Since(batchStart)
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, r.Err)
		}
	}

	// Screened: same batch with the default margin; measure the fetch
	// saving and how much was screened.
	var screenedIO time.Duration
	var screened, candidates int
	for i, r := range ix.QueryBatch(batch, core.QueryOptions{Screen: true}) {
		if r.Err != nil {
			return nil, fmt.Errorf("screened query %d: %w", i, r.Err)
		}
		screenedIO += r.Stats.SimIOTime(model)
		screened += r.Stats.Screened
		candidates += r.Stats.Candidates
	}

	runner := eval.NewRunner(ix, sets)
	outcomes, err := runner.Run(qs)
	if err != nil {
		return nil, err
	}
	var recall, precision float64
	withTruth := 0
	for _, o := range outcomes {
		if o.Truth > 0 {
			recall += o.Recall
			withTruth++
		}
		precision += o.Precision
	}

	nq := float64(len(qs))
	rep := &BenchReport{
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		N:                    cfg.N,
		Budget:               budget,
		MinHashes:            cfg.MinHashes,
		Queries:              len(qs),
		SerialBuildMillis:    float64(serialBuild.Microseconds()) / 1e3,
		ParallelBuildMillis:  float64(parallelBuild.Microseconds()) / 1e3,
		BuildSetsPerSec:      float64(len(sets)) / parallelBuild.Seconds(),
		SerialQueryMicros:    float64(serialWall.Microseconds()) / nq,
		BatchQueryMicros:     float64(batchWall.Microseconds()) / nq,
		SimIOMicrosPerQuery:  float64(simIO.Microseconds()) / nq,
		ScreenedSimIOMicros:  float64(screenedIO.Microseconds()) / nq,
		MeanPrecision:        precision / nq,
		SignatureBytesPerSet: ix.SignatureBytesPerSet(),
	}
	if parallelBuild > 0 {
		rep.BuildSpeedup = serialBuild.Seconds() / parallelBuild.Seconds()
	}
	if batchWall > 0 {
		rep.QuerySpeedup = serialWall.Seconds() / batchWall.Seconds()
	}
	if withTruth > 0 {
		rep.MeanRecall = recall / float64(withTruth)
	}
	if candidates > 0 {
		rep.ScreenedFraction = float64(screened) / float64(candidates)
	}

	fmt.Fprintf(w, "Parallel pipeline bench (N=%d, budget %d, k=%d, %d queries, GOMAXPROCS=%d)\n",
		rep.N, rep.Budget, rep.MinHashes, rep.Queries, rep.GOMAXPROCS)
	fmt.Fprintf(w, "  build     serial %8.1fms   parallel %8.1fms   speedup %.2fx   (%.0f sets/s)\n",
		rep.SerialBuildMillis, rep.ParallelBuildMillis, rep.BuildSpeedup, rep.BuildSetsPerSec)
	fmt.Fprintf(w, "  query     serial %8.1fµs   batched  %8.1fµs   speedup %.2fx\n",
		rep.SerialQueryMicros, rep.BatchQueryMicros, rep.QuerySpeedup)
	fmt.Fprintf(w, "  quality   recall %.3f   precision %.3f\n", rep.MeanRecall, rep.MeanPrecision)
	fmt.Fprintf(w, "  sim I/O   plain %8.1fµs/q   screened %8.1fµs/q   (%.1f%% of candidates screened, %d signature B/set)\n",
		rep.SimIOMicrosPerQuery, rep.ScreenedSimIOMicros, 100*rep.ScreenedFraction, rep.SignatureBytesPerSet)
	return rep, nil
}

// Package experiments regenerates every figure of the paper's evaluation
// (Section 6) plus ablations for the design lemmas of Section 5. Each
// experiment builds its own workload, runs it, and renders the same rows or
// series the paper reports. The cmd/ssrbench binary and the repository's
// benchmarks are thin wrappers over this package.
//
// Paper figures:
//
//	Fig6a — precision/recall bars per result-size bucket, 500-table budget
//	Fig6b — the same with a 1000-table budget
//	Fig7a — avg response time (I/O + CPU) vs sequential scan, Set1
//	Fig7b — the same for Set2
//
// Ablations and validations:
//
//	FilterCurve — the p_{r,l}(s) S-curves of Figure 3
//	RLTradeoff  — steepness/accuracy growth with l (Section 5)
//	Placement   — equidepth vs uniform cuts (Lemma 4)
//	Allocation  — greedy vs uniform table budgets (Lemma 6)
//	Intervals   — #intervals vs worst-case recall/precision (Lemmas 3, 5)
//	DFIGain     — DFI vs SFI-only subtraction overhead (Section 4.2)
//	Embedding   — Theorem 1: Hamming distance tracks (1-s)/2, and the
//	              identity embedding does not
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/eval"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/workload"
)

// Config scales the experiments. The paper used 200,000-set collections and
// 1000 queries per bucket; the defaults here run in seconds on a laptop
// while preserving every qualitative shape. Raise N and Queries via
// cmd/ssrbench flags to approach the paper's scale.
type Config struct {
	// N is the collection size per dataset.
	N int
	// Queries is the number of random queries evaluated.
	Queries int
	// Budget overrides the experiment's table budget where meaningful.
	Budget int
	// MinHashes is the signature length (paper: 100).
	MinHashes int
	// Seed drives all randomness.
	Seed int64
	// RecallTarget is the optimizer threshold T.
	RecallTarget float64
}

// DefaultConfig returns laptop-scale defaults. The recall target of 0.75
// is the level at which the Figure 4 optimizer selects a multi-interval
// layout on the synthetic log workloads (see EXPERIMENTS.md); raising it
// to the paper's 0.9 collapses the plan to a single conservative partition
// point with correspondingly coarse candidate sets.
func DefaultConfig() Config {
	return Config{
		N:            4000,
		Queries:      400,
		MinHashes:    64,
		Seed:         1,
		RecallTarget: 0.75,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N <= 0 {
		c.N = d.N
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.MinHashes <= 0 {
		c.MinHashes = d.MinHashes
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.RecallTarget <= 0 {
		c.RecallTarget = d.RecallTarget
	}
	return c
}

// dataset pairs a name with generator parameters.
type dataset struct {
	name   string
	params workload.Params
}

func datasets(n int) []dataset {
	return []dataset{
		{"Set1", workload.Set1Params(n)},
		{"Set2", workload.Set2Params(n)},
	}
}

// buildIndexed generates a dataset and builds the paper-configured index.
func buildIndexed(d dataset, budget int, cfg Config) (*core.Index, []set.Set, error) {
	sets, err := workload.Generate(d.params)
	if err != nil {
		return nil, nil, fmt.Errorf("generating %s: %w", d.name, err)
	}
	ix, err := core.Build(sets, core.Options{
		Embed: embed.Options{K: cfg.MinHashes, Bits: 8, Seed: cfg.Seed},
		Plan: optimize.Options{
			Budget:       budget,
			RecallTarget: cfg.RecallTarget,
		},
		DistSeed: cfg.Seed,
		// Account records at their web-log size (~110 bytes per log
		// string), matching the paper's ~2KB sets; see DESIGN.md.
		PayloadPerElem: 110,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("building %s index: %w", d.name, err)
	}
	return ix, sets, nil
}

// runBuckets evaluates a query workload and buckets it per the paper.
func runBuckets(ix *core.Index, sets []set.Set, cfg Config) ([]eval.BucketStats, error) {
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	runner := eval.NewRunner(ix, sets)
	outcomes, err := runner.Run(qs)
	if err != nil {
		return nil, err
	}
	return eval.Bucketize(outcomes, len(sets), eval.PaperBuckets), nil
}

// Fig6Row is one bar pair of Figure 6.
type Fig6Row struct {
	Dataset   string
	Bucket    string
	Count     int
	Recall    float64
	Precision float64
}

// Fig6 reproduces Figure 6: per-bucket precision and recall for both
// datasets at the given hash-table budget (500 for 6(a), 1000 for 6(b)).
// Budgets are scaled by the N/200000 ratio implicitly through cfg.Budget:
// pass the paper's number and the structure scales naturally because the
// optimizer spends whatever it is given.
func Fig6(w io.Writer, budget int, cfg Config) ([]Fig6Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Budget > 0 {
		budget = cfg.Budget
	}
	var rows []Fig6Row
	fmt.Fprintf(w, "Figure 6 (budget %d tables, k=%d, N=%d, %d queries)\n", budget, cfg.MinHashes, cfg.N, cfg.Queries)
	fmt.Fprintf(w, "%-6s %-12s %8s %8s %10s\n", "data", "bucket", "queries", "recall", "precision")
	for _, d := range datasets(cfg.N) {
		ix, sets, err := buildIndexed(d, budget, cfg)
		if err != nil {
			return nil, err
		}
		buckets, err := runBuckets(ix, sets, cfg)
		if err != nil {
			return nil, err
		}
		for _, b := range buckets {
			if b.Count == 0 {
				continue
			}
			row := Fig6Row{
				Dataset:   d.name,
				Bucket:    b.Label(),
				Count:     b.Count,
				Recall:    b.Recall,
				Precision: b.Precision,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6s %-12s %8d %8.3f %10.3f\n", row.Dataset, row.Bucket, row.Count, row.Recall, row.Precision)
		}
	}
	return rows, nil
}

// Fig7Row is one response-time group of Figure 7.
type Fig7Row struct {
	Dataset  string
	Bucket   string
	Count    int
	ScanIO   time.Duration
	ScanCPU  time.Duration
	IndexIO  time.Duration
	IndexCPU time.Duration
}

// IndexWins reports whether the index beats the scan in total time.
func (r Fig7Row) IndexWins() bool {
	return r.IndexIO+r.IndexCPU < r.ScanIO+r.ScanCPU
}

// Fig7 reproduces Figure 7 for one dataset: average response time per
// result-size bucket, I/O and CPU reported separately, sequential scan
// versus the index (paper setup: 1000 tables, 100 min-hash values).
func Fig7(w io.Writer, datasetName string, budget int, cfg Config) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Budget > 0 {
		budget = cfg.Budget
	}
	var d dataset
	for _, cand := range datasets(cfg.N) {
		if cand.name == datasetName {
			d = cand
		}
	}
	if d.name == "" {
		return nil, fmt.Errorf("experiments: unknown dataset %q", datasetName)
	}
	ix, sets, err := buildIndexed(d, budget, cfg)
	if err != nil {
		return nil, err
	}
	buckets, err := runBuckets(ix, sets, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 7 %s (budget %d tables, k=%d, N=%d)\n", d.name, budget, cfg.MinHashes, cfg.N)
	fmt.Fprintf(w, "%-12s %8s %12s %12s %12s %12s %7s\n", "bucket", "queries", "scan-IO", "scan-CPU", "index-IO", "index-CPU", "winner")
	var rows []Fig7Row
	for _, b := range buckets {
		if b.Count == 0 {
			continue
		}
		row := Fig7Row{
			Dataset:  d.name,
			Bucket:   b.Label(),
			Count:    b.Count,
			ScanIO:   b.ScanIO,
			ScanCPU:  b.ScanCPU,
			IndexIO:  b.IndexIO,
			IndexCPU: b.IndexCPU,
		}
		rows = append(rows, row)
		winner := "scan"
		if row.IndexWins() {
			winner = "index"
		}
		fmt.Fprintf(w, "%-12s %8d %12s %12s %12s %12s %7s\n",
			row.Bucket, row.Count, row.ScanIO.Round(time.Microsecond), row.ScanCPU.Round(time.Microsecond),
			row.IndexIO.Round(time.Microsecond), row.IndexCPU.Round(time.Microsecond), winner)
	}
	return rows, nil
}

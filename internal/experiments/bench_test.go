package experiments

import (
	"encoding/json"
	"io"
	"testing"
)

// TestBenchReport smoke-tests the parallel-pipeline report at a small
// scale: sane measurements, quality in range, and a JSON shape that
// round-trips (the contract of `make bench-json`).
func TestBenchReport(t *testing.T) {
	rep, err := Bench(io.Discard, Config{N: 600, Queries: 40, Budget: 80})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SerialBuildMillis <= 0 || rep.ParallelBuildMillis <= 0 {
		t.Errorf("non-positive build times: %+v", rep)
	}
	if rep.BuildSpeedup <= 0 || rep.QuerySpeedup <= 0 {
		t.Errorf("non-positive speedups: %+v", rep)
	}
	if rep.MeanRecall < 0 || rep.MeanRecall > 1 || rep.MeanPrecision < 0 || rep.MeanPrecision > 1 {
		t.Errorf("quality out of range: recall %g precision %g", rep.MeanRecall, rep.MeanPrecision)
	}
	if rep.ScreenedFraction < 0 || rep.ScreenedFraction > 1 {
		t.Errorf("screened fraction out of range: %g", rep.ScreenedFraction)
	}
	// Screening may only reduce simulated I/O (it skips fetches).
	if rep.ScreenedSimIOMicros > rep.SimIOMicrosPerQuery {
		t.Errorf("screening increased simulated I/O: %g > %g", rep.ScreenedSimIOMicros, rep.SimIOMicrosPerQuery)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Errorf("JSON round-trip changed the report")
	}
}

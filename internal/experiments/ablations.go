package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/ecc"
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/lsh"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/simdist"
	"repro/internal/storage"
	"repro/internal/workload"
)

// CurvePoint is one sample of a p_{r,l}(s) curve.
type CurvePoint struct {
	S float64
	P float64
}

// Curve is one filter-function curve.
type Curve struct {
	R, L   int
	Points []CurvePoint
}

// FilterCurve renders the probabilistic filter functions of Figure 3: for a
// fixed turning point s*, several (r, l) pairs trace S-curves of growing
// steepness.
func FilterCurve(w io.Writer, sStar float64) ([]Curve, error) {
	if sStar <= 0 || sStar >= 1 {
		return nil, fmt.Errorf("experiments: sStar must be in (0,1), got %g", sStar)
	}
	ls := []int{2, 8, 32, 128}
	var curves []Curve
	fmt.Fprintf(w, "Filter functions p_{r,l}(s) with turning point s* = %.2f\n", sStar)
	fmt.Fprintf(w, "%-6s", "s")
	for _, l := range ls {
		r, err := lsh.SolveR(l, sStar)
		if err != nil {
			return nil, err
		}
		curves = append(curves, Curve{R: r, L: l})
		fmt.Fprintf(w, " p(r=%d,l=%d)", r, l)
	}
	fmt.Fprintln(w)
	for s := 0.0; s <= 1.0001; s += 0.05 {
		fmt.Fprintf(w, "%-6.2f", s)
		for i := range curves {
			p := lsh.CollisionProb(s, curves[i].R, curves[i].L)
			curves[i].Points = append(curves[i].Points, CurvePoint{S: s, P: p})
			fmt.Fprintf(w, " %11.4f", p)
		}
		fmt.Fprintln(w)
	}
	return curves, nil
}

// TradeoffRow reports the r-l trade-off at one l.
type TradeoffRow struct {
	L         int
	R         int
	Steepness float64
	// Width10To90 is the similarity gap over which the filter rises from
	// 0.1 to 0.9 — smaller is closer to the ideal unit step.
	Width10To90 float64
}

// RLTradeoff quantifies Section 5's accuracy-vs-tables trade-off: as l
// grows (with r re-solved), the filter function narrows around s*.
func RLTradeoff(w io.Writer, sStar float64) ([]TradeoffRow, error) {
	if sStar <= 0 || sStar >= 1 {
		return nil, fmt.Errorf("experiments: sStar must be in (0,1), got %g", sStar)
	}
	fmt.Fprintf(w, "r-l trade-off at s* = %.2f\n", sStar)
	fmt.Fprintf(w, "%6s %6s %10s %12s\n", "l", "r", "steepness", "width(10-90)")
	var rows []TradeoffRow
	for _, l := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		r, err := lsh.SolveR(l, sStar)
		if err != nil {
			return nil, err
		}
		row := TradeoffRow{
			L:           l,
			R:           r,
			Steepness:   lsh.Steepness(r, l),
			Width10To90: curveWidth(r, l),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%6d %6d %10.3f %12.4f\n", row.L, row.R, row.Steepness, row.Width10To90)
	}
	return rows, nil
}

// curveWidth finds the similarity gap between p = 0.1 and p = 0.9 by
// bisection.
func curveWidth(r, l int) float64 {
	find := func(target float64) float64 {
		lo, hi := 0.0, 1.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if lsh.CollisionProb(mid, r, l) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	return find(0.9) - find(0.1)
}

// PlanCompareRow reports one planning strategy's expected quality.
type PlanCompareRow struct {
	Strategy       string
	Cuts           int
	WorstRecall    float64
	WorstPrecision float64
}

// Placement compares equidepth against uniform partition-point placement
// (Lemma 4) on a Set1-like similarity distribution.
func Placement(w io.Writer, cfg Config) ([]PlanCompareRow, error) {
	cfg = cfg.withDefaults()
	hist, err := datasetHist(cfg)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 100
	}
	fmt.Fprintf(w, "FI placement ablation (Lemma 4), budget %d\n", budget)
	fmt.Fprintf(w, "%-10s %6s %12s %15s\n", "placement", "cuts", "worstRecall", "worstPrecision")
	var rows []PlanCompareRow
	for _, s := range []struct {
		name string
		p    optimize.Placement
	}{{"equidepth", optimize.Equidepth}, {"uniform", optimize.Uniform}} {
		plan, err := optimize.BuildPlan(hist, optimize.Options{
			Budget: budget, RecallTarget: cfg.RecallTarget, Placement: s.p, MaxFIs: 6,
		})
		if err != nil {
			return nil, err
		}
		row := PlanCompareRow{Strategy: s.name, Cuts: len(plan.Cuts), WorstRecall: plan.WorstRecall, WorstPrecision: plan.WorstPrecision}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %6d %12.3f %15.4f\n", row.Strategy, row.Cuts, row.WorstRecall, row.WorstPrecision)
	}
	return rows, nil
}

// Allocation compares greedy against uniform hash-table allocation
// (Lemma 6) at a fixed interval decomposition.
func Allocation(w io.Writer, cfg Config) ([]PlanCompareRow, error) {
	cfg = cfg.withDefaults()
	hist, err := datasetHist(cfg)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 100
	}
	fmt.Fprintf(w, "Hash-table allocation ablation (Lemma 6), budget %d\n", budget)
	fmt.Fprintf(w, "%-10s %6s %12s %15s\n", "allocation", "cuts", "worstRecall", "worstPrecision")
	var rows []PlanCompareRow
	for _, s := range []struct {
		name string
		a    optimize.Allocation
	}{{"greedy", optimize.Greedy}, {"uniform", optimize.UniformTables}} {
		plan, err := optimize.BuildPlan(hist, optimize.Options{
			Budget: budget, RecallTarget: 0.5, Allocation: s.a, MaxFIs: 4,
		})
		if err != nil {
			return nil, err
		}
		row := PlanCompareRow{Strategy: s.name, Cuts: len(plan.Cuts), WorstRecall: plan.WorstRecall, WorstPrecision: plan.WorstPrecision}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %6d %12.3f %15.4f\n", row.Strategy, row.Cuts, row.WorstRecall, row.WorstPrecision)
	}
	return rows, nil
}

// IntervalRow reports plan quality at a fixed interval count.
type IntervalRow struct {
	Cuts           int
	WorstRecall    float64
	WorstPrecision float64
}

// Intervals sweeps the number of partition intervals at a fixed budget,
// exhibiting Lemma 3 (recall shrinks with more intervals) and Lemma 5
// (precision grows with more intervals) — the tension Figure 4 resolves.
func Intervals(w io.Writer, cfg Config) ([]IntervalRow, error) {
	cfg = cfg.withDefaults()
	hist, err := datasetHist(cfg)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 100
	}
	fmt.Fprintf(w, "Interval-count sweep (Lemmas 3 and 5), budget %d\n", budget)
	fmt.Fprintf(w, "%6s %12s %15s\n", "cuts", "worstRecall", "worstPrecision")
	var rows []IntervalRow
	for n := 1; n <= 8; n++ {
		plan, err := optimize.BuildPlanFixedIntervals(hist, n, optimize.Options{
			Budget: budget, RecallTarget: 0,
		})
		if err != nil {
			return nil, err
		}
		row := IntervalRow{Cuts: len(plan.Cuts), WorstRecall: plan.WorstRecall, WorstPrecision: plan.WorstPrecision}
		rows = append(rows, row)
		fmt.Fprintf(w, "%6d %12.3f %15.4f\n", row.Cuts, row.WorstRecall, row.WorstPrecision)
	}
	return rows, nil
}

// datasetHist builds the Set1-like similarity distribution used by the
// planner ablations.
func datasetHist(cfg Config) (*simdist.Histogram, error) {
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, err
	}
	sample := 50 * cfg.N
	maxPairs := cfg.N * (cfg.N - 1) / 2
	if sample > maxPairs {
		sample = maxPairs
	}
	return simdist.SamplePairs(sets, sample, 0, cfg.Seed+5)
}

// DFIGainRow compares subtraction overhead for one low-similarity range.
type DFIGainRow struct {
	Lo, Hi float64
	// SFIOnlyFetched is the average number of sids materialized by the
	// SFI-only combination Sim(lo) \ Sim(hi) (Section 4.1's first
	// attempt).
	SFIOnlyFetched float64
	// DFIFetched is the average materialized by Dissim(hi) \ Dissim(lo).
	DFIFetched float64
}

// DFIGain quantifies Section 4.2's motivation: answering low-similarity
// ranges via Dissimilarity Filter Indices materializes far fewer sids than
// the SFI-only set difference.
func DFIGain(w io.Writer, cfg Config) ([]DFIGainRow, error) {
	cfg = cfg.withDefaults()
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, err
	}
	emb, err := embed.New(embed.Options{K: cfg.MinHashes, Bits: 8, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ranges := [][2]float64{{0.02, 0.1}, {0.05, 0.2}, {0.1, 0.3}}
	const tables = 12
	pager := storage.NewPager(0)
	// Build paired structures at every endpoint.
	type pairFI struct{ sfi, dfi *filter.Index }
	fis := map[float64]pairFI{}
	for _, r := range ranges {
		for _, p := range []float64{r[0], r[1]} {
			if _, ok := fis[p]; ok {
				continue
			}
			th := embed.HammingFromJaccard(p)
			sfi, err := filter.New(pager, filter.Options{
				Kind: filter.Similar, Threshold: th, Dim: emb.Dimension(),
				Tables: tables, Seed: cfg.Seed + int64(p*1000), ExpectedEntries: len(sets),
			})
			if err != nil {
				return nil, err
			}
			dfi, err := filter.New(pager, filter.Options{
				Kind: filter.Dissimilar, Threshold: th, Dim: emb.Dimension(),
				Tables: tables, Seed: cfg.Seed + int64(p*1000) + 1, ExpectedEntries: len(sets),
			})
			if err != nil {
				return nil, err
			}
			fis[p] = pairFI{sfi, dfi}
		}
	}
	for sid, s := range sets {
		src := emb.Bits(emb.Sign(s))
		for _, pf := range fis {
			pf.sfi.Insert(src, storage.SID(sid))
			pf.dfi.Insert(src, storage.SID(sid))
		}
	}
	nq := cfg.Queries
	if nq > 100 {
		nq = 100
	}
	fmt.Fprintf(w, "DFI vs SFI-only overhead for low-similarity ranges (N=%d, %d queries)\n", cfg.N, nq)
	fmt.Fprintf(w, "%-14s %16s %12s %8s\n", "range", "SFI-only fetched", "DFI fetched", "ratio")
	var rows []DFIGainRow
	for _, r := range ranges {
		var sfiTot, dfiTot float64
		for q := 0; q < nq; q++ {
			src := emb.Bits(emb.Sign(sets[(q*37)%len(sets)]))
			lo, hi := fis[r[0]], fis[r[1]]
			sfiTot += float64(len(lo.sfi.Vector(src, nil)) + len(hi.sfi.Vector(src, nil)))
			dfiTot += float64(len(hi.dfi.Vector(src, nil)) + len(lo.dfi.Vector(src, nil)))
		}
		row := DFIGainRow{
			Lo: r[0], Hi: r[1],
			SFIOnlyFetched: sfiTot / float64(nq),
			DFIFetched:     dfiTot / float64(nq),
		}
		rows = append(rows, row)
		ratio := math.Inf(1)
		if row.DFIFetched > 0 {
			ratio = row.SFIOnlyFetched / row.DFIFetched
		}
		fmt.Fprintf(w, "[%.2f, %.2f]   %16.1f %12.1f %8.2f\n", row.Lo, row.Hi, row.SFIOnlyFetched, row.DFIFetched, ratio)
	}
	return rows, nil
}

// EmbedRow reports the embedding fidelity at one similarity level.
type EmbedRow struct {
	Similarity float64
	// Expected is the Theorem 1 prediction (1-s)/2.
	Expected float64
	// Hadamard is the measured mean relative Hamming distance under the
	// equidistant code; HadamardSpread is the standard deviation of the
	// per-codeword relative distances over disagreeing coordinates —
	// exactly zero for an equidistant code (every disagreeing codeword
	// pair is at exactly m/2).
	Hadamard, HadamardSpread float64
	// Identity and IdentitySpread are the same under the broken
	// straightforward embedding of Example 1: right on average, but
	// individual disagreeing values share arbitrary numbers of bits.
	Identity, IdentitySpread float64
}

// Embedding validates Theorem 1 empirically: across the similarity
// spectrum, both embeddings average near (1-s)/2, but only the Hadamard
// code guarantees it per coordinate — the identity embedding's
// per-codeword distances scatter (the paper's Example 1), which is what
// breaks the bit-sampling analysis.
func Embedding(w io.Writer, cfg Config) ([]EmbedRow, error) {
	cfg = cfg.withDefaults()
	k := cfg.MinHashes
	const seeds = 10 // average out per-family binomial noise
	idCode, err := ecc.NewIdentity(8)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Theorem 1 validation (k=%d, %d families): relative Hamming distance vs (1-s)/2\n", k, seeds)
	fmt.Fprintf(w, "%10s %10s %10s %10s %10s %10s\n", "similarity", "expected", "hadamard", "(spread)", "identity", "(spread)")
	var rows []EmbedRow
	for _, overlap := range []int{100, 80, 60, 40, 20, 0} {
		// Two sets sharing `overlap` of 100 elements each:
		// sim = overlap / (200 - overlap).
		a := make([]set.Elem, 100)
		b := make([]set.Elem, 100)
		for i := 0; i < 100; i++ {
			a[i] = set.Elem(i)
			if i < overlap {
				b[i] = set.Elem(i)
			} else {
				b[i] = set.Elem(1000 + i)
			}
		}
		sa, sb := set.New(a...), set.New(b...)
		s := sa.Jaccard(sb)
		var row EmbedRow
		row.Similarity = s
		row.Expected = (1 - s) / 2
		for seed := int64(0); seed < seeds; seed++ {
			had, err := embed.New(embed.Options{K: k, Bits: 8, Seed: cfg.Seed + seed})
			if err != nil {
				return nil, err
			}
			ident, err := embed.New(embed.Options{K: k, Bits: 8, Seed: cfg.Seed + seed, Code: idCode})
			if err != nil {
				return nil, err
			}
			hMean, hSpread := codewordDistances(had, sa, sb)
			iMean, iSpread := codewordDistances(ident, sa, sb)
			row.Hadamard += hMean / seeds
			row.HadamardSpread += hSpread / seeds
			row.Identity += iMean / seeds
			row.IdentitySpread += iSpread / seeds
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.Similarity, row.Expected, row.Hadamard, row.HadamardSpread, row.Identity, row.IdentitySpread)
	}
	return rows, nil
}

// codewordDistances returns the overall relative Hamming distance of the
// embedded pair and the standard deviation of per-codeword relative
// distances over the disagreeing coordinates.
func codewordDistances(e *embed.Embedder, a, b set.Set) (mean, disagreeSpread float64) {
	va, vb := e.Embed(a), e.Embed(b)
	m := e.CodeLength()
	var dists []float64
	for c := 0; c < e.K(); c++ {
		d := 0
		for j := 0; j < m; j++ {
			if va.Get(c*m+j) != vb.Get(c*m+j) {
				d++
			}
		}
		if d > 0 { // disagreeing codeword
			dists = append(dists, float64(d)/float64(m))
		}
	}
	mean = float64(va.HammingDistance(vb)) / float64(va.Len())
	if len(dists) == 0 {
		return mean, 0
	}
	mu := 0.0
	for _, d := range dists {
		mu += d
	}
	mu /= float64(len(dists))
	v := 0.0
	for _, d := range dists {
		v += (d - mu) * (d - mu)
	}
	return mean, math.Sqrt(v / float64(len(dists)))
}

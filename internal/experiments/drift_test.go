package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestDriftReport runs the adaptive re-tuning experiment at test scale
// and pins its contract: three phases in order, the drifted and re-tuned
// phases sharing one workload, the tracker firing on the shift, and the
// re-tuned plan recovering the stale plan's lost recall.
func TestDriftReport(t *testing.T) {
	var sb strings.Builder
	rep, err := Drift(&sb, Config{N: 400, Queries: 32, Budget: 120, MinHashes: 32, Seed: 1, RecallTarget: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(rep.Phases))
	}
	before, drifted, retuned := rep.Phases[0], rep.Phases[1], rep.Phases[2]
	if before.Phase != "before" || drifted.Phase != "drifted" || retuned.Phase != "retuned" {
		t.Fatalf("phase order %q/%q/%q", before.Phase, drifted.Phase, retuned.Phase)
	}
	if before.Sets != rep.BaseSets || drifted.Sets != rep.BaseSets+rep.FloodSets {
		t.Fatalf("phase sizes %d/%d vs base %d flood %d", before.Sets, drifted.Sets, rep.BaseSets, rep.FloodSets)
	}
	if before.PlanGeneration != 0 || drifted.PlanGeneration != 0 || retuned.PlanGeneration != 1 {
		t.Fatalf("plan generations %d/%d/%d, want 0/0/1",
			before.PlanGeneration, drifted.PlanGeneration, retuned.PlanGeneration)
	}
	for _, p := range rep.Phases {
		if p.Recall < 0 || p.Recall > 1 || p.Precision < 0 || p.Precision > 1 {
			t.Errorf("phase %s metrics out of range: %+v", p.Phase, p)
		}
	}
	if !rep.TrackerFired {
		t.Errorf("drift tracker did not fire (drift %.3f vs threshold %.3f)", rep.Drift, rep.Threshold)
	}
	if rep.Drift <= rep.Threshold {
		t.Errorf("reported drift %.3f not above threshold %.3f", rep.Drift, rep.Threshold)
	}
	if retuned.Recall <= drifted.Recall {
		t.Errorf("retune did not recover recall: drifted %.3f, retuned %.3f", drifted.Recall, retuned.Recall)
	}
	if !strings.Contains(sb.String(), "retuned") {
		t.Error("missing retuned row in rendered table")
	}
}

// TestDriftDeterministic pins that the report is a pure function of its
// config (seeded generators, injected tuner randomness — no global rand).
func TestDriftDeterministic(t *testing.T) {
	cfg := Config{N: 300, Queries: 16, Budget: 80, MinHashes: 32, Seed: 5, RecallTarget: 0.75}
	a, err := Drift(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drift(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Drift != b.Drift || a.TrackerFired != b.TrackerFired {
		t.Fatalf("tracker outcome differs across runs: %+v vs %+v", a, b)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts differ: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %d differs: %+v vs %+v", i, a.Phases[i], b.Phases[i])
		}
	}
}

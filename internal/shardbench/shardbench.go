// Package shardbench measures the sharded engine end to end through the
// public API: build time, query latency, and concurrent durable insert
// throughput at several shard counts, with a cross-shard-count result
// checksum proving the counts answer identically. It lives outside
// internal/experiments because it exercises the public ssr package (the
// experiments package is imported by ssr's own benchmarks, so importing
// ssr from there would cycle).
//
// Honesty note for the throughput numbers: on a single-CPU machine the
// sharded speedup does NOT come from CPU parallelism. Two real mechanisms
// remain, and the report separates them. In the write-only stress the win
// is overlapping per-shard WAL syncs across independent preallocated
// files (a blocked fdatasync releases the scheduler to another shard's
// writer, and in-place writes need no journal commit, so syncs on
// different files proceed concurrently). In the mixed stress the win is
// lock decoupling: a query against the monolith holds the one index's
// read lock for its whole run, starving the single write lane, while a
// scatter-gather query holds each shard's lock only while probing it, so
// the other lanes keep inserting. The report carries GOMAXPROCS so
// readers can judge the basis.
package shardbench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ssr "repro"
	"repro/internal/workload"
)

// Config scales the benchmark. Zero values select laptop-scale defaults.
type Config struct {
	// N is the collection size.
	N int
	// Queries is the number of range queries per shard count.
	Queries int
	// Budget is the per-build hash-table budget.
	Budget int
	// MinHashes is the signature length.
	MinHashes int
	// Seed drives all randomness (build seed, router seed, workloads).
	Seed int64
	// Inserts is the number of durable inserts per shard count and stress
	// phase.
	Inserts int
	// Writers is the number of concurrent inserter goroutines.
	Writers int
	// Readers is the number of concurrent query goroutines in the mixed
	// read/write stress phase.
	Readers int
	// PreallocBytes is the WAL preallocation chunk for the durable stress
	// (see ssr.DurableOptions.PreallocBytes).
	PreallocBytes int64
	// StressProcs is the GOMAXPROCS the stress phases run at — identical
	// for every shard count. On a single-core host the Go default of 1
	// makes the mixed measurement an artifact of the 10ms preemption
	// quantum (writers only run when a CPU-bound reader is preempted);
	// raising it lets lock waits and blocked syscalls interleave, which is
	// the concurrency property the shard layer actually changes. The
	// ambient value is restored afterwards and reported.
	StressProcs int
	// Shards lists the shard counts to measure.
	Shards []int
	// Dir hosts the scratch durability directories (one per shard count,
	// removed afterwards). Empty uses the working directory — NOT the
	// system temp dir, which may be memory-backed and would fake the
	// fsync-overlap measurement.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 2000
	}
	if c.Queries <= 0 {
		c.Queries = 128
	}
	if c.Budget <= 0 {
		c.Budget = 300
	}
	if c.MinHashes <= 0 {
		c.MinHashes = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Inserts <= 0 {
		c.Inserts = 1600
	}
	if c.Writers <= 0 {
		c.Writers = 32
	}
	if c.Readers <= 0 {
		c.Readers = 2
	}
	if c.PreallocBytes == 0 {
		c.PreallocBytes = 1 << 20
	}
	if c.StressProcs <= 0 {
		c.StressProcs = 8
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 8}
	}
	if c.Dir == "" {
		c.Dir = "."
	}
	return c
}

// ReadPoint is one cell of the narrow-range read matrix: the narrow
// workload measured at one GOMAXPROCS value with summary pruning enabled.
type ReadPoint struct {
	// Procs is the GOMAXPROCS the cell ran at.
	Procs int `json:"procs"`
	// P50Micros / P99Micros are per-query latency percentiles.
	P50Micros float64 `json:"p50Micros"`
	P99Micros float64 `json:"p99Micros"`
	// P50GatherMicros is the p50 of the gather-only component (the final
	// cross-shard merge) — the part of the scatter tax that survives
	// pruning. Zero at shards=1, where no merge runs.
	P50GatherMicros float64 `json:"p50GatherMicros"`
	// ShardsQueried / PrunedShards total the per-query scatter accounting
	// over the whole workload: queried + pruned = queries × shard count.
	ShardsQueried int64 `json:"shardsQueried"`
	PrunedShards  int64 `json:"prunedShards"`
	// Checksum digests the workload's full answers (must match every
	// other cell, every shard count, and the pruning-off pass).
	Checksum string `json:"checksum"`
}

// Entry is the measurement at one shard count.
type Entry struct {
	Shards int `json:"shards"`
	// BuildMillis is the wall time of one in-memory Build.
	BuildMillis float64 `json:"buildMillis"`
	// P50QueryMicros / P99QueryMicros are per-query latency percentiles
	// over the query workload, measured pre-stress on the fresh build.
	P50QueryMicros float64 `json:"p50QueryMicros"`
	P99QueryMicros float64 `json:"p99QueryMicros"`
	// ResultsChecksum digests every query's full match list (sids and
	// similarities). Identical across shard counts ⇔ identical answers.
	ResultsChecksum string `json:"resultsChecksum"`
	// NarrowReads is the narrow-range read matrix: the high-floor
	// fixed-width workload (the one summary pruning can localize) at each
	// GOMAXPROCS in the report's ReadProcs, pruning enabled.
	NarrowReads []ReadPoint `json:"narrowReads"`
	// NarrowChecksumNoPrune is the narrow workload's checksum with
	// pruning force-disabled — pinning that pruning never changes
	// answers, only accounting.
	NarrowChecksumNoPrune string `json:"narrowChecksumNoPrune"`
	// DurableInsertsPerSec is concurrent insert throughput against a
	// durable index with per-mutation sync (SyncAlways), write-only load.
	DurableInsertsPerSec float64 `json:"durableInsertsPerSec"`
	// MixedInsertsPerSec is the same measurement with Readers concurrent
	// query loops running against the index for the whole stress — the
	// mixed read/write workload.
	MixedInsertsPerSec float64 `json:"mixedInsertsPerSec"`
	// MixedQueriesPerSec is the query rate those readers sustained.
	MixedQueriesPerSec float64 `json:"mixedQueriesPerSec"`
}

// Report is the JSON document `make bench-shards` writes.
type Report struct {
	GOMAXPROCS  int    `json:"gomaxprocs"`
	StressProcs int    `json:"stressProcs"`
	N           int    `json:"n"`
	Queries     int    `json:"queries"`
	Budget      int    `json:"budget"`
	MinHashes   int    `json:"minHashes"`
	Inserts     int    `json:"inserts"`
	Writers     int    `json:"writers"`
	Readers     int    `json:"readers"`
	Prealloc    int64  `json:"preallocBytes"`
	SyncMode    string `json:"syncMode"`
	// ReadProcs lists the GOMAXPROCS values of the narrow read matrix
	// (1 and NumCPU, deduplicated on single-core hosts).
	ReadProcs []int `json:"readProcs"`
	// Basis documents what the speedup measures on this machine.
	Basis string `json:"basis"`

	Entries []Entry `json:"entries"`

	// IdenticalResults is true when every shard count produced the same
	// ResultsChecksum AND every narrow-matrix cell — including the
	// pruning-off pass — produced the same narrow checksum.
	IdenticalResults bool `json:"identicalResults"`
	// InsertSpeedupVsSingle[i] is Entries[i] write-only throughput /
	// Entries[0] throughput (Entries[0] should be the single-shard
	// baseline).
	InsertSpeedupVsSingle []float64 `json:"insertSpeedupVsSingle"`
	// MixedInsertSpeedupVsSingle is the same ratio for the mixed
	// read/write stress — the headline sharding win.
	MixedInsertSpeedupVsSingle []float64 `json:"mixedInsertSpeedupVsSingle"`
}

// buildCollection materializes the shared workload as a public Collection.
func buildCollection(cfg Config) (*ssr.Collection, int, error) {
	sets, err := workload.Generate(workload.Set1Params(cfg.N))
	if err != nil {
		return nil, 0, err
	}
	c := ssr.NewCollection()
	for _, s := range sets {
		elems := s.Elems()
		ids := make([]uint64, len(elems))
		for i, e := range elems {
			ids[i] = uint64(e)
		}
		if _, err := c.AddIDs(ids...); err != nil {
			return nil, 0, err
		}
	}
	return c, len(sets), nil
}

func options(cfg Config, shards int) ssr.Options {
	return ssr.Options{
		Budget:       cfg.Budget,
		RecallTarget: 0.75,
		MinHashes:    cfg.MinHashes,
		Seed:         cfg.Seed,
		Shards:       shards,
	}
}

// percentile returns the p-quantile of sorted durations.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// readSample is one measured pass of a query workload.
type readSample struct {
	lat       []time.Duration // sorted per-query latencies
	gatherLat []time.Duration // sorted per-query gather-only components
	checksum  string          // FNV-64a over every query's full match list
	queried   int64           // total shards probed across the workload
	pruned    int64           // total shards summary-pruned across it
}

// measureRead runs the workload once, collecting latencies, the gather
// component, scatter accounting, and the answer checksum.
func measureRead(ix *ssr.Index, qs []workload.Query) (*readSample, error) {
	h := fnv.New64a()
	s := &readSample{
		lat:       make([]time.Duration, 0, len(qs)),
		gatherLat: make([]time.Duration, 0, len(qs)),
	}
	for i, q := range qs {
		start := time.Now()
		matches, st, err := ix.QuerySID(q.SID, q.Lo, q.Hi)
		s.lat = append(s.lat, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		s.gatherLat = append(s.gatherLat, st.GatherTime)
		s.queried += int64(st.ShardsQueried)
		s.pruned += int64(st.ShardsPruned)
		for _, m := range matches {
			fmt.Fprintf(h, "%d:%d:%.9f;", i, m.SID, m.Similarity)
		}
	}
	sort.Slice(s.lat, func(a, b int) bool { return s.lat[a] < s.lat[b] })
	sort.Slice(s.gatherLat, func(a, b int) bool { return s.gatherLat[a] < s.gatherLat[b] })
	s.checksum = fmt.Sprintf("%016x", h.Sum64())
	return s, nil
}

// readProcs returns the GOMAXPROCS values of the read matrix: 1 and
// NumCPU, deduplicated on single-core hosts.
func readProcs() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// measureDurableInserts bootstraps a durable index in dir and hammers it
// with cfg.Writers concurrent inserters under per-mutation sync, plus
// readers concurrent query loops (0 for the write-only phase). It returns
// inserts/s and the query rate the readers sustained. n is the collection
// size the readers draw query sids from.
func measureDurableInserts(cfg Config, shards, readers, n int, coll *ssr.Collection, dir string) (ips, qps float64, err error) {
	ix, err := ssr.CreateDurable(dir, coll, options(cfg, shards),
		ssr.DurableOptions{Sync: ssr.SyncAlways, PreallocBytes: cfg.PreallocBytes})
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = ix.Close() }()

	stop := make(chan struct{})
	var queries atomic.Int64
	var rwg sync.WaitGroup
	rerrs := make([]error, readers)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := r; ; i += readers {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := ix.QuerySID(i%n, 0.3, 1.0); err != nil {
					rerrs[r] = fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
				queries.Add(1)
			}
		}(r)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.Inserts; i += cfg.Writers {
				elems := make([]string, 8)
				for j := range elems {
					elems[j] = fmt.Sprintf("ins-%d-%d", i, j%5)
				}
				if _, err := ix.Add(elems...); err != nil {
					errs[w] = fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	rwg.Wait()
	for _, err := range append(errs, rerrs...) {
		if err != nil {
			return 0, 0, err
		}
	}
	return float64(cfg.Inserts) / elapsed.Seconds(), float64(queries.Load()) / elapsed.Seconds(), nil
}

// Run executes the benchmark and writes a human-readable table to w; the
// returned report is the JSON payload.
func Run(w io.Writer, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	// Probe the collection size once for the query workload.
	firstColl, n, err := buildCollection(cfg)
	if err != nil {
		return nil, err
	}
	qs, err := workload.Queries(n, workload.QueryParams{Count: cfg.Queries, Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	// The narrow workload asks only for high-similarity ranges — the
	// regime where most shards hold no qualifying sets, so summary pruning
	// can skip them. This is the read matrix's workload.
	narrow, err := workload.Queries(n, workload.QueryParams{
		Count: cfg.Queries, FixedWidth: true,
		MinWidth: 0.05, MaxWidth: 0.15, MinLo: 0.75,
		Seed: cfg.Seed + 77,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		StressProcs: cfg.StressProcs,
		N:           cfg.N,
		Queries:     len(qs),
		Budget:      cfg.Budget,
		MinHashes:   cfg.MinHashes,
		Inserts:     cfg.Inserts,
		Writers:     cfg.Writers,
		Readers:     cfg.Readers,
		Prealloc:    cfg.PreallocBytes,
		SyncMode:    ssr.SyncAlways.String(),
		ReadProcs:   readProcs(),
		Basis: "write-only speedup from overlapping per-shard WAL fdatasync on preallocated segments; " +
			"mixed speedup additionally from per-shard locking (a monolith query blocks the only write lane, " +
			"a scatter-gather query blocks one lane at a time); narrow-range reads can additionally skip " +
			"shards via summary pruning (key occupancy and size-histogram upper bounds), but on this " +
			"uniform hash-routed collection the optimizer's single-cut plan probes through the low-point " +
			"SFI whose short keys are occupied in every shard, so zero shards are soundly prunable and the " +
			"narrow-read matrix measures raw fan-out cost (fixed per-table probe overhead repeated per " +
			"shard, amortized only by GOMAXPROCS>1 scatter parallelism); " +
			"query results verified identical across shard counts and pruning modes pre-stress",
	}
	fmt.Fprintf(w, "Sharded engine bench (N=%d, budget %d, k=%d, %d queries, %d inserts x %d writers + %d readers, GOMAXPROCS=%d)\n",
		cfg.N, cfg.Budget, cfg.MinHashes, len(qs), cfg.Inserts, cfg.Writers, cfg.Readers, rep.GOMAXPROCS)

	for ei, shards := range cfg.Shards {
		// Build owns (and mutates) its collection, so every measurement
		// gets a fresh one — stress inserts must not leak into the next
		// shard count's build.
		coll := firstColl
		if ei > 0 {
			if coll, _, err = buildCollection(cfg); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		ix, err := ssr.Build(coll, options(cfg, shards))
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		buildWall := time.Since(start)

		broad, err := measureRead(ix, qs)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}

		// Narrow-range read matrix: the same index, pruning enabled, at
		// each GOMAXPROCS of the matrix — then one pruning-off pass whose
		// checksum pins that pruning never changed an answer.
		var points []ReadPoint
		for _, procs := range rep.ReadProcs {
			prev := runtime.GOMAXPROCS(procs)
			nar, err := measureRead(ix, narrow)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, fmt.Errorf("shards=%d narrow procs=%d: %w", shards, procs, err)
			}
			points = append(points, ReadPoint{
				Procs:           procs,
				P50Micros:       percentile(nar.lat, 0.50),
				P99Micros:       percentile(nar.lat, 0.99),
				P50GatherMicros: percentile(nar.gatherLat, 0.50),
				ShardsQueried:   nar.queried,
				PrunedShards:    nar.pruned,
				Checksum:        nar.checksum,
			})
		}
		ix.SetShardPruning(false)
		noPrune, err := measureRead(ix, narrow)
		ix.SetShardPruning(true)
		if err != nil {
			return nil, fmt.Errorf("shards=%d narrow pruning-off: %w", shards, err)
		}

		// Each stress phase gets a fresh directory and a fresh collection:
		// Build shares (and the stress mutates) its collection, so nothing
		// may leak into the next measurement.
		stressPhase := func(readers int) (float64, float64, error) {
			dir, err := os.MkdirTemp(cfg.Dir, fmt.Sprintf("shardbench-%d-*", shards))
			if err != nil {
				return 0, 0, err
			}
			durColl, _, err := buildCollection(cfg)
			if err != nil {
				return 0, 0, errors.Join(err, os.RemoveAll(dir))
			}
			ips, qps, err := measureDurableInserts(cfg, shards, readers, n, durColl, dir)
			if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
				err = rmErr
			}
			return ips, qps, err
		}
		prev := runtime.GOMAXPROCS(cfg.StressProcs)
		ips, _, err := stressPhase(0)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return nil, fmt.Errorf("shards=%d write-only stress: %w", shards, err)
		}
		mips, mqps, err := stressPhase(cfg.Readers)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return nil, fmt.Errorf("shards=%d mixed stress: %w", shards, err)
		}

		e := Entry{
			Shards:                shards,
			BuildMillis:           float64(buildWall.Microseconds()) / 1e3,
			P50QueryMicros:        percentile(broad.lat, 0.50),
			P99QueryMicros:        percentile(broad.lat, 0.99),
			ResultsChecksum:       broad.checksum,
			NarrowReads:           points,
			NarrowChecksumNoPrune: noPrune.checksum,
			DurableInsertsPerSec:  ips,
			MixedInsertsPerSec:    mips,
			MixedQueriesPerSec:    mqps,
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(w, "  shards=%d  build %8.1fms   query p50 %7.1fµs p99 %7.1fµs   inserts %6.0f/s write-only, %6.0f/s mixed (+%.0f q/s)   checksum %s\n",
			e.Shards, e.BuildMillis, e.P50QueryMicros, e.P99QueryMicros,
			e.DurableInsertsPerSec, e.MixedInsertsPerSec, e.MixedQueriesPerSec, e.ResultsChecksum)
		for _, p := range e.NarrowReads {
			fmt.Fprintf(w, "    narrow procs=%d  p50 %7.1fµs p99 %7.1fµs gather-p50 %5.1fµs  pruned %d/%d shard-visits\n",
				p.Procs, p.P50Micros, p.P99Micros, p.P50GatherMicros, p.PrunedShards, p.PrunedShards+p.ShardsQueried)
		}
	}

	rep.IdenticalResults = true
	narrowSum := rep.Entries[0].NarrowReads[0].Checksum
	for _, e := range rep.Entries {
		if e.ResultsChecksum != rep.Entries[0].ResultsChecksum {
			rep.IdenticalResults = false
		}
		if e.NarrowChecksumNoPrune != narrowSum {
			rep.IdenticalResults = false
		}
		for _, p := range e.NarrowReads {
			if p.Checksum != narrowSum {
				rep.IdenticalResults = false
			}
		}
	}
	base := rep.Entries[0].DurableInsertsPerSec
	mixedBase := rep.Entries[0].MixedInsertsPerSec
	for _, e := range rep.Entries {
		sp, msp := 0.0, 0.0
		if base > 0 {
			sp = e.DurableInsertsPerSec / base
		}
		if mixedBase > 0 {
			msp = e.MixedInsertsPerSec / mixedBase
		}
		rep.InsertSpeedupVsSingle = append(rep.InsertSpeedupVsSingle, sp)
		rep.MixedInsertSpeedupVsSingle = append(rep.MixedInsertSpeedupVsSingle, msp)
	}
	fmt.Fprintf(w, "  identical results across shard counts and pruning modes: %v\n", rep.IdenticalResults)
	for i, e := range rep.Entries {
		fmt.Fprintf(w, "  insert speedup vs shards=%d: shards=%d -> %.2fx write-only, %.2fx mixed\n",
			rep.Entries[0].Shards, e.Shards, rep.InsertSpeedupVsSingle[i], rep.MixedInsertSpeedupVsSingle[i])
	}
	return rep, nil
}

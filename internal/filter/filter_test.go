package filter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/storage"
)

func randomVec(rng *rand.Rand, n int) bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func corrupt(rng *rand.Rand, v bitvec.Vector, flips int) bitvec.Vector {
	out := v.Clone()
	for i := 0; i < flips; i++ {
		p := rng.Intn(v.Len())
		out.SetTo(p, !out.Get(p))
	}
	return out
}

func newFI(t *testing.T, kind Kind, threshold float64, dim, tables int) *Index {
	t.Helper()
	ix, err := New(storage.NewPager(0), Options{
		Kind: kind, Threshold: threshold, Dim: dim, Tables: tables,
		Seed: 11, ExpectedEntries: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	pager := storage.NewPager(0)
	if _, err := New(pager, Options{Threshold: 0, Dim: 100, Tables: 2}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := New(pager, Options{Threshold: 1, Dim: 100, Tables: 2}); err == nil {
		t.Error("threshold 1 accepted")
	}
	if _, err := New(pager, Options{Threshold: 0.5, Dim: 100, Tables: 0}); err == nil {
		t.Error("0 tables accepted")
	}
}

func TestKindString(t *testing.T) {
	if Similar.String() != "SFI" || Dissimilar.String() != "DFI" {
		t.Error("kind strings wrong")
	}
}

func TestSFIRetrievesSimilar(t *testing.T) {
	const dim = 2048
	sfi := newFI(t, Similar, 0.85, dim, 12)
	rng := rand.New(rand.NewSource(1))
	q := randomVec(rng, dim)
	near := corrupt(rng, q, dim/20) // similarity 0.95 > threshold
	far := randomVec(rng, dim)      // similarity ~0.5 < threshold
	sfi.Insert(near, 1)
	sfi.Insert(far, 2)
	got := sfi.Vector(q, nil)
	hasNear, hasFar := false, false
	for _, sid := range got {
		if sid == 1 {
			hasNear = true
		}
		if sid == 2 {
			hasFar = true
		}
	}
	if !hasNear {
		t.Error("similar vector not in SimVector")
	}
	if hasFar {
		t.Error("dissimilar vector in SimVector")
	}
}

func TestDFIRetrievesDissimilar(t *testing.T) {
	const dim = 2048
	// DFI at Hamming threshold 0.6: retrieve vectors at similarity <= 0.6.
	dfi := newFI(t, Dissimilar, 0.6, dim, 12)
	rng := rand.New(rand.NewSource(2))
	q := randomVec(rng, dim)
	near := corrupt(rng, q, dim/20) // similarity 0.95: should NOT be returned
	far := q.Complement()           // similarity 0: strongly dissimilar
	dfi.Insert(near, 1)
	dfi.Insert(far, 2)
	got := dfi.Vector(q, nil)
	hasNear, hasFar := false, false
	for _, sid := range got {
		if sid == 1 {
			hasNear = true
		}
		if sid == 2 {
			hasFar = true
		}
	}
	if !hasFar {
		t.Error("dissimilar vector not in DissimVector")
	}
	if hasNear {
		t.Error("similar vector in DissimVector")
	}
}

// TestTheorem2Duality: a DFI(s*) must behave exactly like an SFI(1-s*)
// probed with the complemented query. We verify the structural equivalence
// by comparing capture probabilities.
func TestTheorem2Duality(t *testing.T) {
	dfi := newFI(t, Dissimilar, 0.3, 512, 8)
	sfiDual := newFI(t, Similar, 0.7, 512, 8)
	for _, s := range []float64{0.1, 0.3, 0.5, 0.9} {
		// DFI capture at similarity s equals SFI capture at 1-s.
		if got, want := dfi.CaptureProb(s), sfiDual.CaptureProb(1-s); math.Abs(got-want) > 1e-12 {
			t.Errorf("s=%g: DFI %g vs dual SFI %g", s, got, want)
		}
	}
}

func TestCaptureProbMonotonic(t *testing.T) {
	sfi := newFI(t, Similar, 0.8, 1024, 10)
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		p := sfi.CaptureProb(s)
		if p < prev-1e-12 {
			t.Fatalf("SFI capture decreasing at %g", s)
		}
		prev = p
	}
	dfi := newFI(t, Dissimilar, 0.4, 1024, 10)
	prev = 2.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		p := dfi.CaptureProb(s)
		if p > prev+1e-12 {
			t.Fatalf("DFI capture increasing at %g", s)
		}
		prev = p
	}
}

func TestCaptureProbAtThreshold(t *testing.T) {
	// By construction p(s*) ≈ 1/2 (up to integer rounding of r).
	for _, th := range []float64{0.6, 0.75, 0.9} {
		sfi := newFI(t, Similar, th, 4096, 20)
		p := sfi.CaptureProb(th)
		if p < 0.25 || p > 0.75 {
			t.Errorf("SFI(%g) capture at threshold = %g, want ≈ 0.5", th, p)
		}
	}
}

func TestAccessors(t *testing.T) {
	sfi := newFI(t, Similar, 0.8, 256, 6)
	if sfi.Kind() != Similar {
		t.Error("Kind wrong")
	}
	if sfi.Threshold() != 0.8 {
		t.Error("Threshold wrong")
	}
	if sfi.Tables() != 6 {
		t.Errorf("Tables = %d", sfi.Tables())
	}
	if sfi.SampledBits() < 1 {
		t.Errorf("SampledBits = %d", sfi.SampledBits())
	}
	rng := rand.New(rand.NewSource(5))
	sfi.Insert(randomVec(rng, 256), 1)
	if sfi.Entries() != 6 {
		t.Errorf("Entries = %d, want one per table", sfi.Entries())
	}
}

func TestRClampedToDim(t *testing.T) {
	// A very tight threshold with many tables can push r beyond dim; the
	// index must clamp rather than fail.
	ix, err := New(storage.NewPager(0), Options{
		Kind: Similar, Threshold: 0.99, Dim: 16, Tables: 64,
		Seed: 1, ExpectedEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.SampledBits() > 16 {
		t.Errorf("r = %d exceeds dimension", ix.SampledBits())
	}
}

func TestIOCharged(t *testing.T) {
	sfi := newFI(t, Similar, 0.8, 256, 4)
	rng := rand.New(rand.NewSource(6))
	v := randomVec(rng, 256)
	sfi.Insert(v, 1)
	var io storage.Counter
	sfi.Vector(v, &io)
	if io.Rand() < 4 {
		t.Errorf("charged %d reads, want >= 4 (one per table)", io.Rand())
	}
}

var _ lsh.BitSource = bitvec.Vector{} // compile-time interface check

func TestWholeBucketModeSuperset(t *testing.T) {
	// The paper's literal whole-bucket probe returns a superset of the
	// exact-key probe (bucket sharing adds candidates, never removes).
	rng := rand.New(rand.NewSource(9))
	const dim = 512
	mk := func(mode hashtable.Mode) *Index {
		ix, err := New(storage.NewPager(0), Options{
			Kind: Similar, Threshold: 0.8, Dim: dim, Tables: 6,
			Seed: 4, ExpectedEntries: 8, Mode: mode, // tiny directory forces sharing
		})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	exact, whole := mk(hashtable.ExactKey), mk(hashtable.WholeBucket)
	vecs := make([]bitvec.Vector, 50)
	for i := range vecs {
		vecs[i] = randomVec(rng, dim)
		exact.Insert(vecs[i], storage.SID(i))
		whole.Insert(vecs[i], storage.SID(i))
	}
	for i := 0; i < 10; i++ {
		e := exact.Vector(vecs[i], nil)
		w := whole.Vector(vecs[i], nil)
		got := map[storage.SID]bool{}
		for _, sid := range w {
			got[sid] = true
		}
		for _, sid := range e {
			if !got[sid] {
				t.Fatalf("exact-key sid %d missing from whole-bucket result", sid)
			}
		}
		if len(w) < len(e) {
			t.Fatalf("whole-bucket returned fewer sids (%d) than exact (%d)", len(w), len(e))
		}
	}
}

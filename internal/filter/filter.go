// Package filter implements the two hash-based data structure primitives of
// Section 4: the Similarity Filter Index (SFI) and the Dissimilarity Filter
// Index (DFI). Both operate on embedded vectors in Hamming space, with
// thresholds expressed as Hamming similarities.
//
// SFI(s*) retrieves, with high probability, the sids of all vectors at
// Hamming similarity >= s* to a query vector: l hash tables each keyed on r
// sampled bits, r chosen so the collision curve p_{r,l} turns at s*.
//
// DFI(s*) retrieves the sids at Hamming similarity <= s*. By Theorem 2,
// s_H(h, q̄) = 1 - s_H(h, q), so a DFI is an SFI tuned to 1 - s* and probed
// with the complemented query vector. Data vectors are inserted unchanged.
package filter

import (
	"fmt"

	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/storage"
)

// Kind distinguishes the two filter index primitives.
type Kind int

const (
	// Similar marks an SFI.
	Similar Kind = iota
	// Dissimilar marks a DFI.
	Dissimilar
)

// String returns "SFI" or "DFI".
func (k Kind) String() string {
	if k == Dissimilar {
		return "DFI"
	}
	return "SFI"
}

// Options configures an Index.
type Options struct {
	// Kind selects SFI or DFI behaviour.
	Kind Kind
	// Threshold is s*, the Hamming-similarity turning point, in (0, 1).
	Threshold float64
	// Dim is the Hamming dimensionality D.
	Dim int
	// Tables is l, the number of hash tables allocated to this index.
	Tables int
	// Seed reproduces the sampled bit positions.
	Seed int64
	// ExpectedEntries sizes each table's bucket directory.
	ExpectedEntries int
	// Mode selects bucket probe semantics: the default ExactKey matches
	// the p_{r,l} analysis; WholeBucket is the paper's literal
	// description (a probe returns everything in the bucket).
	Mode hashtable.Mode
}

// Index is one filter index: an SFI or DFI at a fixed Hamming-similarity
// threshold. Build with New, populate with Insert, probe with Vector.
type Index struct {
	kind      Kind
	threshold float64 // the user-facing s*
	group     *lsh.Group
	r         int
}

// New creates an empty filter index. For a DFI the internal group is tuned
// to the complementary threshold 1 - s*.
func New(pager *storage.Pager, opt Options) (*Index, error) {
	if opt.Threshold <= 0 || opt.Threshold >= 1 {
		return nil, fmt.Errorf("filter: threshold must be in (0,1), got %g", opt.Threshold)
	}
	turning := opt.Threshold
	if opt.Kind == Dissimilar {
		turning = 1 - opt.Threshold
	}
	r, err := lsh.SolveR(opt.Tables, turning)
	if err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	if r > opt.Dim {
		r = opt.Dim
	}
	group, err := lsh.NewGroup(pager, lsh.GroupOptions{
		Dim:             opt.Dim,
		R:               r,
		L:               opt.Tables,
		Seed:            opt.Seed,
		ExpectedEntries: opt.ExpectedEntries,
		Mode:            opt.Mode,
	})
	if err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	return &Index{kind: opt.Kind, threshold: opt.Threshold, group: group, r: r}, nil
}

// Kind returns whether this is an SFI or DFI.
func (ix *Index) Kind() Kind { return ix.kind }

// Threshold returns the user-facing Hamming-similarity threshold s*.
func (ix *Index) Threshold() float64 { return ix.threshold }

// Tables returns l, the number of hash tables.
func (ix *Index) Tables() int { return ix.group.L() }

// SampledBits returns r, the bits sampled per table.
func (ix *Index) SampledBits() int { return ix.r }

// Positions returns the sampled bit positions of table i (not to be
// modified). Exposed so that determinism across rebuilds — the property
// snapshot loading depends on — is directly testable.
func (ix *Index) Positions(i int) []int { return ix.group.Positions(i) }

// Insert adds a data vector (unchanged, for both kinds) under sid.
func (ix *Index) Insert(src lsh.BitSource, sid storage.SID) {
	ix.group.Insert(src, sid)
}

// AppendInsertKeys appends the per-table keys Insert stores for data
// vector src (data vectors enter unchanged for both kinds, so these are
// also the keys Delete removes). Callers that maintain occupancy summaries
// derive the keys once and feed both the table and the summary.
func (ix *Index) AppendInsertKeys(src lsh.BitSource, dst []uint64) []uint64 {
	return ix.group.AppendKeys(src, dst)
}

// AppendProbeKeys appends the per-table keys a Vector probe for query q
// would look up: the sampled bits of q for an SFI, of q̄ for a DFI. A
// stored entry collides with the probe in table i iff its insert key
// equals probe key i — the emptiness test shard pruning relies on.
func (ix *Index) AppendProbeKeys(q lsh.BitSource, dst []uint64) []uint64 {
	if ix.kind == Dissimilar {
		return ix.group.AppendKeys(lsh.Complement{Src: q}, dst)
	}
	return ix.group.AppendKeys(q, dst)
}

// InsertWithKeys is Insert with the keys precomputed by AppendInsertKeys.
func (ix *Index) InsertWithKeys(keys []uint64, sid storage.SID) {
	ix.group.InsertKeys(keys, sid)
}

// DeleteWithKeys is Delete with the keys precomputed by AppendInsertKeys.
func (ix *Index) DeleteWithKeys(keys []uint64, sid storage.SID) int {
	return ix.group.DeleteKeys(keys, sid)
}

// RangeStoredKeys invokes fn(table, key) for every entry stored across the
// index's tables — the bulk path for building an occupancy summary from a
// populated index.
func (ix *Index) RangeStoredKeys(fn func(table int, key uint64)) {
	ix.group.RangeKeys(fn)
}

// Delete removes a previously inserted data vector. The same BitSource
// view (same signature) used for Insert must be supplied.
func (ix *Index) Delete(src lsh.BitSource, sid storage.SID) int {
	return ix.group.Delete(src, sid)
}

// Vector returns SimVector(s*, q) for an SFI or DissimVector(s*, q) for a
// DFI: the deduplicated sids the filter identifies for query vector q.
// Bucket page reads are charged to io (which may be nil).
func (ix *Index) Vector(q lsh.BitSource, io *storage.Counter) []storage.SID {
	return ix.VectorAppend(q, io, nil)
}

// VectorAppend is Vector writing into dst's backing array (dst must be
// empty; its capacity is reused). The result aliases dst and is only valid
// until dst's next reuse — the allocation-free probe path of the query
// processor's scratch buffers.
func (ix *Index) VectorAppend(q lsh.BitSource, io *storage.Counter, dst []storage.SID) []storage.SID {
	if ix.kind == Dissimilar {
		return ix.group.QueryAppend(lsh.Complement{Src: q}, io, dst)
	}
	return ix.group.QueryAppend(q, io, dst)
}

// CaptureProb returns the probability that a vector at Hamming similarity
// sH to the query is returned by this index: p_{r,l}(sH) for an SFI,
// p_{r,l}(1-sH) for a DFI.
func (ix *Index) CaptureProb(sH float64) float64 {
	if ix.kind == Dissimilar {
		sH = 1 - sH
	}
	return lsh.CollisionProb(sH, ix.r, ix.group.L())
}

// Entries returns the total number of stored entries across tables.
func (ix *Index) Entries() int { return ix.group.Entries() }

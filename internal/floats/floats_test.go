package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0.3, 0.1 + 0.2, true}, // the canonical rounding case raw == misses
		{0.5, 0.5, true},
		{0.5, 0.5 + 2e-9, false},
		{0, 0, true},
		{1, 1 + 1e-12, true},
		{math.NaN(), math.NaN(), false},
		// |Inf - Inf| is NaN, which is not <= tol: infinities never
		// compare equal under Eq; documented behaviour.
		{math.Inf(1), math.Inf(1), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWithin(t *testing.T) {
	if !Within(10, 10.5, 0.5) {
		t.Error("Within(10, 10.5, 0.5) should hold at the boundary")
	}
	if Within(10, 10.6, 0.5) {
		t.Error("Within(10, 10.6, 0.5) should fail")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) {
		t.Error("Zero should accept exact zero and sub-tolerance values")
	}
	if Zero(1e-6) {
		t.Error("Zero(1e-6) should fail")
	}
}

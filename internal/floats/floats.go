// Package floats is the approved tolerance-comparison helper for the
// probability-math packages. The ssrvet floatcmp analyzer forbids raw ==/!=
// between computed floating-point values (rounding makes them meaningless
// and the bugs skew recall silently); code that genuinely needs an equality
// predicate routes it through this package, making the tolerance explicit
// and auditable.
package floats

import "math"

// DefaultTol is the tolerance used by Eq. Partition points, collision
// probabilities, and histogram masses in this repo are O(1) quantities
// computed in a handful of float64 operations; 1e-9 is far above their
// accumulated rounding error and far below any meaningful similarity
// difference (the optimizer already deduplicates cuts at 1e-9).
const DefaultTol = 1e-9

// Eq reports whether a and b are equal within DefaultTol (absolute).
// It is the predicate for identity checks on O(1) quantities such as
// partition points; for values of arbitrary magnitude use Within with a
// scale-aware tolerance.
func Eq(a, b float64) bool {
	return Within(a, b, DefaultTol)
}

// Within reports whether |a-b| <= tol. NaN compares unequal to everything,
// matching IEEE semantics.
func Within(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// Zero reports whether x is within DefaultTol of zero.
func Zero(x float64) bool {
	return math.Abs(x) <= DefaultTol
}

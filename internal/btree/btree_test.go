package btree

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func newTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	tr, err := New(storage.NewPager(pageSize))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertLookupSingle(t *testing.T) {
	tr := newTree(t, 256)
	want := Value{Offset: 1234, Length: 56}
	if err := tr.Insert(42, want); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Lookup(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Lookup = %+v, want %+v", got, want)
	}
	if _, err := tr.Lookup(43, nil); err == nil {
		t.Error("missing key found")
	}
	if tr.Size() != 1 {
		t.Errorf("Size = %d", tr.Size())
	}
}

func TestInsertReplace(t *testing.T) {
	tr := newTree(t, 256)
	_ = tr.Insert(7, Value{Offset: 1})
	_ = tr.Insert(7, Value{Offset: 2})
	got, err := tr.Lookup(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 2 {
		t.Errorf("replace failed: %+v", got)
	}
	if tr.Size() != 1 {
		t.Errorf("Size after replace = %d", tr.Size())
	}
}

func TestSequentialInsertManySplits(t *testing.T) {
	// Small pages force deep trees.
	tr := newTree(t, 128)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, Value{Offset: i * 10, Length: uint32(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Size() != n {
		t.Fatalf("Size = %d", tr.Size())
	}
	if tr.Height() < 3 {
		t.Errorf("expected a deep tree with 128-byte pages, height = %d", tr.Height())
	}
	for i := uint64(0); i < n; i++ {
		v, err := tr.Lookup(i, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if v.Offset != i*10 || v.Length != uint32(i) {
			t.Fatalf("lookup %d = %+v", i, v)
		}
	}
}

func TestRandomInsertOrder(t *testing.T) {
	tr := newTree(t, 256)
	rng := rand.New(rand.NewSource(3))
	ref := make(map[uint64]Value)
	for i := 0; i < 3000; i++ {
		k := rng.Uint64() % 10000
		v := Value{Offset: rng.Uint64() % 1e9, Length: rng.Uint32() % 1e6}
		ref[k] = v
		if err := tr.Insert(k, v); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if tr.Size() != len(ref) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(ref))
	}
	for k, want := range ref {
		got, err := tr.Lookup(k, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("lookup %d = %+v, want %+v", k, got, want)
		}
	}
	// Absent keys in gaps must fail.
	misses := 0
	for i := 0; i < 1000; i++ {
		k := 10000 + rng.Uint64()%10000
		if _, err := tr.Lookup(k, nil); err != nil {
			misses++
		}
	}
	if misses != 1000 {
		t.Errorf("%d/1000 absent keys found", 1000-misses)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := newTree(t, 128)
	rng := rand.New(rand.NewSource(9))
	keys := rng.Perm(2000)
	for _, k := range keys {
		_ = tr.Insert(uint64(k), Value{Offset: uint64(k)})
	}
	var got []uint64
	err := tr.Ascend(func(k uint64, v Value) bool {
		got = append(got, k)
		if v.Offset != k {
			t.Fatalf("value mismatch at key %d", k)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Fatalf("Ascend visited %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("out of order at %d: %d >= %d", i, got[i-1], got[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := newTree(t, 128)
	for i := uint64(0); i < 100; i++ {
		_ = tr.Insert(i, Value{})
	}
	count := 0
	_ = tr.Ascend(func(k uint64, v Value) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("visited %d", count)
	}
}

func TestLookupIOAccounting(t *testing.T) {
	tr := newTree(t, 128)
	for i := uint64(0); i < 2000; i++ {
		_ = tr.Insert(i, Value{Offset: i})
	}
	var io storage.Counter
	if _, err := tr.Lookup(1000, &io); err != nil {
		t.Fatal(err)
	}
	if io.Rand() != 1 {
		t.Errorf("default accounting charged %d reads, want 1 (leaf only)", io.Rand())
	}
	tr.CountInternal = true
	io.Reset()
	if _, err := tr.Lookup(1000, &io); err != nil {
		t.Fatal(err)
	}
	if io.Rand() != int64(tr.Height()) {
		t.Errorf("physical accounting charged %d reads, want height %d", io.Rand(), tr.Height())
	}
}

func TestPageTooSmall(t *testing.T) {
	if _, err := New(storage.NewPager(16)); err == nil {
		t.Error("16-byte pages accepted")
	}
}

func TestBoundaryKeys(t *testing.T) {
	tr := newTree(t, 256)
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63}
	for _, k := range keys {
		if err := tr.Insert(k, Value{Offset: k}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for _, k := range keys {
		v, err := tr.Lookup(k, nil)
		if err != nil || v.Offset != k {
			t.Errorf("lookup %d = %+v, %v", k, v, err)
		}
	}
}

func TestDescendingInsertOrder(t *testing.T) {
	tr := newTree(t, 128)
	for i := 3000; i >= 0; i-- {
		if err := tr.Insert(uint64(i), Value{Offset: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i <= 3000; i++ {
		if v, err := tr.Lookup(i, nil); err != nil || v.Offset != i {
			t.Fatalf("lookup %d failed: %+v %v", i, v, err)
		}
	}
}

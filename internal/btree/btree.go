// Package btree implements a page-oriented B+tree keyed by set identifier.
//
// The paper retrieves candidate sets "from disk, using a conventional data
// structure such as a B-tree supporting queries on set identifier"
// (Section 6). This tree maps a uint64 sid to the (offset, length) of the
// serialized set inside the collection heap file. Nodes live on fixed-size
// pages supplied by a storage.Pager; lookups can charge page reads to a
// storage.Counter. Internal nodes are assumed cached in memory (the paper
// charges one random access per candidate set), so by default only leaf
// reads are charged; CountInternal makes the accounting fully physical.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// node page layout
//
//	byte 0          : kind (0 leaf, 1 internal)
//	bytes 1..2      : entry count (uint16, little endian)
//	leaf:
//	  bytes 3..6    : next-leaf page id (uint32; ^0 = none)
//	  entries at 7  : key(8) offset(8) length(4) = 20 bytes each
//	internal:
//	  bytes 3..6    : leftmost child page id
//	  entries at 7  : key(8) child(4) = 12 bytes each; subtree child holds
//	                  keys >= key
const (
	kindLeaf     = 0
	kindInternal = 1
	headerSize   = 7
	leafEntry    = 20
	innerEntry   = 12
	noPage       = ^uint32(0)
)

// Value is what the tree stores per key: the location of a serialized set.
type Value struct {
	Offset uint64
	Length uint32
}

// ErrNotFound is returned by Lookup for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+tree over (key → Value). The zero value is unusable; call New.
// Tree is not safe for concurrent mutation; concurrent lookups are safe once
// building is complete.
type Tree struct {
	pager *storage.Pager
	root  storage.PageID
	// CountInternal, when true, charges internal-node page reads to the
	// lookup counter as random I/O in addition to the leaf read.
	CountInternal bool
	height        int
	size          int
}

// New creates an empty tree whose nodes are allocated from pager.
func New(pager *storage.Pager) (*Tree, error) {
	if pager.PageSize() < headerSize+2*leafEntry {
		return nil, fmt.Errorf("btree: page size %d too small", pager.PageSize())
	}
	t := &Tree{pager: pager, height: 1}
	t.root = pager.Alloc()
	initLeaf(pager.MustPage(t.root))
	return t, nil
}

func initLeaf(p []byte) {
	p[0] = kindLeaf
	putCount(p, 0)
	binary.LittleEndian.PutUint32(p[3:], noPage)
}

func initInternal(p []byte) {
	p[0] = kindInternal
	putCount(p, 0)
	binary.LittleEndian.PutUint32(p[3:], noPage)
}

func count(p []byte) int       { return int(binary.LittleEndian.Uint16(p[1:])) }
func putCount(p []byte, n int) { binary.LittleEndian.PutUint16(p[1:], uint16(n)) }

func (t *Tree) leafCap() int  { return (t.pager.PageSize() - headerSize) / leafEntry }
func (t *Tree) innerCap() int { return (t.pager.PageSize() - headerSize) / innerEntry }

// Size returns the number of stored keys.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 = just a leaf root).
func (t *Tree) Height() int { return t.height }

// leaf entry accessors
func leafKey(p []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(p[headerSize+i*leafEntry:])
}

func leafValue(p []byte, i int) Value {
	off := headerSize + i*leafEntry
	return Value{
		Offset: binary.LittleEndian.Uint64(p[off+8:]),
		Length: binary.LittleEndian.Uint32(p[off+16:]),
	}
}

func putLeafEntry(p []byte, i int, key uint64, v Value) {
	off := headerSize + i*leafEntry
	binary.LittleEndian.PutUint64(p[off:], key)
	binary.LittleEndian.PutUint64(p[off+8:], v.Offset)
	binary.LittleEndian.PutUint32(p[off+16:], v.Length)
}

// internal entry accessors
func innerKey(p []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(p[headerSize+i*innerEntry:])
}

func innerChild(p []byte, i int) storage.PageID {
	// i == -1 addresses the leftmost child stored in the header.
	if i < 0 {
		return storage.PageID(binary.LittleEndian.Uint32(p[3:]))
	}
	return storage.PageID(binary.LittleEndian.Uint32(p[headerSize+i*innerEntry+8:]))
}

func putInnerEntry(p []byte, i int, key uint64, child storage.PageID) {
	off := headerSize + i*innerEntry
	binary.LittleEndian.PutUint64(p[off:], key)
	binary.LittleEndian.PutUint32(p[off+8:], uint32(child))
}

func setLeftmost(p []byte, child storage.PageID) {
	binary.LittleEndian.PutUint32(p[3:], uint32(child))
}

// childIndex returns the index of the child to descend into for key:
// -1 for the leftmost child, otherwise the largest i with innerKey(i) <= key.
func childIndex(p []byte, key uint64) int {
	n := count(p)
	lo, hi := 0, n // find first entry with key' > key
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(p, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// leafIndex returns the position of key in the leaf, or (insertPos, false).
func leafIndex(p []byte, key uint64) (int, bool) {
	n := count(p)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(p, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < n && leafKey(p, lo) == key
}

// Insert adds or replaces the value for key.
func (t *Tree) Insert(key uint64, v Value) error {
	promoted, newChild, replaced, err := t.insert(t.root, key, v)
	if err != nil {
		return err
	}
	if newChild != noPage {
		// Root split: grow the tree by one level.
		newRoot := t.pager.Alloc()
		rp := t.pager.MustPage(newRoot)
		initInternal(rp)
		setLeftmost(rp, t.root)
		putInnerEntry(rp, 0, promoted, storage.PageID(newChild))
		putCount(rp, 1)
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.size++
	}
	return nil
}

// insert descends into page id. If the child splits, it returns the promoted
// separator key and the new right sibling's page id (noPage when no split).
func (t *Tree) insert(id storage.PageID, key uint64, v Value) (promoted uint64, newPage uint32, replaced bool, err error) {
	p, err := t.pager.Page(id)
	if err != nil {
		return 0, noPage, false, err
	}
	if p[0] == kindLeaf {
		return t.insertLeaf(p, key, v)
	}
	ci := childIndex(p, key)
	childPromoted, childNew, replaced, err := t.insert(innerChild(p, ci), key, v)
	if err != nil || childNew == noPage {
		return 0, noPage, replaced, err
	}
	// Insert (childPromoted, childNew) after position ci.
	n := count(p)
	pos := ci + 1
	if n < t.innerCap() {
		for i := n; i > pos; i-- {
			putInnerEntry(p, i, innerKey(p, i-1), innerChild(p, i-1))
		}
		putInnerEntry(p, pos, childPromoted, storage.PageID(childNew))
		putCount(p, n+1)
		return 0, noPage, replaced, nil
	}
	// Split the internal node.
	keys := make([]uint64, 0, n+1)
	children := make([]storage.PageID, 0, n+1)
	for i := 0; i < n; i++ {
		keys = append(keys, innerKey(p, i))
		children = append(children, innerChild(p, i))
	}
	keys = append(keys[:pos], append([]uint64{childPromoted}, keys[pos:]...)...)
	children = append(children[:pos], append([]storage.PageID{storage.PageID(childNew)}, children[pos:]...)...)
	mid := len(keys) / 2
	sep := keys[mid]
	rightID := t.pager.Alloc()
	// Re-fetch p: Alloc may have grown the pager's backing slice, and in any
	// case we hold a reference to page memory, which Alloc never moves —
	// pages are individually allocated — so p remains valid. Rebuild left.
	left := keys[:mid]
	for i, k := range left {
		putInnerEntry(p, i, k, children[i])
	}
	putCount(p, len(left))
	rp := t.pager.MustPage(rightID)
	initInternal(rp)
	setLeftmost(rp, children[mid])
	right := keys[mid+1:]
	for i, k := range right {
		putInnerEntry(rp, i, k, children[mid+1+i])
	}
	putCount(rp, len(right))
	return sep, uint32(rightID), replaced, nil
}

func (t *Tree) insertLeaf(p []byte, key uint64, v Value) (promoted uint64, newPage uint32, replaced bool, err error) {
	pos, found := leafIndex(p, key)
	if found {
		putLeafEntry(p, pos, key, v)
		return 0, noPage, true, nil
	}
	n := count(p)
	if n < t.leafCap() {
		for i := n; i > pos; i-- {
			putLeafEntry(p, i, leafKey(p, i-1), leafValue(p, i-1))
		}
		putLeafEntry(p, pos, key, v)
		putCount(p, n+1)
		return 0, noPage, false, nil
	}
	// Split the leaf.
	type kv struct {
		k uint64
		v Value
	}
	all := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		all = append(all, kv{leafKey(p, i), leafValue(p, i)})
	}
	all = append(all[:pos], append([]kv{{key, v}}, all[pos:]...)...)
	mid := len(all) / 2
	rightID := t.pager.Alloc()
	rp := t.pager.MustPage(rightID)
	initLeaf(rp)
	// Chain: right takes over left's next pointer, left points at right.
	binary.LittleEndian.PutUint32(rp[3:], binary.LittleEndian.Uint32(p[3:]))
	binary.LittleEndian.PutUint32(p[3:], uint32(rightID))
	for i, e := range all[:mid] {
		putLeafEntry(p, i, e.k, e.v)
	}
	putCount(p, mid)
	for i, e := range all[mid:] {
		putLeafEntry(rp, i, e.k, e.v)
	}
	putCount(rp, len(all)-mid)
	return all[mid].k, uint32(rightID), false, nil
}

// Lookup returns the value for key, charging page reads to io (which may be
// nil). By default only the leaf page is charged as one random read;
// CountInternal adds the internal path.
func (t *Tree) Lookup(key uint64, io *storage.Counter) (Value, error) {
	id := t.root
	for {
		p, err := t.pager.Page(id)
		if err != nil {
			return Value{}, err
		}
		if p[0] == kindLeaf {
			if io != nil {
				io.RecordRand(1)
			}
			pos, found := leafIndex(p, key)
			if !found {
				return Value{}, fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return leafValue(p, pos), nil
		}
		if io != nil && t.CountInternal {
			io.RecordRand(1)
		}
		id = innerChild(p, childIndex(p, key))
	}
}

// Ascend calls fn for every (key, value) pair in ascending key order,
// stopping early if fn returns false. It walks the leaf chain.
func (t *Tree) Ascend(fn func(key uint64, v Value) bool) error {
	// Descend to the leftmost leaf.
	id := t.root
	for {
		p, err := t.pager.Page(id)
		if err != nil {
			return err
		}
		if p[0] == kindLeaf {
			break
		}
		id = innerChild(p, -1)
	}
	for id != storage.PageID(noPage) {
		p, err := t.pager.Page(id)
		if err != nil {
			return err
		}
		n := count(p)
		for i := 0; i < n; i++ {
			if !fn(leafKey(p, i), leafValue(p, i)) {
				return nil
			}
		}
		id = storage.PageID(binary.LittleEndian.Uint32(p[3:]))
	}
	return nil
}

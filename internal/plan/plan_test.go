package plan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// in1 builds single-shard inputs around the default cost model.
func in1(pred float64, live int, scanPages int64, pps float64, tables int) Inputs {
	return Inputs{
		Predicted:   pred,
		ProbeTables: tables,
		Shards:      []ShardInput{{Live: live, ScanPages: scanPages, PagesPerSet: pps}},
		Model:       storage.DefaultCostModel(),
	}
}

func TestDecideFIProbeWhenSelective(t *testing.T) {
	// 10 predicted candidates against a 10k-page heap: random probes win.
	d := Decide(in1(10, 1000, 10000, 2, 4))
	if d.Kind != FIProbe {
		t.Fatalf("kind = %v, want fi-probe (costs %+v)", d.Kind, d.Costs)
	}
	if d.PerShard == nil || d.PerShard[0] != FIProbe {
		t.Fatalf("per-shard = %v, want [fi-probe]", d.PerShard)
	}
	if d.Costs.FIProbe >= d.Costs.DirectScan {
		t.Fatalf("fi cost %v not below scan cost %v", d.Costs.FIProbe, d.Costs.DirectScan)
	}
}

func TestDecideDirectScanWhenTiny(t *testing.T) {
	// A 5-page heap with half the collection predicted as candidates:
	// one sequential sweep beats ~54 random reads.
	d := Decide(in1(50, 100, 5, 1, 4))
	if d.Kind != DirectScan {
		t.Fatalf("kind = %v, want direct-scan (costs %+v)", d.Kind, d.Costs)
	}
	if d.Costs.DirectScan >= d.Costs.FIProbe {
		t.Fatalf("scan cost %v not below fi cost %v", d.Costs.DirectScan, d.Costs.FIProbe)
	}
}

func TestDecideScreenOnlyGates(t *testing.T) {
	// Expensive exact plans, wide range: screen-only wins, but only when
	// the caller opted in AND the width clears the confidence gate.
	in := in1(100, 1000, 100000, 4, 4)
	in.Width = 0.5
	in.Eps95 = 0.05
	in.AllowApproximate = true
	if d := Decide(in); d.Kind != ScreenOnly {
		t.Fatalf("kind = %v, want screen-only (costs %+v)", d.Kind, d.Costs)
	}
	noOptIn := in
	noOptIn.AllowApproximate = false
	if d := Decide(noOptIn); d.Kind == ScreenOnly {
		t.Fatal("screen-only chosen without AllowApproximate")
	}
	narrow := in
	narrow.Width = 0.1 // below 4×eps95
	if d := Decide(narrow); d.Kind == ScreenOnly {
		t.Fatalf("screen-only chosen for narrow range (width %g, eps %g)", narrow.Width, narrow.Eps95)
	}
}

func TestDecideMixedPerShard(t *testing.T) {
	// Shard 0 is a 2-page stub (scan wins); shard 1 is big and selective
	// (probe wins) — the decision must split per shard.
	in := Inputs{
		Predicted:   20,
		ProbeTables: 4,
		Shards: []ShardInput{
			{Live: 10, ScanPages: 2, PagesPerSet: 1},
			{Live: 10000, ScanPages: 50000, PagesPerSet: 2},
		},
		Model: storage.DefaultCostModel(),
	}
	d := Decide(in)
	if d.Kind != Mixed {
		t.Fatalf("kind = %v, want mixed (costs %+v)", d.Kind, d.Costs)
	}
	if d.PerShard[0] != DirectScan || d.PerShard[1] != FIProbe {
		t.Fatalf("per-shard = %v, want [direct-scan fi-probe]", d.PerShard)
	}
}

func TestDecideNoEstimateFallsBack(t *testing.T) {
	in := in1(0, 100, 5, 1, 4)
	in.NoEstimate = true
	if d := Decide(in); d.Kind != FIProbe || d.PerShard != nil {
		t.Fatalf("no-estimate decision = %+v, want plain fi-probe", d)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		FIProbe: "fi-probe", DirectScan: "direct-scan",
		ScreenOnly: "screen-only", Mixed: "mixed", Kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func key(sid uint64) ResultKey {
	return ResultKey{Elems: []uint64{sid, sid + 1}, Lo: 0.5, Hi: 1.0}
}

func TestResultCacheRoundTripAndLRU(t *testing.T) {
	c := NewResultCache(2)
	tok := Token{Gen: 1, Muts: []uint64{0, 0}}
	val := CachedResult{Matches: []core.Match{{SID: 3, Similarity: 0.9}}, EnclosedLo: 0.5, EnclosedHi: 1.0}
	c.Put(key(1), tok, val)
	got, ok := c.Get(key(1), tok)
	if !ok || len(got.Matches) != 1 || got.Matches[0].SID != 3 {
		t.Fatalf("Get = %+v, %v; want the stored result", got, ok)
	}
	// Returned matches are a copy: mutating them must not poison the cache.
	got.Matches[0].SID = 99
	if again, _ := c.Get(key(1), tok); again.Matches[0].SID != 3 {
		t.Fatal("cached matches aliased to a Get result")
	}
	// LRU: touch 1, insert 2 and 3 — 1 stays (recently used), 2 evicts.
	c.Put(key(2), tok, val)
	if _, ok := c.Get(key(1), tok); !ok {
		t.Fatal("entry 1 missing before overflow")
	}
	c.Put(key(3), tok, val)
	if _, ok := c.Get(key(2), tok); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.Get(key(1), tok); !ok {
		t.Fatal("LRU evicted the recently-used entry")
	}
}

func TestResultCacheInvalidation(t *testing.T) {
	c := NewResultCache(8)
	tok := Token{Gen: 1, Muts: []uint64{5, 7}}
	c.Put(key(1), tok, CachedResult{})
	for _, stale := range []Token{
		{Gen: 2, Muts: []uint64{5, 7}},    // retune bumped the generation
		{Gen: 1, Muts: []uint64{6, 7}},    // an insert landed on shard 0
		{Gen: 1, Muts: []uint64{5, 7, 0}}, // topology changed
	} {
		if _, ok := c.Get(key(1), stale); ok {
			t.Fatalf("stale token %+v served a cached result", stale)
		}
		c.Put(key(1), tok, CachedResult{}) // re-seed; stale Get evicts
	}
	if _, ok := c.Get(key(1), tok); !ok {
		t.Fatal("fresh token missed after re-seed")
	}
}

func TestResultCacheKeyMismatch(t *testing.T) {
	c := NewResultCache(4)
	tok := Token{Gen: 1}
	c.Put(key(1), tok, CachedResult{})
	other := key(1)
	other.Hi = 0.9
	if _, ok := c.Get(other, tok); ok {
		t.Fatal("different range served the cached result")
	}
	screened := key(1)
	screened.Flags = 1
	if _, ok := c.Get(screened, tok); ok {
		t.Fatal("different flags served the cached result")
	}
}

func TestPlanCacheDriftTolerance(t *testing.T) {
	c := NewPlanCache(4)
	pk := MakePlanKey(0.5, 1.0, 0)
	tok := Token{Gen: 1, Muts: []uint64{10, 10}}
	c.Put(pk, tok, Decision{Kind: DirectScan, PerShard: []Kind{DirectScan, DirectScan}})
	// Within tolerance: a handful of mutations keep the plan valid.
	near := Token{Gen: 1, Muts: []uint64{12, 11}}
	d, ok := c.Get(pk, near, 16)
	if !ok || d.Kind != DirectScan || !d.FromCache {
		t.Fatalf("Get within tolerance = %+v, %v", d, ok)
	}
	d.PerShard[0] = FIProbe // copies: must not poison the cache
	if again, _ := c.Get(pk, near, 16); again.PerShard[0] != DirectScan {
		t.Fatal("cached PerShard aliased to a Get result")
	}
	// Beyond tolerance: evicted, recomputation forced.
	far := Token{Gen: 1, Muts: []uint64{100, 10}}
	if _, ok := c.Get(pk, far, 16); ok {
		t.Fatal("plan served past the mutation tolerance")
	}
	// Generation change: never comparable, regardless of tolerance.
	c.Put(pk, tok, Decision{Kind: DirectScan})
	if _, ok := c.Get(pk, Token{Gen: 2, Muts: []uint64{10, 10}}, 1<<40); ok {
		t.Fatal("plan served across a generation bump")
	}
}

func TestMakePlanKeyBuckets(t *testing.T) {
	if MakePlanKey(0.50, 0.90, 0) != MakePlanKey(0.501, 0.901, 0) {
		t.Fatal("nearby ranges must share a bucket")
	}
	if MakePlanKey(0.2, 0.9, 0) == MakePlanKey(0.7, 0.9, 0) {
		t.Fatal("distant ranges must not share a bucket")
	}
	if MakePlanKey(0.5, 0.9, 0) == MakePlanKey(0.5, 0.9, 1) {
		t.Fatal("flags must split buckets")
	}
	if MakePlanKey(-5, 99, 0) != MakePlanKey(0, 1, 0) {
		t.Fatal("out-of-range bounds must clamp")
	}
}

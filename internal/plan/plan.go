// Package plan is the cost-based query planner: given the live similarity
// distribution (the tuner's D_S sketch when tuning is on, the build-time
// histogram otherwise), the Lemma 1 selectivity of the query's enclosed
// range, and the storage cost model, it predicts the candidate cardinality
// of a range query and prices three executable plans per shard:
//
//   - fi-probe: today's pipeline — probe the filter batteries, fetch each
//     candidate with one random page access, verify exactly. Cost is
//     rand(candidates + probed tables) + seq(candidates · (pages/set − 1)),
//     the paper's index-retrieval model.
//   - direct-scan: read the shard's heap sequentially, recompute each live
//     set's filter candidacy from its stored signature, verify candidates
//     in place. Cost is seq(heap pages). Candidacy is recomputed with the
//     exact insert-key = probe-key test the tables use, so the candidate
//     set — and therefore the answer — is byte-identical to fi-probe.
//     Wins for tiny shards and heavily-pruned shard sets where the fixed
//     per-table probe cost dominates (ROADMAP's fixed-probe-cost item).
//   - screen-only: probe the batteries but answer from the min-hash
//     similarity estimates without fetching a single data page. Cost is
//     rand(probed tables). Approximate — gated on the caller explicitly
//     opting in AND on the query range being wide relative to the
//     estimator's Chernoff 95% half-width, so the estimate is unlikely to
//     misplace sets across the range boundary.
//
// The package also provides the two caches the planner feeds: a plan cache
// keyed on bucketed query ranges and a query-result cache, both invalidated
// by generation tokens (plan generation + per-shard mutation counters) so a
// retune, hot-swap, or mutation can never serve a stale answer.
//
// Lock order: the cache mutexes sit OUTSIDE (above) the engine's
// tune → durable-shard → engine-shard → mapping → core chain. Cache calls
// are transient and made while holding no engine or core lock; nothing in
// this package calls back into the engine.
package plan

import (
	"time"

	"repro/internal/storage"
)

// Kind identifies an executable plan.
type Kind uint8

const (
	// FIProbe is the default filter-probe → fetch → verify pipeline.
	FIProbe Kind = iota
	// DirectScan sequentially scans the shard heap, recomputing filter
	// candidacy from stored signatures. Exact, byte-identical to FIProbe.
	DirectScan
	// ScreenOnly answers from signature estimates without fetching data
	// pages. Approximate; only ever chosen under AllowApproximate.
	ScreenOnly
	// Mixed marks a decision whose per-shard kinds differ (some shards
	// probe, some scan). Exact.
	Mixed
)

// String returns the stable label surfaced through QueryStats and /stats.
func (k Kind) String() string {
	switch k {
	case FIProbe:
		return "fi-probe"
	case DirectScan:
		return "direct-scan"
	case ScreenOnly:
		return "screen-only"
	case Mixed:
		return "mixed"
	}
	return "unknown"
}

// Costs reports the predicted simulated I/O time of each whole-query plan,
// for stats and benchmarks.
type Costs struct {
	FIProbe    time.Duration
	DirectScan time.Duration
	ScreenOnly time.Duration
}

// Decision is the planner's output for one query.
type Decision struct {
	// Kind is the overall plan. Mixed means consult PerShard.
	Kind Kind
	// PerShard holds the chosen exact plan per shard (FIProbe or
	// DirectScan). Nil for ScreenOnly decisions and for no-estimate
	// fallbacks, in which case every shard runs Kind.
	PerShard []Kind
	// Predicted is the estimated candidate cardinality across all shards.
	Predicted float64
	// Costs are the predicted whole-query costs the choice was made from.
	Costs Costs
	// FromCache marks a decision served by the plan cache.
	FromCache bool
}

// ShardInput is one shard's contribution to the cost inputs.
type ShardInput struct {
	// Live is the shard's live set count.
	Live int
	// ScanPages is the shard heap's sequential page count.
	ScanPages int64
	// PagesPerSet is the shard's average pages per stored set (≥ 1 pages
	// are charged per fetched candidate).
	PagesPerSet float64
}

// Inputs is everything Decide needs. The engine assembles it from the
// cores' immutable plan state, the shard summaries, and the tuner sketch.
type Inputs struct {
	// Predicted is the estimated total candidate cardinality (Lemma 1
	// capture fraction × live collection size).
	Predicted float64
	// NoEstimate is set when no usable distribution exists (empty
	// histogram); Decide then falls back to FIProbe everywhere.
	NoEstimate bool
	// ProbeTables is the number of filter tables the range's Section 4.3
	// case analysis probes (each charged one random bucket-page read).
	ProbeTables int
	// Shards describes each shard's live size and heap geometry.
	Shards []ShardInput
	// Model converts page counts to simulated time.
	Model storage.CostModel
	// Width is the query range width s2 − s1.
	Width float64
	// Eps95 is the 95% half-width of the signing family's estimator (the
	// Chernoff width under classic-64; tighter under SuperMinHash, wider
	// under b-bit packing) — so the screen-only gate relaxes or tightens
	// with the family's actual confidence.
	Eps95 float64
	// SigBytesPerSet is the stored signature footprint per set under the
	// signing family; screen-only charges reading each candidate's packed
	// signature sequentially from the resident arrays. 0 prices screening
	// as free (the historical model).
	SigBytesPerSet int
	// PageBytes converts signature bytes to page counts (0 selects
	// DefaultPageBytes).
	PageBytes int
	// ScreenWidthFactor gates screen-only: the range must be at least
	// ScreenWidthFactor × Eps95 wide. 0 selects DefaultScreenWidthFactor.
	ScreenWidthFactor float64
	// AllowApproximate permits the ScreenOnly plan at all.
	AllowApproximate bool
}

// DefaultPageBytes is the page size assumed when Inputs.PageBytes is zero
// (storage's default page).
const DefaultPageBytes = 4096

// DefaultScreenWidthFactor requires a range at least 4 Chernoff
// half-widths wide before screen-only is considered: an estimate near the
// middle of such a range is ≥ 2ε from either boundary, so boundary
// misplacement is confined to the range edges.
const DefaultScreenWidthFactor = 4

// Decide prices the three plans and picks the cheapest admissible one.
// Exact kinds (FIProbe / DirectScan / Mixed) are chosen per shard; the
// approximate ScreenOnly plan is whole-query and only admissible under
// in.AllowApproximate with a sufficiently wide range.
func Decide(in Inputs) Decision {
	if in.NoEstimate || len(in.Shards) == 0 {
		return Decision{Kind: FIProbe, Predicted: in.Predicted}
	}
	totalLive := 0
	for _, s := range in.Shards {
		totalLive += s.Live
	}
	if totalLive <= 0 {
		return Decision{Kind: FIProbe, Predicted: in.Predicted}
	}

	perShard := make([]Kind, len(in.Shards))
	var fiTotal, scanTotal, screenTotal, exactTotal time.Duration
	scans, probes := 0, 0
	for i, s := range in.Shards {
		share := in.Predicted * float64(s.Live) / float64(totalLive)
		pps := s.PagesPerSet
		if pps < 1 {
			pps = 1
		}
		// fi-probe: one random read per probed table plus one per candidate,
		// and sequential follow-on pages for multi-page sets.
		fi := in.Model.Time(int64(share*(pps-1)), int64(share)+int64(in.ProbeTables))
		// direct-scan: the whole heap, sequentially. No bucket probes.
		scan := in.Model.Time(s.ScanPages, 0)
		// screen-only: bucket probes plus the candidates' packed signatures,
		// read sequentially from the resident signature arrays — a small
		// family-dependent term (b-bit packing shrinks it 8–64×) that keeps
		// the plan comparison honest without data-page fetches.
		var sigPages int64
		if in.SigBytesPerSet > 0 {
			page := in.PageBytes
			if page <= 0 {
				page = DefaultPageBytes
			}
			sigPages = int64(share*float64(in.SigBytesPerSet)) / int64(page)
		}
		screen := in.Model.Time(sigPages, int64(in.ProbeTables))
		fiTotal += fi
		scanTotal += scan
		screenTotal += screen
		if scan < fi {
			perShard[i] = DirectScan
			exactTotal += scan
			scans++
		} else {
			perShard[i] = FIProbe
			exactTotal += fi
			probes++
		}
	}
	costs := Costs{FIProbe: fiTotal, DirectScan: scanTotal, ScreenOnly: screenTotal}

	factor := in.ScreenWidthFactor
	if factor <= 0 {
		factor = DefaultScreenWidthFactor
	}
	if in.AllowApproximate && in.Eps95 > 0 && in.Width >= factor*in.Eps95 && screenTotal < exactTotal {
		return Decision{Kind: ScreenOnly, Predicted: in.Predicted, Costs: costs}
	}

	kind := Mixed
	switch {
	case scans == 0:
		kind = FIProbe
	case probes == 0:
		kind = DirectScan
	}
	return Decision{Kind: kind, PerShard: perShard, Predicted: in.Predicted, Costs: costs}
}

// Generation-invalidated caches for the query planner.
//
// Both caches validate entries lazily with a Token captured when the entry
// was created: the engine's plan generation plus a snapshot of every
// shard's mutation counter. Retunes and hot-swaps bump the generation;
// every insert/delete bumps its shard's counter — so a stale entry is
// detected (and evicted) at lookup time, with no invalidation hook on any
// mutation path and therefore no cache lock ever taken while an engine or
// core lock is held. The token is snapshotted BEFORE the query executes:
// if a mutation lands mid-query the results may include it but the token
// will not, so a later lookup (which sees the newer counter) misses —
// conservative, never stale.
//
// Lock order: ResultCache.mu and PlanCache.mu sit outside (above) the
// engine's lock chain; see the package comment in plan.go.
package plan

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/core"
)

// Token identifies the engine state a cache entry was computed against.
type Token struct {
	// Gen is the engine's plan generation at snapshot time.
	Gen uint64
	// Muts holds each shard's mutation counter at snapshot time.
	Muts []uint64
}

// equal reports exact state identity (generation and every counter).
func (t Token) equal(o Token) bool {
	if t.Gen != o.Gen || len(t.Muts) != len(o.Muts) {
		return false
	}
	for i, m := range t.Muts {
		if m != o.Muts[i] {
			return false
		}
	}
	return true
}

// drift returns the total mutation distance between two tokens of the same
// generation, and ok=false when the tokens are incomparable (different
// generation or shard count) — incomparable always invalidates.
func (t Token) drift(o Token) (uint64, bool) {
	if t.Gen != o.Gen || len(t.Muts) != len(o.Muts) {
		return 0, false
	}
	var d uint64
	for i, m := range t.Muts {
		if m > o.Muts[i] {
			d += m - o.Muts[i]
		} else {
			d += o.Muts[i] - m
		}
	}
	return d, true
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// ResultKey identifies one cacheable query: the exact element multiset,
// the requested range, and the option bits that change the answer.
type ResultKey struct {
	// Elems is the query set's sorted element slice. Get may alias the
	// caller's slice; Put copies.
	Elems []uint64
	// Lo, Hi is the requested similarity range.
	Lo, Hi float64
	// Flags packs answer-changing options (screening on, approximate
	// allowed).
	Flags uint64
	// Margin is the screening margin (answer-changing when screening is
	// on).
	Margin float64
}

func (k ResultKey) hash() uint64 {
	h := uint64(fnvOffset)
	for _, e := range k.Elems {
		h = fnvMix(h, e)
	}
	h = fnvMix(h, math.Float64bits(k.Lo))
	h = fnvMix(h, math.Float64bits(k.Hi))
	h = fnvMix(h, k.Flags)
	h = fnvMix(h, math.Float64bits(k.Margin))
	return h
}

func (k ResultKey) equal(o ResultKey) bool {
	if len(k.Elems) != len(o.Elems) || k.Lo != o.Lo || k.Hi != o.Hi ||
		k.Flags != o.Flags || k.Margin != o.Margin {
		return false
	}
	for i, e := range k.Elems {
		if e != o.Elems[i] {
			return false
		}
	}
	return true
}

// CachedResult is the answer stored for a result-cache hit.
type CachedResult struct {
	Matches                []core.Match
	EnclosedLo, EnclosedHi float64
}

type resultEntry struct {
	hash uint64
	key  ResultKey
	tok  Token
	val  CachedResult
}

// ResultCache is an LRU query-result cache. One slot per 64-bit key hash:
// a hash collision between different keys behaves as a miss (Get) or a
// replacement (Put) — deterministic and vanishingly rare. All state is
// guarded by mu; values are deep-copied on both Put and Get so no caller
// ever aliases guarded memory.
type ResultCache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List
	byHash map[uint64]*list.Element
}

// NewResultCache returns a cache holding at most capacity entries
// (capacity < 1 is clamped to 1).
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{cap: capacity, lru: list.New(), byHash: make(map[uint64]*list.Element)}
}

// Get returns the cached answer for key if present AND computed against
// exactly the state tok describes. A present-but-stale entry is evicted.
func (c *ResultCache) Get(key ResultKey, tok Token) (CachedResult, bool) {
	h := key.hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHash[h]
	if !ok {
		return CachedResult{}, false
	}
	e := el.Value.(*resultEntry)
	if !e.key.equal(key) {
		return CachedResult{}, false
	}
	if !e.tok.equal(tok) {
		c.lru.Remove(el)
		delete(c.byHash, h)
		return CachedResult{}, false
	}
	c.lru.MoveToFront(el)
	out := CachedResult{
		Matches:    append([]core.Match(nil), e.val.Matches...),
		EnclosedLo: e.val.EnclosedLo,
		EnclosedHi: e.val.EnclosedHi,
	}
	return out, true
}

// Put stores the answer for key computed against state tok, copying the
// key's elements and the matches so the cache shares no memory with the
// caller. An existing entry under the same hash is replaced.
func (c *ResultCache) Put(key ResultKey, tok Token, val CachedResult) {
	h := key.hash()
	stored := resultEntry{
		hash: h,
		key: ResultKey{
			Elems:  append([]uint64(nil), key.Elems...),
			Lo:     key.Lo,
			Hi:     key.Hi,
			Flags:  key.Flags,
			Margin: key.Margin,
		},
		tok: Token{Gen: tok.Gen, Muts: append([]uint64(nil), tok.Muts...)},
		val: CachedResult{
			Matches:    append([]core.Match(nil), val.Matches...),
			EnclosedLo: val.EnclosedLo,
			EnclosedHi: val.EnclosedHi,
		},
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[h]; ok {
		*el.Value.(*resultEntry) = stored
		c.lru.MoveToFront(el)
		return
	}
	c.byHash[h] = c.lru.PushFront(&stored)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byHash, back.Value.(*resultEntry).hash)
	}
}

// Len returns the number of live entries (for tests).
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// planBuckets is the plan-key range resolution: ranges are bucketed to
// 1/64, coarse enough that repeated similar queries share a plan, fine
// enough that selectivity within a bucket is comparable.
const planBuckets = 64

// PlanKey identifies a plan-cache slot: the bucketed range plus the
// answer-shaping option bits.
type PlanKey struct {
	LoBucket, HiBucket uint16
	Flags              uint64
}

// MakePlanKey buckets the range [lo, hi] (clamped to [0, 1]) to 1/64.
func MakePlanKey(lo, hi float64, flags uint64) PlanKey {
	return PlanKey{LoBucket: rangeBucket(lo), HiBucket: rangeBucket(hi), Flags: flags}
}

func rangeBucket(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return planBuckets
	}
	return uint16(v * planBuckets)
}

func (k PlanKey) hash() uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(k.LoBucket))
	h = fnvMix(h, uint64(k.HiBucket))
	h = fnvMix(h, k.Flags)
	return h
}

type planEntry struct {
	hash uint64
	key  PlanKey
	tok  Token
	dec  Decision
}

// PlanCache is an LRU cache of plan Decisions keyed on bucketed ranges.
// Unlike the result cache, entries tolerate bounded mutation drift within
// the same plan generation: a few thousand inserts shift shard geometry
// too little to flip a cost comparison, while a generation bump (retune /
// hot-swap) always invalidates.
type PlanCache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List
	byHash map[uint64]*list.Element
}

// NewPlanCache returns a cache holding at most capacity decisions
// (capacity < 1 is clamped to 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, lru: list.New(), byHash: make(map[uint64]*list.Element)}
}

// Get returns the cached decision for key if its token matches tok's
// generation and drifts by at most tolerance total mutations. Stale
// entries are evicted. The decision is copied; FromCache is set.
func (c *PlanCache) Get(key PlanKey, tok Token, tolerance uint64) (Decision, bool) {
	h := key.hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHash[h]
	if !ok {
		return Decision{}, false
	}
	e := el.Value.(*planEntry)
	if e.key != key {
		return Decision{}, false
	}
	if d, comparable := e.tok.drift(tok); !comparable || d > tolerance {
		c.lru.Remove(el)
		delete(c.byHash, h)
		return Decision{}, false
	}
	c.lru.MoveToFront(el)
	dec := e.dec
	dec.PerShard = append([]Kind(nil), e.dec.PerShard...)
	dec.FromCache = true
	return dec, true
}

// Put stores the decision for key computed against state tok (copied, so
// the cache shares no memory with the caller).
func (c *PlanCache) Put(key PlanKey, tok Token, dec Decision) {
	h := key.hash()
	stored := planEntry{
		hash: h,
		key:  key,
		tok:  Token{Gen: tok.Gen, Muts: append([]uint64(nil), tok.Muts...)},
		dec:  dec,
	}
	stored.dec.PerShard = append([]Kind(nil), dec.PerShard...)
	stored.dec.FromCache = false
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[h]; ok {
		*el.Value.(*planEntry) = stored
		c.lru.MoveToFront(el)
		return
	}
	c.byHash[h] = c.lru.PushFront(&stored)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byHash, back.Value.(*planEntry).hash)
	}
}

// Len returns the number of live entries (for tests).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

package simdist

import (
	"testing"

	"repro/internal/minhash"
	"repro/internal/set"
)

// TestSampleSignaturePairsNMatchesSerial requires the parallel estimator to
// produce a bin-for-bin identical histogram for every worker count: the
// pair sequence is pre-drawn and unit weights merge exactly.
func TestSampleSignaturePairsNMatchesSerial(t *testing.T) {
	f, err := minhash.NewFamily(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]minhash.Signature, 120)
	for i := range sigs {
		sigs[i] = f.Sign(set.New(uint64(i), uint64(i/2), uint64(i/3), 7))
	}
	serial, err := SampleSignaturePairsN(sigs, 1000, 50, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, 5000} {
		par, err := SampleSignaturePairsN(sigs, 1000, 50, 99, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Total() != serial.Total() {
			t.Fatalf("workers=%d: total %g vs %g", workers, par.Total(), serial.Total())
		}
		for b := range serial.bins {
			if par.bins[b] != serial.bins[b] {
				t.Fatalf("workers=%d bin %d: %g vs %g", workers, b, par.bins[b], serial.bins[b])
			}
		}
	}
}

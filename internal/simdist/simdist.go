// Package simdist estimates and manipulates the similarity distribution
// function D_S of a set collection (Section 5): for every similarity value
// s, the (normalized) mass of set pairs that are s-similar. The optimizer
// uses D_S to place filter indices at equidepth quantiles (Definition 10),
// to split the similarity range at δ (Equation 15), and to quantify expected
// false positives and negatives (Definitions 6–7).
package simdist

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/minhash"
	"repro/internal/set"
)

// DefaultBins is the histogram resolution used when options leave it zero.
const DefaultBins = 200

// Histogram is a discretized similarity distribution over [0, 1]. Bin i
// covers [i/n, (i+1)/n), except the last bin which also includes 1. Mass is
// stored unnormalized; integral queries normalize on demand.
type Histogram struct {
	bins  []float64
	total float64
}

// NewHistogram creates an empty histogram with n bins (n <= 0 selects
// DefaultBins).
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		n = DefaultBins
	}
	return &Histogram{bins: make([]float64, n)}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Add records one observation of similarity s with the given weight.
func (h *Histogram) Add(s, weight float64) {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	i := int(s * float64(len(h.bins)))
	if i == len(h.bins) {
		i--
	}
	h.bins[i] += weight
	h.total += weight
}

// Total returns the total recorded mass.
func (h *Histogram) Total() float64 { return h.total }

// Mass returns the unnormalized mass in [a, b] (clamped to [0, 1]). Partial
// bins are interpolated linearly.
func (h *Histogram) Mass(a, b float64) float64 {
	if a > b {
		return 0
	}
	if a < 0 {
		a = 0
	}
	if b > 1 {
		b = 1
	}
	n := float64(len(h.bins))
	mass := 0.0
	for i, w := range h.bins {
		lo, hi := float64(i)/n, float64(i+1)/n
		if hi <= a || lo >= b {
			continue
		}
		overlap := minf(hi, b) - maxf(lo, a)
		mass += w * overlap * n
	}
	return mass
}

// Integrate computes ∫_a^b f(s)·D(s) ds against the histogram density,
// evaluating f at each overlapped bin's midpoint. This is how the expected
// false positive/negative integrals of Definitions 6 and 7 are realized.
func (h *Histogram) Integrate(a, b float64, f func(s float64) float64) float64 {
	if a > b {
		return 0
	}
	if a < 0 {
		a = 0
	}
	if b > 1 {
		b = 1
	}
	n := float64(len(h.bins))
	sum := 0.0
	for i, w := range h.bins {
		if w == 0 {
			continue
		}
		lo, hi := float64(i)/n, float64(i+1)/n
		if hi <= a || lo >= b {
			continue
		}
		cLo, cHi := maxf(lo, a), minf(hi, b)
		mid := (cLo + cHi) / 2
		sum += f(mid) * w * (cHi - cLo) * n
	}
	return sum
}

// Quantile returns the smallest s with CDF(s) >= p, for p in [0, 1].
// An empty histogram returns p itself (uniform fallback).
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if h.total == 0 {
		return p
	}
	target := p * h.total
	acc := 0.0
	n := float64(len(h.bins))
	for i, w := range h.bins {
		if acc+w >= target {
			frac := 0.0
			if w > 0 {
				frac = (target - acc) / w
			}
			return (float64(i) + frac) / n
		}
		acc += w
	}
	return 1
}

// Equidepth returns the k-1 interior cut points of a k-wise equidepth
// decomposition of [0, 1] (Definition 10): each of the k intervals carries
// mass total/k.
func (h *Histogram) Equidepth(k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("simdist: k must be >= 1, got %d", k)
	}
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		cuts = append(cuts, h.Quantile(float64(i)/float64(k)))
	}
	return cuts, nil
}

// Delta returns the similarity δ splitting the range into equal-mass halves
// (Equation 15): DFIs are placed below δ and SFIs above.
func (h *Histogram) Delta() float64 { return h.Quantile(0.5) }

// CDF returns the normalized cumulative mass at s: the fraction of recorded
// pairs with similarity <= s. An empty histogram returns 0 everywhere. The
// drift detector compares two distributions by their maximum CDF distance
// over the plan's partition points (a Kolmogorov–Smirnov statistic
// restricted to the points the plan actually depends on).
func (h *Histogram) CDF(s float64) float64 {
	if h.total == 0 {
		return 0
	}
	return h.Mass(0, s) / h.total
}

// RawBins returns a copy of the unnormalized per-bin masses — the exact
// internal state, so FromBins(h.RawBins()) reproduces h bit-for-bit. Used
// by the persistence layer to carry a tuner baseline through snapshots.
func (h *Histogram) RawBins() []float64 {
	out := make([]float64, len(h.bins))
	copy(out, h.bins)
	return out
}

// FromBins reconstructs a histogram from raw bin masses as returned by
// RawBins. The total is recomputed as the plain left-to-right sum — the
// same order incremental Adds accumulate it in, so a round trip through
// RawBins/FromBins is bit-identical for histograms built by Add alone.
func FromBins(bins []float64) *Histogram {
	h := &Histogram{bins: make([]float64, len(bins))}
	copy(h.bins, bins)
	for _, w := range bins {
		h.total += w
	}
	return h
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	cp := &Histogram{bins: make([]float64, len(h.bins)), total: h.total}
	copy(cp.bins, h.bins)
	return cp
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ExactPairs computes D_S exactly from all |S|(|S|-1)/2 pairwise Jaccard
// similarities — O(N²), the preprocessing option of Section 5 for small
// collections.
func ExactPairs(sets []set.Set, bins int) *Histogram {
	h := NewHistogram(bins)
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			h.Add(sets[i].Jaccard(sets[j]), 1)
		}
	}
	return h
}

// SamplePairs approximates D_S from sample pairwise similarities (Lemma 1):
// it draws the index pairs up front, gathers the referenced sets in a
// single pass over the collection, and computes only those similarities.
// Memory is O(sample), independent of |S|.
func SamplePairs(sets []set.Set, sample int, bins int, seed int64) (*Histogram, error) {
	n := len(sets)
	if n < 2 {
		return nil, fmt.Errorf("simdist: need at least 2 sets, got %d", n)
	}
	if sample < 1 {
		return nil, fmt.Errorf("simdist: sample must be >= 1, got %d", sample)
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ i, j int }
	pairs := make([]pair, sample)
	needed := make(map[int]set.Set, 2*sample)
	for k := range pairs {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		pairs[k] = pair{i, j}
		needed[i] = set.Set{}
		needed[j] = set.Set{}
	}
	// The "single dataset pass": touch each referenced set exactly once.
	for idx := range needed {
		needed[idx] = sets[idx]
	}
	h := NewHistogram(bins)
	for _, p := range pairs {
		h.Add(needed[p.i].Jaccard(needed[p.j]), 1)
	}
	return h, nil
}

// SampleSignaturePairs approximates D_S like SamplePairs but estimates each
// pair's similarity from min-hash signatures instead of exact sets — the
// cheapest preprocessing path once signatures exist anyway for the index.
func SampleSignaturePairs(sigs []minhash.Signature, sample int, bins int, seed int64) (*Histogram, error) {
	return SampleSignaturePairsN(sigs, sample, bins, seed, 1)
}

// SampleSignaturePairsN is SampleSignaturePairs with the pair estimation
// fanned across up to `workers` goroutines (workers <= 1 runs inline). The
// pair sequence is drawn serially from the seeded rng before fan-out, and
// per-worker histograms accumulate unit weights (exact integer counts in
// float64, associative far below 2^53), so the result is bit-identical to
// the serial computation for every worker count.
func SampleSignaturePairsN(sigs []minhash.Signature, sample, bins int, seed int64, workers int) (*Histogram, error) {
	return SampleSignaturePairsEst(sigs, sample, bins, seed, workers, minhash.Estimate)
}

// Estimator turns two stored signatures into a similarity estimate. The
// default is minhash.Estimate (classic agreement fraction); signing
// families supply their packed-word estimator.
type Estimator func(a, b minhash.Signature) (float64, error)

// SampleSignaturePairsEst is SampleSignaturePairsN with the per-pair
// estimator injected, so D_S can be re-estimated from any signing family's
// stored signatures. The pair sequence depends only on (n, sample, seed) —
// never on the estimator.
func SampleSignaturePairsEst(sigs []minhash.Signature, sample, bins int, seed int64, workers int, est Estimator) (*Histogram, error) {
	n := len(sigs)
	if n < 2 {
		return nil, fmt.Errorf("simdist: need at least 2 signatures, got %d", n)
	}
	if sample < 1 {
		return nil, fmt.Errorf("simdist: sample must be >= 1, got %d", sample)
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int, sample)
	for k := range pairs {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		pairs[k] = [2]int{i, j}
	}
	if workers > sample {
		workers = sample
	}
	h := NewHistogram(bins)
	if workers <= 1 {
		if err := estimatePairs(sigs, pairs, h, est); err != nil {
			return nil, err
		}
		return h, nil
	}
	parts := make([]*Histogram, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * sample / workers
		hi := (w + 1) * sample / workers
		parts[w] = NewHistogram(bins)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = estimatePairs(sigs, pairs[lo:hi], parts[w], est)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		for b, m := range parts[w].bins {
			h.bins[b] += m
		}
		h.total += parts[w].total
	}
	return h, nil
}

// estimatePairs records the estimator's similarity of every pair into h.
func estimatePairs(sigs []minhash.Signature, pairs [][2]int, h *Histogram, est Estimator) error {
	for _, p := range pairs {
		s, err := est(sigs[p[0]], sigs[p[1]])
		if err != nil {
			return err
		}
		h.Add(s, 1)
	}
	return nil
}

package simdist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/minhash"
	"repro/internal/set"
)

func TestHistogramAddMass(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.05, 1) // bin 0
	h.Add(0.15, 2) // bin 1
	h.Add(0.95, 3) // bin 9
	h.Add(1.0, 4)  // clamped into bin 9
	if h.Total() != 10 {
		t.Errorf("Total = %g", h.Total())
	}
	if got := h.Mass(0, 0.1); math.Abs(got-1) > 1e-9 {
		t.Errorf("Mass[0,0.1] = %g", got)
	}
	if got := h.Mass(0.9, 1); math.Abs(got-7) > 1e-9 {
		t.Errorf("Mass[0.9,1] = %g", got)
	}
	if got := h.Mass(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("Mass[0,1] = %g", got)
	}
}

func TestMassPartialBins(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.05, 10) // bin [0, 0.1)
	// Half the bin → half the mass (linear interpolation).
	if got := h.Mass(0, 0.05); math.Abs(got-5) > 1e-9 {
		t.Errorf("half-bin mass = %g, want 5", got)
	}
	if got := h.Mass(0.025, 0.075); math.Abs(got-5) > 1e-9 {
		t.Errorf("interior half-bin mass = %g, want 5", got)
	}
}

func TestMassEdgeCases(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.5, 1)
	if h.Mass(0.9, 0.1) != 0 {
		t.Error("inverted range should have zero mass")
	}
	if got := h.Mass(-5, 5); math.Abs(got-1) > 1e-9 {
		t.Error("clamping failed")
	}
	h.Add(-0.5, 1) // clamps to 0
	h.Add(1.5, 1)  // clamps to 1
	if got := h.Mass(0, 1); math.Abs(got-3) > 1e-9 {
		t.Errorf("clamped adds lost mass: %g", got)
	}
}

func TestIntegrateConstantIsMass(t *testing.T) {
	h := NewHistogram(50)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64(), 1)
	}
	one := func(s float64) float64 { return 1 }
	if got, want := h.Integrate(0.2, 0.8, one), h.Mass(0.2, 0.8); math.Abs(got-want) > 1e-6 {
		t.Errorf("∫1·D = %g, Mass = %g", got, want)
	}
}

func TestIntegrateLinear(t *testing.T) {
	// All mass at one bin: integral of f should be f(bin midpoint)·mass.
	h := NewHistogram(100)
	h.Add(0.505, 4)
	got := h.Integrate(0, 1, func(s float64) float64 { return s })
	if math.Abs(got-0.505*4) > 0.01 {
		t.Errorf("∫s·D = %g, want ≈ %g", got, 0.505*4)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i)/100+0.005, 1)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 0.02 {
		t.Errorf("median = %g", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) = %g", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-0.25) > 0.02 {
		t.Errorf("Q1 = %g", got)
	}
}

func TestQuantileEmptyUniformFallback(t *testing.T) {
	h := NewHistogram(10)
	if got := h.Quantile(0.3); got != 0.3 {
		t.Errorf("empty quantile = %g, want uniform fallback", got)
	}
}

func TestEquidepth(t *testing.T) {
	h := NewHistogram(200)
	rng := rand.New(rand.NewSource(2))
	// Skewed distribution: mass concentrated near 0 like real set data.
	for i := 0; i < 10000; i++ {
		h.Add(math.Abs(rng.NormFloat64())*0.1, 1)
	}
	cuts, err := h.Equidepth(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts", len(cuts))
	}
	// Each interval must hold ≈ 1/4 of the mass.
	bounds := append(append([]float64{0}, cuts...), 1)
	for i := 0; i+1 < len(bounds); i++ {
		frac := h.Mass(bounds[i], bounds[i+1]) / h.Total()
		if math.Abs(frac-0.25) > 0.05 {
			t.Errorf("interval %d holds %.3f of mass, want 0.25", i, frac)
		}
	}
	if _, err := h.Equidepth(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDelta(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 1000; i++ {
		h.Add(0.1, 1)
		h.Add(0.9, 1)
	}
	d := h.Delta()
	below, above := h.Mass(0, d), h.Mass(d, 1)
	if math.Abs(below-above) > h.Total()*0.05 {
		t.Errorf("delta %g splits mass %g/%g", d, below, above)
	}
}

func TestClone(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.5, 2)
	c := h.Clone()
	c.Add(0.5, 3)
	if h.Total() != 2 || c.Total() != 5 {
		t.Error("clone aliases original")
	}
}

func TestExactPairs(t *testing.T) {
	sets := []set.Set{
		set.New(1, 2, 3),
		set.New(1, 2, 3),       // sim 1 with first
		set.New(100, 200, 300), // sim 0 with both
	}
	h := ExactPairs(sets, 10)
	if h.Total() != 3 { // C(3,2) pairs
		t.Fatalf("Total = %g", h.Total())
	}
	if got := h.Mass(0.9, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("high-sim mass = %g, want 1", got)
	}
	if got := h.Mass(0, 0.1); math.Abs(got-2) > 1e-9 {
		t.Errorf("zero-sim mass = %g, want 2", got)
	}
}

func TestSamplePairsApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := make([]set.Set, 120)
	for i := range sets {
		elems := make([]set.Elem, 20)
		for j := range elems {
			elems[j] = set.Elem(rng.Intn(200))
		}
		sets[i] = set.New(elems...)
	}
	exact := ExactPairs(sets, 20)
	approx, err := SamplePairs(sets, 4000, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Compare normalized masses on a few ranges.
	for _, r := range [][2]float64{{0, 0.2}, {0.2, 0.5}, {0.5, 1}} {
		e := exact.Mass(r[0], r[1]) / exact.Total()
		a := approx.Mass(r[0], r[1]) / approx.Total()
		if math.Abs(e-a) > 0.08 {
			t.Errorf("range %v: exact %.3f vs sampled %.3f", r, e, a)
		}
	}
}

func TestSamplePairsValidation(t *testing.T) {
	if _, err := SamplePairs([]set.Set{set.New(1)}, 10, 10, 1); err == nil {
		t.Error("single-set collection accepted")
	}
	if _, err := SamplePairs([]set.Set{set.New(1), set.New(2)}, 0, 10, 1); err == nil {
		t.Error("zero sample accepted")
	}
}

func TestSampleSignaturePairs(t *testing.T) {
	fam, err := minhash.NewFamily(128, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sets := make([]set.Set, 100)
	sigs := make([]minhash.Signature, 100)
	for i := range sets {
		elems := make([]set.Elem, 30)
		for j := range elems {
			elems[j] = set.Elem(rng.Intn(300))
		}
		sets[i] = set.New(elems...)
		sigs[i] = fam.Sign(sets[i])
	}
	exact := ExactPairs(sets, 20)
	approx, err := SampleSignaturePairs(sigs, 4000, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]float64{{0, 0.25}, {0.25, 1}} {
		e := exact.Mass(r[0], r[1]) / exact.Total()
		a := approx.Mass(r[0], r[1]) / approx.Total()
		if math.Abs(e-a) > 0.12 {
			t.Errorf("range %v: exact %.3f vs signature-sampled %.3f", r, e, a)
		}
	}
	if _, err := SampleSignaturePairs(sigs[:1], 10, 10, 1); err == nil {
		t.Error("single signature accepted")
	}
	if _, err := SampleSignaturePairs(sigs, -1, 10, 1); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestDefaultBins(t *testing.T) {
	if NewHistogram(0).Bins() != DefaultBins {
		t.Error("default bins not applied")
	}
	if NewHistogram(-3).Bins() != DefaultBins {
		t.Error("negative bins not defaulted")
	}
}

package recovery

// Replication-facing accessors: a primary node serves its generation
// chain to followers, so the chain's position, file names, and seal
// verification need stable entry points outside this package.

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Position returns the live segment's generation and logical size — the
// resume token a tailing reader holds. Offset excludes preallocation
// padding, so every byte below it is a durable, frame-aligned prefix.
func (l *Log) Position() (gen uint64, offset int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return l.seq, 0
	}
	return l.seq, l.w.Size()
}

// Dir returns the durability directory this log lives in.
func (l *Log) Dir() string { return l.opt.Dir }

// WALFilePath names the log segment of generation gen in this directory.
// The file may have been compacted away; callers handle os.ErrNotExist.
func (l *Log) WALFilePath(gen uint64) string {
	return walPath(l.opt.Dir, gen)
}

// CheckpointFilePath names the sealed checkpoint of generation gen.
func (l *Log) CheckpointFilePath(gen uint64) string {
	return checkpointPath(l.opt.Dir, gen)
}

// SetNotify installs fn, called after every successful Append and after
// every checkpoint rotation (automatic or explicit). It runs with the
// log's internal mutex held, so it must not block and must not call back
// into the Log — post a flag or a non-blocking channel send and return.
func (l *Log) SetNotify(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notify = fn
}

// NewestCheckpoint scans dir for the highest-generation checkpoint whose
// seal verifies, returning its generation. found is false when the
// directory holds no intact checkpoint.
func NewestCheckpoint(dir string) (gen uint64, found bool, err error) {
	cps, _, err := scanDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	for i := len(cps) - 1; i >= 0; i-- {
		if VerifyCheckpoint(checkpointPath(dir, cps[i])) == nil {
			return cps[i], true, nil
		}
	}
	return 0, false, nil
}

// VerifyCheckpoint checks the seal (magic, length footer, CRC32C) of the
// checkpoint at path without interpreting its payload. A nil return means
// the file is a complete, uncorrupted snapshot artifact — safe to ship to
// a follower byte-for-byte.
func VerifyCheckpoint(path string) error {
	return loadCheckpoint(path, func(io.Reader) error { return nil })
}

// ImportCheckpoint writes a checkpoint fetched from elsewhere into the
// chain at generation gen, verifying the seal before publishing. The
// write is crash-atomic like a locally produced snapshot: temp file,
// fsync, rename, directory fsync. It is a bootstrap primitive — the
// directory should hold no live Log.
func ImportCheckpoint(dir string, gen uint64, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("recovery: creating %s: %w", dir, err)
	}
	path := checkpointPath(dir, gen)
	tmp := path + ".import"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("recovery: creating import temp: %w", err)
	}
	fail := func(err error) error {
		cerr := f.Close()
		rerr := os.Remove(tmp)
		if os.IsNotExist(rerr) {
			rerr = nil
		}
		return errors.Join(err, cerr, rerr)
	}
	if _, err := io.Copy(f, r); err != nil {
		return fail(fmt.Errorf("recovery: copying imported checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("recovery: syncing imported checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		return errors.Join(fmt.Errorf("recovery: closing imported checkpoint: %w", err), os.Remove(tmp))
	}
	if err := VerifyCheckpoint(tmp); err != nil {
		return errors.Join(fmt.Errorf("recovery: imported checkpoint failed verification: %w", err), os.Remove(tmp))
	}
	if err := os.Rename(tmp, path); err != nil {
		return errors.Join(fmt.Errorf("recovery: publishing imported checkpoint: %w", err), os.Remove(tmp))
	}
	return syncDir(dir)
}

// Package recovery layers incremental checkpoints and crash recovery on
// top of the write-ahead log (package wal), giving the dynamic index a
// restart path that loses nothing past the sync horizon.
//
// # Directory layout
//
// A durability directory holds numbered generations:
//
//	checkpoint-<seq>.snap   full state snapshot, CRC-sealed (see below)
//	wal-<seq>.log           operations applied AFTER checkpoint <seq>
//
// Generation seq+1 is created by Checkpoint: the current log is synced,
// the state is snapshotted through the Save hook, and a fresh empty log
// segment is opened. Compaction then removes generations older than the
// configured retention. Snapshot writes are crash-atomic (temp file,
// fsync, rename, directory fsync) and the file carries its own header,
// CRC32C and length footer, so a half-written or bit-flipped checkpoint is
// detected and skipped rather than loaded.
//
// # Recovery
//
// Open walks checkpoints newest-first until one loads, then replays log
// segments forward from that generation: wal-<seq>, wal-<seq+1>, ... Each
// segment must open with its own OpCheckpoint header record; replay stops
// at the first torn or corrupt frame (wal.Replay semantics). If a segment
// stops short while later generations exist, those later files describe
// state the valid prefix can no longer reach, so they are deleted — the
// recovered index always equals the state after some prefix of the logged
// operation sequence, never a gapped subsequence. The surviving segment is
// truncated to its valid prefix and appending resumes there.
//
// The package is state-agnostic: checkpoint contents and operation
// semantics live behind the Hooks callbacks, so the public ssr layer can
// drive it without an import cycle.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/wal"
)

// Hooks connects the log to the state it protects.
type Hooks struct {
	// Load reconstructs the state from one checkpoint's verified payload.
	// An error makes Open fall back to the previous generation.
	Load func(r io.Reader) error
	// Apply replays one logged operation (OpInsert or OpDelete) onto the
	// state. An error aborts recovery: it means the log and the state
	// disagree, which truncation cannot fix.
	Apply func(rec wal.Record) error
	// Save snapshots the state for a checkpoint.
	Save func(w io.Writer) error
}

// Options configures a durability directory.
type Options struct {
	// Dir is the durability directory (created if absent).
	Dir string
	// Sync is the log's fsync policy (default wal.SyncAlways).
	Sync wal.Policy
	// SyncEvery is the wal.SyncInterval period (default
	// wal.DefaultSyncInterval).
	SyncEvery time.Duration
	// CompactBytes triggers an automatic checkpoint (and compaction) once
	// the live log segment exceeds this many bytes. 0 selects
	// DefaultCompactBytes; negative disables automatic checkpoints.
	CompactBytes int64
	// Keep is how many generations before the current one compaction
	// retains (default DefaultKeep; negative keeps none).
	Keep int
	// PreallocBytes enables zero-fill preallocation of log segments in
	// chunks of this many bytes (see wal.Writer): per-record syncs become
	// metadata-free fdatasync calls that overlap across shards instead of
	// serializing through the filesystem journal. 0 disables.
	PreallocBytes int64
}

// DefaultCompactBytes is the automatic-checkpoint threshold when none is
// configured.
const DefaultCompactBytes = 8 << 20

// DefaultKeep retains one generation before the current: a corrupt newest
// checkpoint can still recover through its predecessor plus chained logs.
const DefaultKeep = 1

func (o Options) withDefaults() Options {
	if o.CompactBytes == 0 {
		o.CompactBytes = DefaultCompactBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = wal.DefaultSyncInterval
	}
	if o.Keep == 0 {
		o.Keep = DefaultKeep
	}
	if o.Keep < 0 {
		o.Keep = 0
	}
	return o
}

// Log is an open durability directory: a live wal segment plus the
// checkpoint machinery. Append/Checkpoint/Close serialize internally;
// higher layers additionally order Append calls against their own state
// mutations.
type Log struct {
	mu     sync.Mutex
	opt    Options
	h      Hooks
	seq    uint64
	w      *wal.Writer // nil until the first checkpoint exists
	comp   error       // pending automatic-compaction failure, surfaced on Close
	notify func()      // optional post-append/post-checkpoint signal (see SetNotify)
}

// checkpointPath / walPath name generation files. The fixed-width decimal
// keeps lexical and numeric order identical.
func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.snap", seq))
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seq))
}

// scanDir returns the checkpoint and wal generation numbers present,
// ascending.
func scanDir(dir string) (cps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		var seq uint64
		switch {
		case parseGen(e.Name(), "checkpoint-", ".snap", &seq):
			cps = append(cps, seq)
		case parseGen(e.Name(), "wal-", ".log", &seq):
			wals = append(wals, seq)
		}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i] < cps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return cps, wals, nil
}

// parseGen matches prefix + 16 decimal digits + suffix.
func parseGen(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	digits := name[len(prefix) : len(prefix)+16]
	var v uint64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*seq = v
	return true
}

// DirHasState reports whether dir holds any checkpoint or log files — the
// "open existing vs bootstrap fresh" decision without paying for a full
// recovery. A missing directory has no state.
func DirHasState(dir string) (bool, error) {
	cps, wals, err := scanDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return len(cps) > 0 || len(wals) > 0, nil
}

// Open recovers the state in opt.Dir through the hooks and returns the
// appendable log positioned after the last intact record. found reports
// whether any state was recovered: when false the directory held no
// loadable checkpoint, the hooks were not called, and the caller must
// populate its state and call Checkpoint before Append is usable.
func Open(opt Options, h Hooks) (l *Log, found bool, err error) {
	opt = opt.withDefaults()
	if h.Load == nil || h.Apply == nil || h.Save == nil {
		return nil, false, fmt.Errorf("recovery: all three hooks are required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("recovery: creating %s: %w", opt.Dir, err)
	}
	cps, wals, err := scanDir(opt.Dir)
	if err != nil {
		return nil, false, err
	}
	l = &Log{opt: opt, h: h}
	var loadErrs []error
	for i := len(cps) - 1; i >= 0; i-- {
		seq := cps[i]
		if err := loadCheckpoint(checkpointPath(opt.Dir, seq), h.Load); err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("generation %d: %w", seq, err))
			continue
		}
		l.seq = seq
		if err := l.recoverSegments(wals); err != nil {
			return nil, false, err
		}
		return l, true, nil
	}
	if len(loadErrs) > 0 {
		return nil, false, fmt.Errorf("recovery: no loadable checkpoint in %s: %w", opt.Dir, errors.Join(loadErrs...))
	}
	if len(wals) > 0 {
		// Logs without any checkpoint base cannot be replayed onto anything.
		return nil, false, fmt.Errorf("recovery: %s holds %d log segments but no checkpoint", opt.Dir, len(wals))
	}
	return l, false, nil
}

// recoverSegments replays wal segments forward from l.seq, truncates the
// last reachable one to its valid prefix, deletes anything beyond it, and
// opens the writer there.
func (l *Log) recoverSegments(wals []uint64) error {
	dir := l.opt.Dir
	seq := l.seq
	walSet := make(map[uint64]bool, len(wals))
	maxGen := seq
	for _, s := range wals {
		walSet[s] = true
		if s > maxGen {
			maxGen = s
		}
	}
	for {
		path := walPath(dir, seq)
		valid, err := l.replaySegment(path, seq)
		if err != nil {
			return err
		}
		next := seq + 1
		fi, statErr := os.Stat(path)
		// A segment is complete when replay consumed every byte, or when the
		// only bytes past the valid prefix are preallocation zeros: rotation
		// syncs a segment's records before the next generation is born, so a
		// purely zeroed tail cannot hide a lost frame.
		complete := statErr == nil && fi.Size() == valid
		if statErr == nil && !complete && walSet[next] {
			z, err := zerosFrom(path, valid)
			if err != nil {
				return err
			}
			complete = z
		}
		if walSet[next] && complete {
			// This segment replayed to its exact end; the next generation's
			// operations continue from precisely this state.
			seq = next
			continue
		}
		// This is where the reachable history ends: either no later segment
		// exists, or this one has a torn tail and the later files describe
		// unreachable state. Drop everything beyond, keep the valid prefix.
		if err := l.dropBeyond(seq, maxGen); err != nil {
			return err
		}
		w, err := wal.OpenWriter(path, valid, l.opt.Sync, l.opt.SyncEvery, l.opt.PreallocBytes)
		if err != nil {
			return err
		}
		l.seq = seq
		l.w = w
		if valid == 0 {
			// Segment was missing or lost even its header record (crash
			// between checkpoint rename and segment creation): start it
			// fresh with the header.
			if err := w.Append(wal.Record{Op: wal.OpCheckpoint, Seq: seq}); err != nil {
				return errors.Join(err, w.Close())
			}
		}
		return nil
	}
}

// replaySegment applies one segment's operations through the Apply hook,
// returning the valid prefix length. The first record must be the
// segment's own OpCheckpoint header; anything else marks the whole segment
// as unusable (valid 0), which recovery treats like a torn tail at the
// start.
func (l *Log) replaySegment(path string, seq uint64) (int64, error) {
	n := 0
	headerOK := false
	valid, _, err := wal.ReplayFile(path, func(rec wal.Record) error {
		n++
		if n == 1 {
			if rec.Op != wal.OpCheckpoint || rec.Seq != seq {
				return errBadHeader
			}
			headerOK = true
			return nil
		}
		switch rec.Op {
		case wal.OpInsert, wal.OpDelete:
			return l.h.Apply(rec)
		case wal.OpCheckpoint:
			// A stray mid-segment header is corruption the CRC cannot see;
			// stop the same way a torn tail would.
			return errBadHeader
		default:
			return errBadHeader
		}
	})
	if errors.Is(err, errBadHeader) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("recovery: replaying %s: %w", path, err)
	}
	if !headerOK {
		return 0, nil // empty or truncated-at-birth segment
	}
	return valid, nil
}

// errBadHeader marks a segment whose structure (not its frames) is wrong.
var errBadHeader = errors.New("recovery: bad segment structure")

// zerosFrom reports whether every byte of the file at path from offset on
// is zero — the signature of untouched preallocation padding.
func zerosFrom(path string, off int64) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("recovery: opening %s for padding scan: %w", path, err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- read-only fd
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, fmt.Errorf("recovery: seeking %s: %w", path, err)
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		for _, b := range buf[:n] {
			if b != 0 {
				return false, nil
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return true, nil
			}
			return false, fmt.Errorf("recovery: scanning %s padding: %w", path, err)
		}
	}
}

// dropBeyond removes checkpoint and wal files with generation > seq: they
// are unreachable from the recovered prefix.
func (l *Log) dropBeyond(seq, maxGen uint64) error {
	for s := seq + 1; s <= maxGen; s++ {
		for _, p := range []string{walPath(l.opt.Dir, s), checkpointPath(l.opt.Dir, s)} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("recovery: removing unreachable %s: %w", p, err)
			}
		}
	}
	if maxGen > seq {
		return syncDir(l.opt.Dir)
	}
	return nil
}

// Append logs one operation. When the live segment has grown past
// CompactBytes an automatic checkpoint runs after the append; its failure
// does not fail the append (the record itself is durable) — it is retried
// on later appends and surfaced by Close.
func (l *Log) Append(rec wal.Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return fmt.Errorf("recovery: log has no checkpoint base yet (call Checkpoint first)")
	}
	if err := l.w.Append(rec); err != nil {
		return err
	}
	if l.opt.CompactBytes > 0 && l.w.Size() > l.opt.CompactBytes {
		if err := l.checkpointLocked(); err != nil {
			l.comp = fmt.Errorf("recovery: automatic checkpoint: %w", err)
		} else {
			l.comp = nil
		}
	}
	if l.notify != nil {
		l.notify()
	}
	return nil
}

// Checkpoint writes a new generation — snapshot via the Save hook, fresh
// log segment — and compacts old generations per Options.Keep.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked()
}

func (l *Log) checkpointLocked() error {
	// 1. Make the outgoing segment durable: the snapshot includes its
	// operations, and a fallback recovery through the previous generation
	// must be able to replay them.
	if l.w != nil {
		if err := l.w.Sync(); err != nil {
			return err
		}
	}
	next := l.seq + 1
	// 2. Crash-atomic snapshot write.
	if err := writeCheckpoint(checkpointPath(l.opt.Dir, next), l.h.Save); err != nil {
		return err
	}
	// 3. Fresh segment with its header record, durable before any
	// operation lands in it.
	w, err := wal.OpenWriter(walPath(l.opt.Dir, next), 0, l.opt.Sync, l.opt.SyncEvery, l.opt.PreallocBytes)
	if err != nil {
		return err
	}
	if err := w.Append(wal.Record{Op: wal.OpCheckpoint, Seq: next}); err != nil {
		return errors.Join(err, w.Close())
	}
	if err := w.Sync(); err != nil {
		return errors.Join(err, w.Close())
	}
	// 4. Swap; close the outgoing segment (already synced).
	old := l.w
	l.w = w
	l.seq = next
	var closeErr error
	if old != nil {
		closeErr = old.Close()
	}
	// 5. Compact generations older than the retention window.
	err = errors.Join(closeErr, l.compactLocked())
	if l.notify != nil {
		l.notify()
	}
	return err
}

// compactLocked removes generations older than seq-Keep.
func (l *Log) compactLocked() error {
	if l.seq <= uint64(l.opt.Keep) {
		return nil
	}
	floor := l.seq - uint64(l.opt.Keep)
	cps, wals, err := scanDir(l.opt.Dir)
	if err != nil {
		return err
	}
	removed := false
	var errs []error
	for _, s := range cps {
		if s < floor {
			if err := os.Remove(checkpointPath(l.opt.Dir, s)); err != nil && !os.IsNotExist(err) {
				errs = append(errs, err)
			}
			removed = true
		}
	}
	for _, s := range wals {
		if s < floor {
			if err := os.Remove(walPath(l.opt.Dir, s)); err != nil && !os.IsNotExist(err) {
				errs = append(errs, err)
			}
			removed = true
		}
	}
	if removed {
		errs = append(errs, syncDir(l.opt.Dir))
	}
	return errors.Join(errs...)
}

// Seq returns the current checkpoint generation.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// LiveBytes returns the size of the live log segment.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return 0
	}
	return l.w.Size()
}

// Close syncs and closes the live segment, surfacing any pending
// automatic-compaction failure.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var werr error
	if l.w != nil {
		werr = l.w.Close()
		l.w = nil
	}
	return errors.Join(l.comp, werr)
}

// --- checkpoint file format ---
//
// A checkpoint file is header magic, the Save hook's payload, then a
// 20-byte footer:
//
//	"SSRCKPT1\n" ‖ payload ‖ crc32c(u32 LE) ‖ payloadLen(u64 LE) ‖ "SSRCKPTF"
//
// The footer makes verification independent of the payload's own format:
// a torn write (short file), a truncated payload, or any flipped bit is
// caught before the Load hook sees a byte.

const (
	ckptMagic       = "SSRCKPT1\n"
	ckptFooterMagic = "SSRCKPTF"
	ckptFooterSize  = 4 + 8 + len(ckptFooterMagic)
)

// writeCheckpoint writes a sealed snapshot crash-atomically to path.
func writeCheckpoint(path string, save func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("recovery: creating checkpoint temp: %w", err)
	}
	fail := func(err error) error {
		cerr := f.Close()
		rerr := os.Remove(tmp)
		if os.IsNotExist(rerr) {
			rerr = nil
		}
		return errors.Join(err, cerr, rerr)
	}
	if _, err := f.WriteString(ckptMagic); err != nil {
		return fail(fmt.Errorf("recovery: writing checkpoint header: %w", err))
	}
	sum := crc32.New(castagnoli)
	cw := &countingWriter{w: io.MultiWriter(f, sum)}
	if err := save(cw); err != nil {
		return fail(fmt.Errorf("recovery: snapshotting state: %w", err))
	}
	var footer [ckptFooterSize]byte
	binary.LittleEndian.PutUint32(footer[:4], sum.Sum32())
	binary.LittleEndian.PutUint64(footer[4:12], uint64(cw.n))
	copy(footer[12:], ckptFooterMagic)
	if _, err := f.Write(footer[:]); err != nil {
		return fail(fmt.Errorf("recovery: writing checkpoint footer: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("recovery: syncing checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		return errors.Join(fmt.Errorf("recovery: closing checkpoint: %w", err), os.Remove(tmp))
	}
	if err := os.Rename(tmp, path); err != nil {
		return errors.Join(fmt.Errorf("recovery: publishing checkpoint: %w", err), os.Remove(tmp))
	}
	return syncDir(filepath.Dir(path))
}

// loadCheckpoint verifies the seal on the checkpoint at path and streams
// its payload into load. Verification happens in a first pass so load
// never observes bytes that later turn out corrupt.
func loadCheckpoint(path string, load func(r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("recovery: opening checkpoint: %w", err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- read-only fd; verification reads detect I/O failure
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("recovery: stat checkpoint: %w", err)
	}
	minSize := int64(len(ckptMagic) + ckptFooterSize)
	if fi.Size() < minSize {
		return fmt.Errorf("recovery: checkpoint %s too short (%d bytes)", path, fi.Size())
	}
	header := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(f, header); err != nil {
		return fmt.Errorf("recovery: reading checkpoint header: %w", err)
	}
	if string(header) != ckptMagic {
		return fmt.Errorf("recovery: %s is not a checkpoint (bad magic %q)", path, header)
	}
	payloadLen := fi.Size() - minSize
	var footer [ckptFooterSize]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-int64(ckptFooterSize)); err != nil {
		return fmt.Errorf("recovery: reading checkpoint footer: %w", err)
	}
	if string(footer[12:]) != ckptFooterMagic {
		return fmt.Errorf("recovery: checkpoint %s footer magic mismatch", path)
	}
	if got := binary.LittleEndian.Uint64(footer[4:12]); got != uint64(payloadLen) {
		return fmt.Errorf("recovery: checkpoint %s length mismatch: footer %d, file %d", path, got, payloadLen)
	}
	payload := io.NewSectionReader(f, int64(len(ckptMagic)), payloadLen)
	sum := crc32.New(castagnoli)
	if _, err := io.Copy(sum, payload); err != nil {
		return fmt.Errorf("recovery: checksumming checkpoint: %w", err)
	}
	if sum.Sum32() != binary.LittleEndian.Uint32(footer[:4]) {
		return fmt.Errorf("recovery: checkpoint %s checksum mismatch", path)
	}
	if _, err := payload.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("recovery: rewinding checkpoint: %w", err)
	}
	return load(payload)
}

// castagnoli mirrors the wal package's CRC32C table for the checkpoint
// seal.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// countingWriter counts payload bytes for the footer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so renames and removals within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("recovery: opening dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return errors.Join(fmt.Errorf("recovery: syncing dir: %w", serr), cerr)
	}
	return cerr
}

package recovery

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wal"
)

// toyState is a minimal replayable state: a map of live sets keyed by sid,
// with JSON checkpoints. It mirrors the contract the real index obeys —
// inserts assign the recorded sid, deletes remove it.
type toyState struct {
	Sets map[uint32][]string
	Next uint32
}

func newToy() *toyState { return &toyState{Sets: map[uint32][]string{}} }

func (s *toyState) hooks() Hooks {
	return Hooks{
		Load: func(r io.Reader) error {
			loaded := newToy()
			if err := json.NewDecoder(r).Decode(loaded); err != nil {
				return err
			}
			*s = *loaded
			if s.Sets == nil {
				s.Sets = map[uint32][]string{}
			}
			return nil
		},
		Apply: func(rec wal.Record) error {
			switch rec.Op {
			case wal.OpInsert:
				if rec.SID != s.Next {
					return fmt.Errorf("toy: replay sid %d, state expects %d", rec.SID, s.Next)
				}
				s.Sets[rec.SID] = append([]string(nil), rec.Elements...)
				s.Next++
			case wal.OpDelete:
				if _, ok := s.Sets[rec.SID]; !ok {
					return fmt.Errorf("toy: delete of absent sid %d", rec.SID)
				}
				delete(s.Sets, rec.SID)
			}
			return nil
		},
		Save: func(w io.Writer) error {
			return json.NewEncoder(w).Encode(s)
		},
	}
}

func (s *toyState) insert(t *testing.T, l *Log, elems ...string) uint32 {
	t.Helper()
	sid := s.Next
	s.Sets[sid] = elems
	s.Next++
	if err := l.Append(wal.Record{Op: wal.OpInsert, SID: sid, Elements: elems}); err != nil {
		t.Fatalf("append insert: %v", err)
	}
	return sid
}

func (s *toyState) remove(t *testing.T, l *Log, sid uint32) {
	t.Helper()
	delete(s.Sets, sid)
	if err := l.Append(wal.Record{Op: wal.OpDelete, SID: sid}); err != nil {
		t.Fatalf("append delete: %v", err)
	}
}

func openToy(t *testing.T, opt Options) (*toyState, *Log, bool) {
	t.Helper()
	s := newToy()
	l, found, err := Open(opt, s.hooks())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, l, found
}

func TestFreshDirLifecycle(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: dir, Sync: wal.SyncNever}
	s, l, found := openToy(t, opt)
	if found {
		t.Fatal("found state in empty dir")
	}
	// Append before any checkpoint must fail: no base to replay onto.
	if err := l.Append(wal.Record{Op: wal.OpDelete, SID: 0}); err == nil {
		t.Fatal("Append before first checkpoint succeeded")
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("first Checkpoint: %v", err)
	}
	s.insert(t, l, "a", "b")
	s.insert(t, l, "c")
	s.remove(t, l, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, l2, found := openToy(t, opt)
	if !found {
		t.Fatal("no state recovered")
	}
	defer l2.Close()
	if !reflect.DeepEqual(s.Sets, s2.Sets) || s.Next != s2.Next {
		t.Fatalf("recovered %+v, want %+v", s2, s)
	}
	// And the log is appendable right where it left off.
	s2.insert(t, l2, "d")
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: dir, Sync: wal.SyncNever, CompactBytes: 64, Keep: 1}
	s, l, _ := openToy(t, opt)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Enough traffic to force several automatic rotations.
	for i := 0; i < 40; i++ {
		s.insert(t, l, strings.Repeat("x", 16))
	}
	if got := l.Seq(); got < 3 {
		t.Fatalf("expected several rotations, at generation %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Keep=1 retains the current and one prior generation at most.
	if len(cps) > 2 || len(wals) > 2 {
		t.Fatalf("compaction left %d checkpoints, %d wals", len(cps), len(wals))
	}
	s2, l2, found := openToy(t, opt)
	if !found {
		t.Fatal("no state recovered after rotation")
	}
	defer l2.Close()
	if !reflect.DeepEqual(s.Sets, s2.Sets) {
		t.Fatalf("post-rotation recovery mismatch")
	}
}

// TestCorruptNewestCheckpointFallsBack: a damaged newest checkpoint must
// be skipped, with recovery proceeding through the previous generation and
// its chained logs — reaching the same final state.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: dir, Sync: wal.SyncNever, CompactBytes: -1, Keep: 2}
	s, l, _ := openToy(t, opt)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.insert(t, l, "a")
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.insert(t, l, "b")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the newest checkpoint's payload.
	path := checkpointPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(ckptMagic)+1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, l2, found := openToy(t, opt)
	if !found {
		t.Fatal("no state recovered")
	}
	defer l2.Close()
	if !reflect.DeepEqual(s.Sets, s2.Sets) {
		t.Fatalf("fallback recovery: got %+v, want %+v", s2.Sets, s.Sets)
	}
	// The corrupt checkpoint described reachable state (wal-1 replays fully,
	// so generation 2 is reachable); recovery continues through wal-2 and
	// keeps appending into the newest segment.
	if l2.Seq() != 2 {
		t.Fatalf("recovered at generation %d, want 2", l2.Seq())
	}
}

// TestTornTailMidChain: when an OLDER segment in the chain has a torn
// tail, later generations are unreachable and must be dropped; recovery
// lands on the valid prefix.
func TestTornTailMidChain(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: dir, Sync: wal.SyncNever, CompactBytes: -1, Keep: 10}
	s, l, _ := openToy(t, opt)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.insert(t, l, "a")
	s.insert(t, l, "b")
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.insert(t, l, "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt checkpoint 2 so recovery must start from checkpoint 1, and
	// tear the tail off wal-1 so the "b" insert is lost — generation 2
	// becomes unreachable.
	ckpt2 := checkpointPath(dir, 2)
	data, err := os.ReadFile(ckpt2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(ckptMagic)] ^= 0xFF
	if err := os.WriteFile(ckpt2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w1 := walPath(dir, 1)
	wdata, err := os.ReadFile(w1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(w1, wdata[:len(wdata)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, l2, found := openToy(t, opt)
	if !found {
		t.Fatal("no state recovered")
	}
	defer l2.Close()
	want := map[uint32][]string{0: {"a"}}
	if !reflect.DeepEqual(s2.Sets, want) {
		t.Fatalf("got %+v, want %+v", s2.Sets, want)
	}
	if l2.Seq() != 1 {
		t.Fatalf("landed at generation %d, want 1", l2.Seq())
	}
	// The unreachable generation-2 files must be gone.
	if _, err := os.Stat(walPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatalf("unreachable wal-2 still present (err=%v)", err)
	}
	if _, err := os.Stat(ckpt2); !os.IsNotExist(err) {
		t.Fatalf("unreachable checkpoint-2 still present (err=%v)", err)
	}
	// New writes continue from the recovered prefix.
	if sid := s2.insert(t, l2, "d"); sid != 1 {
		t.Fatalf("next insert got sid %d, want 1", sid)
	}
}

// TestAllCheckpointsCorrupt: when every checkpoint is damaged, Open must
// fail with an error rather than silently handing back an empty state that
// a caller might checkpoint over the real data.
func TestAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: dir, Sync: wal.SyncNever, CompactBytes: -1}
	s, l, _ := openToy(t, opt)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.insert(t, l, "a")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, 1)
	if err := os.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(opt, newToy().hooks()); err == nil {
		t.Fatal("Open succeeded with only a corrupt checkpoint")
	}
}

// TestCheckpointFileSeal exercises loadCheckpoint against every
// single-byte corruption and truncation of a real checkpoint file.
func TestCheckpointFileSeal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seal.snap")
	payload := []byte(`{"Sets":{"0":["alpha","beta"]},"Next":1}` + "\n")
	if err := writeCheckpoint(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	load := func(p string) ([]byte, error) {
		var got []byte
		err := loadCheckpoint(p, func(r io.Reader) error {
			var rerr error
			got, rerr = io.ReadAll(r)
			return rerr
		})
		return got, err
	}
	got, err := load(path)
	if err != nil {
		t.Fatalf("pristine load: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(dir, "mut.snap")
	for off := 0; off < len(data); off++ {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x01
		if err := os.WriteFile(mut, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := load(mut); err == nil {
			t.Fatalf("flip at offset %d loaded successfully", off)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(mut, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := load(mut); err == nil {
			t.Fatalf("truncation to %d loaded successfully", cut)
		}
	}
}

func TestOrphanWalsError(t *testing.T) {
	dir := t.TempDir()
	// A wal with no checkpoint base is unrecoverable context — Open must
	// refuse rather than report a clean empty state.
	w, err := wal.OpenWriter(walPath(dir, 1), 0, wal.SyncNever, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wal.Record{Op: wal.OpCheckpoint, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}, newToy().hooks()); err == nil {
		t.Fatal("Open accepted orphan wal segments")
	}
}

func TestParseGen(t *testing.T) {
	var seq uint64
	good := fmt.Sprintf("checkpoint-%016d.snap", 42)
	if !parseGen(good, "checkpoint-", ".snap", &seq) || seq != 42 {
		t.Fatalf("parseGen(%q) failed (seq=%d)", good, seq)
	}
	for _, bad := range []string{
		"checkpoint-42.snap",                  // not fixed-width
		"checkpoint-00000000000000x2.snap",    // non-digit
		"checkpoint-0000000000000042.snap.gz", // wrong suffix
		"wal-0000000000000042.snap",           // wrong prefix
	} {
		if parseGen(bad, "checkpoint-", ".snap", &seq) {
			t.Errorf("parseGen accepted %q", bad)
		}
	}
}

// TestPaddedSegmentMidChain: a crash between rotation and the outgoing
// writer's Close leaves the old segment with its preallocation padding
// intact. A purely zeroed tail must not break the chain — fallback
// recovery through that segment reaches the newest generation. A nonzero
// byte in the tail, by contrast, is a torn frame and cuts the chain.
func TestPaddedSegmentMidChain(t *testing.T) {
	build := func(t *testing.T) (string, Options, *toyState) {
		dir := t.TempDir()
		opt := Options{Dir: dir, Sync: wal.SyncNever, CompactBytes: -1, Keep: 2, PreallocBytes: 4096}
		s, l, _ := openToy(t, opt)
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		s.insert(t, l, "a")
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		s.insert(t, l, "b")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Rotation trimmed wal-1's padding on Close; restore it to simulate
		// the crash window where the trim never ran.
		w1, err := os.OpenFile(walPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w1.Write(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		if err := w1.Close(); err != nil {
			t.Fatal(err)
		}
		// Corrupt the newest checkpoint so recovery must fall back through
		// the padded wal-1.
		ckpt2 := checkpointPath(dir, 2)
		data, err := os.ReadFile(ckpt2)
		if err != nil {
			t.Fatal(err)
		}
		data[len(ckptMagic)+1] ^= 0xFF
		if err := os.WriteFile(ckpt2, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir, opt, s
	}

	t.Run("zero tail chains through", func(t *testing.T) {
		_, opt, s := build(t)
		s2, l2, found := openToy(t, opt)
		if !found {
			t.Fatal("no state recovered")
		}
		defer l2.Close()
		if !reflect.DeepEqual(s.Sets, s2.Sets) {
			t.Fatalf("got %+v, want %+v", s2.Sets, s.Sets)
		}
		if l2.Seq() != 2 {
			t.Fatalf("recovered at generation %d, want 2", l2.Seq())
		}
	})

	t.Run("nonzero tail cuts the chain", func(t *testing.T) {
		dir, opt, _ := build(t)
		f, err := os.OpenFile(walPath(dir, 1), os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		// One nonzero byte in the middle of the padding: a torn frame.
		if _, err := f.WriteAt([]byte{0x5A}, fi.Size()-100); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		s2, l2, found := openToy(t, opt)
		if !found {
			t.Fatal("no state recovered")
		}
		defer l2.Close()
		want := map[uint32][]string{0: {"a"}}
		if !reflect.DeepEqual(s2.Sets, want) {
			t.Fatalf("got %+v, want %+v", s2.Sets, want)
		}
		if l2.Seq() != 1 {
			t.Fatalf("landed at generation %d, want 1", l2.Seq())
		}
	})
}

// Package embed composes the two embeddings of Section 3: sets to min-hash
// signature vectors (S → V, package minhash) and signatures to binary
// vectors in Hamming space (V → H, package ecc).
//
// The resulting D = k·m dimensional Hamming space has the Theorem 1
// property: sets with Jaccard similarity s land at expected Hamming distance
// (1-s)/2 · D, i.e. expected Hamming similarity (1+s)/2. The package also
// provides the similarity-scale conversions implied by that theorem, which
// the filter indices use to translate query ranges.
package embed

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ecc"
	"repro/internal/minhash"
	"repro/internal/set"
)

// Options configures an Embedder.
type Options struct {
	// K is the number of min-hash permutations (signature length).
	// The paper's experiments use 100.
	K int
	// Bits is the precision b of each truncated min-hash value; codewords
	// have m = 2^Bits bits under the default Hadamard code.
	Bits int
	// Seed makes the embedding reproducible. The same seed must be used to
	// embed the collection and the queries.
	Seed int64
	// Code overrides the error-correcting code; nil selects Hadamard(Bits).
	Code ecc.Code
}

// DefaultOptions mirrors the paper's experimental setup: 100 min-hash
// values, 8-bit truncation (256-bit Hadamard codewords, D = 25600).
func DefaultOptions() Options {
	return Options{K: 100, Bits: 8, Seed: 1}
}

// Embedder carries out the full S → V → H transformation. It is immutable
// after construction and safe for concurrent use.
type Embedder struct {
	family *minhash.Perms
	code   ecc.Code
	k      int
	b      int
	m      int
	d      int
}

// New creates an Embedder from options.
func New(opt Options) (*Embedder, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("embed: K must be >= 1, got %d", opt.K)
	}
	code := opt.Code
	if code == nil {
		var err error
		code, err = ecc.NewHadamard(opt.Bits)
		if err != nil {
			return nil, err
		}
	}
	if code.MessageBits() != opt.Bits {
		return nil, fmt.Errorf("embed: code message bits %d != Bits %d", code.MessageBits(), opt.Bits)
	}
	fam, err := minhash.NewFamily(opt.K, opt.Seed)
	if err != nil {
		return nil, err
	}
	return &Embedder{
		family: fam,
		code:   code,
		k:      opt.K,
		b:      opt.Bits,
		m:      code.Length(),
		d:      opt.K * code.Length(),
	}, nil
}

// Dimension returns D = k·m, the Hamming-space dimensionality.
func (e *Embedder) Dimension() int { return e.d }

// Perms exposes the classic permutation bank, so signing families built
// on classic k-min hashes (minhash.Config.New) share the exact
// permutations the embedding pipeline uses.
func (e *Embedder) Perms() *minhash.Perms { return e.family }

// EmbedBits returns b, the truncation width each signature coordinate is
// stored at in the Hamming embedding.
func (e *Embedder) EmbedBits() int { return e.b }

// PackedSigBits is a lazy BitSource over a PACKED classic signature: the
// embedding bits are re-derived from the packed slots (valid only for
// families whose Recoverable(EmbedBits) is true).
type PackedSigBits struct {
	E     *Embedder
	Fam   minhash.Family
	Words []uint64
}

// Bit returns bit pos of the embedded vector.
func (s PackedSigBits) Bit(pos int) byte {
	i, x := pos/s.E.m, pos%s.E.m
	return s.E.code.Bit(s.Fam.Trunc(s.Words, i, s.E.b), x)
}

// K returns the signature length.
func (e *Embedder) K() int { return e.k }

// CodeLength returns m, the per-coordinate codeword length.
func (e *Embedder) CodeLength() int { return e.m }

// Sign computes just the min-hash signature of s (the V-space vector).
func (e *Embedder) Sign(s set.Set) minhash.Signature { return e.family.Sign(s) }

// SignInto computes the signature of s into dst (length K) without
// allocating — the build workers' and batch query path's signing primitive.
func (e *Embedder) SignInto(s set.Set, dst minhash.Signature) { e.family.SignInto(s, dst) }

// Embed maps a set all the way to its D-bit Hamming vector.
func (e *Embedder) Embed(s set.Set) bitvec.Vector {
	return e.EmbedSignature(e.family.Sign(s))
}

// EmbedSignature maps an existing signature to its D-bit Hamming vector.
func (e *Embedder) EmbedSignature(sig minhash.Signature) bitvec.Vector {
	v := bitvec.New(e.d)
	e.appendCodewords(v, sig)
	return v
}

// EmbedSignatureInto writes the D-bit Hamming vector of sig into dst,
// reusing dst's backing storage (it is zeroed first). dst must have
// dimension D; the result is identical to EmbedSignature.
func (e *Embedder) EmbedSignatureInto(sig minhash.Signature, dst bitvec.Vector) {
	if dst.Len() != e.d {
		panic(fmt.Sprintf("embed: EmbedSignatureInto dst has %d bits, embedding has D=%d", dst.Len(), e.d))
	}
	dst.Reset()
	e.appendCodewords(dst, sig)
}

func (e *Embedder) appendCodewords(v bitvec.Vector, sig minhash.Signature) {
	for i := 0; i < e.k; i++ {
		e.code.AppendCodeword(v, i*e.m, sig.Truncate(i, e.b))
	}
}

// Bit returns bit pos of the embedded vector directly from the signature,
// without materialising the D-bit vector: position pos lies in codeword
// pos/m at offset pos%m. Filter indices use this to compute bucket keys in
// O(r) per table instead of O(D).
func (e *Embedder) Bit(sig minhash.Signature, pos int) byte {
	i, x := pos/e.m, pos%e.m
	return e.code.Bit(sig.Truncate(i, e.b), x)
}

// ExtractKey gathers the embedded-vector bits at the given positions into a
// compact key (at most 64 positions), computed lazily from the signature.
func (e *Embedder) ExtractKey(sig minhash.Signature, positions []int) uint64 {
	if len(positions) > 64 {
		panic("embed: ExtractKey supports at most 64 positions")
	}
	var key uint64
	for j, pos := range positions {
		if e.Bit(sig, pos) == 1 {
			key |= 1 << uint(j)
		}
	}
	return key
}

// ExtractComplementKey is ExtractKey on the bit-complemented vector, used by
// Dissimilarity Filter Index queries (Theorem 2) without materialising q̄.
func (e *Embedder) ExtractComplementKey(sig minhash.Signature, positions []int) uint64 {
	var key uint64
	for j, pos := range positions {
		if e.Bit(sig, pos) == 0 {
			key |= 1 << uint(j)
		}
	}
	return key
}

// SigBits is a lazy BitSource view of a signature's embedded vector: bit
// reads are computed from the signature on demand. It satisfies the
// lsh.BitSource interface without materialising the D-bit vector.
type SigBits struct {
	E   *Embedder
	Sig minhash.Signature
}

// Bit returns bit pos of the embedded vector.
func (s SigBits) Bit(pos int) byte { return s.E.Bit(s.Sig, pos) }

// Bits returns the lazy BitSource view of sig under e.
func (e *Embedder) Bits(sig minhash.Signature) SigBits { return SigBits{E: e, Sig: sig} }

// HammingFromJaccard converts a Jaccard similarity to the expected Hamming
// similarity of the embedded vectors under Theorem 1: s_H = (1+s)/2.
func HammingFromJaccard(s float64) float64 { return (1 + s) / 2 }

// JaccardFromHamming inverts HammingFromJaccard: s = 2·s_H - 1.
func JaccardFromHamming(sh float64) float64 { return 2*sh - 1 }

// DistanceRange translates a Jaccard similarity range [σ1, σ2] into the
// Hamming distance range [d1, d2] of Section 3.3: d = (1-σ)/2 · D, with the
// larger similarity giving the smaller distance.
func (e *Embedder) DistanceRange(sigma1, sigma2 float64) (d1, d2 float64) {
	return (1 - sigma2) / 2 * float64(e.d), (1 - sigma1) / 2 * float64(e.d)
}

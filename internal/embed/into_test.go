package embed

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/set"
)

// TestSignIntoMatchesSign checks the embedder-level allocation-free signing
// agrees with Sign.
func TestSignIntoMatchesSign(t *testing.T) {
	e := mkEmbedder(t, 12, 6, 9)
	s := set.New(4, 8, 15, 16, 23, 42)
	want := e.Sign(s)
	dst := make([]uint64, e.K())
	e.SignInto(s, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("coordinate %d: SignInto %d, Sign %d", i, dst[i], want[i])
		}
	}
}

// TestEmbedSignatureIntoMatches checks the in-place embedding is
// bit-identical to the allocating one, including when the destination is
// dirty from a previous vector.
func TestEmbedSignatureIntoMatches(t *testing.T) {
	e := mkEmbedder(t, 10, 6, 3)
	a := e.Sign(set.New(1, 2, 3, 4))
	b := e.Sign(set.New(100, 200))

	dst := bitvec.New(e.Dimension())
	e.EmbedSignatureInto(a, dst)
	want := e.EmbedSignature(a)
	for i := 0; i < e.Dimension(); i++ {
		if dst.Get(i) != want.Get(i) {
			t.Fatalf("bit %d differs after first embed", i)
		}
	}

	// Reuse with a different signature: every stale bit must be cleared.
	e.EmbedSignatureInto(b, dst)
	want = e.EmbedSignature(b)
	for i := 0; i < e.Dimension(); i++ {
		if dst.Get(i) != want.Get(i) {
			t.Fatalf("bit %d differs after reuse", i)
		}
	}
}

// TestEmbedSignatureIntoWrongDimPanics pins the destination contract.
func TestEmbedSignatureIntoWrongDimPanics(t *testing.T) {
	e := mkEmbedder(t, 10, 6, 3)
	sig := e.Sign(set.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension destination accepted")
		}
	}()
	e.EmbedSignatureInto(sig, bitvec.New(e.Dimension()-64))
}

package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/set"
)

func mkEmbedder(t *testing.T, k, b int, seed int64) *Embedder {
	t.Helper()
	e, err := New(Options{K: k, Bits: b, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDimension(t *testing.T) {
	e := mkEmbedder(t, 10, 6, 1)
	if got, want := e.Dimension(), 10*64; got != want {
		t.Errorf("Dimension = %d, want %d", got, want)
	}
	if e.K() != 10 || e.CodeLength() != 64 {
		t.Errorf("K=%d m=%d", e.K(), e.CodeLength())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{K: 0, Bits: 8}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(Options{K: 4, Bits: 25}); err == nil {
		t.Error("Bits=25 accepted (hadamard limit)")
	}
	code, _ := ecc.NewHadamard(4)
	if _, err := New(Options{K: 4, Bits: 8, Code: code}); err == nil {
		t.Error("code/Bits mismatch accepted")
	}
}

func TestIdenticalSetsIdenticalVectors(t *testing.T) {
	e := mkEmbedder(t, 16, 8, 3)
	a := e.Embed(set.New(1, 2, 3))
	b := e.Embed(set.New(3, 2, 1, 1))
	if !a.Equal(b) {
		t.Error("identical sets embedded differently")
	}
}

// TestTheorem1 is the central embedding property: for sets with Jaccard
// similarity s, the expected Hamming distance is (1-s)/2·D. Averaged over
// seeds, the measured relative distance must track (1-s)/2.
func TestTheorem1(t *testing.T) {
	pairs := []struct {
		a, b []set.Elem
	}{
		{[]set.Elem{1, 2, 3, 4, 5, 6, 7, 8, 9}, []set.Elem{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}, // 0.9
		{[]set.Elem{1, 2, 3, 4}, []set.Elem{3, 4, 5, 6}},                                   // 1/3
		{[]set.Elem{1, 2}, []set.Elem{3, 4}},                                               // 0
	}
	for _, pc := range pairs {
		sa, sb := set.New(pc.a...), set.New(pc.b...)
		s := sa.Jaccard(sb)
		want := (1 - s) / 2
		sum := 0.0
		const seeds = 12
		for seed := int64(0); seed < seeds; seed++ {
			e := mkEmbedder(t, 80, 8, seed)
			d := e.Embed(sa).HammingDistance(e.Embed(sb))
			sum += float64(d) / float64(e.Dimension())
		}
		got := sum / seeds
		if math.Abs(got-want) > 0.03 {
			t.Errorf("sim %.3f: mean relative distance %.4f, want %.4f", s, got, want)
		}
	}
}

func TestLazyBitMatchesMaterialized(t *testing.T) {
	e := mkEmbedder(t, 12, 7, 9)
	s := set.New(10, 20, 30, 40)
	sig := e.Sign(s)
	full := e.EmbedSignature(sig)
	src := e.Bits(sig)
	for pos := 0; pos < e.Dimension(); pos++ {
		if got, want := src.Bit(pos), full.Bit(pos); got != want {
			t.Fatalf("pos %d: lazy %d, materialized %d", pos, got, want)
		}
	}
}

func TestExtractKeyConsistency(t *testing.T) {
	e := mkEmbedder(t, 8, 8, 4)
	s := set.New(7, 8, 9)
	sig := e.Sign(s)
	full := e.EmbedSignature(sig)
	rng := rand.New(rand.NewSource(2))
	positions := make([]int, 40)
	for i := range positions {
		positions[i] = rng.Intn(e.Dimension())
	}
	if got, want := e.ExtractKey(sig, positions), full.Extract(positions); got != want {
		t.Errorf("ExtractKey = %#x, vector extract = %#x", got, want)
	}
	// Complement key flips every sampled bit.
	comp := e.ExtractComplementKey(sig, positions)
	mask := uint64(1)<<uint(len(positions)) - 1
	if comp != ^e.ExtractKey(sig, positions)&mask {
		t.Error("complement key is not the bitwise complement of the key")
	}
}

func TestScaleConversions(t *testing.T) {
	for _, s := range []float64{0, 0.25, 0.5, 0.9, 1} {
		sh := HammingFromJaccard(s)
		if got := JaccardFromHamming(sh); math.Abs(got-s) > 1e-12 {
			t.Errorf("roundtrip %g → %g → %g", s, sh, got)
		}
	}
	if HammingFromJaccard(0) != 0.5 {
		t.Error("disjoint sets should land at Hamming similarity 1/2")
	}
	if HammingFromJaccard(1) != 1 {
		t.Error("identical sets should land at Hamming similarity 1")
	}
}

func TestDistanceRange(t *testing.T) {
	e := mkEmbedder(t, 10, 8, 1)
	d1, d2 := e.DistanceRange(0.8, 1.0)
	if d1 != 0 {
		t.Errorf("d1 = %g, want 0 for sigma2=1", d1)
	}
	wantD2 := (1 - 0.8) / 2 * float64(e.Dimension())
	if math.Abs(d2-wantD2) > 1e-9 {
		t.Errorf("d2 = %g, want %g", d2, wantD2)
	}
	if d1 > d2 {
		t.Error("d1 > d2")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.K != 100 || o.Bits != 8 {
		t.Errorf("defaults = k=%d b=%d, want paper's k=100 b=8", o.K, o.Bits)
	}
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dimension() != 100*256 {
		t.Errorf("default dimension = %d, want 25600", e.Dimension())
	}
}

func TestDistanceRangeMonotone(t *testing.T) {
	// Wider similarity ranges map to wider Hamming distance ranges, and
	// distance bounds stay inside [0, D].
	e := mkEmbedder(t, 16, 8, 2)
	d := float64(e.Dimension())
	for lo := 0.0; lo <= 0.9; lo += 0.1 {
		for hi := lo; hi <= 1.0; hi += 0.1 {
			d1, d2 := e.DistanceRange(lo, hi)
			if d1 < 0 || d2 > d/2+1e-9 || d1 > d2 {
				t.Fatalf("range [%.1f,%.1f]: distances (%g, %g)", lo, hi, d1, d2)
			}
		}
	}
}

func TestSimplexThroughPipeline(t *testing.T) {
	// The pipeline works with the simplex code too (odd-length codewords).
	code, err := ecc.NewSimplex(7)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{K: 24, Bits: 7, Seed: 5, Code: code})
	if err != nil {
		t.Fatal(err)
	}
	if e.Dimension() != 24*127 {
		t.Fatalf("dimension = %d", e.Dimension())
	}
	a := set.New(1, 2, 3, 4, 5, 6, 7, 8)
	b := set.New(1, 2, 3, 4, 5, 6, 7, 9)
	sig := e.Sign(a)
	full := e.EmbedSignature(sig)
	for pos := 0; pos < e.Dimension(); pos += 37 {
		if e.Bit(sig, pos) != full.Bit(pos) {
			t.Fatalf("lazy/materialized mismatch at %d", pos)
		}
	}
	// Identical sets map to identical vectors; near-identical to nearby.
	if !e.Embed(a).Equal(e.Embed(set.New(8, 7, 6, 5, 4, 3, 2, 1))) {
		t.Error("identical sets embedded differently under simplex")
	}
	da := e.Embed(a).HammingDistance(e.Embed(b))
	if da <= 0 || da > e.Dimension()/2+e.CodeLength() {
		t.Errorf("distance %d out of plausible range", da)
	}
}

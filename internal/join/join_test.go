package join

import (
	"testing"

	"repro/internal/set"
	"repro/internal/workload"
)

func joinFixture(t *testing.T, n int) []set.Set {
	t.Helper()
	sets, err := workload.Generate(workload.Set1Params(n))
	if err != nil {
		t.Fatal(err)
	}
	return sets
}

func pairKey(p Pair) uint64 { return uint64(p.A)<<32 | uint64(p.B) }

func TestSelfJoinNoFalsePositives(t *testing.T) {
	sets := joinFixture(t, 400)
	got, stats, err := SelfJoin(sets, Options{Threshold: 0.7, Tables: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]Pair{}
	for _, p := range Exact(sets, 0.7) {
		truth[pairKey(p)] = p
	}
	for _, p := range got {
		want, ok := truth[pairKey(p)]
		if !ok {
			t.Errorf("false positive pair (%d,%d) sim %.3f", p.A, p.B, p.Similarity)
			continue
		}
		if p.Similarity != want.Similarity {
			t.Errorf("pair (%d,%d): similarity %.4f, want %.4f", p.A, p.B, p.Similarity, want.Similarity)
		}
		if p.A >= p.B {
			t.Errorf("unordered pair (%d,%d)", p.A, p.B)
		}
	}
	if stats.Results != len(got) {
		t.Errorf("stats.Results = %d, len = %d", stats.Results, len(got))
	}
	if stats.CandidatePairs < len(got) {
		t.Errorf("candidates %d < results %d", stats.CandidatePairs, len(got))
	}
}

func TestSelfJoinRecall(t *testing.T) {
	sets := joinFixture(t, 400)
	got, _, err := SelfJoin(sets, Options{Threshold: 0.8, Tables: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := Exact(sets, 0.8)
	if len(truth) == 0 {
		t.Skip("workload produced no pairs above 0.8")
	}
	found := map[uint64]bool{}
	for _, p := range got {
		found[pairKey(p)] = true
	}
	hits := 0
	for _, p := range truth {
		if found[pairKey(p)] {
			hits++
		}
	}
	if recall := float64(hits) / float64(len(truth)); recall < 0.8 {
		t.Errorf("join recall %.3f (found %d of %d pairs)", recall, hits, len(truth))
	}
}

func TestSelfJoinValidation(t *testing.T) {
	sets := joinFixture(t, 10)
	if _, _, err := SelfJoin(sets, Options{Threshold: 0}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := SelfJoin(sets, Options{Threshold: 1}); err == nil {
		t.Error("threshold 1 accepted")
	}
}

func TestSelfJoinSortedOutput(t *testing.T) {
	sets := joinFixture(t, 300)
	got, _, err := SelfJoin(sets, Options{Threshold: 0.6, Tables: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Similarity > got[i-1].Similarity {
			t.Fatal("output not sorted by descending similarity")
		}
	}
}

func TestExactKnownCollection(t *testing.T) {
	sets := []set.Set{
		set.New(1, 2, 3),
		set.New(1, 2, 3), // identical to 0
		set.New(1, 2, 4), // sim 0.5 with both
		set.New(9, 10),
	}
	pairs := Exact(sets, 0.5)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %v", len(pairs), pairs)
	}
	if pairs[0].A != 0 || pairs[0].B != 1 || pairs[0].Similarity != 1 {
		t.Errorf("top pair = %+v", pairs[0])
	}
}

func TestSelfJoinIdenticalSetsAlwaysPaired(t *testing.T) {
	// Identical sets collide in every table; their pairs must never be
	// missed.
	sets := []set.Set{
		set.New(1, 2, 3, 4, 5),
		set.New(1, 2, 3, 4, 5),
		set.New(100, 200, 300),
		set.New(100, 200, 300),
	}
	got, _, err := SelfJoin(sets, Options{Threshold: 0.9, Tables: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{uint64(0)<<32 | 1: true, uint64(2)<<32 | 3: true}
	if len(got) != 2 {
		t.Fatalf("got %d pairs: %v", len(got), got)
	}
	for _, p := range got {
		if !want[pairKey(p)] {
			t.Errorf("unexpected pair %+v", p)
		}
	}
}

// Package join implements a set-similarity self-join on top of the paper's
// filter-index machinery — one of the applications Section 1 motivates
// ("join algorithms", clustering of similar-but-not-identical pages).
//
// All pairs of sets with Jaccard similarity at least a threshold are found
// by building one Similarity Filter Index at the threshold, probing it
// with every set, and verifying candidate pairs exactly. Like the index
// itself the join is one-sided approximate: reported pairs are exact,
// while a pair is missed with probability (1 - p_{r,l}(s))² at its
// similarity level.
//
// The filter join verifies O(N + matching pairs) candidates instead of
// N²/2, but pays O(N·k) for signing and O(N·l) for table work up front;
// against the cache-friendly brute force its break-even is around a few
// thousand sets (see BenchmarkSelfJoin/BenchmarkExactJoin) and it pulls
// away quadratically beyond.
package join

import (
	"fmt"
	"sort"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/set"
	"repro/internal/storage"
)

// Pair is one join result with A < B.
type Pair struct {
	A, B       storage.SID
	Similarity float64
}

// Options configures SelfJoin.
type Options struct {
	// Threshold is the minimum Jaccard similarity, in (0, 1).
	Threshold float64
	// Tables is l for the filter index (default 20).
	Tables int
	// MinHashes is the signature length (default 64).
	MinHashes int
	// Seed makes the join reproducible (default 1).
	Seed int64
}

// Stats reports the join's work.
type Stats struct {
	// CandidatePairs is the number of (deduplicated) pairs the filter
	// proposed.
	CandidatePairs int
	// Verified is the number of candidate pairs whose exact similarity
	// was computed (equal to CandidatePairs).
	Verified int
	// Results is the number of pairs at or above the threshold.
	Results int
}

// SelfJoin returns every pair of sets with similarity >= opt.Threshold,
// sorted by descending similarity then (A, B).
func SelfJoin(sets []set.Set, opt Options) ([]Pair, Stats, error) {
	var stats Stats
	if opt.Threshold <= 0 || opt.Threshold >= 1 {
		return nil, stats, fmt.Errorf("join: threshold must be in (0,1), got %g", opt.Threshold)
	}
	tables := opt.Tables
	if tables <= 0 {
		tables = 20
	}
	k := opt.MinHashes
	if k <= 0 {
		k = 64
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	emb, err := embed.New(embed.Options{K: k, Bits: 8, Seed: seed})
	if err != nil {
		return nil, stats, err
	}
	sfi, err := filter.New(storage.NewPager(0), filter.Options{
		Kind:            filter.Similar,
		Threshold:       embed.HammingFromJaccard(opt.Threshold),
		Dim:             emb.Dimension(),
		Tables:          tables,
		Seed:            seed + 101,
		ExpectedEntries: len(sets),
	})
	if err != nil {
		return nil, stats, err
	}

	srcs := make([]embed.SigBits, len(sets))
	for i, s := range sets {
		srcs[i] = emb.Bits(emb.Sign(s))
		sfi.Insert(srcs[i], storage.SID(i))
	}

	var out []Pair
	for i := range sets {
		a := storage.SID(i)
		for _, b := range sfi.Vector(srcs[i], nil) {
			if b <= a {
				continue // each unordered pair once, self excluded
			}
			stats.CandidatePairs++
			stats.Verified++
			sim := sets[a].Jaccard(sets[b])
			if sim >= opt.Threshold {
				out = append(out, Pair{A: a, B: b, Similarity: sim})
			}
		}
	}
	stats.Results = len(out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, stats, nil
}

// Exact computes the join by brute force — the ground-truth comparator for
// tests and benchmarks.
func Exact(sets []set.Set, threshold float64) []Pair {
	var out []Pair
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if sim := sets[i].Jaccard(sets[j]); sim >= threshold {
				out = append(out, Pair{A: storage.SID(i), B: storage.SID(j), Similarity: sim})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

package eval

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/workload"
)

func buildFixture(t *testing.T, n int) (*core.Index, []set.Set) {
	t.Helper()
	sets, err := workload.Generate(workload.Set1Params(n))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(sets, core.Options{
		Embed: embed.Options{K: 48, Bits: 8, Seed: 2},
		Plan:  optimize.Options{Budget: 50, RecallTarget: 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, sets
}

func TestRunProducesOutcomes(t *testing.T) {
	ix, sets := buildFixture(t, 400)
	r := NewRunner(ix, sets)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := r.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 15 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for i, o := range outcomes {
		if o.Recall < 0 || o.Recall > 1 {
			t.Errorf("outcome %d recall %g", i, o.Recall)
		}
		if o.Precision < 0 || o.Precision > 1 {
			t.Errorf("outcome %d precision %g", i, o.Precision)
		}
		if o.Results > o.Candidates {
			t.Errorf("outcome %d results %d > candidates %d", i, o.Results, o.Candidates)
		}
		if o.Results > o.Truth {
			t.Errorf("outcome %d results %d > truth %d (verification broken)", i, o.Results, o.Truth)
		}
		if o.ScanIO <= 0 {
			t.Errorf("outcome %d scan I/O %v", i, o.ScanIO)
		}
		if o.Hits != o.Results {
			t.Errorf("outcome %d hits %d != results %d", i, o.Hits, o.Results)
		}
	}
}

func TestRunnerSizeMismatch(t *testing.T) {
	ix, sets := buildFixture(t, 100)
	r := NewRunner(ix, sets[:50])
	if _, err := r.Run([]workload.Query{{SID: 0, Lo: 0, Hi: 1}}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRunnerSIDOutOfRange(t *testing.T) {
	ix, sets := buildFixture(t, 100)
	r := NewRunner(ix, sets)
	if _, err := r.Run([]workload.Query{{SID: 5000, Lo: 0, Hi: 1}}); err == nil {
		t.Error("out-of-range sid accepted")
	}
}

func TestBucketize(t *testing.T) {
	outcomes := []Outcome{
		{Candidates: 1, Recall: 1.0, Precision: 0.5, IndexIO: time.Second},
		{Candidates: 30, Recall: 0.8, Precision: 0.9, IndexIO: 2 * time.Second},
		{Candidates: 31, Recall: 0.6, Precision: 0.7},
		{Candidates: 990, Recall: 0.4, Precision: 0.5},
	}
	// n = 1000: fractions 0.001, 0.03, 0.031, 0.99.
	buckets := Bucketize(outcomes, 1000, PaperBuckets)
	if len(buckets) != len(PaperBuckets)+1 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	if buckets[0].Count != 1 {
		t.Errorf("bucket0 count = %d", buckets[0].Count)
	}
	if buckets[1].Count != 2 {
		t.Errorf("bucket1 count = %d", buckets[1].Count)
	}
	last := buckets[len(buckets)-1]
	if last.Count != 1 {
		t.Errorf("overflow bucket count = %d", last.Count)
	}
	if got := buckets[1].Recall; got != 0.7 {
		t.Errorf("bucket1 avg recall = %g, want 0.7", got)
	}
	if got := buckets[1].Precision; got != 0.8 {
		t.Errorf("bucket1 avg precision = %g, want 0.8", got)
	}
	if buckets[0].IndexIO != time.Second {
		t.Errorf("bucket0 avg IO = %v", buckets[0].IndexIO)
	}
}

func TestBucketLabel(t *testing.T) {
	b := BucketStats{LoFrac: 0.005, HiFrac: 0.05}
	if got := b.Label(); got != "0.5%-5.0%" {
		t.Errorf("Label = %q", got)
	}
}

func TestBucketizeEmptyAndZeroN(t *testing.T) {
	buckets := Bucketize(nil, 100, PaperBuckets)
	for _, b := range buckets {
		if b.Count != 0 {
			t.Error("phantom outcomes")
		}
	}
	// n = 0 must not panic; everything lands by frac 0 in the first bucket.
	buckets = Bucketize([]Outcome{{Candidates: 5}}, 0, PaperBuckets)
	if buckets[0].Count != 1 {
		t.Errorf("n=0 bucketing = %+v", buckets)
	}
}

// TestRecallMeetsPlanTarget is the headline integration property: measured
// aggregate recall should be near the optimizer's model prediction.
func TestRecallMeetsPlanTarget(t *testing.T) {
	ix, sets := buildFixture(t, 600)
	r := NewRunner(ix, sets)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := r.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, o := range outcomes {
		if o.Truth > 0 {
			sum += o.Recall
			n++
		}
	}
	if n == 0 {
		t.Skip("no queries with non-empty answers")
	}
	avg := sum / float64(n)
	if avg < 0.6 {
		t.Errorf("average measured recall %.3f far below the 0.85 plan target", avg)
	}
}

func TestBucketizeProperties(t *testing.T) {
	// Every outcome lands in exactly one bucket; counts are conserved and
	// averages stay within observed value ranges.
	outcomes := make([]Outcome, 0, 100)
	for i := 0; i < 100; i++ {
		outcomes = append(outcomes, Outcome{
			Candidates: (i * 13) % 97,
			Recall:     float64(i%11) / 10,
			Precision:  float64(i%7) / 6,
		})
	}
	buckets := Bucketize(outcomes, 97, PaperBuckets)
	total := 0
	for _, b := range buckets {
		total += b.Count
		if b.Count > 0 {
			if b.Recall < 0 || b.Recall > 1 || b.Precision < 0 || b.Precision > 1 {
				t.Fatalf("bucket %s averages out of range: %+v", b.Label(), b)
			}
		}
		if b.LoFrac >= b.HiFrac {
			t.Fatalf("degenerate bucket %+v", b)
		}
	}
	if total != len(outcomes) {
		t.Fatalf("bucketized %d of %d outcomes", total, len(outcomes))
	}
}

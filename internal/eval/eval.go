// Package eval measures the indexing scheme the way Section 6 does: random
// queries are classified into buckets by candidate result size (as a
// fraction of the collection), and per bucket it reports average recall,
// precision, and response time split into I/O and CPU, for both the index
// and the sequential-scan baseline.
package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/set"
	"repro/internal/storage"
	"repro/internal/workload"
)

// PaperBuckets are the candidate-result-size bucket boundaries of Section 6
// (fractions of the collection): <0.5%, 0.5–5%, 5–10%, 10–25%, 25–35%.
var PaperBuckets = []float64{0.005, 0.05, 0.10, 0.25, 0.35}

// Outcome records the result of one evaluated query.
type Outcome struct {
	// Query is the evaluated query.
	Query workload.Query
	// Candidates is the filter-stage candidate count (bucketing key).
	Candidates int
	// Results is the number of verified results the index returned.
	Results int
	// Truth is the exact answer size.
	Truth int
	// Hits is |index results ∩ truth| (equal to Results: verification
	// makes every returned result correct; kept explicit for clarity).
	Hits int
	// Recall is Hits/Truth (1 when Truth is 0).
	Recall float64
	// Precision is Results/Candidates (1 when Candidates is 0): the
	// fraction of fetched candidates that belong to the answer — the
	// efficiency notion of Definition 9.
	Precision float64
	// IndexIO is the simulated I/O time of the index path.
	IndexIO time.Duration
	// IndexCPU is the measured processor time of the index path.
	IndexCPU time.Duration
	// ScanIO is the simulated I/O time of a sequential scan.
	ScanIO time.Duration
	// ScanCPU is the measured processor time of the scan's similarity
	// evaluations.
	ScanCPU time.Duration
}

// Runner evaluates query workloads against a built index and the scan
// baseline. Sets must be the same collection (same order) the index was
// built from; it doubles as the ground-truth oracle.
type Runner struct {
	// Index is the built index under test.
	Index *core.Index
	// Sets is the raw collection, indexed by sid.
	Sets []set.Set
	// Model converts I/O counts to simulated time.
	Model storage.CostModel
}

// NewRunner constructs a Runner with the default cost model.
func NewRunner(ix *core.Index, sets []set.Set) *Runner {
	return &Runner{Index: ix, Sets: sets, Model: storage.DefaultCostModel()}
}

// Run evaluates every query and returns per-query outcomes.
func (r *Runner) Run(queries []workload.Query) ([]Outcome, error) {
	if len(r.Sets) != r.Index.Len() {
		return nil, fmt.Errorf("eval: collection size %d != index size %d", len(r.Sets), r.Index.Len())
	}
	out := make([]Outcome, 0, len(queries))
	for _, q := range queries {
		o, err := r.runOne(q)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func (r *Runner) runOne(q workload.Query) (Outcome, error) {
	if q.SID < 0 || q.SID >= len(r.Sets) {
		return Outcome{}, fmt.Errorf("eval: query sid %d out of range", q.SID)
	}
	qset := r.Sets[q.SID]

	matches, stats, err := r.Index.Query(qset, q.Lo, q.Hi)
	if err != nil {
		return Outcome{}, err
	}

	// Ground truth plus scan-baseline timing: one pass over the in-memory
	// collection performs the same similarity evaluations a sequential
	// scan would, so its wall time is the scan's CPU component, and the
	// scan's I/O is the full heap read.
	scanStart := time.Now()
	truth := 0
	for _, s := range r.Sets {
		sim := qset.Jaccard(s)
		if sim >= q.Lo && sim <= q.Hi {
			truth++
		}
	}
	scanCPU := time.Since(scanStart)
	scanIO := r.Model.Time(r.Index.Store().NumPages(), 0)

	o := Outcome{
		Query:      q,
		Candidates: stats.Candidates,
		Results:    len(matches),
		Truth:      truth,
		Hits:       len(matches),
		Recall:     1,
		Precision:  1,
		IndexIO:    stats.SimIOTime(r.Model),
		IndexCPU:   stats.CPU,
		ScanIO:     scanIO,
		ScanCPU:    scanCPU,
	}
	if truth > 0 {
		o.Recall = float64(len(matches)) / float64(truth)
	}
	if stats.Candidates > 0 {
		o.Precision = float64(len(matches)) / float64(stats.Candidates)
	}
	return o, nil
}

// BucketStats aggregates outcomes whose candidate-result fraction falls in
// [LoFrac, HiFrac).
type BucketStats struct {
	// LoFrac, HiFrac delimit the bucket (fractions of the collection).
	LoFrac, HiFrac float64
	// Count is the number of queries in the bucket.
	Count int
	// Recall, Precision are bucket averages.
	Recall, Precision float64
	// IndexIO, IndexCPU, ScanIO, ScanCPU are bucket-average times.
	IndexIO, IndexCPU, ScanIO, ScanCPU time.Duration
}

// Label renders the bucket range as a percentage interval.
func (b BucketStats) Label() string {
	return fmt.Sprintf("%.1f%%-%.1f%%", b.LoFrac*100, b.HiFrac*100)
}

// Bucketize groups outcomes by candidate-result fraction of n using the
// given boundaries (e.g. PaperBuckets). Outcomes beyond the last boundary
// land in a final overflow bucket up to 100%.
func Bucketize(outcomes []Outcome, n int, bounds []float64) []BucketStats {
	lo := 0.0
	buckets := make([]BucketStats, 0, len(bounds)+1)
	for _, b := range bounds {
		buckets = append(buckets, BucketStats{LoFrac: lo, HiFrac: b})
		lo = b
	}
	buckets = append(buckets, BucketStats{LoFrac: lo, HiFrac: 1.0})

	type acc struct {
		rec, prec            float64
		iIO, iCPU, sIO, sCPU float64
	}
	accs := make([]acc, len(buckets))
	for _, o := range outcomes {
		frac := 0.0
		if n > 0 {
			frac = float64(o.Candidates) / float64(n)
		}
		bi := len(buckets) - 1
		for i := range buckets {
			if frac < buckets[i].HiFrac {
				bi = i
				break
			}
		}
		buckets[bi].Count++
		accs[bi].rec += o.Recall
		accs[bi].prec += o.Precision
		accs[bi].iIO += float64(o.IndexIO)
		accs[bi].iCPU += float64(o.IndexCPU)
		accs[bi].sIO += float64(o.ScanIO)
		accs[bi].sCPU += float64(o.ScanCPU)
	}
	for i := range buckets {
		if c := buckets[i].Count; c > 0 {
			fc := float64(c)
			buckets[i].Recall = accs[i].rec / fc
			buckets[i].Precision = accs[i].prec / fc
			buckets[i].IndexIO = time.Duration(accs[i].iIO / fc)
			buckets[i].IndexCPU = time.Duration(accs[i].iCPU / fc)
			buckets[i].ScanIO = time.Duration(accs[i].sIO / fc)
			buckets[i].ScanCPU = time.Duration(accs[i].sCPU / fc)
		}
	}
	return buckets
}

package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// The two-process crash harness: the parent test runs a live primary
// and repeatedly SIGKILLs a real follower process mid-stream — no
// deferred cleanups, no flushed buffers, exactly what a machine losing
// power does — then restarts it and finally proves the mirror is
// bit-identical to the primary. The follower child is this same test
// binary re-exec'd with SSR_REPLICA_CHILD set.

const (
	childEnv   = "SSR_REPLICA_CHILD"
	primaryEnv = "SSR_REPLICA_PRIMARY"
	dirEnv     = "SSR_REPLICA_DIR"
	statusEnv  = "SSR_REPLICA_STATUS"
)

// TestFollowerChildProcess is the child's main: not a test of its own
// (it skips under normal runs), but the body of the re-exec'd follower.
func TestFollowerChildProcess(t *testing.T) {
	if os.Getenv(childEnv) == "" {
		t.Skip("helper process body; run via TestTwoProcessCrashResume")
	}
	opt := fastFollowerOptions(os.Getenv(dirEnv), os.Getenv(primaryEnv))
	f, err := StartFollower(context.Background(), opt)
	if err != nil {
		t.Fatalf("child: starting follower: %v", err)
	}
	statusPath := os.Getenv(statusEnv)
	for {
		st := f.Status()
		body, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("child: encoding status: %v", err)
		}
		tmp := statusPath + ".tmp"
		if err := os.WriteFile(tmp, body, 0o644); err != nil {
			t.Fatalf("child: writing status: %v", err)
		}
		if err := os.Rename(tmp, statusPath); err != nil {
			t.Fatalf("child: publishing status: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
		// Runs until SIGKILLed by the parent; the -timeout backstop covers
		// an orphaned child.
	}
}

func TestTwoProcessCrashResume(t *testing.T) {
	if os.Getenv(childEnv) != "" {
		t.Skip("child processes run only the helper body")
	}
	if testing.Short() {
		t.Skip("two-process harness; skipped under -short")
	}

	primary, srv := startPrimary(t, 2, 30)
	followerDir := filepath.Join(t.TempDir(), "mirror")
	statusPath := filepath.Join(t.TempDir(), "status.json")

	spawn := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestFollowerChildProcess$", "-test.timeout", "2m")
		cmd.Env = append(os.Environ(),
			childEnv+"=1",
			primaryEnv+"="+srv.URL,
			dirEnv+"="+followerDir,
			statusEnv+"="+statusPath,
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning follower child: %v", err)
		}
		return cmd
	}
	childStatus := func() (FollowerStatus, bool) {
		body, err := os.ReadFile(statusPath)
		if err != nil {
			return FollowerStatus{}, false
		}
		var st FollowerStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return FollowerStatus{}, false
		}
		return st, true
	}
	waitChildCaughtUp := func(round int) {
		t.Helper()
		waitFor(t, fmt.Sprintf("round %d child catch-up", round), func() bool {
			st, ok := childStatus()
			return ok && st.Connected && st.CaughtUp && st.LagBytes == 0 && primary.Len() >= 0
		})
	}

	next := 1000
	for round := 0; round < 4; round++ {
		if err := os.Remove(statusPath); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		cmd := spawn()

		// Mutate while the child streams, with a rotation in round 1 and a
		// retune (forcing the child through a full resync) in round 2.
		mutate(t, primary, next, 40)
		next += 50
		switch round {
		case 1:
			if err := primary.Checkpoint(); err != nil {
				t.Fatalf("round %d: checkpoint: %v", round, err)
			}
			mutate(t, primary, next, 10)
			next += 20
		case 2:
			if _, err := primary.Retune(); err != nil {
				t.Fatalf("round %d: retune: %v", round, err)
			}
		}
		waitChildCaughtUp(round)

		// More writes, then SIGKILL mid-flight — no grace, no flush.
		done := make(chan struct{})
		go func() {
			defer close(done)
			mutate(t, primary, next, 30)
		}()
		time.Sleep(time.Duration(3+round*7) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: killing child: %v", round, err)
		}
		err := cmd.Wait()
		if ee, ok := err.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
			t.Fatalf("round %d: child exit: %v (want SIGKILL)", round, err)
		}
		<-done
		next += 40
	}

	// Final act: open the many-times-killed mirror in-process and prove
	// bit-identical convergence.
	f, err := StartFollower(context.Background(), fastFollowerOptions(followerDir, srv.URL))
	if err != nil {
		t.Fatalf("final open of crashed mirror: %v", err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- test teardown
	waitMirrored(t, f, primary)
	requireEqualState(t, primary, f.Index())
}

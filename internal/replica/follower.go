package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	ssr "repro"
	"repro/internal/wal"
)

// errResync reports a condition that makes tailing impossible — plan
// generation moved, resume position compacted away, topology changed —
// so the follower must wipe its mirror and re-bootstrap from the
// primary's newest checkpoints.
var errResync = errors.New("replica: follower must re-bootstrap")

// FollowerOptions configures StartFollower. Dir and Primary are
// required; everything else has a usable zero value.
type FollowerOptions struct {
	// Dir is the local durability directory holding the mirror. It is
	// wiped and rebuilt on resync; nothing else may live there.
	Dir string
	// Primary is the primary's base URL (e.g. http://host:7600).
	Primary string
	// Client is the HTTP client used for bootstrap and tailing (default
	// http.DefaultClient; a streaming request must not carry a global
	// Timeout — the stream is cut by the heartbeat watchdog instead).
	Client *http.Client
	// Durable is passed through to OpenReplica (CheckpointBytes is
	// forced off there; followers rotate only in lockstep).
	Durable ssr.DurableOptions
	// LagBoundBytes is the readiness bound: the follower reports
	// CaughtUp when its summed byte lag is ≤ this (default 1MiB).
	LagBoundBytes int64
	// Heartbeat is the expected primary watermark period; the stream
	// watchdog cuts a connection silent for 4× this (default 1s).
	Heartbeat time.Duration
	// ReconnectBackoff is the pause between tail attempts (default
	// 500ms).
	ReconnectBackoff time.Duration
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.LagBoundBytes <= 0 {
		o.LagBoundBytes = 1 << 20
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 500 * time.Millisecond
	}
	return o
}

// FollowerStatus is a point-in-time snapshot of the follower loop, the
// substance behind the follower's /readyz.
type FollowerStatus struct {
	Connected      bool   `json:"connected"`
	CaughtUp       bool   `json:"caught_up"`
	LagBytes       int64  `json:"lag_bytes"`
	PlanGeneration uint64 `json:"plan_generation"`
	SettledSID     uint32 `json:"settled_sid"`
	Shards         int    `json:"shards"`
	Resyncs        uint64 `json:"resyncs"`
	Reconnects     uint64 `json:"reconnects"`
}

// Follower mirrors a primary into a local durability directory and
// serves reads from the mirror. Start it with StartFollower; Index
// returns the live read-only index (which changes identity across a
// resync — always re-fetch, never cache).
type Follower struct {
	opt    FollowerOptions
	mu     sync.Mutex
	ix     *ssr.Index
	status FollowerStatus
	cancel context.CancelFunc
	done   chan struct{}
}

// StartFollower opens (or bootstraps) the local mirror and starts the
// tail loop. The loop reconnects on transient failures and re-bootstraps
// on resync conditions until ctx is cancelled or Close is called.
func StartFollower(ctx context.Context, opt FollowerOptions) (*Follower, error) {
	opt = opt.withDefaults()
	f := &Follower{opt: opt}
	has, err := ssr.HasDurableState(opt.Dir)
	if err != nil {
		return nil, err
	}
	if !has {
		if err := f.bootstrap(ctx); err != nil {
			return nil, fmt.Errorf("replica: bootstrapping from %s: %w", opt.Primary, err)
		}
	}
	ix, err := ssr.OpenReplica(opt.Dir, opt.Durable)
	if err != nil {
		return nil, err
	}
	f.ix = ix
	f.status.Shards = len(mustPositions(ix))
	f.status.PlanGeneration = ix.TunerState().PlanGeneration
	runCtx, cancel := context.WithCancel(ctx)
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(runCtx)
	return f, nil
}

func mustPositions(ix *ssr.Index) []ssr.WALPosition {
	pos, err := ix.ReplicaPositions()
	if err != nil {
		// Unreachable: OpenReplica always yields a durable index.
		panic(err)
	}
	return pos
}

// Index returns the live mirror. It stays valid for reads even while a
// resync swaps in a fresh one, but callers must re-fetch per request.
func (f *Follower) Index() *ssr.Index {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ix
}

// Status snapshots the tail loop's state.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

func (f *Follower) setStatus(mut func(*FollowerStatus)) {
	f.mu.Lock()
	mut(&f.status)
	f.mu.Unlock()
}

// Close stops the tail loop and closes the mirror.
func (f *Follower) Close() error {
	f.cancel()
	<-f.done
	return f.Index().Close()
}

// run is the supervision loop: tail until it fails, then reconnect or
// resync as the failure demands.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	for {
		err := f.tail(ctx)
		f.setStatus(func(st *FollowerStatus) { st.Connected = false; st.CaughtUp = false })
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errResync) {
			log.Printf("replica: resyncing from %s: %v", f.opt.Primary, err)
			if rerr := f.resync(ctx); rerr != nil {
				if ctx.Err() != nil {
					return
				}
				log.Printf("replica: resync failed (retrying): %v", rerr)
			}
		} else if err != nil {
			log.Printf("replica: stream to %s broke (reconnecting): %v", f.opt.Primary, err)
		}
		f.setStatus(func(st *FollowerStatus) { st.Reconnects++ })
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.opt.ReconnectBackoff):
		}
	}
}

// bootstrap pulls the primary's newest sealed checkpoints into an empty
// Dir: manifest handshake, one checkpoint per shard, and — sharded
// layouts only — the raw MANIFEST committed last, mirroring
// CreateDurable's ordering so a crash mid-bootstrap never leaves a
// half-valid mirror.
func (f *Follower) bootstrap(ctx context.Context) error {
	man, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(f.opt.Dir, 0o755); err != nil {
		return err
	}
	for _, ref := range man.Checkpoints {
		if err := f.fetchCheckpoint(ctx, man.Shards, ref); err != nil {
			return err
		}
	}
	if man.Shards > 1 {
		if err := ssr.CommitRawManifest(f.opt.Dir, man.Manifest); err != nil {
			return err
		}
	}
	return nil
}

func (f *Follower) fetchManifest(ctx context.Context) (*ManifestResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opt.Primary+"/replica/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //ssrvet:ignore droppederr -- response fully read below; close failure changes nothing
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: manifest handshake: %s", resp.Status)
	}
	var man ManifestResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&man); err != nil {
		return nil, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	if man.WireVersion != WireVersion {
		return nil, fmt.Errorf("replica: primary speaks wire version %d, this build speaks %d", man.WireVersion, WireVersion)
	}
	if man.Shards < 1 || man.Shards > maxWireShards {
		return nil, fmt.Errorf("replica: primary reports %d shards", man.Shards)
	}
	if len(man.Checkpoints) != man.Shards {
		return nil, fmt.Errorf("replica: manifest names %d checkpoints for %d shards", len(man.Checkpoints), man.Shards)
	}
	return &man, nil
}

func (f *Follower) fetchCheckpoint(ctx context.Context, shards int, ref CheckpointRef) error {
	url := fmt.Sprintf("%s/replica/checkpoint?shard=%d&gen=%d", f.opt.Primary, ref.Shard, ref.Generation)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //ssrvet:ignore droppederr -- body fully consumed by the import; close failure changes nothing
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: fetching checkpoint shard=%d gen=%d: %s", ref.Shard, ref.Generation, resp.Status)
	}
	// ImportCheckpoint verifies the seal before publishing, so a short or
	// corrupted body cannot land.
	return ssr.ImportShardCheckpoint(f.opt.Dir, shards, ref.Shard, ref.Generation, resp.Body)
}

// resync wipes the mirror and bootstraps a fresh one. The outgoing index
// keeps serving reads until the replacement is open, then closes.
func (f *Follower) resync(ctx context.Context) error {
	if err := os.RemoveAll(f.opt.Dir); err != nil {
		return err
	}
	if err := f.bootstrap(ctx); err != nil {
		return err
	}
	ix, err := ssr.OpenReplica(f.opt.Dir, f.opt.Durable)
	if err != nil {
		return err
	}
	f.mu.Lock()
	old := f.ix
	f.ix = ix
	f.status.Resyncs++
	f.status.PlanGeneration = ix.TunerState().PlanGeneration
	f.status.Shards = len(mustPositions(ix))
	f.mu.Unlock()
	if err := old.Close(); err != nil {
		log.Printf("replica: closing pre-resync mirror: %v", err)
	}
	return nil
}

// shardTail is the per-shard stream state while tailing.
type shardTail struct {
	// pos is where the NEXT streamed byte of this shard belongs —
	// continuity is validated against every chunk's (generation, start).
	pos ssr.WALPosition
	// localGen is the local chain's live generation (rotations move it).
	localGen uint64
	// carry buffers streamed bytes until whole frames can be decoded.
	carry []byte
	// queue holds decoded-but-unapplied items in stream order.
	queue []pendItem
}

type pendItem struct {
	rotate  bool
	nextGen uint64 // rotate: the generation to rotate into
	rotPlan uint64 // rotate: the primary's plan generation at rotation
	rec     wal.Record
}

// tail connects one stream and applies it until it breaks. A nil return
// means ctx was cancelled; errResync demands a re-bootstrap; anything
// else is a transient failure worth reconnecting over.
func (f *Follower) tail(ctx context.Context) error {
	ix := f.Index()
	positions, err := ix.ReplicaPositions()
	if err != nil {
		return err
	}
	planGen := ix.TunerState().PlanGeneration

	reqCtx, cancelReq := context.WithCancel(ctx)
	defer cancelReq()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		f.opt.Primary+"/replica/stream", bytes.NewReader(EncodeTokens(planGen, positions)))
	if err != nil {
		return err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //ssrvet:ignore droppederr -- stream teardown; the tail loop reconnects regardless
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return fmt.Errorf("%w: primary rejected resume tokens: %s", errResync, readErrorBody(resp.Body))
	default:
		return fmt.Errorf("replica: stream request: %s: %s", resp.Status, readErrorBody(resp.Body))
	}

	// Watchdog: a stream silent for 4 heartbeats is dead even if TCP
	// disagrees; cancelling the request context unblocks the read.
	watchdog := time.AfterFunc(4*f.opt.Heartbeat, cancelReq)
	defer watchdog.Stop()

	sts := make([]*shardTail, len(positions))
	for si, p := range positions {
		sts[si] = &shardTail{pos: p, localGen: p.Generation}
	}
	gate := uint32(0)
	if len(sts) == 1 {
		// One lane: stream order IS apply order, no cross-shard merge to
		// gate. Apply everything as it decodes.
		gate = math.MaxUint32
	}
	f.setStatus(func(st *FollowerStatus) { st.Connected = true })

	fr := NewFrameReader(resp.Body)
	for {
		frame, err := fr.Next()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replica: reading stream: %w", err)
		}
		watchdog.Reset(4 * f.opt.Heartbeat)
		switch frame.Kind {
		case KindRecords:
			if int(frame.Shard) >= len(sts) {
				return fmt.Errorf("replica: records for shard %d of %d", frame.Shard, len(sts))
			}
			st := sts[frame.Shard]
			chunk, err := ParseRecords(frame.Payload)
			if err != nil {
				return err
			}
			if chunk.Generation != st.pos.Generation || chunk.Start != st.pos.Offset {
				return fmt.Errorf("replica: shard %d stream discontinuity: chunk at %d:%d, expected %s",
					frame.Shard, chunk.Generation, chunk.Start, st.pos)
			}
			st.carry = append(st.carry, chunk.Frames...)
			st.pos.Offset += int64(len(chunk.Frames))
			// Decode whole frames out of the carry; a split frame at the
			// tail reads exactly like a torn log tail and is left for the
			// next chunk.
			valid, _, err := wal.Replay(bytes.NewReader(st.carry), func(rec wal.Record) error {
				st.queue = append(st.queue, pendItem{rec: rec})
				return nil
			})
			if err != nil {
				return fmt.Errorf("replica: shard %d stream records: %w", frame.Shard, err)
			}
			st.carry = st.carry[:copy(st.carry, st.carry[valid:])]
			if len(sts) == 1 {
				if err := f.drain(ix, sts, gate, planGen); err != nil {
					return err
				}
			}
		case KindRotate:
			if int(frame.Shard) >= len(sts) {
				return fmt.Errorf("replica: rotation for shard %d of %d", frame.Shard, len(sts))
			}
			st := sts[frame.Shard]
			rot, err := ParseRotate(frame.Payload)
			if err != nil {
				return err
			}
			if len(st.carry) > 0 {
				return fmt.Errorf("replica: shard %d rotated with %d undecoded bytes in flight", frame.Shard, len(st.carry))
			}
			st.queue = append(st.queue, pendItem{rotate: true, nextGen: rot.NextGeneration, rotPlan: rot.PlanGeneration})
			st.pos = ssr.WALPosition{Generation: rot.NextGeneration}
			if len(sts) == 1 {
				if err := f.drain(ix, sts, gate, planGen); err != nil {
					return err
				}
			}
		case KindWatermark:
			wm, err := ParseWatermark(frame.Payload)
			if err != nil {
				return err
			}
			if wm.PlanGeneration != planGen {
				return fmt.Errorf("%w: plan generation moved from %d to %d", errResync, planGen, wm.PlanGeneration)
			}
			if len(wm.Ends) != len(sts) {
				return fmt.Errorf("replica: watermark covers %d shards of %d", len(wm.Ends), len(sts))
			}
			if len(sts) > 1 && wm.SettledSID > gate {
				gate = wm.SettledSID
			}
			if err := f.drain(ix, sts, gate, planGen); err != nil {
				return err
			}
			f.noteProgress(ix, wm)
		case KindError:
			se, err := ParseStreamError(frame.Payload)
			if err != nil {
				return err
			}
			switch se.Code {
			case ErrCodeCompacted, ErrCodePlanChanged:
				return fmt.Errorf("%w: primary says: %s", errResync, se.Message)
			default:
				return fmt.Errorf("replica: primary reports: %s", se.Message)
			}
		default:
			return fmt.Errorf("replica: unknown frame kind %d", frame.Kind)
		}
	}
}

// drain applies queued items. Rotations and segment-header records pop
// per shard unconditionally (they carry no sid and order only within
// their shard); insert/delete records merge across shards by ascending
// sid below the gate — the same k-way merge crash recovery runs over
// buffered tails, which is what makes the mirror byte-identical.
func (f *Follower) drain(ix *ssr.Index, sts []*shardTail, gate uint32, planGen uint64) error {
	for {
		progress := false
		for si, st := range sts {
			for len(st.queue) > 0 {
				h := st.queue[0]
				if h.rotate {
					if h.rotPlan != planGen {
						return fmt.Errorf("%w: rotation carries plan generation %d, tailing %d", errResync, h.rotPlan, planGen)
					}
					if err := ix.ReplicaRotate(si, h.nextGen); err != nil {
						return err
					}
					st.localGen = h.nextGen
				} else if h.rec.Op == wal.OpCheckpoint {
					// The streamed copy of the segment header: ReplicaRotate
					// already wrote the byte-identical record locally, so
					// validate and skip.
					if h.rec.Seq != st.localGen {
						return fmt.Errorf("replica: shard %d header names generation %d, chain is at %d", si, h.rec.Seq, st.localGen)
					}
				} else {
					break
				}
				st.queue = st.queue[1:]
				progress = true
			}
		}
		best := -1
		for si, st := range sts {
			if len(st.queue) == 0 || st.queue[0].rotate || st.queue[0].rec.Op == wal.OpCheckpoint {
				continue
			}
			if st.queue[0].rec.SID >= gate {
				continue
			}
			if best < 0 || st.queue[0].rec.SID < sts[best].queue[0].rec.SID {
				best = si
			}
		}
		if best >= 0 {
			h := sts[best].queue[0]
			if err := ix.ReplicaApply(best, h.rec); err != nil {
				return err
			}
			sts[best].queue = sts[best].queue[1:]
			progress = true
		}
		if !progress {
			return nil
		}
	}
}

// noteProgress publishes lag after a watermark's drain: how many bytes
// of the watermark's ends the local chains have not yet written.
func (f *Follower) noteProgress(ix *ssr.Index, wm ssr.ReplicationWatermark) {
	local, err := ix.ReplicaPositions()
	if err != nil {
		return
	}
	var lag int64
	for si, end := range wm.Ends {
		if si >= len(local) {
			break
		}
		switch {
		case local[si].Generation == end.Generation:
			if d := end.Offset - local[si].Offset; d > 0 {
				lag += d
			}
		case local[si].Generation < end.Generation:
			// Behind by whole segments; the byte count is unknowable from
			// here, so saturate well past any lag bound.
			lag += end.Offset + 1<<30
		}
	}
	f.setStatus(func(st *FollowerStatus) {
		st.LagBytes = lag
		st.CaughtUp = lag <= f.opt.LagBoundBytes
		st.SettledSID = wm.SettledSID
	})
}

func readErrorBody(r io.Reader) string {
	b, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(bytes.TrimSpace(b)) == 0 {
		return "(no detail)"
	}
	return string(bytes.TrimSpace(b))
}

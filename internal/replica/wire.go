// Package replica is the multi-node replication layer: a primary serves
// its per-shard WAL chains and sealed checkpoints over HTTP (Handler), a
// follower bootstraps from the shipped checkpoints and tails the stream
// into a byte-identical local mirror (Follower), and a thin router
// scatter-gathers reads across replicas with hedged requests while
// forwarding writes to the primary alone (Router).
//
// The index-side contract (offset-addressable frame reads, watermarks,
// checkpoint export/import, replica apply) lives in the root package's
// replication.go; this package adds the wire protocol and the processes
// around it. See DESIGN.md "Replication & multi-node serving".
package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	ssr "repro"
)

// Wire protocol. A stream is the magic WireMagic followed by frames:
//
//	kind(u8) ‖ shard(u16 LE) ‖ reserved(u8) ‖ len(u32 LE) ‖ crc32c(u32 LE) ‖ payload
//
// The CRC (Castagnoli, like the WAL's own frames) covers the first four
// header bytes — kind, shard, reserved — and the payload, so a truncated
// or bit-flipped stream fails closed exactly like a torn log tail,
// including flips that land in the frame header itself. Frame payloads:
//
//	KindRecords:   generation(u64) ‖ startOffset(u64) ‖ raw WAL frame bytes
//	               Whole frames only — a chunk never splits a WAL frame —
//	               and the raw bytes are exactly the primary's log bytes
//	               at [startOffset, startOffset+len) of wal-<generation>.
//	KindRotate:    nextGeneration(u64) ‖ planGeneration(u64)
//	               The primary sealed wal-<nextGeneration-1>; the follower
//	               cuts its own local checkpoint and continues. A plan
//	               generation differing from the follower's means the
//	               rotation carries a retune, which a stream cannot
//	               replicate — the follower re-bootstraps instead.
//	KindWatermark: settledSID(u32) ‖ planGeneration(u64) ‖ n(u16) ‖ n×(gen u64 ‖ off u64)
//	               Emitted only after every record the Ends cover has been
//	               emitted (the invariant the follower's sid-ordered merge
//	               gate rests on), and doubles as the heartbeat.
//	KindError:     code(u8) ‖ message
//	               Terminal; the follower reconnects or re-bootstraps per
//	               the code.
//
// A follower's stream request is a resume-token blob (EncodeTokens):
//
//	"SSRTOKN1" ‖ planGeneration(u64) ‖ n(u16) ‖ n×(gen u64 ‖ off u64)

const (
	// WireMagic opens every replication stream.
	WireMagic = "SSRWIRE1"
	// TokenMagic opens every resume-token blob.
	TokenMagic = "SSRTOKN1"

	frameHeaderSize = 12
	// MaxWirePayload bounds one frame's payload: comfortably above the
	// chunk size any primary sends and below anything worth allocating on
	// a decoder's say-so.
	MaxWirePayload = 8 << 20
	// maxWireShards bounds the Ends vector in watermark frames and token
	// blobs (the engine's own shard limit is far lower).
	maxWireShards = 4096
)

// Frame kinds.
const (
	KindRecords   byte = 1
	KindRotate    byte = 2
	KindWatermark byte = 3
	KindError     byte = 4
)

// KindError codes.
const (
	ErrCodeCompacted   byte = 1 // resume position compacted away: re-bootstrap
	ErrCodePlanChanged byte = 2 // plan generation moved: re-bootstrap
	ErrCodeInternal    byte = 3 // primary-side failure: reconnect
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded stream frame.
type Frame struct {
	Kind    byte
	Shard   int
	Payload []byte
}

// AppendFrame encodes one frame onto dst.
func AppendFrame(dst []byte, kind byte, shard int, payload []byte) []byte {
	var h [frameHeaderSize]byte
	h[0] = kind
	binary.LittleEndian.PutUint16(h[1:3], uint16(shard))
	binary.LittleEndian.PutUint32(h[4:8], uint32(len(payload)))
	crc := crc32.Checksum(h[0:4], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(h[8:12], crc)
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// ErrBadFrame reports a malformed or corrupt stream frame. The stream is
// unusable past it; reconnect and resume from the last applied position.
var ErrBadFrame = errors.New("replica: bad stream frame")

// FrameReader decodes a stream: the magic once, then frames.
type FrameReader struct {
	r        *bufio.Reader
	gotMagic bool
}

// NewFrameReader wraps r for decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next frame. io.EOF reports a clean end between
// frames; anything torn or corrupt is ErrBadFrame.
func (fr *FrameReader) Next() (Frame, error) {
	if !fr.gotMagic {
		var magic [len(WireMagic)]byte
		if _, err := io.ReadFull(fr.r, magic[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Frame{}, io.EOF
			}
			return Frame{}, fmt.Errorf("%w: reading stream magic: %v", ErrBadFrame, err)
		}
		if string(magic[:]) != WireMagic {
			return Frame{}, fmt.Errorf("%w: stream magic %q", ErrBadFrame, magic)
		}
		fr.gotMagic = true
	}
	var h [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, h[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: reading frame header: %v", ErrBadFrame, err)
	}
	length := binary.LittleEndian.Uint32(h[4:8])
	if length > MaxWirePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, length, MaxWirePayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: reading %d-byte payload: %v", ErrBadFrame, length, err)
	}
	crc := crc32.Checksum(h[0:4], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(h[8:12]) {
		return Frame{}, fmt.Errorf("%w: frame checksum mismatch", ErrBadFrame)
	}
	return Frame{Kind: h[0], Shard: int(binary.LittleEndian.Uint16(h[1:3])), Payload: payload}, nil
}

// RecordsChunk is a KindRecords payload: raw WAL frame bytes of one
// shard's segment, starting at a frame boundary.
type RecordsChunk struct {
	Generation uint64
	Start      int64
	Frames     []byte
}

// EncodeRecords builds a KindRecords payload.
func EncodeRecords(c RecordsChunk) []byte {
	out := make([]byte, 16, 16+len(c.Frames))
	binary.LittleEndian.PutUint64(out[:8], c.Generation)
	binary.LittleEndian.PutUint64(out[8:16], uint64(c.Start))
	return append(out, c.Frames...)
}

// ParseRecords decodes a KindRecords payload.
func ParseRecords(p []byte) (RecordsChunk, error) {
	if len(p) < 16 {
		return RecordsChunk{}, fmt.Errorf("%w: records payload %d bytes", ErrBadFrame, len(p))
	}
	start := binary.LittleEndian.Uint64(p[8:16])
	if start > 1<<62 {
		return RecordsChunk{}, fmt.Errorf("%w: records start offset %d", ErrBadFrame, start)
	}
	return RecordsChunk{
		Generation: binary.LittleEndian.Uint64(p[:8]),
		Start:      int64(start),
		Frames:     p[16:],
	}, nil
}

// Rotate is a KindRotate payload.
type Rotate struct {
	NextGeneration uint64
	PlanGeneration uint64
}

// EncodeRotate builds a KindRotate payload.
func EncodeRotate(rot Rotate) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out[:8], rot.NextGeneration)
	binary.LittleEndian.PutUint64(out[8:16], rot.PlanGeneration)
	return out
}

// ParseRotate decodes a KindRotate payload.
func ParseRotate(p []byte) (Rotate, error) {
	if len(p) != 16 {
		return Rotate{}, fmt.Errorf("%w: rotate payload %d bytes", ErrBadFrame, len(p))
	}
	return Rotate{
		NextGeneration: binary.LittleEndian.Uint64(p[:8]),
		PlanGeneration: binary.LittleEndian.Uint64(p[8:16]),
	}, nil
}

// EncodeWatermark builds a KindWatermark payload.
func EncodeWatermark(wm ssr.ReplicationWatermark) []byte {
	out := make([]byte, 0, 14+16*len(wm.Ends))
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], wm.SettledSID)
	out = append(out, b[:4]...)
	binary.LittleEndian.PutUint64(b[:], wm.PlanGeneration)
	out = append(out, b[:]...)
	binary.LittleEndian.PutUint16(b[:2], uint16(len(wm.Ends)))
	out = append(out, b[:2]...)
	for _, p := range wm.Ends {
		binary.LittleEndian.PutUint64(b[:], p.Generation)
		out = append(out, b[:]...)
		binary.LittleEndian.PutUint64(b[:], uint64(p.Offset))
		out = append(out, b[:]...)
	}
	return out
}

// ParseWatermark decodes a KindWatermark payload.
func ParseWatermark(p []byte) (ssr.ReplicationWatermark, error) {
	if len(p) < 14 {
		return ssr.ReplicationWatermark{}, fmt.Errorf("%w: watermark payload %d bytes", ErrBadFrame, len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[12:14]))
	if n > maxWireShards || len(p) != 14+16*n {
		return ssr.ReplicationWatermark{}, fmt.Errorf("%w: watermark with %d ends in %d bytes", ErrBadFrame, n, len(p))
	}
	wm := ssr.ReplicationWatermark{
		SettledSID:     binary.LittleEndian.Uint32(p[:4]),
		PlanGeneration: binary.LittleEndian.Uint64(p[4:12]),
		Ends:           make([]ssr.WALPosition, n),
	}
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint64(p[14+16*i+8 : 14+16*i+16])
		if off > 1<<62 {
			return ssr.ReplicationWatermark{}, fmt.Errorf("%w: watermark offset %d", ErrBadFrame, off)
		}
		wm.Ends[i] = ssr.WALPosition{
			Generation: binary.LittleEndian.Uint64(p[14+16*i : 14+16*i+8]),
			Offset:     int64(off),
		}
	}
	return wm, nil
}

// StreamError is a KindError payload.
type StreamError struct {
	Code    byte
	Message string
}

func (e StreamError) Error() string {
	return fmt.Sprintf("replica: stream error %d: %s", e.Code, e.Message)
}

// EncodeStreamError builds a KindError payload.
func EncodeStreamError(e StreamError) []byte {
	return append([]byte{e.Code}, e.Message...)
}

// ParseStreamError decodes a KindError payload.
func ParseStreamError(p []byte) (StreamError, error) {
	if len(p) < 1 {
		return StreamError{}, fmt.Errorf("%w: empty error payload", ErrBadFrame)
	}
	return StreamError{Code: p[0], Message: string(p[1:])}, nil
}

// EncodeTokens builds the resume-token blob a follower POSTs to open a
// stream: its plan generation plus one chain position per shard.
func EncodeTokens(planGen uint64, pos []ssr.WALPosition) []byte {
	out := make([]byte, 0, len(TokenMagic)+10+16*len(pos))
	out = append(out, TokenMagic...)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], planGen)
	out = append(out, b[:]...)
	binary.LittleEndian.PutUint16(b[:2], uint16(len(pos)))
	out = append(out, b[:2]...)
	for _, p := range pos {
		binary.LittleEndian.PutUint64(b[:], p.Generation)
		out = append(out, b[:]...)
		binary.LittleEndian.PutUint64(b[:], uint64(p.Offset))
		out = append(out, b[:]...)
	}
	return out
}

// DecodeTokens parses a resume-token blob.
func DecodeTokens(p []byte) (planGen uint64, pos []ssr.WALPosition, err error) {
	if len(p) < len(TokenMagic)+10 {
		return 0, nil, fmt.Errorf("%w: token blob %d bytes", ErrBadFrame, len(p))
	}
	if string(p[:len(TokenMagic)]) != TokenMagic {
		return 0, nil, fmt.Errorf("%w: token magic %q", ErrBadFrame, p[:len(TokenMagic)])
	}
	p = p[len(TokenMagic):]
	planGen = binary.LittleEndian.Uint64(p[:8])
	n := int(binary.LittleEndian.Uint16(p[8:10]))
	if n > maxWireShards || len(p) != 10+16*n {
		return 0, nil, fmt.Errorf("%w: token blob with %d positions in %d bytes", ErrBadFrame, n, len(p))
	}
	pos = make([]ssr.WALPosition, n)
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint64(p[10+16*i+8 : 10+16*i+16])
		if off > 1<<62 {
			return 0, nil, fmt.Errorf("%w: token offset %d", ErrBadFrame, off)
		}
		pos[i] = ssr.WALPosition{
			Generation: binary.LittleEndian.Uint64(p[10+16*i : 10+16*i+8]),
			Offset:     int64(off),
		}
	}
	return planGen, pos, nil
}

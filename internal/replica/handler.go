package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	ssr "repro"
)

// WireVersion is negotiated at bootstrap: a follower refuses to speak to
// a primary whose wire version it does not know.
const WireVersion = 1

// HandlerOptions tunes the primary-side stream server. The zero value is
// usable.
type HandlerOptions struct {
	// ChunkBytes bounds one KindRecords frame (default 256KiB).
	ChunkBytes int
	// Heartbeat is the idle re-emission period for watermark frames
	// (default 1s). Watermarks double as heartbeats AND as the gate
	// openers for records the previous watermark did not yet cover, so
	// this also bounds follower apply latency for in-flight writes.
	Heartbeat time.Duration
	// WriteTimeout is the per-frame write deadline on the stream
	// (default 30s); a stalled follower is cut rather than held.
	WriteTimeout time.Duration
}

func (o HandlerOptions) withDefaults() HandlerOptions {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// Handler serves the primary's /replica/* endpoints:
//
//	GET  /replica/manifest    bootstrap handshake: wire version, shard
//	                          count, plan generation, raw MANIFEST, and
//	                          the newest verified checkpoint generations
//	POST /replica/stream      resume-token blob in, frame stream out
//	GET  /replica/checkpoint  ?shard=N&gen=G → the sealed artifact
//	GET  /replica/status      positions, watermark, plan generation
type Handler struct {
	src *ssr.ReplicationSource
	opt HandlerOptions
	mux *http.ServeMux
}

// NewHandler builds the replication handler for a durable primary index.
func NewHandler(ix *ssr.Index, opt HandlerOptions) (*Handler, error) {
	src, err := ix.ReplicationSource()
	if err != nil {
		return nil, err
	}
	h := &Handler{src: src, opt: opt.withDefaults(), mux: http.NewServeMux()}
	h.mux.HandleFunc("/replica/manifest", h.handleManifest)
	h.mux.HandleFunc("/replica/checkpoint", h.handleCheckpoint)
	h.mux.HandleFunc("/replica/stream", h.handleStream)
	h.mux.HandleFunc("/replica/status", h.handleStatus)
	return h, nil
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Printf("replica: encoding %T response: %v", v, err)
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(body, '\n')); err != nil {
		log.Printf("replica: writing %T response: %v", v, err)
	}
}

// CheckpointRef names one shippable checkpoint.
type CheckpointRef struct {
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation"`
}

// ManifestResponse is the GET /replica/manifest payload — everything a
// follower needs to plan a bootstrap in one round trip. Manifest is the
// raw MANIFEST bytes (base64 in JSON), absent on a single-shard layout.
type ManifestResponse struct {
	WireVersion    int             `json:"wire_version"`
	Shards         int             `json:"shards"`
	PlanGeneration uint64          `json:"plan_generation"`
	Manifest       []byte          `json:"manifest,omitempty"`
	Checkpoints    []CheckpointRef `json:"checkpoints"`
}

func (h *Handler) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	resp := ManifestResponse{
		WireVersion:    WireVersion,
		Shards:         h.src.Shards(),
		PlanGeneration: h.src.PlanGeneration(),
	}
	raw, err := h.src.RawManifest()
	if err != nil {
		httpJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	resp.Manifest = raw
	for si := 0; si < resp.Shards; si++ {
		gen, err := h.src.NewestCheckpoint(si)
		if err != nil {
			httpJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Checkpoints = append(resp.Checkpoints, CheckpointRef{Shard: si, Generation: gen})
	}
	httpJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	si, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": "bad shard"})
		return
	}
	gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gen"})
		return
	}
	rc, size, err := h.src.OpenCheckpoint(si, gen)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ssr.ErrCompactedSegment) {
			status = http.StatusNotFound
		}
		httpJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	defer rc.Close() //ssrvet:ignore droppederr -- read-only fd; a short copy already failed the response
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, rc); err != nil {
		log.Printf("replica: shipping checkpoint shard=%d gen=%d: %v", si, gen, err)
	}
}

// statusResponse is the GET /replica/status payload.
type statusResponse struct {
	Role           string                   `json:"role"`
	Shards         int                      `json:"shards"`
	PlanGeneration uint64                   `json:"plan_generation"`
	Positions      []ssr.WALPosition        `json:"positions"`
	Watermark      ssr.ReplicationWatermark `json:"watermark"`
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	resp := statusResponse{
		Role:           "primary",
		Shards:         h.src.Shards(),
		PlanGeneration: h.src.PlanGeneration(),
		Watermark:      h.src.Watermark(),
	}
	for si := 0; si < resp.Shards; si++ {
		p, err := h.src.Position(si)
		if err != nil {
			httpJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Positions = append(resp.Positions, p)
	}
	httpJSON(w, http.StatusOK, resp)
}

// handleStream serves the tail: validate the resume tokens, then rounds
// of (pump every shard to the watermark's ends) → (emit the watermark) →
// (wait for changes or the heartbeat period). The pump-before-watermark
// order is the protocol's one load-bearing invariant: when a follower
// sees a watermark, every record it covers has already arrived, so
// gating its sid-ordered merge on the newest watermark is sound.
func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	planGen, pos, err := DecodeTokens(body)
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(pos) != h.src.Shards() {
		httpJSON(w, http.StatusConflict, map[string]string{
			"error":  fmt.Sprintf("token names %d shards, primary has %d", len(pos), h.src.Shards()),
			"reason": "topology",
		})
		return
	}
	if got := h.src.PlanGeneration(); got != planGen {
		httpJSON(w, http.StatusConflict, map[string]string{
			"error":  fmt.Sprintf("follower plan generation %d, primary %d (re-bootstrap)", planGen, got),
			"reason": "plan-generation",
		})
		return
	}

	rc := http.NewResponseController(w)
	extend := func() bool {
		if err := rc.SetWriteDeadline(time.Now().Add(h.opt.WriteTimeout)); err != nil &&
			!errors.Is(err, http.ErrNotSupported) {
			return false
		}
		return true
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	extend()
	if _, err := io.WriteString(w, WireMagic); err != nil {
		return
	}
	send := func(kind byte, shard int, payload []byte) bool {
		if !extend() {
			return false
		}
		_, err := w.Write(AppendFrame(nil, kind, shard, payload))
		return err == nil
	}
	fail := func(code byte, msg string) {
		send(KindError, 0, EncodeStreamError(StreamError{Code: code, Message: msg}))
		rc.Flush() //ssrvet:ignore droppederr -- the stream is ending either way
	}

	sub, cancel := h.src.Subscribe()
	defer cancel()
	ctx := r.Context()
	heartbeat := time.NewTicker(h.opt.Heartbeat)
	defer heartbeat.Stop()
	for {
		wm := h.src.Watermark()
		if wm.PlanGeneration != planGen {
			fail(ErrCodePlanChanged, fmt.Sprintf("plan generation moved to %d", wm.PlanGeneration))
			return
		}
		for si := range pos {
			for pos[si].Before(wm.Ends[si]) {
				data, next, sealed, err := h.src.ReadFrames(si, pos[si], h.opt.ChunkBytes)
				if err != nil {
					code := byte(ErrCodeInternal)
					if errors.Is(err, ssr.ErrCompactedSegment) {
						code = ErrCodeCompacted
					}
					fail(code, err.Error())
					return
				}
				if len(data) > 0 {
					if !send(KindRecords, si, EncodeRecords(RecordsChunk{
						Generation: pos[si].Generation, Start: pos[si].Offset, Frames: data,
					})) {
						return
					}
				}
				if sealed {
					if !send(KindRotate, si, EncodeRotate(Rotate{
						NextGeneration: next.Generation,
						PlanGeneration: h.src.PlanGeneration(),
					})) {
						return
					}
				}
				if next == pos[si] {
					// No data, no seal, yet short of the watermark's end:
					// only a concurrent truncation could do this; bail out
					// rather than spin.
					fail(ErrCodeInternal, fmt.Sprintf("shard %d stalled at %s", si, pos[si]))
					return
				}
				pos[si] = next
			}
		}
		if !send(KindWatermark, 0, EncodeWatermark(wm)) {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-sub:
		case <-heartbeat.C:
		}
	}
}

package replica

import (
	"bytes"
	"io"
	"testing"

	ssr "repro"
)

// TestWireRoundTrip drives every frame kind and the token blob through
// encode → decode and expects identity.
func TestWireRoundTrip(t *testing.T) {
	wm := ssr.ReplicationWatermark{
		SettledSID:     41,
		PlanGeneration: 3,
		Ends: []ssr.WALPosition{
			{Generation: 2, Offset: 1024},
			{Generation: 5, Offset: 17},
		},
	}
	chunk := RecordsChunk{Generation: 7, Start: 4096, Frames: []byte("raw-wal-frame-bytes")}
	rot := Rotate{NextGeneration: 8, PlanGeneration: 2}
	serr := StreamError{Code: ErrCodeCompacted, Message: "gone"}

	var stream []byte
	stream = append(stream, WireMagic...)
	stream = AppendFrame(stream, KindRecords, 1, EncodeRecords(chunk))
	stream = AppendFrame(stream, KindRotate, 2, EncodeRotate(rot))
	stream = AppendFrame(stream, KindWatermark, 0, EncodeWatermark(wm))
	stream = AppendFrame(stream, KindError, 0, EncodeStreamError(serr))

	fr := NewFrameReader(bytes.NewReader(stream))
	f, err := fr.Next()
	if err != nil || f.Kind != KindRecords || f.Shard != 1 {
		t.Fatalf("frame 1: %+v, %v", f, err)
	}
	gotChunk, err := ParseRecords(f.Payload)
	if err != nil || gotChunk.Generation != chunk.Generation || gotChunk.Start != chunk.Start || !bytes.Equal(gotChunk.Frames, chunk.Frames) {
		t.Fatalf("records round trip: %+v, %v", gotChunk, err)
	}
	f, err = fr.Next()
	if err != nil || f.Kind != KindRotate || f.Shard != 2 {
		t.Fatalf("frame 2: %+v, %v", f, err)
	}
	if gotRot, err := ParseRotate(f.Payload); err != nil || gotRot != rot {
		t.Fatalf("rotate round trip: %+v, %v", gotRot, err)
	}
	f, err = fr.Next()
	if err != nil || f.Kind != KindWatermark {
		t.Fatalf("frame 3: %+v, %v", f, err)
	}
	gotWM, err := ParseWatermark(f.Payload)
	if err != nil || gotWM.SettledSID != wm.SettledSID || gotWM.PlanGeneration != wm.PlanGeneration || len(gotWM.Ends) != 2 || gotWM.Ends[0] != wm.Ends[0] || gotWM.Ends[1] != wm.Ends[1] {
		t.Fatalf("watermark round trip: %+v, %v", gotWM, err)
	}
	f, err = fr.Next()
	if err != nil || f.Kind != KindError {
		t.Fatalf("frame 4: %+v, %v", f, err)
	}
	if gotErr, err := ParseStreamError(f.Payload); err != nil || gotErr != serr {
		t.Fatalf("error round trip: %+v, %v", gotErr, err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}

	tok := EncodeTokens(9, wm.Ends)
	gen, pos, err := DecodeTokens(tok)
	if err != nil || gen != 9 || len(pos) != 2 || pos[0] != wm.Ends[0] || pos[1] != wm.Ends[1] {
		t.Fatalf("token round trip: gen %d pos %+v err %v", gen, pos, err)
	}
}

// TestWireCorruption flips each byte of a valid stream and expects the
// reader to fail closed (ErrBadFrame or EOF), never to return a frame
// whose payload differs from the original.
func TestWireCorruption(t *testing.T) {
	var stream []byte
	stream = append(stream, WireMagic...)
	payload := EncodeRotate(Rotate{NextGeneration: 3, PlanGeneration: 1})
	stream = AppendFrame(stream, KindRotate, 0, payload)
	for i := range stream {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(mut))
		f, err := fr.Next()
		if err != nil {
			continue // fail-closed: exactly what corruption should do
		}
		// A surviving frame must be byte-identical (the flip landed in a
		// part the header redundantly tolerates — there is none today, so
		// any survivor must match exactly).
		if f.Kind != KindRotate || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("flip at %d decoded altered frame %+v", i, f)
		}
	}
}

// TestWireTruncation cuts a valid stream at every length and expects a
// clean EOF or ErrBadFrame, never a hang or panic.
func TestWireTruncation(t *testing.T) {
	var stream []byte
	stream = append(stream, WireMagic...)
	stream = AppendFrame(stream, KindWatermark, 0, EncodeWatermark(ssr.ReplicationWatermark{
		SettledSID: 5, Ends: []ssr.WALPosition{{Generation: 1, Offset: 64}},
	}))
	for cut := 0; cut < len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		if _, err := fr.Next(); err == nil {
			t.Fatalf("cut at %d decoded a full frame from a truncated stream", cut)
		}
	}
}

package replica

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	ssr "repro"
)

// fastStream are handler options tuned for tests: tight heartbeats so
// catch-up and watchdog paths run in milliseconds.
var fastStream = HandlerOptions{Heartbeat: 15 * time.Millisecond, ChunkBytes: 4 << 10}

func fastFollowerOptions(dir, primary string) FollowerOptions {
	return FollowerOptions{
		Dir:              dir,
		Primary:          primary,
		Heartbeat:        15 * time.Millisecond,
		ReconnectBackoff: 10 * time.Millisecond,
	}
}

// elemsOf builds overlapping element lists so similarity queries have
// real answers.
func elemsOf(i int) []string {
	out := make([]string, 0, 6)
	for j := 0; j < 6; j++ {
		out = append(out, fmt.Sprintf("e%03d", i+j*3))
	}
	return out
}

func seedCollection(n int) *ssr.Collection {
	coll := ssr.NewCollection()
	for i := 0; i < n; i++ {
		coll.Add(elemsOf(i)...)
	}
	return coll
}

// startPrimary creates a durable primary over a seed collection and
// serves its replication handler.
func startPrimary(t *testing.T, shards, seedSets int) (*ssr.Index, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	ix, err := ssr.CreateDurable(dir, seedCollection(seedSets), ssr.Options{
		Budget: 64, MinHashes: 16, Seed: 1, Shards: shards,
	}, ssr.DurableOptions{})
	if err != nil {
		t.Fatalf("creating primary: %v", err)
	}
	t.Cleanup(func() { ix.Close() }) //ssrvet:ignore droppederr -- test teardown; double close is fine
	h, err := NewHandler(ix, fastStream)
	if err != nil {
		t.Fatalf("replication handler: %v", err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return ix, srv
}

func saveBytes(t *testing.T, ix *ssr.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("saving index: %v", err)
	}
	return buf.Bytes()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitMirrored waits until the follower is connected with zero lag, its
// index holds the same number of live sets as the primary, and its WAL
// chains have applied exactly the primary's bytes. The position check is
// the load-bearing one: the follower's own lag reading is only as fresh
// as the last watermark it received, so a Len-neutral tail (an insert
// followed by its delete) could otherwise satisfy a stale "caught up".
func waitMirrored(t *testing.T, f *Follower, primary *ssr.Index) {
	t.Helper()
	waitFor(t, "follower catch-up", func() bool {
		st := f.Status()
		if !st.Connected || !st.CaughtUp || st.LagBytes != 0 || f.Index().Len() != primary.Len() {
			return false
		}
		pPos, err := primary.ReplicaPositions()
		if err != nil {
			return false
		}
		fPos, err := f.Index().ReplicaPositions()
		if err != nil || len(fPos) != len(pPos) {
			return false
		}
		for si := range pPos {
			if pPos[si] != fPos[si] {
				return false
			}
		}
		return true
	})
}

// requireEqualState compares the two indexes' Save bytes — the strongest
// equality the system defines (plan, signatures, dictionary order,
// everything).
func requireEqualState(t *testing.T, primary, follower *ssr.Index) {
	t.Helper()
	p, f := saveBytes(t, primary), saveBytes(t, follower)
	if !bytes.Equal(p, f) {
		off := 0
		for off < len(p) && off < len(f) && p[off] == f[off] {
			off++
		}
		lo := off - 32
		if lo < 0 {
			lo = 0
		}
		hiP, hiF := off+32, off+32
		if hiP > len(p) {
			hiP = len(p)
		}
		if hiF > len(f) {
			hiF = len(f)
		}
		t.Fatalf("follower state diverged from primary: primary %d bytes, follower %d bytes, first diff at %d\nprimary  %x\nfollower %x",
			len(p), len(f), off, p[lo:hiP], f[lo:hiF])
	}
}

// mutate drives a deterministic sequential workload: adds with periodic
// deletes, the shapes replication must carry.
func mutate(t *testing.T, ix *ssr.Index, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sid, err := ix.Add(elemsOf(start + i)...)
		if err != nil {
			t.Fatalf("add %d: %v", start+i, err)
		}
		if i%7 == 3 {
			if err := ix.Remove(sid); err != nil {
				t.Fatalf("remove %d: %v", sid, err)
			}
		}
	}
}

func TestFollowerMirrorsPrimary(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			primary, srv := startPrimary(t, shards, 40)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			f, err := StartFollower(ctx, fastFollowerOptions(t.TempDir(), srv.URL))
			if err != nil {
				t.Fatalf("starting follower: %v", err)
			}
			defer f.Close() //ssrvet:ignore droppederr -- test teardown
			waitMirrored(t, f, primary)
			requireEqualState(t, primary, f.Index())

			// Keep mutating while the follower tails live.
			mutate(t, primary, 100, 60)
			waitMirrored(t, f, primary)
			requireEqualState(t, primary, f.Index())

			// A follower is read-only.
			if _, err := f.Index().Add("x", "y"); err == nil {
				t.Fatal("follower accepted a write")
			}
			// Reads answer identically.
			pm, _, err := primary.Query(elemsOf(120), 0.3, 1.0)
			if err != nil {
				t.Fatalf("primary query: %v", err)
			}
			fm, _, err := f.Index().Query(elemsOf(120), 0.3, 1.0)
			if err != nil {
				t.Fatalf("follower query: %v", err)
			}
			if fmt.Sprint(pm) != fmt.Sprint(fm) {
				t.Fatalf("queries diverge:\nprimary  %v\nfollower %v", pm, fm)
			}
		})
	}
}

func TestFollowerRestartResumes(t *testing.T) {
	primary, srv := startPrimary(t, 2, 30)
	dir := t.TempDir()
	ctx := context.Background()

	f, err := StartFollower(ctx, fastFollowerOptions(dir, srv.URL))
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	mutate(t, primary, 200, 40)
	waitMirrored(t, f, primary)
	if err := f.Close(); err != nil {
		t.Fatalf("closing follower: %v", err)
	}

	// More writes land while the follower is down; on restart it resumes
	// from its local positions — no re-bootstrap.
	mutate(t, primary, 300, 40)
	f2, err := StartFollower(ctx, fastFollowerOptions(dir, srv.URL))
	if err != nil {
		t.Fatalf("restarting follower: %v", err)
	}
	defer f2.Close() //ssrvet:ignore droppederr -- test teardown
	waitMirrored(t, f2, primary)
	if got := f2.Status().Resyncs; got != 0 {
		t.Fatalf("restart resorted to %d resync(s); should have resumed from its token", got)
	}
	requireEqualState(t, primary, f2.Index())
}

// cuttingTransport breaks /replica/stream response bodies after a
// scripted number of bytes, one entry per connection attempt; once the
// script runs dry, streams flow uncut.
type cuttingTransport struct {
	base http.RoundTripper
	cuts []int64
	next atomic.Int64
}

func (ct *cuttingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := ct.base.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/replica/stream") {
		return resp, err
	}
	i := ct.next.Add(1) - 1
	if int(i) >= len(ct.cuts) {
		return resp, nil
	}
	resp.Body = &cutBody{rc: resp.Body, left: ct.cuts[i]}
	return resp, nil
}

type cutBody struct {
	rc   io.ReadCloser
	left int64
}

func (cb *cutBody) Read(p []byte) (int, error) {
	if cb.left <= 0 {
		return 0, fmt.Errorf("stream cut by test")
	}
	if int64(len(p)) > cb.left {
		p = p[:cb.left]
	}
	n, err := cb.rc.Read(p)
	cb.left -= int64(n)
	if err == nil && cb.left <= 0 {
		err = fmt.Errorf("stream cut by test")
	}
	return n, err
}

func (cb *cutBody) Close() error { return cb.rc.Close() }

// TestFollowerSurvivesStreamCuts severs the stream at a sweep of byte
// offsets — mid-magic, mid-frame-header, mid-payload, mid-watermark —
// and requires the follower to reconnect from its resume tokens to
// bit-identical state every time.
func TestFollowerSurvivesStreamCuts(t *testing.T) {
	primary, srv := startPrimary(t, 2, 30)
	mutate(t, primary, 400, 50)

	var cuts []int64
	for c := int64(1); c < 64; c += 3 {
		cuts = append(cuts, c) // deep into the magic and first frames
	}
	for c := int64(64); c < 6000; c = c*2 + 13 {
		cuts = append(cuts, c) // mid-stream at growing depths
	}
	ct := &cuttingTransport{base: http.DefaultTransport, cuts: cuts}
	opt := fastFollowerOptions(t.TempDir(), srv.URL)
	opt.Client = &http.Client{Transport: ct}
	opt.ReconnectBackoff = time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := StartFollower(ctx, opt)
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- test teardown
	waitFor(t, "all scripted cuts to fire", func() bool {
		return int(ct.next.Load()) > len(cuts)
	})
	waitMirrored(t, f, primary)
	if got := f.Status().Reconnects; got < uint64(len(cuts)) {
		t.Fatalf("only %d reconnects for %d scripted cuts", got, len(cuts))
	}
	requireEqualState(t, primary, f.Index())
}

// TestFollowerCrashAtEveryByteOffset is the crash-injection sweep: a
// caught-up follower's live WAL segment is truncated to EVERY byte
// offset (simulating a SIGKILL mid-write at that exact point), reopened,
// and must resume from its recovered token to bit-identical state.
func TestFollowerCrashAtEveryByteOffset(t *testing.T) {
	primary, srv := startPrimary(t, 1, 10)
	mutate(t, primary, 500, 12)

	ctx := context.Background()
	golden := t.TempDir()
	f, err := StartFollower(ctx, fastFollowerOptions(golden, srv.URL))
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	waitMirrored(t, f, primary)
	if err := f.Close(); err != nil {
		t.Fatalf("closing follower: %v", err)
	}
	want := saveBytes(t, primary)

	// Find the follower's live segment.
	names, err := filepath.Glob(filepath.Join(golden, "wal-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("finding follower segment: %v (%d files)", err, len(names))
	}
	live := names[len(names)-1]
	data, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(golden)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off <= len(data); off++ {
		dir := t.TempDir()
		for _, e := range entries {
			src, err := os.ReadFile(filepath.Join(golden, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Join(golden, e.Name()) == live {
				src = src[:off]
			}
			if err := os.WriteFile(filepath.Join(dir, e.Name()), src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		fc, err := StartFollower(ctx, fastFollowerOptions(dir, srv.URL))
		if err != nil {
			t.Fatalf("offset %d: reopening follower: %v", off, err)
		}
		waitMirrored(t, fc, primary)
		got := saveBytes(t, fc.Index())
		if err := fc.Close(); err != nil {
			t.Fatalf("offset %d: closing: %v", off, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("offset %d: follower resumed to divergent state", off)
		}
	}
}

// TestFollowerRotationLockstep drives checkpoint rotations on the
// primary mid-stream and requires the follower to rotate its own chain
// in lockstep, staying byte-identical across generations.
func TestFollowerRotationLockstep(t *testing.T) {
	primary, srv := startPrimary(t, 2, 30)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := StartFollower(ctx, fastFollowerOptions(t.TempDir(), srv.URL))
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- test teardown
	waitMirrored(t, f, primary)

	// Catch up between rotations: the primary retains one sealed
	// generation (recovery's Keep), so a follower within one rotation
	// follows in lockstep; only one 2+ generations behind re-bootstraps.
	for round := 0; round < 3; round++ {
		mutate(t, primary, 600+round*50, 25)
		if err := primary.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		mutate(t, primary, 620+round*50, 5)
		waitMirrored(t, f, primary)
	}
	if got := f.Status().Resyncs; got != 0 {
		t.Fatalf("follower re-bootstrapped %d time(s); rotations should replicate in lockstep", got)
	}

	pPos, err := primary.ReplicaPositions()
	if err != nil {
		t.Fatal(err)
	}
	fPos, err := f.Index().ReplicaPositions()
	if err != nil {
		t.Fatal(err)
	}
	for si := range pPos {
		if pPos[si] != fPos[si] {
			t.Fatalf("shard %d chains diverge: primary %s, follower %s", si, pPos[si], fPos[si])
		}
		if pPos[si].Generation < 2 {
			t.Fatalf("shard %d never rotated (generation %d)", si, pPos[si].Generation)
		}
	}
	requireEqualState(t, primary, f.Index())
}

// TestFollowerResyncsAcrossRetune bumps the primary's plan generation
// mid-stream; the follower cannot replicate a plan derivation, so it
// must detect the change, re-bootstrap, and converge on the new plan.
func TestFollowerResyncsAcrossRetune(t *testing.T) {
	primary, srv := startPrimary(t, 2, 40)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := StartFollower(ctx, fastFollowerOptions(t.TempDir(), srv.URL))
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	defer f.Close() //ssrvet:ignore droppederr -- test teardown
	waitMirrored(t, f, primary)

	mutate(t, primary, 700, 30)
	rep, err := primary.Retune()
	if err != nil {
		t.Fatalf("retune: %v", err)
	}
	if rep.Generation == 0 {
		t.Fatal("retune did not advance the plan generation")
	}
	mutate(t, primary, 800, 20)

	waitFor(t, "follower resync", func() bool { return f.Status().Resyncs >= 1 })
	waitMirrored(t, f, primary)
	waitFor(t, "plan generation convergence", func() bool {
		return f.Status().PlanGeneration == rep.Generation
	})
	requireEqualState(t, primary, f.Index())
}

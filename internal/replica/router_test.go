package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// startCluster stands up a primary node, one follower node, and a
// router over both, all serving the full HTTP surface.
func startCluster(t *testing.T) (primary *httptest.Server, follower *httptest.Server, router *Router) {
	t.Helper()
	ix, repl := startPrimary(t, 2, 40)
	repl.Close() // the bare replication server; the full node below supersedes it
	h, err := NewHandler(ix, fastStream)
	if err != nil {
		t.Fatalf("replication handler: %v", err)
	}
	primary = httptest.NewServer(server.NewWithConfig(ix, server.Config{
		Role: "primary", Replication: h,
	}))
	t.Cleanup(primary.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	f, err := StartFollower(ctx, fastFollowerOptions(t.TempDir(), primary.URL))
	if err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	t.Cleanup(func() { f.Close() }) //ssrvet:ignore droppederr -- test teardown
	waitMirrored(t, f, ix)
	follower = httptest.NewServer(server.NewWithConfig(nil, server.Config{
		Role: "follower", ReadOnly: true, Index: f.Index,
		Readiness: func() (bool, map[string]any) {
			st := f.Status()
			return st.CaughtUp, map[string]any{"lagBytes": st.LagBytes}
		},
	}))
	t.Cleanup(follower.Close)

	router = NewRouter(RouterOptions{
		Primary:    primary.URL,
		Followers:  []string{follower.URL},
		HedgeDelay: 5 * time.Millisecond,
		ProbeEvery: 10 * time.Millisecond,
	})
	t.Cleanup(func() { router.Close() }) //ssrvet:ignore droppederr -- test teardown
	return primary, follower, router
}

func postJSON(t *testing.T, h http.Handler, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	data, err := io.ReadAll(rr.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Code, data
}

// matchesOf extracts the "matches" field — the deterministic part of a
// query answer (stats carry timings).
func matchesOf(t *testing.T, body []byte) json.RawMessage {
	t.Helper()
	var resp struct {
		Matches json.RawMessage `json:"matches"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return resp.Matches
}

func TestRouterReadsAreByteIdentical(t *testing.T) {
	primarySrv, followerSrv, rt := startCluster(t)

	// Wait until the router sees both backends ready.
	waitFor(t, "router readiness", func() bool {
		req := httptest.NewRequest(http.MethodGet, "/router/status", nil)
		rr := httptest.NewRecorder()
		rt.ServeHTTP(rr, req)
		var st struct {
			Backends []struct {
				Ready bool `json:"ready"`
			} `json:"backends"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil || len(st.Backends) != 2 {
			return false
		}
		return st.Backends[0].Ready && st.Backends[1].Ready
	})

	query := fmt.Sprintf(`{"elements":%s,"lo":0.3,"hi":1.0}`, mustJSON(elemsOf(12)))
	directP := doPost(t, primarySrv.URL+"/query", query)
	directF := doPost(t, followerSrv.URL+"/query", query)
	if !bytes.Equal(matchesOf(t, directP), matchesOf(t, directF)) {
		t.Fatalf("primary and follower answers differ:\n%s\n%s", directP, directF)
	}

	// Routed answers match the direct ones regardless of which backend
	// won; repeat so round-robin and hedging both exercise.
	for i := 0; i < 20; i++ {
		code, routed := postJSON(t, rt, "/query", query)
		if code != http.StatusOK {
			t.Fatalf("routed query %d: status %d: %s", i, code, routed)
		}
		if !bytes.Equal(matchesOf(t, routed), matchesOf(t, directP)) {
			t.Fatalf("routed answer %d diverges:\n%s\nwant matches %s", i, routed, matchesOf(t, directP))
		}
	}

	// Batch scatters across backends and reassembles positionally.
	var queries []string
	for i := 0; i < 9; i++ {
		queries = append(queries, fmt.Sprintf(`{"elements":%s,"lo":0.3,"hi":1.0}`, mustJSON(elemsOf(i*4))))
	}
	batch := fmt.Sprintf(`{"queries":[%s]}`, joinComma(queries))
	directBatch := doPost(t, primarySrv.URL+"/query/batch", batch)
	code, routedBatch := postJSON(t, rt, "/query/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("routed batch: status %d: %s", code, routedBatch)
	}
	var want, got struct {
		Results []struct {
			Matches json.RawMessage `json:"matches"`
		} `json:"results"`
	}
	if err := json.Unmarshal(directBatch, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(routedBatch, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("routed batch returned %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if !bytes.Equal(got.Results[i].Matches, want.Results[i].Matches) {
			t.Fatalf("batch result %d diverges:\n%s\nwant %s", i, got.Results[i].Matches, want.Results[i].Matches)
		}
	}

	// Writes route to the primary (and only the primary accepts them).
	code, body := postJSON(t, rt, "/sets", fmt.Sprintf(`{"elements":%s}`, mustJSON(elemsOf(999))))
	if code != http.StatusCreated {
		t.Fatalf("routed write: status %d: %s", code, body)
	}
	code, body = postJSON(t, httptestHandler(followerSrv), "/sets", fmt.Sprintf(`{"elements":%s}`, mustJSON(elemsOf(998))))
	if code != http.StatusForbidden {
		t.Fatalf("follower accepted a write: status %d: %s", code, body)
	}
}

// TestRouterHedgesSlowBackend fronts one artificially slow backend and
// one fast one; hedged reads must come back fast and the hedge counter
// must move.
func TestRouterHedgesSlowBackend(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"matches":[]}`)
	}))
	defer fast.Close()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		time.Sleep(300 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"matches":[]}`)
	}))
	defer slow.Close()

	rt := NewRouter(RouterOptions{
		Primary:    slow.URL, // primary is the slow one; hedging saves the read
		Followers:  []string{fast.URL},
		HedgeDelay: 10 * time.Millisecond,
		ProbeEvery: 10 * time.Millisecond,
	})
	defer rt.Close() //ssrvet:ignore droppederr -- test teardown

	var hedged bool
	for i := 0; i < 10; i++ {
		start := time.Now()
		code, body := postJSON(t, rt, "/query", `{"elements":["a"],"lo":0.5,"hi":1.0}`)
		if code != http.StatusOK {
			t.Fatalf("hedged read %d: status %d: %s", i, code, body)
		}
		// A read served under the slow backend's latency proves the hedge
		// fired and won at least once across the loop.
		if time.Since(start) < 250*time.Millisecond {
			hedged = true
		}
	}
	if !hedged {
		t.Fatal("no hedged read beat the slow backend")
	}
	if rt.hedges.Load() == 0 {
		t.Fatal("hedge counter never moved")
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func joinComma(parts []string) string {
	return string(bytes.Join(func() [][]byte {
		out := make([][]byte, len(parts))
		for i, p := range parts {
			out[i] = []byte(p)
		}
		return out
	}(), []byte(",")))
}

func doPost(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //ssrvet:ignore droppederr -- test client; body fully read
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func httptestHandler(srv *httptest.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r2, err := http.NewRequest(r.Method, srv.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		r2.Header = r.Header
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close() //ssrvet:ignore droppederr -- test proxy; body copied below
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //ssrvet:ignore droppederr -- test proxy; client saw the status already
	})
}

package replica

import (
	"bytes"
	"io"
	"testing"

	ssr "repro"
)

// FuzzWireDecode throws arbitrary bytes at every decoder of the
// replication wire format — the stream frame reader, the typed payload
// parsers, and the resume-token blob — checking the fail-closed
// contract: no panic, no unbounded allocation, and everything that
// decodes re-encodes to bytes the decoder accepts again (round-trip
// stability).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(WireMagic))
	f.Add([]byte(TokenMagic))
	wm := ssr.ReplicationWatermark{SettledSID: 3, PlanGeneration: 1, Ends: []ssr.WALPosition{{Generation: 2, Offset: 99}}}
	var seed []byte
	seed = append(seed, WireMagic...)
	seed = AppendFrame(seed, KindRecords, 1, EncodeRecords(RecordsChunk{Generation: 4, Start: 12, Frames: []byte("xyz")}))
	seed = AppendFrame(seed, KindRotate, 0, EncodeRotate(Rotate{NextGeneration: 5, PlanGeneration: 2}))
	seed = AppendFrame(seed, KindWatermark, 0, EncodeWatermark(wm))
	seed = AppendFrame(seed, KindError, 0, EncodeStreamError(StreamError{Code: ErrCodeInternal, Message: "x"}))
	f.Add(seed)
	f.Add(EncodeTokens(7, wm.Ends))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream decoding: read frames until EOF or a decode error; every
		// frame that comes out must survive its typed parse → re-encode →
		// re-parse round trip.
		fr := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			frame, err := fr.Next()
			if err != nil {
				if err != io.EOF && !bytes.Contains([]byte(err.Error()), []byte("bad stream frame")) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			switch frame.Kind {
			case KindRecords:
				c, err := ParseRecords(frame.Payload)
				if err != nil {
					continue
				}
				c2, err := ParseRecords(EncodeRecords(c))
				if err != nil || c2.Generation != c.Generation || c2.Start != c.Start || !bytes.Equal(c2.Frames, c.Frames) {
					t.Fatalf("records round trip diverged: %+v vs %+v (%v)", c, c2, err)
				}
			case KindRotate:
				rot, err := ParseRotate(frame.Payload)
				if err != nil {
					continue
				}
				if rot2, err := ParseRotate(EncodeRotate(rot)); err != nil || rot2 != rot {
					t.Fatalf("rotate round trip diverged: %+v vs %+v (%v)", rot, rot2, err)
				}
			case KindWatermark:
				w, err := ParseWatermark(frame.Payload)
				if err != nil {
					continue
				}
				w2, err := ParseWatermark(EncodeWatermark(w))
				if err != nil || w2.SettledSID != w.SettledSID || w2.PlanGeneration != w.PlanGeneration || len(w2.Ends) != len(w.Ends) {
					t.Fatalf("watermark round trip diverged: %+v vs %+v (%v)", w, w2, err)
				}
				for i := range w.Ends {
					if w2.Ends[i] != w.Ends[i] {
						t.Fatalf("watermark end %d diverged: %+v vs %+v", i, w.Ends[i], w2.Ends[i])
					}
				}
			case KindError:
				se, err := ParseStreamError(frame.Payload)
				if err != nil {
					continue
				}
				if se2, err := ParseStreamError(EncodeStreamError(se)); err != nil || se2 != se {
					t.Fatalf("stream error round trip diverged: %+v vs %+v (%v)", se, se2, err)
				}
			}
		}
		// Token decoding, same property.
		if gen, pos, err := DecodeTokens(data); err == nil {
			gen2, pos2, err := DecodeTokens(EncodeTokens(gen, pos))
			if err != nil || gen2 != gen || len(pos2) != len(pos) {
				t.Fatalf("token round trip diverged: %d/%v vs %d/%v (%v)", gen, pos, gen2, pos2, err)
			}
			for i := range pos {
				if pos2[i] != pos[i] {
					t.Fatalf("token position %d diverged: %+v vs %+v", i, pos[i], pos2[i])
				}
			}
		}
	})
}

package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions configures NewRouter. Primary is required.
type RouterOptions struct {
	// Primary is the primary's base URL; all writes land here, and it
	// also serves reads.
	Primary string
	// Followers are follower base URLs that share the read load.
	Followers []string
	// Client issues the proxied requests (default http.DefaultClient).
	Client *http.Client
	// HedgeDelay is how long a read may dawdle before a duplicate fires
	// at another ready backend (default 20ms). First answer wins.
	HedgeDelay time.Duration
	// ProbeEvery is the readiness probe period (default 1s).
	ProbeEvery time.Duration
	// Timeout bounds one proxied request (default 30s).
	Timeout time.Duration
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 20 * time.Millisecond
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// backend is one routable node.
type backend struct {
	url     string
	primary bool
	ready   atomic.Bool
	wins    atomic.Uint64
}

// Router is a thin serving tier over one primary and N followers:
// writes forward to the primary, reads scatter over every ready backend
// with hedging — a read that dawdles past HedgeDelay fires a duplicate
// at the next ready backend and the first answer wins. Because followers
// mirror the primary byte for byte and report ready only when caught up,
// either copy's answer is the answer.
type Router struct {
	opt      RouterOptions
	backends []*backend
	mux      *http.ServeMux
	rr       atomic.Uint64
	hedges   atomic.Uint64
	stop     context.CancelFunc
	done     chan struct{}
}

// NewRouter builds the router and starts its readiness prober; Close
// stops it.
func NewRouter(opt RouterOptions) *Router {
	opt = opt.withDefaults()
	rt := &Router{opt: opt, mux: http.NewServeMux()}
	rt.backends = append(rt.backends, &backend{url: strings.TrimRight(opt.Primary, "/"), primary: true})
	for _, u := range opt.Followers {
		rt.backends = append(rt.backends, &backend{url: strings.TrimRight(u, "/")})
	}
	rt.mux.HandleFunc("/router/status", rt.handleStatus)
	rt.mux.HandleFunc("/query/batch", rt.handleBatch)
	for _, p := range []string{"/query", "/query/sid", "/topk", "/plan", "/stats", "/healthz"} {
		rt.mux.HandleFunc(p, rt.handleRead)
	}
	rt.mux.HandleFunc("/sets", rt.handleWrite)
	rt.mux.HandleFunc("/sets/", rt.handleWrite)
	ctx, cancel := context.WithCancel(context.Background())
	rt.stop = cancel
	rt.done = make(chan struct{})
	go rt.probeLoop(ctx)
	return rt
}

// Close stops the readiness prober.
func (rt *Router) Close() error {
	rt.stop()
	<-rt.done
	return nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// probeLoop keeps each backend's readiness current via GET /readyz.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.done)
	probe := func() {
		var wg sync.WaitGroup
		for _, b := range rt.backends {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, rt.opt.ProbeEvery)
				defer cancel()
				req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/readyz", nil)
				if err != nil {
					b.ready.Store(false)
					return
				}
				resp, err := rt.opt.Client.Do(req)
				if err != nil {
					b.ready.Store(false)
					return
				}
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //ssrvet:ignore droppederr -- drain for connection reuse; the status code already decided
				resp.Body.Close()                                    //ssrvet:ignore droppederr -- read-side close of a drained body
				b.ready.Store(resp.StatusCode == http.StatusOK)
			}(b)
		}
		wg.Wait()
	}
	probe()
	ticker := time.NewTicker(rt.opt.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			probe()
		}
	}
}

// readyBackends returns ready backends rotated by a round-robin cursor,
// falling back to every backend when none probes ready (a cold router
// should degrade to trying, not to refusing).
func (rt *Router) readyBackends() []*backend {
	var ready []*backend
	for _, b := range rt.backends {
		if b.ready.Load() {
			ready = append(ready, b)
		}
	}
	if len(ready) == 0 {
		ready = append(ready, rt.backends...)
	}
	shift := int(rt.rr.Add(1)) % len(ready)
	return append(ready[shift:], ready[:shift]...)
}

// proxied is one completed backend exchange, body fully read.
type proxied struct {
	status int
	header http.Header
	body   []byte
	from   *backend
}

// forward performs one exchange against b, buffering the response.
func (rt *Router) forward(ctx context.Context, b *backend, method, path string, body []byte, hdr http.Header) (*proxied, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //ssrvet:ignore droppederr -- body fully read; close failure changes nothing
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return &proxied{status: resp.StatusCode, header: resp.Header, body: data, from: b}, nil
}

func (rt *Router) reply(w http.ResponseWriter, p *proxied) {
	if ct := p.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-SSR-Backend", p.from.url)
	w.WriteHeader(p.status)
	w.Write(p.body) //ssrvet:ignore droppederr -- client went away; nothing to recover
}

// handleRead serves a read with hedging: fire at the first ready
// backend, and if no answer lands within HedgeDelay, fire the same
// request at the next distinct backend; first success wins, the loser's
// context is cancelled.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	order := rt.readyBackends()
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
	defer cancel()

	type attempt struct {
		p   *proxied
		err error
	}
	results := make(chan attempt, len(order))
	launched := 0
	launch := func() {
		b := order[launched]
		launched++
		go func() {
			p, err := rt.forward(ctx, b, r.Method, r.URL.RequestURI(), body, r.Header)
			results <- attempt{p, err}
		}()
	}
	launch()
	hedge := time.NewTimer(rt.opt.HedgeDelay)
	defer hedge.Stop()
	var lastErr error
	var lastBad *proxied
	for pendingAttempts := 1; pendingAttempts > 0; {
		select {
		case <-hedge.C:
			if launched < len(order) {
				rt.hedges.Add(1)
				launch()
				pendingAttempts++
				hedge.Reset(rt.opt.HedgeDelay)
			}
		case a := <-results:
			pendingAttempts--
			if a.err != nil {
				lastErr = a.err
			} else if a.p.status >= 500 {
				lastBad = a.p
			} else {
				a.p.from.wins.Add(1)
				rt.reply(w, a.p)
				return
			}
			// This attempt failed; hedge immediately if anything is left.
			if launched < len(order) {
				launch()
				pendingAttempts++
			}
		case <-ctx.Done():
			httpJSON(w, http.StatusGatewayTimeout, map[string]string{"error": ctx.Err().Error()})
			return
		}
	}
	if lastBad != nil {
		rt.reply(w, lastBad)
		return
	}
	httpJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("no backend answered: %v", lastErr)})
}

// handleWrite forwards mutations to the primary, never hedged: writes
// are not idempotent.
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
	defer cancel()
	p, err := rt.forward(ctx, rt.backends[0], r.Method, r.URL.RequestURI(), body, r.Header)
	if err != nil {
		httpJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	rt.reply(w, p)
}

// batchRequest/batchResponse mirror internal/server's wire shapes:
// entries stay json.RawMessage so the router splits and reassembles
// without re-encoding anyone's numbers, while the batch-wide options
// ride along verbatim to every slice.
type batchRequest struct {
	Queries          []json.RawMessage `json:"queries"`
	Screen           bool              `json:"screen,omitempty"`
	ScreenMargin     float64           `json:"screenMargin,omitempty"`
	Workers          int               `json:"workers,omitempty"`
	AllowApproximate bool              `json:"allowApproximate,omitempty"`
}

type batchResponse struct {
	Results []json.RawMessage `json:"results"`
	Elapsed string            `json:"elapsed"`
}

// handleBatch scatters a batch positionally over the ready backends and
// gathers the answers back in order. Each slice rides one upstream
// /query/batch call; a failed slice fails the whole batch (partial
// answers would silently change semantics).
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var breq batchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		httpJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	order := rt.readyBackends()
	if len(breq.Queries) == 0 || len(order) == 1 {
		rt.handleRead(w, r)
		return
	}
	nslices := len(order)
	if nslices > len(breq.Queries) {
		nslices = len(breq.Queries)
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.Timeout)
	defer cancel()
	start := time.Now()
	results := make([]json.RawMessage, len(breq.Queries))
	errs := make([]error, nslices)
	var wg sync.WaitGroup
	for slice := 0; slice < nslices; slice++ {
		wg.Add(1)
		go func(slice int) {
			defer wg.Done()
			var idx []int
			sub := breq
			sub.Queries = nil
			for i := slice; i < len(breq.Queries); i += nslices {
				idx = append(idx, i)
				sub.Queries = append(sub.Queries, breq.Queries[i])
			}
			payload, err := json.Marshal(sub)
			if err != nil {
				errs[slice] = err
				return
			}
			hdr := http.Header{}
			hdr.Set("Content-Type", "application/json")
			p, err := rt.forward(ctx, order[slice%len(order)], http.MethodPost, "/query/batch", payload, hdr)
			if err != nil {
				errs[slice] = err
				return
			}
			if p.status != http.StatusOK {
				errs[slice] = fmt.Errorf("backend %s: status %d: %s", p.from.url, p.status, bytes.TrimSpace(p.body))
				return
			}
			var bresp batchResponse
			if err := json.Unmarshal(p.body, &bresp); err != nil {
				errs[slice] = err
				return
			}
			if len(bresp.Results) != len(idx) {
				errs[slice] = fmt.Errorf("backend %s: %d results for %d queries", p.from.url, len(bresp.Results), len(idx))
				return
			}
			for j, i := range idx {
				results[i] = bresp.Results[j]
			}
		}(slice)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		httpJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	httpJSON(w, http.StatusOK, batchResponse{Results: results, Elapsed: time.Since(start).String()})
}

// routerStatus is the GET /router/status payload.
type routerStatus struct {
	Backends []routerBackendStatus `json:"backends"`
	Hedges   uint64                `json:"hedges"`
}

type routerBackendStatus struct {
	URL     string `json:"url"`
	Primary bool   `json:"primary"`
	Ready   bool   `json:"ready"`
	Wins    uint64 `json:"wins"`
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := routerStatus{Hedges: rt.hedges.Load()}
	for _, b := range rt.backends {
		st.Backends = append(st.Backends, routerBackendStatus{
			URL: b.url, Primary: b.primary, Ready: b.ready.Load(), Wins: b.wins.Load(),
		})
	}
	httpJSON(w, http.StatusOK, st)
}

package minhash

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/set"
)

// TestConfigNormalize pins the accepted configuration space.
func TestConfigNormalize(t *testing.T) {
	good := []Config{
		{}, {Base: "classic"}, {Base: "superminhash"},
		{BitsPerHash: 1}, {BitsPerHash: 2}, {BitsPerHash: 4},
		{BitsPerHash: 8}, {BitsPerHash: 64},
	}
	for _, c := range good {
		n, err := c.Normalize()
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", c, err)
		}
		if n.Base == "" || n.BitsPerHash == 0 {
			t.Fatalf("Normalize(%+v) left defaults unresolved: %+v", c, n)
		}
	}
	bad := []Config{
		{Base: "minwise"}, {BitsPerHash: 3}, {BitsPerHash: 16}, {BitsPerHash: -1},
	}
	for _, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Fatalf("Normalize(%+v) accepted an invalid config", c)
		}
	}
	if !(Config{}).IsClassic64() || (Config{BitsPerHash: 4}).IsClassic64() ||
		(Config{Base: "superminhash"}).IsClassic64() {
		t.Fatal("IsClassic64 misclassifies")
	}
}

// TestDiffSlotsMatchesNaive checks the word-parallel popcount loop against
// a per-slot extraction for every supported width.
func TestDiffSlotsMatchesNaive(t *testing.T) {
	const k = 100
	rng := splitmix(12345)
	full1 := make(Signature, k)
	full2 := make(Signature, k)
	for i := range full1 {
		full1[i] = rng()
		if i%3 == 0 {
			full2[i] = full1[i] // force agreements
		} else {
			full2[i] = rng()
		}
	}
	for _, bph := range []int{1, 2, 4, 8, 64} {
		words := PackedWords(k, bph)
		a := make([]uint64, words)
		b := make([]uint64, words)
		PackBits(full1, bph, a)
		PackBits(full2, bph, b)
		naive := 0
		for i := 0; i < k; i++ {
			if PackedSlot(a, i, bph) != PackedSlot(b, i, bph) {
				naive++
			}
		}
		if got := diffSlots(a, b, bph); got != naive {
			t.Fatalf("bph=%d: diffSlots=%d, naive=%d", bph, got, naive)
		}
	}
}

// testSets builds two sets with an exact Jaccard of |inter|/|union|.
func testSets(inter, only int) (set.Set, set.Set, float64) {
	a := make([]uint64, 0, inter+only)
	b := make([]uint64, 0, inter+only)
	for i := 0; i < inter; i++ {
		a = append(a, uint64(i))
		b = append(b, uint64(i))
	}
	for i := 0; i < only; i++ {
		a = append(a, uint64(10_000+i))
		b = append(b, uint64(20_000+i))
	}
	return set.New(a...), set.New(b...), float64(inter) / float64(inter+2*only)
}

// TestFamilyEstimateConcentration checks every family's debiased estimate
// lands within its own Eps95 of the true Jaccard on a moderately similar
// pair (a single draw; the bound holds with 95% confidence and the seeds
// are fixed, so this is deterministic).
func TestFamilyEstimateConcentration(t *testing.T) {
	const k = 256
	sa, sb, truth := testSets(60, 20)
	for _, cfg := range []Config{
		{}, {BitsPerHash: 8}, {BitsPerHash: 4}, {BitsPerHash: 2}, {BitsPerHash: 1},
		{Base: "superminhash"}, {Base: "superminhash", BitsPerHash: 4},
	} {
		fam, err := cfg.New(nil, k, 99)
		if err != nil {
			t.Fatal(err)
		}
		wa := make([]uint64, fam.Words())
		wb := make([]uint64, fam.Words())
		fam.Sign(sa, wa)
		fam.Sign(sb, wb)
		est, err := fam.Estimate(wa, wb)
		if err != nil {
			t.Fatal(err)
		}
		eps := fam.Eps95(sa.Len() + sb.Len())
		if math.Abs(est-truth) > eps {
			t.Errorf("%s/b=%d: estimate %.3f is %.3f from truth %.3f, eps95 %.3f",
				fam.Name(), fam.BitsPerHash(), est, math.Abs(est-truth), truth, eps)
		}
		if lo, hi := fam.SimilarityLower(est, eps), fam.SimilarityUpper(est, eps); truth < lo || truth > hi {
			t.Errorf("%s/b=%d: truth %.3f outside [%.3f, %.3f]", fam.Name(), fam.BitsPerHash(), truth, lo, hi)
		}
	}
}

// TestFamilyIdenticalAndDisjoint pins the estimator endpoints: identical
// sets estimate 1, disjoint sets estimate (near) 0 after debiasing.
func TestFamilyIdenticalAndDisjoint(t *testing.T) {
	const k = 128
	same := set.New(1, 2, 3, 4, 5, 6, 7, 8, 9)
	d1 := set.New(100, 101, 102, 103, 104, 105, 106, 107)
	d2 := set.New(200, 201, 202, 203, 204, 205, 206, 207)
	for _, cfg := range []Config{
		{}, {BitsPerHash: 4}, {BitsPerHash: 1},
		{Base: "superminhash"}, {Base: "superminhash", BitsPerHash: 4},
	} {
		fam, err := cfg.New(nil, k, 7)
		if err != nil {
			t.Fatal(err)
		}
		sign := func(s set.Set) []uint64 {
			w := make([]uint64, fam.Words())
			fam.Sign(s, w)
			return w
		}
		if est, _ := fam.Estimate(sign(same), sign(same)); est != 1 {
			t.Errorf("%s/b=%d: identical sets estimate %.3f, want 1", fam.Name(), fam.BitsPerHash(), est)
		}
		est, err := fam.Estimate(sign(d1), sign(d2))
		if err != nil {
			t.Fatal(err)
		}
		if est > fam.Eps95(16) {
			t.Errorf("%s/b=%d: disjoint sets estimate %.3f, want ~0", fam.Name(), fam.BitsPerHash(), est)
		}
	}
}

// TestClassicPackFullAgreesWithSign checks that packing a full classic
// signature and signing the set directly produce the same packed words —
// the equivalence Insert and Build rely on to avoid double signing.
func TestClassicPackFullAgreesWithSign(t *testing.T) {
	const k = 64
	perms, err := NewFamily(k, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := set.New(3, 1, 4, 1, 5, 9, 2, 6)
	full := perms.Sign(s)
	for _, bph := range []int{1, 2, 4, 8, 64} {
		fam, err := Config{BitsPerHash: bph}.New(perms, k, 11)
		if err != nil {
			t.Fatal(err)
		}
		viaPack := make([]uint64, fam.Words())
		if !fam.PackFull(full, viaPack) {
			t.Fatalf("bph=%d: classic PackFull returned false", bph)
		}
		viaSign := make([]uint64, fam.Words())
		fam.Sign(s, viaSign)
		for w := range viaPack {
			if viaPack[w] != viaSign[w] {
				t.Fatalf("bph=%d word %d: PackFull %#x vs Sign %#x", bph, w, viaPack[w], viaSign[w])
			}
		}
	}
}

// TestSuperMinHashDeterministicAndSeedSensitive pins that SuperMinHash
// signing is a pure function of (set, k, seed).
func TestSuperMinHashDeterministicAndSeedSensitive(t *testing.T) {
	s := set.New(10, 20, 30, 40, 50)
	sign := func(seed int64) []uint64 {
		fam, err := Config{Base: "superminhash"}.New(nil, 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]uint64, fam.Words())
		fam.Sign(s, w)
		return w
	}
	a, b, c := sign(5), sign(5), sign(6)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatal("same seed signed differently")
	}
	if !diff {
		t.Fatal("different seeds signed identically")
	}
}

// splitmix is a tiny deterministic generator for test vectors.
func splitmix(seed uint64) func() uint64 {
	return func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// FuzzPackedSignatureRoundTrip fuzzes the pack/extract/compare triangle:
// for arbitrary coordinate values and every width, PackedSlot must return
// each coordinate's low bits, and diffSlots must agree with the per-slot
// comparison.
func FuzzPackedSignatureRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(0xffffffffffffffff), 17)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 1)
	f.Add(uint64(0xdeadbeef), uint64(0xcafe), uint64(42), uint64(7), 100)
	f.Fuzz(func(t *testing.T, s1, s2, s3, s4 uint64, k int) {
		if k < 1 || k > 512 {
			t.Skip()
		}
		rng := splitmix(s1 ^ s2<<1)
		a := make(Signature, k)
		b := make(Signature, k)
		for i := range a {
			a[i] = rng() ^ s3
			if rng()%3 == 0 {
				b[i] = a[i]
			} else {
				b[i] = rng() ^ s4
			}
		}
		for _, bph := range []int{1, 2, 4, 8, 64} {
			words := PackedWords(k, bph)
			pa := make([]uint64, words)
			pb := make([]uint64, words)
			PackBits(a, bph, pa)
			PackBits(b, bph, pb)
			mask := uint64(1)<<uint(bph) - 1
			if bph >= 64 {
				mask = ^uint64(0)
			}
			naive := 0
			for i := 0; i < k; i++ {
				if got, want := PackedSlot(pa, i, bph), a[i]&mask; got != want {
					t.Fatalf("bph=%d slot %d: PackedSlot %#x, want %#x", bph, i, got, want)
				}
				if PackedSlot(pa, i, bph) != PackedSlot(pb, i, bph) {
					naive++
				}
			}
			if got := diffSlots(pa, pb, bph); got != naive {
				t.Fatalf("bph=%d: diffSlots %d, naive %d", bph, got, naive)
			}
			// Packing must be a pure function of the input.
			pa2 := make([]uint64, words)
			PackBits(a, bph, pa2)
			for w := range pa {
				if pa[w] != pa2[w] {
					t.Fatalf("bph=%d word %d: repack differs", bph, w)
				}
			}
		}
	})
}

// TestFamilyEps95Shapes pins the analytic relationships between the
// families' confidence half-widths: packing widens classic's bound by
// 1/(1−2^−b), and SuperMinHash with a small-union hint is at least as
// tight as classic at the same k.
func TestFamilyEps95Shapes(t *testing.T) {
	const k = 128
	classic := func(bph int) Family {
		fam, err := Config{BitsPerHash: bph}.New(nil, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return fam
	}
	base := classic(64).Eps95(0)
	for _, bph := range []int{1, 2, 4, 8} {
		want := base / (1 - math.Pow(2, -float64(bph)))
		if got := classic(bph).Eps95(0); math.Abs(got-want) > 1e-12 {
			t.Errorf("classic b=%d: eps95 %.6f, want %.6f", bph, got, want)
		}
	}
	smh, err := Config{Base: "superminhash"}.New(nil, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := smh.Eps95(64); got > base {
		t.Errorf("superminhash eps95(64) = %.4f exceeds classic %.4f", got, base)
	}
	if smh.Eps95(0) > base+1e-12 {
		t.Errorf("superminhash eps95 without hint should not exceed classic")
	}
}

func ExampleConfig_New() {
	fam, _ := Config{Base: "classic", BitsPerHash: 4}.New(nil, 100, 1)
	fmt.Println(fam.Words(), fam.SignatureBytes())
	// Output: 7 56
}

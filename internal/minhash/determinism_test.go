package minhash

import (
	"math/rand"
	"testing"

	"repro/internal/set"
)

// TestFamilyDeterminism verifies the contract NewFamily documents: the same
// (seed, k) always yields the same family, and therefore bit-identical
// signatures. Snapshot loading and the ssrvet seededrand policy both lean
// on this.
func TestFamilyDeterminism(t *testing.T) {
	const k, seed = 64, 12345
	f1, err := NewFamily(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFamily(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := set.New(3, 1, 4, 15, 92, 65, 35)
	sig1, sig2 := f1.Sign(s), f2.Sign(s)
	for i := range sig1 {
		if sig1[i] != sig2[i] {
			t.Fatalf("coordinate %d differs across same-seed families: %d vs %d", i, sig1[i], sig2[i])
		}
	}

	// A different seed must actually change the family (otherwise the
	// "determinism" above would be vacuous).
	f3, err := NewFamily(k, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	sig3 := f3.Sign(s)
	same := true
	for i := range sig1 {
		if sig1[i] != sig3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("families from different seeds produced identical signatures")
	}
}

// TestNewFamilyRandMatchesNewFamily verifies the injection constructor is
// exactly the seeded one with the rng lifted out.
func TestNewFamilyRandMatchesNewFamily(t *testing.T) {
	const k, seed = 32, 777
	f1, err := NewFamily(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFamilyRand(k, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s := set.New(10, 20, 30, 40)
	sig1, sig2 := f1.Sign(s), f2.Sign(s)
	for i := range sig1 {
		if sig1[i] != sig2[i] {
			t.Fatalf("coordinate %d differs between NewFamily and NewFamilyRand", i)
		}
	}
}

// TestNewFamilyRandNil rejects a nil rng instead of panicking later.
func TestNewFamilyRandNil(t *testing.T) {
	if _, err := NewFamilyRand(8, nil); err == nil {
		t.Error("NewFamilyRand(8, nil) should error")
	}
}

// Signing families: the pluggable signature representation behind the
// index's stored signatures and every similarity ESTIMATE (screening,
// screen-only plans, the tuner's drift sketch). Three representations are
// provided:
//
//   - classic k-min at 64 bits/hash — byte-for-byte the historical
//     Signature layout, the default;
//   - classic k-min packed to b ∈ {1, 2, 4, 8} bits/hash — the b-bit
//     minwise scheme of Li & König (arXiv:0910.3349): only the low b bits
//     of each min-hash are kept, 64/b hashes per machine word, with the
//     unbiased collision-probability estimator
//     ŝ = (â − C) / (1 − C),   C = 2^{-b},
//     where â is the fraction of agreeing b-bit slots; agreement is
//     counted with a word-parallel XOR + shift-fold + popcount loop;
//   - SuperMinHash (Ertl, arXiv:1706.05698, superminhash.go) at the same
//     b choices — a lower-variance drop-in signing family.
//
// The Hamming embedding, filter keys, and therefore EXACT candidate
// generation always run on classic full-width signatures regardless of
// the configured family; the family governs only how signatures are
// stored and how similarities are estimated from them. That split is what
// keeps exact query answers byte-identical across families.
package minhash

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/set"
)

// Family is one signing scheme: it produces a packed []uint64 signature
// per set and estimates Jaccard similarity from two packed signatures.
// Implementations are immutable after construction and safe for
// concurrent use; both parties of an Estimate must come from the same
// family (same base, k, bits, seed).
type Family interface {
	// Name is the family's base scheme: "classic" or "superminhash".
	Name() string
	// K is the number of underlying hash repetitions.
	K() int
	// BitsPerHash is the stored width per hash: 64, 8, 4, 2, or 1.
	BitsPerHash() int
	// Words is the packed signature length in 64-bit words.
	Words() int
	// SignatureBytes is the stored bytes per set (Words · 8).
	SignatureBytes() int
	// Sign computes the packed signature of s into dst (length Words).
	Sign(s set.Set, dst []uint64)
	// PackFull derives the packed signature from a full classic k-min
	// signature, when the family is classic-based. It returns false for
	// families that draw from a different hash stream (SuperMinHash) and
	// must sign from the set itself.
	PackFull(full Signature, dst []uint64) bool
	// Estimate returns the (debiased) Jaccard estimate from two packed
	// signatures, in [0, 1].
	Estimate(a, b []uint64) (float64, error)
	// Eps95 is the two-sided 95%-confidence half-width of Estimate.
	// unionHint is an approximate average union cardinality of compared
	// pairs (≤ 0 when unknown); SuperMinHash uses it to tighten the
	// bound, classic ignores it.
	Eps95(unionHint int) float64
	// SimilarityLower / SimilarityUpper bound the true similarity from an
	// estimate and a half-width, clamped to [0, 1]. Screening keeps a
	// candidate iff [Lower, Upper] intersects the query range.
	SimilarityLower(est, eps float64) float64
	SimilarityUpper(est, eps float64) float64
	// Recoverable reports whether the packed words reproduce the classic
	// truncation Truncate(i, embedBits) for every hash — i.e. whether the
	// Hamming-embedding bits can be re-derived from storage alone.
	Recoverable(embedBits int) bool
	// Trunc returns hash i's low `width` bits from the packed words. Only
	// valid when Recoverable(width) is true.
	Trunc(words []uint64, i, width int) uint64
}

// Config selects a signing family. The zero value is classic at 64
// bits/hash — the historical format.
type Config struct {
	// Base is "", "classic", or "superminhash" ("" = classic).
	Base string
	// BitsPerHash is 0 (= 64), 64, 8, 4, 2, or 1.
	BitsPerHash int
}

// Normalize resolves defaults and validates the selection.
func (c Config) Normalize() (Config, error) {
	switch c.Base {
	case "":
		c.Base = "classic"
	case "classic", "superminhash":
	default:
		return c, fmt.Errorf("minhash: unknown signing family %q (have classic, superminhash)", c.Base)
	}
	switch c.BitsPerHash {
	case 0:
		c.BitsPerHash = 64
	case 1, 2, 4, 8, 64:
	default:
		return c, fmt.Errorf("minhash: bits/hash must be 1, 2, 4, 8, or 64, got %d", c.BitsPerHash)
	}
	return c, nil
}

// IsClassic64 reports whether the (normalized) config is the historical
// classic full-width layout, whose packed signature IS the classic
// Signature.
func (c Config) IsClassic64() bool {
	return (c.Base == "" || c.Base == "classic") && (c.BitsPerHash == 0 || c.BitsPerHash == 64)
}

// New builds the configured family. Classic families reuse perms (the
// embedder's permutation bank) so stored values agree bit-for-bit with
// the embedding pipeline; perms may be nil for superminhash.
func (c Config) New(perms *Perms, k int, seed int64) (Family, error) {
	c, err := c.Normalize()
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("minhash: k must be >= 1, got %d", k)
	}
	switch c.Base {
	case "classic":
		if perms == nil {
			if perms, err = NewFamily(k, seed); err != nil {
				return nil, err
			}
		}
		if perms.K() != k {
			return nil, fmt.Errorf("minhash: perms bank has k=%d, family wants k=%d", perms.K(), k)
		}
		return &classicFamily{perms: perms, k: k, bph: c.BitsPerHash, words: PackedWords(k, c.BitsPerHash)}, nil
	case "superminhash":
		return newSuperMinHash(k, c.BitsPerHash, seed), nil
	}
	return nil, fmt.Errorf("minhash: unknown signing family %q", c.Base)
}

// PackedWords is the packed length in 64-bit words of k hashes at bph
// bits each.
func PackedWords(k, bph int) int {
	if bph >= 64 {
		return k
	}
	per := 64 / bph
	return (k + per - 1) / per
}

// PackBits packs the low bph bits of each full-signature coordinate into
// dst, 64/bph coordinates per word, coordinate i at bit (i mod per)·bph
// of word i/per. Tail slots of the last word are zero, so two packed
// signatures always agree on them.
func PackBits(full Signature, bph int, dst []uint64) {
	per := 64 / bph
	mask := uint64(1)<<uint(bph) - 1
	for w := range dst {
		dst[w] = 0
	}
	for i, v := range full {
		dst[i/per] |= (v & mask) << (uint(i%per) * uint(bph))
	}
}

// PackedSlot extracts coordinate i's bph-bit value from packed words.
func PackedSlot(words []uint64, i, bph int) uint64 {
	if bph >= 64 {
		return words[i]
	}
	per := 64 / bph
	mask := uint64(1)<<uint(bph) - 1
	return (words[i/per] >> (uint(i%per) * uint(bph))) & mask
}

// diffSlots counts the coordinates on which two packed signatures differ,
// word-parallel: per word, XOR makes differing slots non-zero, an OR-fold
// of right shifts collapses each slot to its low bit, and a popcount of
// the slot-mask counts them. Tail slots are zero on both sides (PackBits,
// Sign), so they never count as differing.
func diffSlots(a, b []uint64, bph int) int {
	d := 0
	switch bph {
	case 1:
		for i := range a {
			d += bits.OnesCount64(a[i] ^ b[i])
		}
	case 2:
		const m = 0x5555555555555555
		for i := range a {
			x := a[i] ^ b[i]
			x |= x >> 1
			d += bits.OnesCount64(x & m)
		}
	case 4:
		const m = 0x1111111111111111
		for i := range a {
			x := a[i] ^ b[i]
			x |= x >> 2
			x |= x >> 1
			d += bits.OnesCount64(x & m)
		}
	case 8:
		const m = 0x0101010101010101
		for i := range a {
			x := a[i] ^ b[i]
			x |= x >> 4
			x |= x >> 2
			x |= x >> 1
			d += bits.OnesCount64(x & m)
		}
	default: // 64: whole-word compare, the classic layout
		for i := range a {
			if a[i] != b[i] {
				d++
			}
		}
	}
	return d
}

// packedEstimate turns an agreement fraction into a debiased similarity
// estimate: at width bph an unrelated pair of hashes still agrees with
// probability C = 2^{-bph}, so E[â] = s + (1−s)·C and the unbiased
// estimator is ŝ = (â − C)/(1 − C), clamped to [0, 1] (Li & König).
func packedEstimate(agree, k, bph int) float64 {
	ahat := float64(agree) / float64(k)
	if bph >= 64 {
		return ahat
	}
	c := math.Pow(2, -float64(bph))
	s := (ahat - c) / (1 - c)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// eps95Base is the classic two-sided Chernoff 95% half-width at k
// repetitions: the smallest eps with 2·exp(−2k·eps²) ≤ 0.05. Must stay
// identical to core's historical ChernoffEps95.
func eps95Base(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Sqrt(math.Log(2/0.05) / (2 * float64(k)))
}

// packedEps95 widens a base half-width for the debiasing division: the
// estimator noise on â maps to noise/(1−C) on ŝ.
func packedEps95(eps float64, bph int) float64 {
	if bph >= 64 {
		return eps
	}
	return eps / (1 - math.Pow(2, -float64(bph)))
}

// clamp01 keeps similarity bounds on the Jaccard scale.
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// classicFamily stores classic k-min hashes, optionally packed to bph
// bits. At bph = 64 the packed signature IS the historical Signature.
type classicFamily struct {
	perms *Perms
	k     int
	bph   int
	words int
}

func (f *classicFamily) Name() string        { return "classic" }
func (f *classicFamily) K() int              { return f.k }
func (f *classicFamily) BitsPerHash() int    { return f.bph }
func (f *classicFamily) Words() int          { return f.words }
func (f *classicFamily) SignatureBytes() int { return f.words * 8 }

func (f *classicFamily) Sign(s set.Set, dst []uint64) {
	if f.bph >= 64 {
		f.perms.SignInto(s, Signature(dst))
		return
	}
	full := getFullScratch(f.k)
	f.perms.SignInto(s, full.sig)
	PackBits(full.sig, f.bph, dst)
	putFullScratch(full)
}

func (f *classicFamily) PackFull(full Signature, dst []uint64) bool {
	if f.bph >= 64 {
		copy(dst, full)
		return true
	}
	PackBits(full, f.bph, dst)
	return true
}

func (f *classicFamily) Estimate(a, b []uint64) (float64, error) {
	if err := checkWords(a, b, f.words); err != nil {
		return 0, err
	}
	return packedEstimate(f.k-diffSlots(a, b, f.bph), f.k, f.bph), nil
}

func (f *classicFamily) Eps95(unionHint int) float64 {
	return packedEps95(eps95Base(f.k), f.bph)
}

func (f *classicFamily) SimilarityLower(est, eps float64) float64 { return clamp01(est - eps) }
func (f *classicFamily) SimilarityUpper(est, eps float64) float64 { return clamp01(est + eps) }

func (f *classicFamily) Recoverable(embedBits int) bool {
	return f.bph >= 64 || f.bph >= embedBits
}

func (f *classicFamily) Trunc(words []uint64, i, width int) uint64 {
	return PackedSlot(words, i, f.bph) & (uint64(1)<<uint(width) - 1)
}

// checkWords validates packed operand lengths the way Estimate validates
// full signatures.
func checkWords(a, b []uint64, words int) error {
	if len(a) != len(b) {
		return fmt.Errorf("minhash: packed signature lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) != words {
		return fmt.Errorf("minhash: packed signature has %d words, family wants %d", len(a), words)
	}
	return nil
}

// SuperMinHash (Ertl, arXiv:1706.05698): a minwise-independent signing
// family with strictly lower estimator variance than classic k-min for
// any union size ≥ 2, at the same signature length. Each element runs a
// partial Fisher–Yates shuffle over the m signature slots driven by its
// own seeded PRNG stream, assigning slot p[j] the value r_j + j (r_j
// uniform in [0, 1)); a slot's signature value is the minimum over all
// elements. Coupling the rank j with the fractional draw makes the m
// slot values negatively correlated, which is where the variance saving
// over m independent minima comes from.
//
// Values are encoded as integers — word = j<<32 | r32 with r32 the
// 32-bit fractional draw — so integer comparison IS value comparison,
// the empty-set signature is all-ones (colliding only with another
// empty set, like classic), and the low bits are uniform, making the
// b-bit packing of family.go apply unchanged. The per-element PRNG
// depends only on (family seed, element id), so signatures are
// independent of element order and insertion history — the determinism
// contract every signing path relies on.
package minhash

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/set"
)

// smhInfinity is the encoded "no value yet" sentinel; larger than every
// real encoded value (j < 2^32 − 1 for any practical m).
const smhInfinity = ^uint64(0)

// superMinHash is the SuperMinHash family, optionally packed to bph
// bits/hash via the shared codec.
type superMinHash struct {
	k     int
	bph   int
	words int
	seed  uint64
	pool  sync.Pool // *smhScratch
}

// smhScratch is one signing workspace. q marks which element (by the
// monotone counter i) last initialized a p/h slot, so p needs no O(m)
// reset per element and h no O(m) reset per set beyond the explicit one.
type smhScratch struct {
	h []uint64 // encoded slot values, smhInfinity = unset
	p []int32  // partial Fisher–Yates permutation
	q []int64  // element counter that initialized p[slot]
	b []int32  // histogram of floor(h) values, for early termination
	i int64    // monotone element counter (never reset across sets)
}

func newSuperMinHash(k, bph int, seed int64) *superMinHash {
	f := &superMinHash{
		k:     k,
		bph:   bph,
		words: PackedWords(k, bph),
		// Decorrelate from the classic permutation bank built off the
		// same build seed.
		seed: splitmix64(uint64(seed) ^ 0x736d685f66616d31), // "smh_fam1"
	}
	f.pool.New = func() any {
		return &smhScratch{
			h: make([]uint64, k),
			p: make([]int32, k),
			q: make([]int64, k),
			b: make([]int32, k),
		}
	}
	return f
}

func (f *superMinHash) Name() string        { return "superminhash" }
func (f *superMinHash) K() int              { return f.k }
func (f *superMinHash) BitsPerHash() int    { return f.bph }
func (f *superMinHash) Words() int          { return f.words }
func (f *superMinHash) SignatureBytes() int { return f.words * 8 }

// smhRNG is a splitmix64 stream seeded per element.
type smhRNG struct{ s uint64 }

func (g *smhRNG) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) by fixed-point multiplication
// (deterministic, no rejection loop; the 2^-64 bias is irrelevant here).
func (g *smhRNG) intn(n int) int {
	hi, _ := bits.Mul64(g.next(), uint64(n))
	return int(hi)
}

// Sign computes the packed SuperMinHash signature of s into dst
// (length Words). Ertl's Algorithm 1 with integer-encoded values.
func (f *superMinHash) Sign(s set.Set, dst []uint64) {
	sc := f.pool.Get().(*smhScratch)
	m := f.k
	for j := 0; j < m; j++ {
		sc.h[j] = smhInfinity
		sc.b[j] = 0
	}
	sc.b[m-1] = int32(m)
	a := m - 1
	for _, e := range s.Elems() {
		sc.i++
		i := sc.i
		rng := smhRNG{s: f.seed ^ splitmix64(uint64(e))}
		for j := 0; j <= a; j++ {
			r32 := uint64(uint32(rng.next()))
			x := j + rng.intn(m-j)
			if sc.q[j] != i {
				sc.q[j] = i
				sc.p[j] = int32(j)
			}
			if sc.q[x] != i {
				sc.q[x] = i
				sc.p[x] = int32(x)
			}
			sc.p[j], sc.p[x] = sc.p[x], sc.p[j]
			slot := sc.p[j]
			val := uint64(j)<<32 | r32
			if val < sc.h[slot] {
				jp := int(sc.h[slot] >> 32)
				if jp > m-1 {
					jp = m - 1
				}
				sc.h[slot] = val
				if j < jp {
					sc.b[jp]--
					sc.b[j]++
					for a > 0 && sc.b[a] == 0 {
						a--
					}
				}
			}
		}
	}
	if f.bph >= 64 {
		copy(dst, sc.h)
	} else {
		PackBits(Signature(sc.h), f.bph, dst)
	}
	f.pool.Put(sc)
}

// PackFull is false: SuperMinHash values come from a different stream
// than the classic permutation bank, so packing a classic signature
// cannot produce them.
func (f *superMinHash) PackFull(full Signature, dst []uint64) bool { return false }

func (f *superMinHash) Estimate(a, b []uint64) (float64, error) {
	if err := checkWords(a, b, f.words); err != nil {
		return 0, err
	}
	return packedEstimate(f.k-diffSlots(a, b, f.bph), f.k, f.bph), nil
}

// Eps95 tightens the classic Chernoff half-width by the family's
// variance reduction. Ertl shows Var_smh/Var_classic < 1 for any union
// size u ≥ 2, vanishing as u grows past m; we approximate the ratio with
// the finite-population-correction shape 1 − (m−1)/u, floored at 1/4 (a
// conservative cap on the saving, never claiming better than half the
// classic width) and capped at 1. With no hint the classic width is
// used unchanged — never anti-conservative.
func (f *superMinHash) Eps95(unionHint int) float64 {
	eps := eps95Base(f.k)
	if unionHint > 0 {
		ratio := 1 - float64(f.k-1)/float64(unionHint)
		if ratio < 0.25 {
			ratio = 0.25
		}
		if ratio > 1 {
			ratio = 1
		}
		eps *= math.Sqrt(ratio)
	}
	return packedEps95(eps, f.bph)
}

func (f *superMinHash) SimilarityLower(est, eps float64) float64 { return clamp01(est - eps) }
func (f *superMinHash) SimilarityUpper(est, eps float64) float64 { return clamp01(est + eps) }

// Recoverable is false: signature words are (rank, fraction) pairs, not
// classic min-hashes, so the Hamming-embedding bits cannot be re-derived
// from storage; callers re-sign classic from the stored set instead.
func (f *superMinHash) Recoverable(embedBits int) bool { return false }

func (f *superMinHash) Trunc(words []uint64, i, width int) uint64 {
	panic("minhash: SuperMinHash signatures cannot reproduce embedding bits; check Recoverable first")
}

// fullScratch pools full-width classic signatures for families that pack
// at sign time.
type fullScratch struct{ sig Signature }

var fullPool sync.Pool

func getFullScratch(k int) *fullScratch {
	if v := fullPool.Get(); v != nil {
		fs := v.(*fullScratch)
		if len(fs.sig) == k {
			return fs
		}
	}
	return &fullScratch{sig: make(Signature, k)}
}

func putFullScratch(fs *fullScratch) { fullPool.Put(fs) }

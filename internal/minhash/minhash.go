// Package minhash implements the min-wise independent permutation embedding
// of Section 3.1: each set is represented by the vector of its minimum hash
// values under k independent (approximately min-wise) permutations. For two
// sets A and B, Pr[min π(A) = min π(B)] = sim(A, B), so the fraction of
// agreeing signature coordinates is an unbiased estimator of Jaccard
// similarity.
//
// As in the paper's practice, the random permutations are approximated by
// hashing: each permutation is a degree-1 polynomial over the Mersenne prime
// field GF(2^61 - 1) applied to a well-mixed image of the element id. Values
// are then truncated to a configurable number of bits b for the Hamming
// embedding stage.
package minhash

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/set"
)

// mersenne61 is the modulus of the permutation field.
const mersenne61 = (1 << 61) - 1

// Perms is a bank of k hash functions approximating min-wise independent
// permutations — the classic k-min signing primitive. A Perms is immutable
// after construction and safe for concurrent use. Both parties of a
// comparison must use the same Perms (same seed, same k).
//
// Perms was named Family before the signing-family interface (family.go)
// took that name; the constructors keep their historical names.
type Perms struct {
	a, b []uint64 // per-permutation coefficients, a != 0
	k    int
}

// NewFamily creates a bank of k permutations from a seed. The same
// (seed, k) always yields the same bank.
func NewFamily(k int, seed int64) (*Perms, error) {
	return NewFamilyRand(k, rand.New(rand.NewSource(seed)))
}

// NewFamilyRand creates a bank of k permutations drawing coefficients
// from rng. It is the injection point for callers that thread one random
// stream through a whole pipeline; rng is consumed (k·2 draws) and not
// retained. Two rngs in the same state yield identical banks.
func NewFamilyRand(k int, rng *rand.Rand) (*Perms, error) {
	if k < 1 {
		return nil, fmt.Errorf("minhash: k must be >= 1, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("minhash: nil rng")
	}
	f := &Perms{a: make([]uint64, k), b: make([]uint64, k), k: k}
	for i := 0; i < k; i++ {
		a := uint64(rng.Int63n(mersenne61-1)) + 1 // a in [1, p-1]
		b := uint64(rng.Int63n(mersenne61))       // b in [0, p-1]
		f.a[i], f.b[i] = a, b
	}
	return f, nil
}

// K returns the number of permutations (the signature length).
func (f *Perms) K() int { return f.k }

// splitmix64 finalizes element ids into well-distributed field inputs.
// Dense dictionary ids (0, 1, 2, ...) would otherwise correlate across the
// degree-1 permutations.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mulmod61 computes a*b mod 2^61-1 using a 128-bit intermediate product.
// The 128-bit value hi·2^64 + lo is folded with 2^64 ≡ 8 (mod 2^61-1).
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	res := (lo & mersenne61) + (lo >> 61) + ((hi << 3) & mersenne61) + (hi >> 58)
	for res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

// perm applies permutation i to element e.
func (f *Perms) perm(i int, e set.Elem) uint64 {
	x := splitmix64(uint64(e)) % mersenne61
	v := mulmod61(f.a[i], x) + f.b[i]
	if v >= mersenne61 {
		v -= mersenne61
	}
	return v
}

// Signature is the min-hash signature of a set: Signature[i] = min π_i(S).
// It is the V-space vector of Section 3.1.
type Signature []uint64

// Sign computes the signature of s. An empty set gets the all-max signature,
// which collides with nothing but another empty set.
func (f *Perms) Sign(s set.Set) Signature {
	sig := make(Signature, f.k)
	f.SignInto(s, sig)
	return sig
}

// SignInto computes the signature of s into dst, which must have length k.
// It performs no allocations, so hot paths (build workers, query signing)
// can reuse one buffer per worker. The result is identical to Sign.
func (f *Perms) SignInto(s set.Set, dst Signature) {
	if len(dst) != f.k {
		panic(fmt.Sprintf("minhash: SignInto dst has %d coordinates, family has k=%d", len(dst), f.k))
	}
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	for _, e := range s.Elems() {
		x := splitmix64(uint64(e)) % mersenne61
		for i := 0; i < f.k; i++ {
			v := mulmod61(f.a[i], x) + f.b[i]
			if v >= mersenne61 {
				v -= mersenne61
			}
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
}

// Estimate returns the fraction of coordinates on which the two signatures
// agree — the unbiased Jaccard estimator of Section 3.1. Signatures must
// come from the same Family.
func Estimate(a, b Signature) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("minhash: signature lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("minhash: empty signatures")
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a)), nil
}

// Truncate returns the low b bits of coordinate i, the fixed-precision
// representation fed to the error-correcting code. Truncation can only merge
// distinct values, so it biases the agreement rate up by about 2^-b; with
// the default b the effect is far below the sampling noise of k repetitions.
func (s Signature) Truncate(i, b int) uint64 {
	return s[i] & ((1 << uint(b)) - 1)
}

// AgreeBound returns the two-sided Chernoff bound on the probability that
// the estimate from k coordinates deviates from the true similarity by more
// than eps (used to size k): 2·exp(-2·k·eps²).
func AgreeBound(k int, eps float64) float64 {
	return 2 * math.Exp(-2*float64(k)*eps*eps)
}

package minhash

import (
	"testing"

	"repro/internal/set"
)

// TestSignIntoMatchesSign checks the allocation-free variant is
// coordinate-identical to Sign for assorted sets.
func TestSignIntoMatchesSign(t *testing.T) {
	f, err := NewFamily(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	sets := []set.Set{
		set.New(1, 5, 9, 200),
		set.New(3),
		set.New(),
		set.New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
	}
	dst := make(Signature, 32)
	for _, s := range sets {
		want := f.Sign(s)
		f.SignInto(s, dst)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("set %v coordinate %d: SignInto %d, Sign %d", s, i, dst[i], want[i])
			}
		}
	}
}

// TestSignIntoReuse checks a reused destination is fully overwritten —
// stale coordinates from a previous set must not leak through.
func TestSignIntoReuse(t *testing.T) {
	f, err := NewFamily(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Signature, 16)
	f.SignInto(set.New(1, 2, 3), dst)
	f.SignInto(set.New(900, 901), dst)
	want := f.Sign(set.New(900, 901))
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("reused dst coordinate %d: %d, want %d", i, dst[i], want[i])
		}
	}
}

// TestSignIntoWrongLengthPanics pins the contract: dst must be exactly k
// coordinates.
func TestSignIntoWrongLengthPanics(t *testing.T) {
	f, err := NewFamily(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short destination accepted")
		}
	}()
	f.SignInto(set.New(1), make(Signature, 7))
}

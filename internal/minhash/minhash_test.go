package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/set"
)

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewFamily(-5, 1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestFamilyDeterministic(t *testing.T) {
	f1, _ := NewFamily(16, 99)
	f2, _ := NewFamily(16, 99)
	s := set.New(1, 5, 9, 200)
	a, b := f1.Sign(s), f2.Sign(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different signature at %d", i)
		}
	}
	f3, _ := NewFamily(16, 100)
	c := f3.Sign(s)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical signatures")
	}
}

func TestSignIdenticalSets(t *testing.T) {
	f, _ := NewFamily(32, 7)
	a := f.Sign(set.New(3, 1, 4, 1, 5))
	b := f.Sign(set.New(5, 4, 3, 1))
	est, err := Estimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Errorf("identical sets estimate = %g, want 1", est)
	}
}

func TestSignDisjointSets(t *testing.T) {
	f, _ := NewFamily(64, 7)
	a := f.Sign(set.New(1, 2, 3, 4, 5))
	b := f.Sign(set.New(100, 200, 300, 400))
	est, err := Estimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint small sets can still collide per coordinate with tiny
	// probability; allow a couple of agreements.
	if est > 0.1 {
		t.Errorf("disjoint sets estimate = %g, want ~0", est)
	}
}

func TestEmptySetSignature(t *testing.T) {
	f, _ := NewFamily(8, 3)
	sig := f.Sign(set.Set{})
	for i, v := range sig {
		if v != ^uint64(0) {
			t.Errorf("coordinate %d = %d, want all-max", i, v)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(Signature{1, 2}, Signature{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Estimate(Signature{}, Signature{}); err == nil {
		t.Error("empty signatures accepted")
	}
}

// TestUnbiasedEstimator verifies the core Section 3.1 claim: the expected
// agreement fraction equals the Jaccard similarity. We average over many
// independent families to beat sampling noise.
func TestUnbiasedEstimator(t *testing.T) {
	cases := []struct {
		a, b []set.Elem
	}{
		{[]set.Elem{1, 2, 3, 4}, []set.Elem{3, 4, 5, 6}},                                   // sim 1/3
		{[]set.Elem{1, 2, 3, 4, 5, 6, 7, 8, 9}, []set.Elem{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}, // 0.9
		{[]set.Elem{10, 20}, []set.Elem{20, 30, 40}},                                       // 0.25
	}
	for _, tc := range cases {
		sa, sb := set.New(tc.a...), set.New(tc.b...)
		want := sa.Jaccard(sb)
		total, n := 0.0, 0
		for seed := int64(0); seed < 40; seed++ {
			f, _ := NewFamily(50, seed)
			est, err := Estimate(f.Sign(sa), f.Sign(sb))
			if err != nil {
				t.Fatal(err)
			}
			total += est
			n++
		}
		got := total / float64(n)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("mean estimate %.3f, true similarity %.3f", got, want)
		}
	}
}

// TestEstimatorConcentration checks the Chernoff-style concentration: with
// k = 400 coordinates, estimates should rarely deviate more than 0.15.
func TestEstimatorConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f, _ := NewFamily(400, 5)
	bad := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		a := randomElems(rng, 50)
		b := mutate(rng, a, 15)
		sa, sb := set.New(a...), set.New(b...)
		want := sa.Jaccard(sb)
		est, err := Estimate(f.Sign(sa), f.Sign(sb))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-want) > 0.15 {
			bad++
		}
	}
	if bad > 2 {
		t.Errorf("%d/%d estimates deviated by more than 0.15", bad, trials)
	}
}

func randomElems(rng *rand.Rand, n int) []set.Elem {
	out := make([]set.Elem, n)
	for i := range out {
		out[i] = set.Elem(rng.Intn(10000))
	}
	return out
}

func mutate(rng *rand.Rand, src []set.Elem, k int) []set.Elem {
	out := append([]set.Elem(nil), src...)
	for i := 0; i < k && i < len(out); i++ {
		out[rng.Intn(len(out))] = set.Elem(rng.Intn(10000))
	}
	return out
}

func TestTruncate(t *testing.T) {
	sig := Signature{0xABCD, 0xFF00}
	if got := sig.Truncate(0, 8); got != 0xCD {
		t.Errorf("Truncate(0,8) = %#x, want 0xCD", got)
	}
	if got := sig.Truncate(1, 8); got != 0x00 {
		t.Errorf("Truncate(1,8) = %#x, want 0", got)
	}
	if got := sig.Truncate(0, 16); got != 0xABCD {
		t.Errorf("Truncate(0,16) = %#x", got)
	}
}

func TestAgreeBound(t *testing.T) {
	// Bound decreases with k and eps, stays in (0, 2].
	if AgreeBound(100, 0.1) <= AgreeBound(200, 0.1) {
		t.Error("bound not decreasing in k")
	}
	if AgreeBound(100, 0.1) <= AgreeBound(100, 0.2) {
		t.Error("bound not decreasing in eps")
	}
	if b := AgreeBound(1, 0.0); b != 2 {
		t.Errorf("AgreeBound(1,0) = %g, want 2", b)
	}
}

func TestMulmod61(t *testing.T) {
	// Against big-number reference for values near the modulus.
	const p = uint64(mersenne61)
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {p - 1, p - 1}, {p - 1, 2}, {123456789, 987654321},
		{1 << 60, 1 << 60}, {p - 2, p - 3},
	}
	for _, c := range cases {
		got := mulmod61(c[0], c[1])
		want := refMulMod(c[0], c[1], p)
		if got != want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
	f := func(a, b uint64) bool {
		a %= p
		b %= p
		return mulmod61(a, b) == refMulMod(a, b, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// refMulMod is a slow but obviously correct modular multiply (Russian
// peasant / double-and-add).
func refMulMod(a, b, m uint64) uint64 {
	var res uint64
	a %= m
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % m
		}
		a = (a * 2) % m
		b >>= 1
	}
	return res
}

func TestPermutationIsBijectiveOnSample(t *testing.T) {
	// a != 0 mod p guarantees injectivity of x → ax+b; verify no
	// collisions across a sample of distinct inputs.
	f, _ := NewFamily(4, 123)
	seen := make(map[uint64]set.Elem)
	for e := set.Elem(0); e < 5000; e++ {
		v := f.perm(0, e)
		if prev, dup := seen[v]; dup {
			t.Fatalf("perm collision: elems %d and %d both map to %d", prev, e, v)
		}
		seen[v] = e
	}
}

func TestSignMatchesPerCoordinateMin(t *testing.T) {
	f, _ := NewFamily(8, 55)
	s := set.New(10, 20, 30, 40, 50)
	sig := f.Sign(s)
	for i := 0; i < f.K(); i++ {
		min := ^uint64(0)
		for _, e := range s.Elems() {
			if v := f.perm(i, e); v < min {
				min = v
			}
		}
		if sig[i] != min {
			t.Errorf("coordinate %d: Sign %d != min %d", i, sig[i], min)
		}
	}
}

// Package scan implements the sequential-scan baseline of Section 6: read
// the entire collection sequentially, evaluate the exact similarity of
// every set with the query, and keep those inside the target range. It is
// both the performance comparator of Figure 7 and the ground-truth oracle
// for recall/precision measurements.
package scan

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/set"
	"repro/internal/storage"
)

// Stats reports the cost of one scan query.
type Stats struct {
	// IO counts the sequential pages read.
	IO storage.Counter
	// CPU is the measured processor time (similarity evaluations).
	CPU time.Duration
	// Examined is the number of sets whose similarity was computed.
	Examined int
}

// SimIOTime returns the simulated I/O time under model m.
func (st *Stats) SimIOTime(m storage.CostModel) time.Duration {
	return m.Time(st.IO.Seq(), st.IO.Rand())
}

// Query scans the whole store and returns the exact answer to
// (q, [s1, s2]), sorted by descending similarity then ascending sid.
func Query(store *storage.SetStore, q set.Set, s1, s2 float64) ([]core.Match, Stats, error) {
	var stats Stats
	start := time.Now()
	var matches []core.Match
	err := store.Scan(&stats.IO, func(sid storage.SID, s set.Set) bool {
		stats.Examined++
		sim := q.Jaccard(s)
		if sim >= s1 && sim <= s2 {
			matches = append(matches, core.Match{SID: sid, Similarity: sim})
		}
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].SID < matches[j].SID
	})
	stats.CPU = time.Since(start)
	return matches, stats, nil
}

package scan

import (
	"testing"

	"repro/internal/set"
	"repro/internal/storage"
)

func buildStore(sets []set.Set) *storage.SetStore {
	st := storage.NewSetStore(128)
	for _, s := range sets {
		st.Append(s)
	}
	return st
}

func TestQueryExactness(t *testing.T) {
	sets := []set.Set{
		set.New(1, 2, 3),       // sim 1 with query
		set.New(1, 2, 4),       // sim 0.5
		set.New(100, 200, 300), // sim 0
		set.New(1, 2, 3, 4),    // sim 0.75
	}
	st := buildStore(sets)
	q := set.New(1, 2, 3)
	matches, stats, err := Query(st, q, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("got %d matches, want 3", len(matches))
	}
	// Sorted by descending similarity.
	if matches[0].SID != 0 || matches[0].Similarity != 1 {
		t.Errorf("first match = %+v", matches[0])
	}
	if matches[1].SID != 3 || matches[1].Similarity != 0.75 {
		t.Errorf("second match = %+v", matches[1])
	}
	if matches[2].SID != 1 || matches[2].Similarity != 0.5 {
		t.Errorf("third match = %+v", matches[2])
	}
	if stats.Examined != 4 {
		t.Errorf("Examined = %d", stats.Examined)
	}
}

func TestQueryIOFullSequentialRead(t *testing.T) {
	sets := make([]set.Set, 200)
	for i := range sets {
		sets[i] = set.New(set.Elem(i), set.Elem(i+1), set.Elem(i+2))
	}
	st := buildStore(sets)
	_, stats, err := Query(st, set.New(1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IO.Seq() != st.NumPages() {
		t.Errorf("scanned %d pages, store has %d", stats.IO.Seq(), st.NumPages())
	}
	if stats.IO.Rand() != 0 {
		t.Errorf("sequential scan charged %d random reads", stats.IO.Rand())
	}
	if stats.SimIOTime(storage.DefaultCostModel()) <= 0 {
		t.Error("no simulated I/O time")
	}
}

func TestQueryEmptyRange(t *testing.T) {
	st := buildStore([]set.Set{set.New(1, 2), set.New(3, 4)})
	matches, _, err := Query(st, set.New(1, 2), 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("got %d matches in an empty band", len(matches))
	}
}

func TestTieBreakBySID(t *testing.T) {
	st := buildStore([]set.Set{set.New(1, 2), set.New(1, 2), set.New(1, 2)})
	matches, _, err := Query(st, set.New(1, 2), 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range matches {
		if m.SID != uint32(i) {
			t.Errorf("tie order broken: %v", matches)
			break
		}
	}
}

package hashtable

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func newTable(t *testing.T, opt Options) *Table {
	t.Helper()
	tab, err := New(storage.NewPager(256), opt)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestInsertProbeExact(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 100})
	tab.Insert(111, 1)
	tab.Insert(222, 2)
	tab.Insert(111, 3)
	got := tab.Probe(111, nil, nil)
	if len(got) != 2 {
		t.Fatalf("Probe(111) = %v", got)
	}
	seen := map[storage.SID]bool{}
	for _, sid := range got {
		seen[sid] = true
	}
	if !seen[1] || !seen[3] || seen[2] {
		t.Errorf("Probe(111) = %v, want sids 1 and 3", got)
	}
	if tab.Entries() != 3 {
		t.Errorf("Entries = %d", tab.Entries())
	}
}

func TestProbeMissingKey(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 10})
	tab.Insert(5, 50)
	if got := tab.Probe(999999, nil, nil); len(got) != 0 {
		// A different key can share a bucket only in WholeBucket mode.
		t.Errorf("ExactKey probe of absent key returned %v", got)
	}
}

func TestWholeBucketMode(t *testing.T) {
	// Force a single bucket so everything shares it.
	tab := newTable(t, Options{Buckets: 1, Mode: WholeBucket})
	tab.Insert(1, 10)
	tab.Insert(2, 20)
	got := tab.Probe(3, nil, nil)
	if len(got) != 2 {
		t.Errorf("WholeBucket probe = %v, want both sids", got)
	}
}

func TestOverflowChains(t *testing.T) {
	// One bucket, many entries: must chain overflow pages and return all.
	tab := newTable(t, Options{Buckets: 1})
	const n = 500
	for i := 0; i < n; i++ {
		tab.Insert(77, storage.SID(i))
	}
	var io storage.Counter
	got := tab.Probe(77, &io, nil)
	if len(got) != n {
		t.Fatalf("probe returned %d of %d entries", len(got), n)
	}
	perPage := (256 - pageHeader) / entrySize
	wantPages := int64((n + perPage - 1) / perPage)
	if io.Rand() != wantPages {
		t.Errorf("charged %d page reads, want %d", io.Rand(), wantPages)
	}
}

func TestBucketsSizedFromExpectedEntries(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 10000})
	perPage := (256 - pageHeader) / entrySize
	want := (10000 + perPage - 1) / perPage
	if tab.Buckets() != want {
		t.Errorf("Buckets = %d, want %d", tab.Buckets(), want)
	}
}

func TestDefaultBuckets(t *testing.T) {
	tab := newTable(t, Options{})
	if tab.Buckets() != 64 {
		t.Errorf("default Buckets = %d", tab.Buckets())
	}
}

func TestPageTooSmall(t *testing.T) {
	if _, err := New(storage.NewPager(8), Options{}); err == nil {
		t.Error("8-byte pages accepted")
	}
}

func TestEntryEncodingRoundTrip(t *testing.T) {
	p := make([]byte, 256)
	setPageEntry(p, 0, ^uint64(0), ^uint32(0))
	setPageEntry(p, 1, 0x0102030405060708, 42)
	k, s := pageEntry(p, 0)
	if k != ^uint64(0) || s != ^uint32(0) {
		t.Errorf("entry 0 = %x, %d", k, s)
	}
	k, s = pageEntry(p, 1)
	if k != 0x0102030405060708 || s != 42 {
		t.Errorf("entry 1 = %x, %d", k, s)
	}
}

func TestPageHeaderEncoding(t *testing.T) {
	p := make([]byte, 64)
	setPageNext(p, 0xDEADBEEF)
	setPageCount(p, 513)
	if pageNext(p) != 0xDEADBEEF {
		t.Errorf("next = %x", pageNext(p))
	}
	if pageCount(p) != 513 {
		t.Errorf("count = %d", pageCount(p))
	}
}

func TestManyKeysNoCrossContamination(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 2000})
	rng := rand.New(rand.NewSource(4))
	ref := make(map[uint64][]storage.SID)
	for i := 0; i < 2000; i++ {
		key := rng.Uint64() % 500
		sid := storage.SID(i)
		ref[key] = append(ref[key], sid)
		tab.Insert(key, sid)
	}
	for key, want := range ref {
		got := tab.Probe(key, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("key %d: %d sids, want %d", key, len(got), len(want))
		}
		seen := map[storage.SID]bool{}
		for _, s := range got {
			seen[s] = true
		}
		for _, s := range want {
			if !seen[s] {
				t.Fatalf("key %d missing sid %d", key, s)
			}
		}
	}
}

func TestProbeAppendsToDst(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 10})
	tab.Insert(1, 100)
	dst := []storage.SID{5}
	got := tab.Probe(1, nil, dst)
	if len(got) != 2 || got[0] != 5 || got[1] != 100 {
		t.Errorf("Probe with dst = %v", got)
	}
}

func TestDelete(t *testing.T) {
	tab := newTable(t, Options{ExpectedEntries: 100})
	tab.Insert(1, 10)
	tab.Insert(1, 11)
	tab.Insert(2, 20)
	if got := tab.Delete(1, 10); got != 1 {
		t.Fatalf("Delete removed %d entries, want 1", got)
	}
	got := tab.Probe(1, nil, nil)
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("Probe(1) after delete = %v, want [11]", got)
	}
	if got := tab.Probe(2, nil, nil); len(got) != 1 {
		t.Errorf("unrelated key disturbed: %v", got)
	}
	if tab.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", tab.Entries())
	}
	if got := tab.Delete(1, 10); got != 0 {
		t.Errorf("second delete removed %d", got)
	}
}

func TestDeleteFromOverflowChain(t *testing.T) {
	tab := newTable(t, Options{Buckets: 1})
	const n = 300
	for i := 0; i < n; i++ {
		tab.Insert(uint64(i%7), storage.SID(i))
	}
	// Delete every entry of key 3 across the chain.
	want := 0
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			want++
		}
	}
	removed := 0
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			removed += tab.Delete(3, storage.SID(i))
		}
	}
	if removed != want {
		t.Fatalf("removed %d, want %d", removed, want)
	}
	if got := tab.Probe(3, nil, nil); len(got) != 0 {
		t.Errorf("key 3 still has %d entries", len(got))
	}
	// All other keys intact.
	total := 0
	for k := uint64(0); k < 7; k++ {
		total += len(tab.Probe(k, nil, nil))
	}
	if total != n-want {
		t.Errorf("%d entries remain, want %d", total, n-want)
	}
}

// Package hashtable implements the paged bucket hash tables underlying the
// filter indices (Section 4.1).
//
// Each Similarity Filter Index repetition hashes an r-bit sample of every
// embedded vector into a table of buckets holding set identifiers; a query
// probes one bucket per repetition. Buckets are chains of fixed-size pages
// (the paper's sidcount entries per bucket, with enough buckets that
// overflows are rare), and every page visited during a probe is charged as
// one random page read — hash indices are exactly the "readily available"
// ORDBMS primitive the paper builds on.
package hashtable

import (
	"fmt"

	"repro/internal/storage"
)

const noPage = ^uint32(0)

// entrySize is key (8 bytes) + sid (4 bytes).
const entrySize = 12

// pageHeader is next-page id (4 bytes) + entry count (2 bytes).
const pageHeader = 6

// Mode selects what a bucket probe returns.
type Mode int

const (
	// ExactKey returns only the sids whose stored key equals the probe key —
	// the behaviour assumed by the p_{r,l}(s) analysis (two vectors collide
	// iff their sampled bits agree).
	ExactKey Mode = iota
	// WholeBucket returns every sid in the probed bucket, as in the paper's
	// literal description; bucket sharing adds a few extra candidates that
	// the verification step removes.
	WholeBucket
)

// Options configures a Table.
type Options struct {
	// Buckets is the number of hash buckets. If zero it is derived from
	// ExpectedEntries so that the average bucket fits in one page.
	Buckets int
	// ExpectedEntries sizes the directory when Buckets is zero.
	ExpectedEntries int
	// Mode selects probe semantics; the default is ExactKey.
	Mode Mode
}

// Table is one paged hash table: the unit the optimizer's budget counts
// ("a specified number K of hash tables", Section 5).
type Table struct {
	pager   *storage.Pager
	mode    Mode
	first   []storage.PageID // per-bucket chain head
	last    []storage.PageID // per-bucket chain tail (insert point)
	entries int
	perPage int
}

// New creates an empty table drawing pages from pager.
func New(pager *storage.Pager, opt Options) (*Table, error) {
	perPage := (pager.PageSize() - pageHeader) / entrySize
	if perPage < 1 {
		return nil, fmt.Errorf("hashtable: page size %d too small", pager.PageSize())
	}
	nb := opt.Buckets
	if nb <= 0 {
		if opt.ExpectedEntries > 0 {
			nb = (opt.ExpectedEntries + perPage - 1) / perPage
		} else {
			nb = 64
		}
	}
	t := &Table{
		pager:   pager,
		mode:    opt.Mode,
		first:   make([]storage.PageID, nb),
		last:    make([]storage.PageID, nb),
		perPage: perPage,
	}
	for i := range t.first {
		t.first[i] = storage.PageID(noPage)
		t.last[i] = storage.PageID(noPage)
	}
	return t, nil
}

// mix finalizes a key into a bucket index; keys produced by bit sampling
// are already hash-like but cheap extra mixing guards degenerate cases.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (t *Table) bucket(key uint64) int {
	return int(mix(key) % uint64(len(t.first)))
}

// Entries returns the number of stored (key, sid) pairs.
func (t *Table) Entries() int { return t.entries }

// Buckets returns the directory size.
func (t *Table) Buckets() int { return len(t.first) }

func pageCount(p []byte) int { return int(p[4]) | int(p[5])<<8 }

func setPageCount(p []byte, n int) { p[4], p[5] = byte(n), byte(n>>8) }

func pageNext(p []byte) storage.PageID {
	return storage.PageID(uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24)
}

func setPageNext(p []byte, id storage.PageID) {
	p[0], p[1], p[2], p[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
}

func pageEntry(p []byte, i int) (key uint64, sid storage.SID) {
	off := pageHeader + i*entrySize
	for b := 7; b >= 0; b-- {
		key = key<<8 | uint64(p[off+b])
	}
	sid = storage.SID(uint32(p[off+8]) | uint32(p[off+9])<<8 | uint32(p[off+10])<<16 | uint32(p[off+11])<<24)
	return
}

func setPageEntry(p []byte, i int, key uint64, sid storage.SID) {
	off := pageHeader + i*entrySize
	for b := 0; b < 8; b++ {
		p[off+b] = byte(key >> (8 * b))
	}
	p[off+8], p[off+9], p[off+10], p[off+11] = byte(sid), byte(sid>>8), byte(sid>>16), byte(sid>>24)
}

// Insert stores (key, sid). Duplicate pairs are stored again; filter-index
// build never produces duplicates within one table.
func (t *Table) Insert(key uint64, sid storage.SID) {
	b := t.bucket(key)
	if t.last[b] == storage.PageID(noPage) {
		id := t.allocPage()
		t.first[b], t.last[b] = id, id
	}
	p := t.pager.MustPage(t.last[b])
	n := pageCount(p)
	if n == t.perPage {
		id := t.allocPage()
		setPageNext(p, id)
		t.last[b] = id
		p = t.pager.MustPage(id)
		n = 0
	}
	setPageEntry(p, n, key, sid)
	setPageCount(p, n+1)
	t.entries++
}

func (t *Table) allocPage() storage.PageID {
	id := t.pager.Alloc()
	p := t.pager.MustPage(id)
	setPageNext(p, storage.PageID(noPage))
	setPageCount(p, 0)
	return id
}

// Probe returns the sids associated with key under the table's Mode,
// appending to dst. Every chain page visited costs one random page read on
// io (which may be nil).
func (t *Table) Probe(key uint64, io *storage.Counter, dst []storage.SID) []storage.SID {
	b := t.bucket(key)
	id := t.first[b]
	for id != storage.PageID(noPage) {
		if io != nil {
			io.RecordRand(1)
		}
		p := t.pager.MustPage(id)
		n := pageCount(p)
		for i := 0; i < n; i++ {
			k, sid := pageEntry(p, i)
			if t.mode == WholeBucket || k == key {
				dst = append(dst, sid)
			}
		}
		id = pageNext(p)
	}
	return dst
}

// Range invokes fn for every stored (key, sid) entry, walking each bucket
// chain in page order. It reads pages directly (no I/O accounting — it is
// maintenance machinery, not a query path): the shard-summary layer uses it
// to rebuild key-occupancy sketches from final bucket contents in O(entries)
// without re-deriving keys from signatures.
func (t *Table) Range(fn func(key uint64, sid storage.SID)) {
	for b := range t.first {
		id := t.first[b]
		for id != storage.PageID(noPage) {
			p := t.pager.MustPage(id)
			n := pageCount(p)
			for i := 0; i < n; i++ {
				k, sid := pageEntry(p, i)
				fn(k, sid)
			}
			id = pageNext(p)
		}
	}
}

// Delete removes every (key, sid) pair from the table, compacting within
// each page (the last entry moves into the hole). It returns the number of
// entries removed — the dynamic maintenance the paper notes hash indices
// support.
func (t *Table) Delete(key uint64, sid storage.SID) int {
	b := t.bucket(key)
	removed := 0
	id := t.first[b]
	for id != storage.PageID(noPage) {
		p := t.pager.MustPage(id)
		n := pageCount(p)
		for i := 0; i < n; {
			k, s := pageEntry(p, i)
			if k == key && s == sid {
				// Move the page's last entry into the hole.
				lk, ls := pageEntry(p, n-1)
				setPageEntry(p, i, lk, ls)
				n--
				setPageCount(p, n)
				removed++
				continue // re-examine the moved entry
			}
			i++
		}
		id = pageNext(p)
	}
	t.entries -= removed
	return removed
}

package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/workload"
)

// fixedPlanIndex builds an index with a hand-written plan so the
// Section 4.3 case logic can be probed deterministically: DFIs at 0.2 and
// 0.4, both kinds at 0.4 (the δ point), SFIs at 0.4 and 0.7.
func fixedPlanIndex(t *testing.T) (*Index, []set.Set) {
	t.Helper()
	sets, err := workload.Generate(workload.Set1Params(300))
	if err != nil {
		t.Fatal(err)
	}
	plan := optimize.Plan{
		Cuts:  []float64{0.2, 0.4, 0.7},
		Delta: 0.4,
		FIs: []optimize.FI{
			{Point: 0.2, Kind: filter.Dissimilar, Tables: 6, R: 3},
			{Point: 0.4, Kind: filter.Dissimilar, Tables: 6, R: 3},
			{Point: 0.4, Kind: filter.Similar, Tables: 6, R: 6},
			{Point: 0.7, Kind: filter.Similar, Tables: 6, R: 9},
		},
		Budget: 24,
		K:      32,
	}
	ix, err := Build(sets, Options{
		Embed:        embed.Options{K: 32, Bits: 8, Seed: 6},
		PlanOverride: &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, sets
}

func TestPlanOverrideInstalled(t *testing.T) {
	ix, _ := fixedPlanIndex(t)
	if got := ix.Plan().Cuts; len(got) != 3 || got[0] != 0.2 || got[2] != 0.7 {
		t.Fatalf("cuts = %v", got)
	}
	fis := ix.FilterIndexes()
	if len(fis) != 4 {
		t.Fatalf("built %d FIs, want 4", len(fis))
	}
	// DFIs at 0.2 and 0.4, SFIs at 0.4 and 0.7, in order.
	wantKinds := []filter.Kind{filter.Dissimilar, filter.Dissimilar, filter.Similar, filter.Similar}
	wantPoints := []float64{0.2, 0.4, 0.4, 0.7}
	for i, fi := range fis {
		if fi.Kind != wantKinds[i] || fi.Point != wantPoints[i] {
			t.Errorf("FI %d = %v@%g, want %v@%g", i, fi.Kind, fi.Point, wantKinds[i], wantPoints[i])
		}
	}
}

// TestEnclosureCases verifies that each query range resolves to the
// partition points (and hence the combination case) Section 4.3 dictates.
func TestEnclosureCases(t *testing.T) {
	ix, sets := fixedPlanIndex(t)
	cases := []struct {
		lo, hi         float64
		wantLo, wantHi float64
	}{
		{0.05, 0.15, 0.0, 0.2}, // both in DFI region (lo = 0 special case)
		{0.25, 0.35, 0.2, 0.4}, // both DFI points
		{0.45, 0.65, 0.4, 0.7}, // both SFI points
		{0.75, 0.95, 0.7, 1.0}, // SFI + special up = 1
		{0.25, 0.55, 0.2, 0.7}, // mixed: spans the δ point
		{0.05, 0.95, 0.0, 1.0}, // degenerate: everything
	}
	for _, tc := range cases {
		var stats QueryStats
		if _, err := ix.Candidates(sets[0], tc.lo, tc.hi, &stats); err != nil {
			t.Fatalf("[%g,%g]: %v", tc.lo, tc.hi, err)
		}
		if stats.EnclosedLo != tc.wantLo || stats.EnclosedHi != tc.wantHi {
			t.Errorf("[%g,%g]: enclosed (%g,%g), want (%g,%g)",
				tc.lo, tc.hi, stats.EnclosedLo, stats.EnclosedHi, tc.wantLo, tc.wantHi)
		}
	}
}

// TestCaseCorrectness runs one query per case and checks result exactness
// (no false positives is guaranteed by verification; this guards the case
// plumbing end to end).
func TestCaseCorrectness(t *testing.T) {
	ix, sets := fixedPlanIndex(t)
	for _, r := range [][2]float64{
		{0.05, 0.15}, {0.25, 0.35}, {0.45, 0.65}, {0.75, 0.95}, {0.25, 0.55}, {0, 1},
	} {
		matches, _, err := ix.Query(sets[3], r[0], r[1])
		if err != nil {
			t.Fatalf("[%g,%g]: %v", r[0], r[1], err)
		}
		for _, m := range matches {
			sim := sets[3].Jaccard(sets[m.SID])
			if sim < r[0] || sim > r[1] {
				t.Errorf("[%g,%g]: returned sid %d at similarity %g", r[0], r[1], m.SID, sim)
			}
			if sim != m.Similarity {
				t.Errorf("similarity mismatch: %g vs %g", sim, m.Similarity)
			}
		}
	}
	// The full range must return every live set (identical vectors always
	// collide, and [0,1] unions both δ structures).
	all, _, err := ix.Query(sets[3], 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Full-range recall isn't guaranteed to be perfect (capture < 1 away
	// from the δ point), but the query set itself must be present.
	foundSelf := false
	for _, m := range all {
		if m.SID == 3 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("self not retrieved on the full range")
	}
}

// TestResultsSubsetOfExact is the containment property: every index result
// appears in the exact answer, for many random queries across all cases.
func TestResultsSubsetOfExact(t *testing.T) {
	ix, sets := fixedPlanIndex(t)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		matches, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		truth := exactAnswer(sets, sets[q.SID], q.Lo, q.Hi)
		for _, m := range matches {
			if _, ok := truth[m.SID]; !ok {
				t.Fatalf("query %v: result %d not in exact answer", q, m.SID)
			}
		}
	}
}

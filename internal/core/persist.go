package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/embed"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/storage"
)

// snapshotMagic guards the persistence format.
const snapshotMagic = "SSRIDX1\n"

// snapshot is the durable form of an index: everything needed to rebuild
// it exactly. Filter-index contents are not stored — they are a pure
// function of (sets, embedding seed, plan, per-FI seeds) and are rebuilt
// deterministically on load. Signatures ARE stored (k uint64s per set), so
// loading skips min-hash signing, the dominant build cost.
type snapshot struct {
	// Embedding parameters. Only the default Hadamard code is supported;
	// custom ecc.Code values are not serializable.
	EmbedK    int
	EmbedBits int
	EmbedSeed int64
	// Storage parameters.
	PageSize       int
	PayloadPerElem int
	DistSeed       int64
	DisableBTree   bool
	CountLocatorIO bool
	// Plan is installed verbatim (the optimizer is not re-run).
	Plan optimize.Plan
	// Sets is the live collection; deleted sids are compacted out, so
	// loading a snapshot of an index with deletions renumbers sids.
	Sets [][]uint64
	// Sigs caches the per-set min-hash signatures, aligned with Sets.
	Sigs [][]uint64
}

// Save writes the index to w. See Load. Save holds the read lock for its
// duration, so the snapshot is a consistent point-in-time view even with
// concurrent Insert/Delete traffic.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("core: writing snapshot header: %w", err)
	}
	snap := snapshot{
		EmbedK:         ix.buildOpts.Embed.K,
		EmbedBits:      ix.buildOpts.Embed.Bits,
		EmbedSeed:      ix.buildOpts.Embed.Seed,
		PageSize:       ix.buildOpts.PageSize,
		PayloadPerElem: ix.buildOpts.PayloadPerElem,
		DistSeed:       ix.buildOpts.DistSeed,
		DisableBTree:   ix.buildOpts.DisableBTree,
		CountLocatorIO: ix.buildOpts.CountLocatorIO,
		Plan:           ix.plan,
	}
	err := ix.store.Scan(nil, func(sid storage.SID, s set.Set) bool {
		elems := make([]uint64, s.Len())
		copy(elems, s.Elems())
		snap.Sets = append(snap.Sets, elems)
		snap.Sigs = append(snap.Sigs, ix.sigs[sid])
		return true
	})
	if err != nil {
		return fmt.Errorf("core: scanning collection for snapshot: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// Load reconstructs an index from a snapshot written by Save. The rebuild
// is deterministic: the same embedding family, sampled bit positions and
// plan are restored, so query results match the saved index exactly
// (modulo sid renumbering if the saved index had deletions).
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("core: not an index snapshot (bad magic %q)", magic)
	}
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if len(snap.Sets) == 0 {
		return nil, fmt.Errorf("core: snapshot holds no sets")
	}
	sets := make([]set.Set, len(snap.Sets))
	for i, elems := range snap.Sets {
		sets[i] = set.New(elems...)
	}
	var sigs []minhash.Signature
	if len(snap.Sigs) == len(snap.Sets) {
		sigs = make([]minhash.Signature, len(snap.Sigs))
		for i, sig := range snap.Sigs {
			sigs[i] = minhash.Signature(sig)
		}
	}
	plan := snap.Plan
	return Build(sets, Options{
		Embed:                 embed.Options{K: snap.EmbedK, Bits: snap.EmbedBits, Seed: snap.EmbedSeed},
		PageSize:              snap.PageSize,
		PayloadPerElem:        snap.PayloadPerElem,
		DistSeed:              snap.DistSeed,
		DisableBTree:          snap.DisableBTree,
		CountLocatorIO:        snap.CountLocatorIO,
		PlanOverride:          &plan,
		PrecomputedSignatures: sigs,
	})
}

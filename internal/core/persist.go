package core

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/embed"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/storage"
)

// snapshotMagic guards the persistence format.
const snapshotMagic = "SSRIDX1\n"

// famTrailerMagic opens the signing-family trailer appended AFTER the gob
// snapshot value for any non-classic-64 family. The trailer is plain
// binary, not gob: gob allocates type ids process-globally in first-encode
// order, so a gob-encoded trailer type would shift the ids embedded in
// every other snapshot's bytes and break byte-stability guarantees. The
// default family writes no trailer at all — classic-64 snapshot bytes are
// identical to the pre-family format, and legacy snapshots (clean EOF
// where the trailer would start) load as classic-64.
const famTrailerMagic = "SSRFAM1\n"

// Family base codes in the trailer.
const (
	famBaseClassic      = 1
	famBaseSuperMinHash = 2
)

// Sanity ceilings applied when decoding a snapshot. Corrupt or hostile
// input must fail with an error before it can drive a huge allocation or a
// non-terminating rebuild; these bounds sit far above anything the paper's
// experiments (or this repo's tests) produce.
const (
	maxSnapshotK      = 1 << 16 // signature coordinates
	maxSnapshotBits   = 20      // matches ecc's Hadamard limit
	maxSnapshotSIDs   = 1 << 26 // allocated sid space
	maxSnapshotFIs    = 1 << 10 // filter indices in a plan
	maxSnapshotTables = 1 << 16 // hash tables per filter index
)

// snapshot is the durable form of an index: everything needed to rebuild
// it exactly. Filter-index contents are not stored — they are a pure
// function of (sets, embedding seed, plan, per-FI seeds) and are rebuilt
// deterministically on load. Signatures ARE stored (k uint64s per set), so
// loading skips min-hash signing, the dominant build cost.
type snapshot struct {
	// Embedding parameters. Only the default Hadamard code is supported;
	// custom ecc.Code values are not serializable.
	EmbedK    int
	EmbedBits int
	EmbedSeed int64
	// Storage parameters.
	PageSize       int
	PayloadPerElem int
	DistSeed       int64
	DisableBTree   bool
	CountLocatorIO bool
	// Plan is installed verbatim (the optimizer is not re-run).
	Plan optimize.Plan
	// Sets is the live collection in sid order; tombstoned sids are not
	// stored.
	Sets [][]uint64
	// Sigs caches the per-set STORED signatures, aligned with Sets: full
	// classic min-hash under the default family, the signing family's
	// packed words otherwise (the trailer says which).
	Sigs [][]uint64
	// SIDs, aligned with Sets, records each live set's original sid, and
	// NumSIDs the total allocated sid space. Gaps are deleted sids; Load
	// reconstructs them as tombstones so sid-addressed replay (the
	// durability layer) stays valid. Legacy snapshots without these fields
	// decode with NumSIDs == 0 and load densely renumbered, as before.
	SIDs    []uint32
	NumSIDs int
}

// Save writes the index to w. See Load. Save holds the read lock for its
// duration, so the snapshot is a consistent point-in-time view even with
// concurrent Insert/Delete traffic.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("core: writing snapshot header: %w", err)
	}
	snap := snapshot{
		EmbedK:         ix.buildOpts.Embed.K,
		EmbedBits:      ix.buildOpts.Embed.Bits,
		EmbedSeed:      ix.buildOpts.Embed.Seed,
		PageSize:       ix.buildOpts.PageSize,
		PayloadPerElem: ix.buildOpts.PayloadPerElem,
		DistSeed:       ix.buildOpts.DistSeed,
		DisableBTree:   ix.buildOpts.DisableBTree,
		CountLocatorIO: ix.buildOpts.CountLocatorIO,
		Plan:           ix.plan,
		NumSIDs:        len(ix.sigs),
	}
	err := ix.store.Scan(nil, func(sid storage.SID, s set.Set) bool {
		elems := make([]uint64, s.Len())
		copy(elems, s.Elems())
		snap.Sets = append(snap.Sets, elems)
		snap.Sigs = append(snap.Sigs, ix.sigs[sid])
		snap.SIDs = append(snap.SIDs, uint32(sid))
		return true
	})
	if err != nil {
		return fmt.Errorf("core: scanning collection for snapshot: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	if !ix.classic64 {
		if err := writeFamilyTrailer(bw, ix.buildOpts.Signing, ix.unionHint); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeFamilyTrailer appends the 14-byte family descriptor: magic, base
// code, bits/hash, and the uint32 union hint the confidence width was
// computed at (little endian).
func writeFamilyTrailer(w io.Writer, cfg minhash.Config, unionHint int) error {
	var base byte
	switch cfg.Base {
	case "", "classic":
		base = famBaseClassic
	case "superminhash":
		base = famBaseSuperMinHash
	default:
		return fmt.Errorf("core: unknown signing family %q in snapshot", cfg.Base)
	}
	bits := cfg.BitsPerHash
	if bits == 0 {
		bits = 64
	}
	if unionHint < 0 {
		unionHint = 0
	}
	buf := make([]byte, 0, len(famTrailerMagic)+6)
	buf = append(buf, famTrailerMagic...)
	buf = append(buf, base, byte(bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(unionHint))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("core: writing family trailer: %w", err)
	}
	return nil
}

// readFamilyTrailer reads the family descriptor after the snapshot value.
// A clean EOF is the legacy / default layout: classic at 64 bits/hash.
func readFamilyTrailer(r io.Reader) (minhash.Config, int, error) {
	magic := make([]byte, len(famTrailerMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if err == io.EOF {
			return minhash.Config{}, 0, nil
		}
		return minhash.Config{}, 0, fmt.Errorf("core: reading family trailer: %w", err)
	}
	if string(magic) != famTrailerMagic {
		return minhash.Config{}, 0, fmt.Errorf("core: bad family trailer magic %q", magic)
	}
	var body [6]byte
	if _, err := io.ReadFull(r, body[:]); err != nil {
		return minhash.Config{}, 0, fmt.Errorf("core: reading family trailer body: %w", err)
	}
	var cfg minhash.Config
	switch body[0] {
	case famBaseClassic:
		cfg.Base = "classic"
	case famBaseSuperMinHash:
		cfg.Base = "superminhash"
	default:
		return minhash.Config{}, 0, fmt.Errorf("core: unknown family base code %d in trailer", body[0])
	}
	cfg.BitsPerHash = int(body[1])
	if _, err := cfg.Normalize(); err != nil {
		return minhash.Config{}, 0, err
	}
	hint := int(binary.LittleEndian.Uint32(body[2:6]))
	return cfg, hint, nil
}

// RegisterSnapshotGobTypes forces gob's process-global type-id allocation
// for the snapshot types, in one fixed pass. gob numbers user types in
// first-encode order across the whole process, and those ids appear in
// the stream bytes — so without pinning, snapshot BYTES (not just their
// meaning) would depend on which encode happened to run first. Callers
// that promise byte-stable snapshots invoke this from init.
func RegisterSnapshotGobTypes() {
	_ = gob.NewEncoder(io.Discard).Encode(&snapshot{}) //ssrvet:ignore droppederr -- zero-value encode to io.Discard cannot fail; run for the type-id side effect
}

// validate rejects structurally or semantically corrupt snapshots before
// any rebuild work happens. gob guarantees type shape but nothing about
// values, so every field that sizes an allocation or parameterizes a loop
// is bounded here. sigWords is the expected stored-signature length: the
// embedding's k under the classic-64 family, the family's packed word
// count otherwise.
func (snap *snapshot) validate(sigWords int) error {
	if snap.EmbedK < 1 || snap.EmbedK > maxSnapshotK {
		return fmt.Errorf("core: snapshot embedding k=%d out of range [1, %d]", snap.EmbedK, maxSnapshotK)
	}
	if snap.EmbedBits < 0 || snap.EmbedBits > maxSnapshotBits {
		return fmt.Errorf("core: snapshot embedding bits=%d out of range [0, %d]", snap.EmbedBits, maxSnapshotBits)
	}
	if snap.PageSize < 0 || snap.PayloadPerElem < 0 {
		return fmt.Errorf("core: snapshot has negative storage parameters")
	}
	// An empty snapshot (no sets, no allocated sids) is legal: a shard of a
	// partitioned engine can be empty at save time. Zero-value garbage is
	// still rejected by the EmbedK bound above.
	if len(snap.Sigs) != len(snap.Sets) {
		// Legacy snapshots may omit signatures entirely (they are re-signed);
		// anything else is truncation.
		if len(snap.Sigs) != 0 || snap.NumSIDs != 0 {
			return fmt.Errorf("core: snapshot has %d signatures for %d sets", len(snap.Sigs), len(snap.Sets))
		}
	}
	for i, sig := range snap.Sigs {
		if len(sig) != sigWords {
			return fmt.Errorf("core: snapshot signature %d has %d words, expected %d", i, len(sig), sigWords)
		}
	}
	if snap.NumSIDs != 0 {
		if snap.NumSIDs < 0 || snap.NumSIDs > maxSnapshotSIDs {
			return fmt.Errorf("core: snapshot sid space %d out of range", snap.NumSIDs)
		}
		if len(snap.SIDs) != len(snap.Sets) {
			return fmt.Errorf("core: snapshot has %d sids for %d sets", len(snap.SIDs), len(snap.Sets))
		}
		prev := -1
		for i, sid := range snap.SIDs {
			if int(sid) <= prev || int(sid) >= snap.NumSIDs {
				return fmt.Errorf("core: snapshot sid %d at position %d breaks ordering (space %d)", sid, i, snap.NumSIDs)
			}
			prev = int(sid)
		}
	} else if len(snap.SIDs) != 0 {
		return fmt.Errorf("core: snapshot has sids but no sid space")
	}
	if len(snap.Plan.FIs) > maxSnapshotFIs {
		return fmt.Errorf("core: snapshot plan has %d filter indices (max %d)", len(snap.Plan.FIs), maxSnapshotFIs)
	}
	for i, fi := range snap.Plan.FIs {
		// NaN fails both comparisons of a naive lo/hi check, so the bound is
		// phrased positively: inside (0,1) or rejected.
		if !(fi.Point > 0 && fi.Point < 1) {
			return fmt.Errorf("core: snapshot plan FI %d at point %g outside (0,1)", i, fi.Point)
		}
		if fi.Tables < 1 || fi.Tables > maxSnapshotTables {
			return fmt.Errorf("core: snapshot plan FI %d has %d tables (range [1, %d])", i, fi.Tables, maxSnapshotTables)
		}
	}
	return nil
}

// Load reconstructs an index from a snapshot written by Save. The rebuild
// is deterministic: the same embedding family, sampled bit positions and
// plan are restored, and original sids are preserved — deleted sids come
// back as tombstones, so an operation log recorded against the saved index
// replays against the loaded one. (Legacy snapshots without sid metadata
// load densely renumbered.)
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("core: not an index snapshot (bad magic %q)", magic)
	}
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	// The gob decoder reads exactly the length-prefixed snapshot value off
	// the shared buffered reader, so the next bytes (if any) are the
	// family trailer; clean EOF means the default classic-64 layout.
	scfg, unionHint, err := readFamilyTrailer(br)
	if err != nil {
		return nil, err
	}
	classic64 := scfg.IsClassic64()
	sigWords := snap.EmbedK
	if !classic64 {
		sigWords = minhash.PackedWords(snap.EmbedK, scfg.BitsPerHash)
	}
	if err := snap.validate(sigWords); err != nil {
		return nil, err
	}
	opt := Options{
		Embed:          embed.Options{K: snap.EmbedK, Bits: snap.EmbedBits, Seed: snap.EmbedSeed},
		Signing:        scfg,
		UnionSizeHint:  unionHint,
		PageSize:       snap.PageSize,
		PayloadPerElem: snap.PayloadPerElem,
		DistSeed:       snap.DistSeed,
		DisableBTree:   snap.DisableBTree,
		CountLocatorIO: snap.CountLocatorIO,
	}
	plan := snap.Plan
	opt.PlanOverride = &plan

	// Stored signatures feed back through the matching Options channel:
	// full classic signatures for the classic-64 layout, the family's
	// packed words otherwise.
	setSigs := func(sigs [][]uint64) {
		if classic64 {
			full := make([]minhash.Signature, len(sigs))
			for i, sig := range sigs {
				full[i] = minhash.Signature(sig)
			}
			opt.PrecomputedSignatures = full
		} else {
			opt.PackedSignatures = sigs
		}
	}

	if snap.NumSIDs == 0 {
		// Legacy dense layout.
		sets := make([]set.Set, len(snap.Sets))
		for i, elems := range snap.Sets {
			sets[i] = set.New(elems...)
		}
		if len(snap.Sigs) == len(snap.Sets) {
			setSigs(snap.Sigs)
		}
		return Build(sets, opt)
	}

	// Sid-preserving layout: expand to the full sid space, tombstoning the
	// gaps.
	sets := make([]set.Set, snap.NumSIDs)
	sigs := make([][]uint64, snap.NumSIDs)
	tombs := make([]bool, snap.NumSIDs)
	for i := range tombs {
		tombs[i] = true
	}
	for i, sid := range snap.SIDs {
		sets[sid] = set.New(snap.Sets[i]...)
		sigs[sid] = snap.Sigs[i]
		tombs[sid] = false
	}
	setSigs(sigs)
	opt.Tombstones = tombs
	return Build(sets, opt)
}

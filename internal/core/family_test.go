package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/workload"
)

func familyTestOptions() Options {
	return Options{
		Embed:    embed.Options{K: 32, Bits: 6, Seed: 3},
		Plan:     optimize.Options{Budget: 30, RecallTarget: 0.9},
		DistSeed: 5,
	}
}

// TestPrecomputedSignatureValidation pins the fail-fast contract: a
// malformed signature slice must fail Build with an error BEFORE any side
// effect (store appends, filter population) — never panic mid-sign.
func TestPrecomputedSignatureValidation(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(120))
	if err != nil {
		t.Fatal(err)
	}
	opt := familyTestOptions()
	base, err := Build(sets, opt)
	if err != nil {
		t.Fatal(err)
	}
	goodSigs := make([]minhash.Signature, len(sets))
	for i, s := range sets {
		goodSigs[i] = base.Embedder().Sign(s)
	}
	plan := base.Plan()

	cases := []struct {
		name    string
		mutate  func(o *Options)
		wantSub string
	}{
		{
			name: "wrong signature count",
			mutate: func(o *Options) {
				o.PrecomputedSignatures = goodSigs[:len(goodSigs)-1]
			},
			wantSub: "precomputed signatures",
		},
		{
			name: "wrong signature length",
			mutate: func(o *Options) {
				sigs := make([]minhash.Signature, len(goodSigs))
				copy(sigs, goodSigs)
				sigs[2] = sigs[2][:5]
				o.PrecomputedSignatures = sigs
			},
			wantSub: "coordinates",
		},
		{
			name: "packed without plan override",
			mutate: func(o *Options) {
				o.PackedSignatures = make([][]uint64, len(sets))
			},
			wantSub: "PlanOverride",
		},
		{
			name: "packed wrong word count",
			mutate: func(o *Options) {
				o.PlanOverride = &plan
				packed := make([][]uint64, len(sets))
				for i := range packed {
					packed[i] = make([]uint64, 3)
				}
				o.PackedSignatures = packed
			},
			wantSub: "words",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Build panicked instead of returning an error: %v", r)
				}
			}()
			o := familyTestOptions()
			tc.mutate(&o)
			if _, err := Build(sets, o); err == nil {
				t.Fatal("Build accepted malformed signatures")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The well-formed slice must still build, identically to signing fresh.
	o := familyTestOptions()
	o.PrecomputedSignatures = goodSigs
	ix, err := Build(sets, o)
	if err != nil {
		t.Fatalf("well-formed precomputed signatures rejected: %v", err)
	}
	m1, _, err := base.Query(sets[0], 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := ix.Query(sets[0], 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatalf("precomputed build answers differ: %d vs %d matches", len(m1), len(m2))
	}
}

// TestFamilyWorkerDeterminism requires serial and parallel builds to be
// bit-identical for every signing family: same stored (packed) signatures
// and same snapshot bytes at Workers 1, 0, and 3.
func TestFamilyWorkerDeterminism(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(150))
	if err != nil {
		t.Fatal(err)
	}
	configs := []minhash.Config{
		{},
		{Base: "classic", BitsPerHash: 8},
		{Base: "classic", BitsPerHash: 4},
		{Base: "classic", BitsPerHash: 1},
		{Base: "superminhash"},
		{Base: "superminhash", BitsPerHash: 4},
	}
	for _, scfg := range configs {
		norm, err := scfg.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("%s-%d", norm.Base, norm.BitsPerHash), func(t *testing.T) {
			var wantSigs []minhash.Signature
			var wantSnap []byte
			for _, workers := range []int{1, 0, 3} {
				o := familyTestOptions()
				o.Signing = scfg
				o.Workers = workers
				ix, err := Build(sets, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := ix.Save(&buf); err != nil {
					t.Fatalf("workers=%d: Save: %v", workers, err)
				}
				if wantSigs == nil {
					wantSigs = ix.sigs
					wantSnap = buf.Bytes()
					continue
				}
				if len(ix.sigs) != len(wantSigs) {
					t.Fatalf("workers=%d: %d signatures, want %d", workers, len(ix.sigs), len(wantSigs))
				}
				for sid := range ix.sigs {
					a, b := ix.sigs[sid], wantSigs[sid]
					if len(a) != len(b) {
						t.Fatalf("workers=%d sid %d: %d words, want %d", workers, sid, len(a), len(b))
					}
					for w := range a {
						if a[w] != b[w] {
							t.Fatalf("workers=%d sid %d word %d: %#x vs %#x", workers, sid, w, a[w], b[w])
						}
					}
				}
				if !bytes.Equal(buf.Bytes(), wantSnap) {
					t.Fatalf("workers=%d: snapshot bytes differ from serial build", workers)
				}
			}
		})
	}
}

// TestFamilyLegacySnapshotIsClassic64 pins backward compatibility at the
// core layer: a classic-64 snapshot carries no family trailer, and loading
// it yields the classic-64 configuration with the historical signature
// layout.
func TestFamilyLegacySnapshotIsClassic64(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(80))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(sets, familyTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	scfg := loaded.SigningConfig()
	if !scfg.IsClassic64() {
		t.Fatalf("legacy snapshot loaded as %+v, want classic-64", scfg)
	}
	if got, want := loaded.SignatureBytesPerSet(), ix.Embedder().K()*8; got != want {
		t.Fatalf("SignatureBytesPerSet = %d, want %d", got, want)
	}
}

package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/optimize"
	"repro/internal/workload"
)

// TestBuildDeterminism builds the same collection twice with the same
// options and requires bit-identical internals: every min-hash signature
// and every filter index's sampled bit positions. This is the end-to-end
// form of the guarantee snapshot loading relies on (filter contents are
// rebuilt, not persisted) and the invariant the seededrand analyzer
// protects — one stray global-rand call anywhere in the pipeline breaks it.
func TestBuildDeterminism(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(250))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Embed:    embed.Options{K: 64, Bits: 8, Seed: 42},
		Plan:     optimize.Options{Budget: 30, RecallTarget: 0.9},
		DistSeed: 7,
	}
	ix1, err := Build(sets, opt)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Build(sets, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Identical signatures, coordinate by coordinate.
	if len(ix1.sigs) != len(ix2.sigs) {
		t.Fatalf("signature counts differ: %d vs %d", len(ix1.sigs), len(ix2.sigs))
	}
	for sid := range ix1.sigs {
		a, b := ix1.sigs[sid], ix2.sigs[sid]
		if len(a) != len(b) {
			t.Fatalf("sid %d: signature lengths differ", sid)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sid %d coordinate %d differs across rebuilds: %d vs %d", sid, i, a[i], b[i])
			}
		}
	}

	// Identical sampled bit positions in every filter index, SFI and DFI.
	comparePositions := func(name string, p1, p2 map[float64]*filter.Index) {
		t.Helper()
		if len(p1) != len(p2) {
			t.Fatalf("%s: point counts differ: %d vs %d", name, len(p1), len(p2))
		}
		for point, f1 := range p1 {
			f2, ok := p2[point]
			if !ok {
				t.Fatalf("%s: point %g missing from rebuild", name, point)
			}
			if f1.Tables() != f2.Tables() {
				t.Fatalf("%s point %g: table counts differ", name, point)
			}
			for i := 0; i < f1.Tables(); i++ {
				q1, q2 := f1.Positions(i), f2.Positions(i)
				if len(q1) != len(q2) {
					t.Fatalf("%s point %g table %d: position counts differ", name, point, i)
				}
				for j := range q1 {
					if q1[j] != q2[j] {
						t.Fatalf("%s point %g table %d position %d differs: %d vs %d",
							name, point, i, j, q1[j], q2[j])
					}
				}
			}
		}
	}
	comparePositions("SFI", ix1.sfis, ix2.sfis)
	comparePositions("DFI", ix1.dfis, ix2.dfis)

	// And the observable behaviour agrees: identical query answers.
	for _, r := range [][2]float64{{0.8, 1.0}, {0.3, 0.6}, {0.0, 0.2}} {
		m1, _, err := ix1.Query(sets[0], r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		m2, _, err := ix2.Query(sets[0], r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(m1) != len(m2) {
			t.Fatalf("range %v: %d vs %d results", r, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("range %v result %d differs: %+v vs %+v", r, i, m1[i], m2[i])
			}
		}
	}
}

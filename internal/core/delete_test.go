package core

import (
	"testing"

	"repro/internal/set"
)

func TestDeleteRemovesFromResults(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	// Find a set with at least one high-similarity neighbour: its twin
	// must disappear after deletion.
	matches, _, err := ix.Query(sets[0], 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("set 0 did not even retrieve itself")
	}
	victim := matches[0].SID
	if err := ix.Delete(victim); err != nil {
		t.Fatalf("delete: %v", err)
	}
	after, _, err := ix.Query(sets[0], 0.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range after {
		if m.SID == victim {
			t.Fatalf("deleted sid %d still returned", victim)
		}
	}
	if ix.Len() != 299 {
		t.Errorf("Len = %d after delete, want 299", ix.Len())
	}
}

func TestDeleteValidation(t *testing.T) {
	ix, _ := buildSmall(t, 100, 30)
	if err := ix.Delete(10000); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := ix.Delete(3); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := ix.Delete(3); err == nil {
		t.Error("double delete accepted")
	}
}

func TestDeleteThenInsert(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	if err := ix.Delete(7); err != nil {
		t.Fatal(err)
	}
	// New sets keep working after a delete; sids are never reused.
	elems := append([]set.Elem(nil), sets[7].Elems()...)
	sid, err := ix.Insert(set.New(elems...))
	if err != nil {
		t.Fatal(err)
	}
	if int(sid) != 200 {
		t.Errorf("new sid = %d, want 200 (no reuse)", sid)
	}
	matches, _, err := ix.Query(sets[7], 0.99, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	foundNew, foundOld := false, false
	for _, m := range matches {
		if m.SID == sid {
			foundNew = true
		}
		if m.SID == 7 {
			foundOld = true
		}
	}
	if !foundNew {
		t.Error("reinserted set not retrieved")
	}
	if foundOld {
		t.Error("deleted set retrieved")
	}
}

func TestDeleteAllNeighbours(t *testing.T) {
	// Delete everything a query would return; the query must then come
	// back empty rather than erroring on tombstoned fetches.
	ix, sets := buildSmall(t, 150, 30)
	matches, _, err := ix.Query(sets[0], 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := ix.Delete(m.SID); err != nil {
			t.Fatalf("delete %d: %v", m.SID, err)
		}
	}
	after, _, err := ix.Query(sets[0], 0.5, 1.0)
	if err != nil {
		t.Fatalf("query after deletes: %v", err)
	}
	if len(after) != 0 {
		t.Errorf("expected empty result, got %d", len(after))
	}
}

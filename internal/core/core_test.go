package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/workload"
)

// buildSmall builds a small but realistic index for integration tests.
func buildSmall(t *testing.T, n, budget int) (*Index, []set.Set) {
	t.Helper()
	sets, err := workload.Generate(workload.Set1Params(n))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ix, err := Build(sets, Options{
		Embed: embed.Options{K: 64, Bits: 8, Seed: 42},
		Plan:  optimize.Options{Budget: budget, RecallTarget: 0.9},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return ix, sets
}

func exactAnswer(sets []set.Set, q set.Set, lo, hi float64) map[uint32]struct{} {
	out := make(map[uint32]struct{})
	for i, s := range sets {
		sim := q.Jaccard(s)
		if sim >= lo && sim <= hi {
			out[uint32(i)] = struct{}{}
		}
	}
	return out
}

func TestQueryNoFalsePositives(t *testing.T) {
	ix, sets := buildSmall(t, 500, 60)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		matches, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		truth := exactAnswer(sets, sets[q.SID], q.Lo, q.Hi)
		for _, m := range matches {
			if _, ok := truth[m.SID]; !ok {
				t.Errorf("false positive sid %d sim %g for range [%g,%g]", m.SID, m.Similarity, q.Lo, q.Hi)
			}
			if m.Similarity < q.Lo || m.Similarity > q.Hi {
				t.Errorf("similarity %g outside [%g,%g]", m.Similarity, q.Lo, q.Hi)
			}
		}
	}
}

func TestQueryRecallHighSimilarity(t *testing.T) {
	ix, sets := buildSmall(t, 800, 80)
	// High-similarity queries: the regime the index is strongest in.
	totTruth, totHit := 0, 0
	for sid := 0; sid < 100; sid++ {
		matches, _, err := ix.Query(sets[sid], 0.8, 1.0)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		truth := exactAnswer(sets, sets[sid], 0.8, 1.0)
		totTruth += len(truth)
		totHit += len(matches)
	}
	if totTruth == 0 {
		t.Fatal("workload produced no high-similarity pairs; generator regression")
	}
	recall := float64(totHit) / float64(totTruth)
	if recall < 0.8 {
		t.Errorf("aggregate recall %.3f too low (hits %d / truth %d)", recall, totHit, totTruth)
	}
}

func TestQuerySelfRetrieval(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	missed := 0
	for sid := 0; sid < 50; sid++ {
		matches, _, err := ix.Query(sets[sid], 0.95, 1.0)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		found := false
		for _, m := range matches {
			if int(m.SID) == sid {
				found = true
				if m.Similarity != 1 {
					t.Errorf("self similarity = %g, want 1", m.Similarity)
				}
			}
		}
		if !found {
			missed++
		}
	}
	// Identical vectors collide in every table with probability 1, so a
	// query set that is in the collection must always retrieve itself.
	if missed > 0 {
		t.Errorf("%d/50 self-retrievals missed; identical vectors must always collide", missed)
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	_, stats, err := ix.Query(sets[0], 0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates < stats.Results {
		t.Errorf("candidates %d < results %d", stats.Candidates, stats.Results)
	}
	if stats.IndexIO.Rand() == 0 {
		t.Error("no index I/O recorded")
	}
	if stats.Candidates > 0 && stats.FetchIO.Rand() == 0 {
		t.Error("candidates fetched without random I/O")
	}
	if stats.EnclosedLo > 0.7 || stats.EnclosedHi < 1.0 {
		t.Errorf("enclosing points [%g,%g] do not cover [0.7,1]", stats.EnclosedLo, stats.EnclosedHi)
	}
}

func TestLowSimilarityRangeUsesDFIs(t *testing.T) {
	ix, sets := buildSmall(t, 500, 60)
	// A range well below delta must be answered by the DFI combination.
	var stats QueryStats
	_, err := ix.Candidates(sets[0], 0.0, ix.Plan().Delta/2, &stats)
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	if stats.EnclosedHi > ix.Plan().Delta+1e-9 {
		t.Errorf("enclosing hi %g beyond delta %g", stats.EnclosedHi, ix.Plan().Delta)
	}
}

func TestInsertThenQuery(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	// Insert a near-duplicate of set 0 and expect to find it at high sim.
	elems := append([]set.Elem(nil), sets[0].Elems()...)
	dup := set.New(elems...)
	sid, err := ix.Insert(dup)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	matches, _, err := ix.Query(sets[0], 0.99, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SID == sid {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted duplicate (sid %d) not retrieved at similarity 1", sid)
	}
	if ix.Len() != 301 {
		t.Errorf("Len = %d, want 301", ix.Len())
	}
}

func TestEstimateSimilarity(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	est, eps, err := ix.EstimateSimilarity(sets[3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Errorf("self estimate = %g, want 1", est)
	}
	if eps <= 0 || eps >= 1 {
		t.Errorf("eps = %g out of (0,1)", eps)
	}
	// A random other set should estimate near its true similarity.
	truth := sets[3].Jaccard(sets[77])
	est2, _, err := ix.EstimateSimilarity(sets[3], 77)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est2-truth) > 0.35 {
		t.Errorf("estimate %g too far from truth %g", est2, truth)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	sets, _ := workload.Generate(workload.Set1Params(10))
	if _, err := Build(sets, Options{Plan: optimize.Options{Budget: 0}}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestQueryInvalidRange(t *testing.T) {
	ix, sets := buildSmall(t, 100, 30)
	if _, _, err := ix.Query(sets[0], 0.9, 0.1); err == nil {
		t.Error("inverted range accepted")
	}
}

// sidDiff and sidUnion are the allocating views of the append-style merge
// kernels, kept as test helpers so the set-algebra checks exercise them.
func sidDiff(a, b []uint32) []uint32  { return sidDiffInto(nil, a, b) }
func sidUnion(a, b []uint32) []uint32 { return sidUnionInto(nil, a, b) }

func TestSidSetOps(t *testing.T) {
	a := []uint32{1, 2, 3, 5, 8}
	b := []uint32{2, 3, 4, 8}
	d := sidDiff(a, b)
	want := []uint32{1, 5}
	if len(d) != len(want) {
		t.Fatalf("diff = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diff = %v, want %v", d, want)
		}
	}
	u := sidUnion(a, b)
	wantU := []uint32{1, 2, 3, 4, 5, 8}
	if len(u) != len(wantU) {
		t.Fatalf("union = %v, want %v", u, wantU)
	}
	for i := range wantU {
		if u[i] != wantU[i] {
			t.Fatalf("union = %v, want %v", u, wantU)
		}
	}
	if got := sidDiff(nil, b); len(got) != 0 {
		t.Errorf("diff(nil, b) = %v", got)
	}
	if got := sidUnion(nil, nil); len(got) != 0 {
		t.Errorf("union(nil, nil) = %v", got)
	}
}

func TestSidOpsProperties(t *testing.T) {
	// Model-based check of the sorted-sid set algebra against maps.
	f := func(rawA, rawB []uint16) bool {
		mkSorted := func(raw []uint16) []uint32 {
			m := map[uint32]bool{}
			for _, v := range raw {
				m[uint32(v%64)] = true
			}
			out := make([]uint32, 0, len(m))
			for v := range m {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mkSorted(rawA), mkSorted(rawB)
		inB := map[uint32]bool{}
		for _, v := range b {
			inB[v] = true
		}
		diff := sidDiff(append([]uint32(nil), a...), b)
		for _, v := range diff {
			if inB[v] {
				return false
			}
		}
		union := sidUnion(a, b)
		if len(union) < len(a) || len(union) < len(b) {
			return false
		}
		for i := 1; i < len(union); i++ {
			if union[i-1] >= union[i] {
				return false
			}
		}
		// |A| = |A\B| + |A∩B| and |A∪B| = |A| + |B| - |A∩B|.
		inter := 0
		for _, v := range a {
			if inB[v] {
				inter++
			}
		}
		return len(diff) == len(a)-inter && len(union) == len(a)+len(b)-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Per-shard summary sketches for sound scatter pruning.
//
// A sharded engine pays every shard's probe cost on every query even when
// most shards cannot possibly contribute. The Summary gives each shard a
// compact, lock-free digest of its live contents that the engine consults
// BEFORE taking the shard's read lock, skipping shards that provably
// produce an empty answer. Two independent mechanisms, both strict upper
// bounds (a skipped shard is never one that could have contributed, so
// results are byte-identical with pruning on or off):
//
//  1. Key occupancy. Results are a subset of verified candidates, and
//     candidates come only from filter-index bucket probes. The summary
//     keeps a refcount, hashed over (FI ordinal, table, stored key), of
//     every entry in the shard's filter tables. Because every shard runs
//     the identical plan with identical per-FI seeds (the engine's
//     determinism contract), a query's probe keys are the same in every
//     shard — so the engine derives them once and tests each shard's
//     refcounts. If every probe key of every positive-probe FI of the
//     Section 4.3 case analysis is unoccupied, the shard's candidate set
//     is empty and the shard is skipped. Hash collisions in the fixed-size
//     refcount array only inflate occupancy — they can suppress a skip,
//     never cause one, so collisions cost performance, not correctness.
//     (The emptiness test assumes exact-key probe semantics, which is what
//     core builds; under hashtable.WholeBucket a probe could return
//     entries whose key differs from the probe key.)
//
//  2. Set-size histogram. Exact Jaccard obeys J(q,s) <= min(|q|,|s|) /
//     max(|q|,|s|), so a refcounted histogram of live set sizes (log2
//     buckets) yields a true upper bound on any exact similarity the shard
//     can produce. If that bound is below the query's s1 — or below the
//     current global k-th-best similarity of a TopK scatter — the shard
//     cannot place a result and is skipped. This bound is on the EXACT
//     similarity of the verification step, independent of which candidates
//     the filters surface, so it composes with the one-sided filter
//     approximation without changing it.
//
// Concurrency. All counters are atomics. Mutations update the summary
// inside the core's exclusive write lock (Insert/Delete), but the engine
// READS the summary without any core lock. That is sound: a prune check
// racing a mutation may see the summary before or after that mutation's
// counts, which corresponds to serializing the query before or after the
// concurrent mutation — both legal outcomes. Any mutation that completed
// before the query began is visible (the atomic increments
// happened-before the mutator returned). The summary is plan-dependent
// state: it is rebuilt by core.Build on every load, recovery, and retune
// rebuild, and journal replay maintains it through Insert/Delete — so
// every plan generation's cores carry summaries consistent with their own
// FI structure, with no separate persistence format.
package core

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/minhash"
	"repro/internal/set"
)

// summarySlots sizes the occupancy refcount array (power of two). 32Ki
// slots × 4 bytes = 128KiB per shard: collisions stay rare for the
// per-shard table populations the optimizer produces, and a collision only
// weakens pruning.
const summarySlots = 1 << 15

// sizeBuckets spans bits.Len of any set length (uint64 elements → ≤ 64
// significant bits, plus bucket 0 for empty sets).
const sizeBuckets = 65

// noSizeBucket marks a sid with no recorded size (tombstoned at build).
const noSizeBucket = 0xFF

// Summary is one shard's pruning digest. Safe for concurrent use: readers
// need no lock; writers must already be serialized (they run under the
// owning core's write lock).
type Summary struct {
	occ   [summarySlots]atomic.Uint32
	sizes [sizeBuckets]atomic.Uint32
}

func newSummary() *Summary { return &Summary{} }

// slot hashes (fi, table, key) into the occupancy array. fi and table are
// folded in before finalization so the same stored key under different
// tables (or the same table position across FIs) lands independently.
func summarySlot(fi, table int, key uint64) int {
	h := key ^ (uint64(fi)*0x9E3779B97F4A7C15 + uint64(table)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB)
	h ^= h >> 33
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return int(h & (summarySlots - 1))
}

// addKeys records one set's insert keys for FI ordinal fi (keys[i] is
// table i's key, as produced by filter.AppendInsertKeys).
func (s *Summary) addKeys(fi int, keys []uint64) {
	for t, k := range keys {
		s.occ[summarySlot(fi, t, k)].Add(1)
	}
}

// removeKeys reverses addKeys for a deleted set (same keys, same order).
func (s *Summary) removeKeys(fi int, keys []uint64) {
	for t, k := range keys {
		s.occ[summarySlot(fi, t, k)].Add(^uint32(0))
	}
}

// addStoredKey records one already-stored table entry (the bulk build path
// fed by filter.RangeStoredKeys).
func (s *Summary) addStoredKey(fi, table int, key uint64) {
	s.occ[summarySlot(fi, table, key)].Add(1)
}

// sizeBucket maps a set length to its histogram bucket.
func sizeBucket(n int) uint8 { return uint8(bits.Len(uint(n))) }

// addSize / removeSizeBucket maintain the live set-size histogram.
func (s *Summary) addSize(n int) uint8 {
	b := sizeBucket(n)
	s.sizes[b].Add(1)
	return b
}

func (s *Summary) removeSizeBucket(b uint8) {
	if b != noSizeBucket {
		s.sizes[b].Add(^uint32(0))
	}
}

// anyOccupied reports whether any of FI fi's probe keys has a live entry
// refcount (keys[i] probes table i).
func (s *Summary) anyOccupied(fi int, keys []uint64) bool {
	for t, k := range keys {
		if s.occ[summarySlot(fi, t, k)].Load() > 0 {
			return true
		}
	}
	return false
}

// Empty reports whether every positive-probe FI of the probe plan finds
// only unoccupied keys — in which case the shard's candidate set (a subset
// of the union of those FIs' probe vectors) is provably empty and the
// shard can be skipped with byte-identical results.
func (s *Summary) Empty(p *ShardProbe) bool {
	for i, fi := range p.fis {
		if s.anyOccupied(fi, p.keys[i]) {
			return false
		}
	}
	return true
}

// SizeUpperBound returns an upper bound on the exact Jaccard similarity
// between a query of qlen elements and ANY live set in the shard, from the
// size histogram alone: J(q,s) <= min(|q|,|s|)/max(|q|,|s|), maximized
// over occupied size buckets. An empty shard returns 0.
func (s *Summary) SizeUpperBound(qlen int) float64 {
	best := 0.0
	for b := 0; b < sizeBuckets; b++ {
		if s.sizes[b].Load() == 0 {
			continue
		}
		ub := sizeBoundFor(qlen, b)
		if ub > best {
			best = ub
			if best >= 1 {
				return 1
			}
		}
	}
	return best
}

// sizeBoundFor bounds J(q, s) for |q| = qlen against any |s| in bucket b
// (bucket b >= 1 holds sizes [2^(b-1), 2^b - 1]; bucket 0 holds empty
// sets, which share no element with anything).
func sizeBoundFor(qlen, b int) float64 {
	if b == 0 {
		if qlen == 0 {
			return 1 // both empty: never prune on this degenerate bucket
		}
		return 0
	}
	lo := uint64(1) << (b - 1)
	hi := uint64(1)<<b - 1
	q := uint64(qlen)
	switch {
	case q < lo:
		return float64(q) / float64(lo)
	case q > hi:
		return float64(hi) / float64(q)
	default:
		return 1
	}
}

// ShardProbe is the shard-independent part of a pruning decision for one
// query: the enclosure it resolved to, the query's cardinality, and the
// probe keys of every FI whose vector can contribute candidates under the
// Section 4.3 case analysis. Built once per query (plans and per-FI bit
// positions are identical across shards) and tested against each shard's
// Summary.
type ShardProbe struct {
	// Lo, Hi are the enclosing partition points (range probes only; zero
	// for TopK probes).
	Lo, Hi float64
	// QLen is the query set's cardinality, for SizeUpperBound.
	QLen int
	fis  []int
	keys [][]uint64
}

// BuildRangeProbe derives the pruning probe for the range [s1, s2] from a
// query signature. It reads only state that is immutable after Build
// (plan, FI structure, embedding), so no lock is taken. ok is false when
// the range is invalid or the plan has no usable FI for it — the shards
// must then run (and fail) identically rather than be pruned.
func (ix *Index) BuildRangeProbe(q set.Set, sig minhash.Signature, s1, s2 float64) (*ShardProbe, bool) {
	if s1 > s2 {
		return nil, false
	}
	src := ix.emb.Bits(sig)
	lo, hi := ix.enclose(s1, s2)
	p := &ShardProbe{Lo: lo, Hi: hi, QLen: q.Len()}
	add := func(ord int) {
		p.fis = append(p.fis, ord)
		p.keys = append(p.keys, ix.fis[ord].AppendProbeKeys(src, nil))
	}
	_, hiIsDFI := ix.dfis[hi]
	_, loIsSFI := ix.sfis[lo]
	switch {
	case hiIsDFI:
		// A = DissimVector(hi) \ DissimVector(lo) ⊆ DissimVector(hi).
		add(ix.dfiOrd[hi])
	case loIsSFI:
		// A = SimVector(lo) \ SimVector(hi) ⊆ SimVector(lo).
		add(ix.sfiOrd[lo])
	default:
		// Mixed case around the δ point: A ⊆ DissimVector(δ) ∪ SimVector(δ).
		dPoint, ok := ix.bothKindsPoint()
		if !ok {
			return nil, false
		}
		add(ix.dfiOrd[dPoint])
		add(ix.sfiOrd[dPoint])
	}
	return p, true
}

// BuildTopKProbe derives the pruning probe for a TopK walk: candidates can
// come from any SFI's vector or, as the final fallback, the δ-point DFI's.
// A probe with no FIs at all means the walk surfaces nothing — trivially
// empty, hence trivially skippable.
func (ix *Index) BuildTopKProbe(q set.Set, sig minhash.Signature) *ShardProbe {
	src := ix.emb.Bits(sig)
	p := &ShardProbe{QLen: q.Len()}
	points := make([]float64, 0, len(ix.sfiOrd))
	for point := range ix.sfiOrd {
		points = append(points, point)
	}
	sort.Float64s(points)
	for _, point := range points {
		ord := ix.sfiOrd[point]
		p.fis = append(p.fis, ord)
		p.keys = append(p.keys, ix.fis[ord].AppendProbeKeys(src, nil))
	}
	if dPoint, ok := ix.bothKindsPoint(); ok {
		ord := ix.dfiOrd[dPoint]
		p.fis = append(p.fis, ord)
		p.keys = append(p.keys, ix.fis[ord].AppendProbeKeys(src, nil))
	}
	return p
}

// Summary returns the shard's pruning digest. The pointer is immutable
// after Build; the digest's counters are atomics, so the engine reads it
// without taking the core lock.
func (ix *Index) Summary() *Summary { return ix.sum }

package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/optimize"
	"repro/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, sets := buildSmall(t, 400, 50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d sets, want %d", loaded.Len(), ix.Len())
	}
	// The rebuild is deterministic: identical plans and identical query
	// results.
	if got, want := loaded.Plan().Cuts, ix.Plan().Cuts; len(got) != len(want) {
		t.Fatalf("cuts differ: %v vs %v", got, want)
	}
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		a, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d results after reload", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: result %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(strings.NewReader("SSRIDX1\ncorrupt-gob-payload")); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestSaveLoadAfterDelete(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(sets)-1 {
		t.Errorf("loaded %d sets, want %d (deleted sets compacted)", loaded.Len(), len(sets)-1)
	}
}

func TestSaveLoadPreservesEmbedding(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(150))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(sets, Options{
		Embed: embed.Options{K: 48, Bits: 6, Seed: 99},
		Plan:  optimize.Options{Budget: 30, RecallTarget: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Embedder().K() != 48 {
		t.Errorf("K = %d after reload", loaded.Embedder().K())
	}
	if loaded.Embedder().Dimension() != 48*64 {
		t.Errorf("dimension = %d after reload", loaded.Embedder().Dimension())
	}
}

package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/optimize"
	"repro/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, sets := buildSmall(t, 400, 50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d sets, want %d", loaded.Len(), ix.Len())
	}
	// The rebuild is deterministic: identical plans and identical query
	// results.
	if got, want := loaded.Plan().Cuts, ix.Plan().Cuts; len(got) != len(want) {
		t.Fatalf("cuts differ: %v vs %v", got, want)
	}
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		a, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d results after reload", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: result %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(strings.NewReader("SSRIDX1\ncorrupt-gob-payload")); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestSaveLoadAfterDelete(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(sets)-1 {
		t.Errorf("loaded %d sets, want %d (deleted sets compacted)", loaded.Len(), len(sets)-1)
	}
}

func TestSaveLoadPreservesEmbedding(t *testing.T) {
	sets, err := workload.Generate(workload.Set1Params(150))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(sets, Options{
		Embed: embed.Options{K: 48, Bits: 6, Seed: 99},
		Plan:  optimize.Options{Budget: 30, RecallTarget: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Embedder().K() != 48 {
		t.Errorf("K = %d after reload", loaded.Embedder().K())
	}
	if loaded.Embedder().Dimension() != 48*64 {
		t.Errorf("dimension = %d after reload", loaded.Embedder().Dimension())
	}
}

// TestSaveLoadPreservesSIDs pins the sid-preserving layout: deleted sids
// come back as tombstones, so sid-addressed operations (replay from a log,
// a follow-up Insert) behave exactly as on the saved index, and a second
// Save emits byte-identical output.
func TestSaveLoadPreservesSIDs(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	for _, sid := range []uint32{5, 0, 123} {
		if err := ix.Delete(sid); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(sets)-3 {
		t.Fatalf("loaded %d live sets, want %d", loaded.Len(), len(sets)-3)
	}
	// Tombstones survive: re-deleting errors, live sids delete fine.
	if err := loaded.Delete(5); err == nil {
		t.Fatal("deleting a tombstoned sid succeeded after reload")
	}
	if err := loaded.Delete(7); err != nil {
		t.Fatalf("deleting live sid 7 after reload: %v", err)
	}
	if err := ix.Delete(7); err != nil {
		t.Fatal(err)
	}
	// The next insert lands on the same sid in both.
	a, err := ix.Insert(sets[3])
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Insert(sets[3])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("insert sid diverged after reload: %d vs %d", a, b)
	}
	// Both indices now hold identical state: snapshots are byte-identical.
	var sa, sb bytes.Buffer
	if err := ix.Save(&sa); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("snapshots diverge after reload + identical mutations")
	}
	// And queries agree.
	q := sets[42]
	ra, _, err := ix.Query(q, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := loaded.Query(q, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("query results differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestLoadRejectsBadSnapshots drives the semantic validation: structurally
// valid gob with hostile values must error, not panic or allocate wildly.
func TestLoadRejectsBadSnapshots(t *testing.T) {
	base := func() snapshot {
		return snapshot{
			EmbedK:    4,
			EmbedBits: 6,
			Sets:      [][]uint64{{1, 2}},
			Sigs:      [][]uint64{{1, 2, 3, 4}},
			SIDs:      []uint32{0},
			NumSIDs:   1,
		}
	}
	cases := map[string]func(*snapshot){
		"zero k":          func(s *snapshot) { s.EmbedK = 0 },
		"huge k":          func(s *snapshot) { s.EmbedK = 1 << 30 },
		"huge bits":       func(s *snapshot) { s.EmbedBits = 64 },
		"negative page":   func(s *snapshot) { s.PageSize = -1 },
		"sig mismatch":    func(s *snapshot) { s.Sigs = [][]uint64{{1}} },
		"sig count":       func(s *snapshot) { s.Sigs = nil },
		"sid count":       func(s *snapshot) { s.SIDs = nil },
		"sid out of room": func(s *snapshot) { s.SIDs = []uint32{9} },
		"huge sid space":  func(s *snapshot) { s.NumSIDs = 1 << 30 },
		"nan fi point": func(s *snapshot) {
			s.Plan.FIs = []optimize.FI{{Point: math.NaN(), Tables: 1}}
		},
		"fi point 0": func(s *snapshot) {
			s.Plan.FIs = []optimize.FI{{Point: 0, Tables: 1}}
		},
		"fi zero tables": func(s *snapshot) {
			s.Plan.FIs = []optimize.FI{{Point: 0.5, Tables: 0}}
		},
		"fi huge tables": func(s *snapshot) {
			s.Plan.FIs = []optimize.FI{{Point: 0.5, Tables: 1 << 20}}
		},
	}
	for name, mutate := range cases {
		snap := base()
		mutate(&snap)
		var buf bytes.Buffer
		buf.WriteString(snapshotMagic)
		if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := Load(&buf); err == nil {
			t.Errorf("%s: hostile snapshot accepted", name)
		}
	}
}

package core

import (
	"sort"
	"testing"
)

func TestTopKBasics(t *testing.T) {
	ix, sets := buildSmall(t, 500, 60)
	const k = 10
	got, stats, err := ix.TopK(sets[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	if len(got) > k {
		t.Fatalf("got %d results, want <= %d", len(got), k)
	}
	// Self must be first with similarity 1.
	if got[0].SID != 0 || got[0].Similarity != 1 {
		t.Errorf("best = %+v, want self at similarity 1", got[0])
	}
	// Descending order, ties by sid.
	for i := 1; i < len(got); i++ {
		if got[i].Similarity > got[i-1].Similarity {
			t.Fatal("results not sorted by descending similarity")
		}
		if got[i].Similarity == got[i-1].Similarity && got[i].SID < got[i-1].SID {
			t.Fatal("sid tie-break violated")
		}
	}
	if stats.Results != len(got) {
		t.Errorf("stats.Results = %d, len = %d", stats.Results, len(got))
	}
	if stats.Candidates < len(got) {
		t.Errorf("candidates %d < results %d", stats.Candidates, len(got))
	}
}

func TestTopKMatchesBruteForceOnTop(t *testing.T) {
	ix, sets := buildSmall(t, 400, 60)
	const k = 5
	for _, q := range []int{1, 50, 123} {
		got, _, err := ix.TopK(sets[q], k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force top-k.
		type pair struct {
			sid int
			sim float64
		}
		all := make([]pair, len(sets))
		for i, s := range sets {
			all[i] = pair{i, sets[q].Jaccard(s)}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].sim != all[j].sim {
				return all[i].sim > all[j].sim
			}
			return all[i].sid < all[j].sid
		})
		// The returned similarities must be close to the true top-k values:
		// allow filter misses but the best result must be exact (self).
		if len(got) == 0 || got[0].Similarity != 1 {
			t.Fatalf("query %d: self not found: %+v", q, got)
		}
		// At least half the true top-k should be recovered for clustered
		// queries; skip when truth has near-zero neighbours.
		if all[k-1].sim > 0.5 {
			found := 0
			truth := map[int]bool{}
			for _, p := range all[:k] {
				truth[p.sid] = true
			}
			for _, m := range got {
				if truth[int(m.SID)] {
					found++
				}
			}
			if found < k/2 {
				t.Errorf("query %d: only %d of true top-%d recovered", q, found, k)
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	ix, sets := buildSmall(t, 100, 30)
	if _, _, err := ix.TopK(sets[0], 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.TopK(sets[0], -3); err == nil {
		t.Error("negative k accepted")
	}
}

func TestTopKAfterDelete(t *testing.T) {
	ix, sets := buildSmall(t, 200, 40)
	got, _, err := ix.TopK(sets[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	victim := got[0].SID
	if err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	after, _, err := ix.TopK(sets[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range after {
		if m.SID == victim {
			t.Error("deleted sid in top-k")
		}
	}
}

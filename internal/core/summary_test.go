package core

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/storage"
)

// TestSizeBoundSoundness brute-forces the histogram bound: for every
// stored size n and query size q in a broad range, the exact size-ratio
// ceiling min/max must never exceed the bucket bound SizeUpperBound
// consults — otherwise the prune could drop a real match.
func TestSizeBoundSoundness(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 100, 1023, 1024, 5000}
	for _, q := range sizes {
		for _, n := range sizes {
			ratio := 1.0
			if q != n {
				mn, mx := q, n
				if mn > mx {
					mn, mx = mx, mn
				}
				if mx == 0 {
					ratio = 1
				} else {
					ratio = float64(mn) / float64(mx)
				}
			}
			if q == 0 && n == 0 {
				ratio = 1
			}
			bound := sizeBoundFor(q, int(sizeBucket(n)))
			if bound < ratio-1e-12 {
				t.Fatalf("q=%d n=%d: bucket bound %.6f below the true size ceiling %.6f", q, n, bound, ratio)
			}
		}
	}
}

// TestSummaryUpperBoundHistogram: SizeUpperBound over a concrete
// histogram must equal the max bucket bound and drop to 0 once every
// refcount is released.
func TestSummaryUpperBoundHistogram(t *testing.T) {
	s := newSummary()
	b1 := s.addSize(4)   // bucket for sizes [4,7]
	b2 := s.addSize(400) // bucket for sizes [256,511]
	if got := s.SizeUpperBound(5); got != 1 {
		t.Fatalf("in-bucket query bound = %g, want 1", got)
	}
	if got, want := s.SizeUpperBound(64), 64.0/256.0; got != want {
		t.Fatalf("between-buckets bound = %g, want %g", got, want)
	}
	s.removeSizeBucket(b2)
	if got, want := s.SizeUpperBound(64), 7.0/64.0; got != want {
		t.Fatalf("after removing the large bucket, bound = %g, want %g", got, want)
	}
	s.removeSizeBucket(b1)
	if got := s.SizeUpperBound(64); got != 0 {
		t.Fatalf("empty histogram bound = %g, want 0", got)
	}
	s.removeSizeBucket(noSizeBucket) // must be a no-op, not an underflow
	if got := s.SizeUpperBound(0); got != 0 {
		t.Fatalf("after no-op remove, bound = %g, want 0", got)
	}
}

// summarySnapshot flattens a summary's counters for comparison.
func summarySnapshot(s *Summary) ([summarySlots]uint32, [sizeBuckets]uint32) {
	var occ [summarySlots]uint32
	var sz [sizeBuckets]uint32
	for i := range occ {
		occ[i] = s.occ[i].Load()
	}
	for i := range sz {
		sz[i] = s.sizes[i].Load()
	}
	return occ, sz
}

// rebuiltSummary recomputes what the summary should contain from the
// index's actual filter-table contents and live set sizes.
func rebuiltSummary(ix *Index) *Summary {
	s := newSummary()
	for ord, f := range ix.fis {
		f.RangeStoredKeys(func(table int, key uint64) { s.addStoredKey(ord, table, key) })
	}
	for sid, b := range ix.sidSizeBucket {
		if b == noSizeBucket {
			continue
		}
		s.sizes[b].Add(1)
		_ = sid
	}
	return s
}

func summaryTestSets(n int) []set.Set {
	sets := make([]set.Set, n)
	for i := range sets {
		elems := make([]set.Elem, 0, 6+i%9)
		for j := 0; j < 6+i%9; j++ {
			elems = append(elems, set.Elem((i%7)*10+j))
		}
		sets[i] = set.New(elems...)
	}
	return sets
}

// TestSummaryTracksMutations pins the maintenance invariant: after any
// mix of Inserts and Deletes, the incrementally-maintained summary equals
// a from-scratch rebuild over the live table contents — every refcount,
// every size bucket.
func TestSummaryTracksMutations(t *testing.T) {
	sets := summaryTestSets(48)
	ix, err := Build(sets, Options{
		Embed: embed.Options{K: 24, Bits: 6, Seed: 11},
		Plan:  optimize.Options{Budget: 40, RecallTarget: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		gotOcc, gotSz := summarySnapshot(ix.sum)
		wantOcc, wantSz := summarySnapshot(rebuiltSummary(ix))
		if gotOcc != wantOcc {
			t.Fatalf("%s: occupancy refcounts diverge from a fresh rebuild", stage)
		}
		if gotSz != wantSz {
			t.Fatalf("%s: size histogram diverges from a fresh rebuild (got %v, want %v)", stage, gotSz, wantSz)
		}
	}
	check("post-build")

	var added []storage.SID
	for i := 0; i < 20; i++ {
		elems := make([]set.Elem, 0, 3+i%30)
		for j := 0; j < 3+i%30; j++ {
			elems = append(elems, set.Elem(1000+i*40+j))
		}
		sid, err := ix.Insert(set.New(elems...))
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, sid)
	}
	check("post-insert")

	for i := 0; i < len(added); i += 2 {
		if err := ix.Delete(added[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	check("post-delete")
}

// TestRangeProbeContract: invalid ranges and valid enclosures behave as
// the engine relies on — no probe for an invalid range, a probe whose
// occupancy test finds the query's own keys for a self-query, and a
// sound Empty verdict on a summary with no matching keys.
func TestRangeProbeContract(t *testing.T) {
	sets := summaryTestSets(48)
	ix, err := Build(sets, Options{
		Embed: embed.Options{K: 24, Bits: 6, Seed: 11},
		Plan:  optimize.Options{Budget: 40, RecallTarget: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	sig := ix.emb.Sign(sets[0])
	if _, ok := ix.BuildRangeProbe(sets[0], sig, 0.9, 0.1); ok {
		t.Fatal("BuildRangeProbe accepted an inverted range")
	}
	p, ok := ix.BuildRangeProbe(sets[0], sig, 0.3, 1.0)
	if !ok {
		t.Fatal("BuildRangeProbe rejected a valid range on a plan with FIs")
	}
	if p.QLen != sets[0].Len() {
		t.Fatalf("probe QLen = %d, want %d", p.QLen, sets[0].Len())
	}
	if ix.sum.Empty(p) {
		t.Fatal("the index's own summary reported a stored set's probe as empty")
	}
	if !newSummary().Empty(p) {
		t.Fatal("a fresh (empty) summary failed to report the probe as empty")
	}
	if tp := ix.BuildTopKProbe(sets[0], sig); ix.sum.Empty(tp) {
		t.Fatal("the index's own summary reported the TopK probe as empty")
	}
}

// TestSummarySlotSpread sanity-checks the slot hash: distinct (fi,
// table, key) triples from a realistic pattern must not pile into a
// handful of slots (collisions only cost pruning power, but a degenerate
// hash would silently disable the mechanism).
func TestSummarySlotSpread(t *testing.T) {
	seen := make(map[int]int)
	for fi := 0; fi < 3; fi++ {
		for table := 0; table < 64; table++ {
			for k := uint64(0); k < 32; k++ {
				seen[summarySlot(fi, table, k)]++
			}
		}
	}
	worst := 0
	for _, c := range seen {
		if c > worst {
			worst = c
		}
	}
	if worst > 8 {
		t.Fatalf("slot hash piled %d of %d triples into one slot", worst, 3*64*32)
	}
	if len(seen) < 5000 {
		t.Fatalf("slot hash used only %d distinct slots for 6144 triples", len(seen))
	}
}

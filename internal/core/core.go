// Package core assembles the paper's complete indexing scheme: the
// embedding pipeline (Section 3), a battery of Similarity and Dissimilarity
// Filter Indices placed and budgeted by the optimizer (Section 5), the
// four-case range query processor (Section 4.3), and exact verification of
// candidates against the stored collection.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/lsh"
	"repro/internal/minhash"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/simdist"
	"repro/internal/storage"
)

// Options configures Build.
type Options struct {
	// Embed configures the S → V → H pipeline. Zero value selects
	// embed.DefaultOptions (k=100, b=8).
	Embed embed.Options
	// Signing selects the signing family for STORED signatures and every
	// similarity estimate (screening, screen-only answers, the tuner's
	// sketch). The zero value is classic k-min at 64 bits/hash — the
	// historical layout. Candidate generation (Hamming embedding, filter
	// keys) always runs on classic full-width signatures regardless, so
	// exact answers are byte-identical across families.
	Signing minhash.Config
	// Plan configures the Section 5 optimizer. Budget is required.
	Plan optimize.Options
	// PageSize is the simulated disk page size (0 = storage default).
	PageSize int
	// PayloadPerElem makes the store account I/O as if each element
	// carried that many extra bytes (its original string form); see
	// storage.NewSetStoreWithPayload. Zero accounts only the compact
	// encoding.
	PayloadPerElem int
	// DistBins is the similarity-histogram resolution (0 = default).
	DistBins int
	// DistSample is the number of pairs sampled to estimate D_S from
	// signatures (Lemma 1). 0 selects min(100·N, 200000). Negative values
	// request the exact O(N²) computation from the stored sets.
	DistSample int
	// DistSeed seeds distribution sampling and bit-position sampling.
	DistSeed int64
	// Distribution, if non-nil, is used directly instead of being
	// estimated (useful for tests and for reusing a known distribution).
	Distribution *simdist.Histogram
	// PlanOverride, if non-nil, is installed verbatim instead of running
	// the optimizer; the distribution is then neither estimated nor
	// consulted. Used by snapshot loading to reproduce an index exactly.
	PlanOverride *optimize.Plan
	// PrecomputedSignatures, if non-nil, must hold one FULL classic
	// signature per set computed under exactly the Embed options given;
	// min-hash signing (the dominant build cost) is then skipped. Used by
	// snapshot loading and the engine's sign-once partitioned build.
	// Positions marked in Tombstones must hold nil signatures.
	PrecomputedSignatures []minhash.Signature
	// PackedSignatures, if non-nil, must hold one PACKED signature per set
	// under the configured Signing family (fam.Words() words each, nil at
	// tombstoned positions) and is installed as the stored representation
	// directly. Requires PlanOverride (the packed estimates must not feed
	// D_S). Snapshot loading and retune use it for non-classic-64 families,
	// whose captured signatures are packed.
	PackedSignatures [][]uint64
	// UnionSizeHint is the approximate average union cardinality of
	// compared pairs, used by families whose confidence width depends on it
	// (SuperMinHash). 0 derives 2× the mean live set size at build time.
	UnionSizeHint int
	// Tombstones, if non-nil, marks positions of sets[i] whose sid was
	// allocated and later deleted: the placeholder is appended to the store
	// and immediately tombstoned, keeping every later sid at its original
	// value, but it enters no filter index and the B+tree skips it. This is
	// what lets the durability layer replay logged operations that name
	// original sids against a reloaded snapshot. Requires PlanOverride and
	// precomputed (full or packed) signatures.
	Tombstones []bool
	// DisableBTree skips the B+tree and resolves sids from the in-memory
	// directory (candidate page I/O is still charged identically).
	DisableBTree bool
	// Workers bounds build parallelism: min-hash signing, distribution
	// sampling, and filter-index population all fan across up to Workers
	// goroutines. 0 selects runtime.GOMAXPROCS(0); 1 forces the serial
	// build. Every value produces a bit-identical index (signing writes are
	// index-addressed, pair sampling is pre-drawn from the seeded rng, and
	// each filter index is populated serially by one goroutine).
	Workers int
	// CountLocatorIO additionally charges B+tree lookup page reads when
	// fetching candidates. The default (off) matches the paper's cost
	// model: one random access per candidate set, sid index cached.
	CountLocatorIO bool
}

// Match is one query result: a set identifier and its exact similarity to
// the query set.
type Match struct {
	SID        storage.SID
	Similarity float64
}

// QueryStats reports what a query cost and what the filters produced.
type QueryStats struct {
	// Candidates is the number of distinct sids the filter combination
	// produced before verification.
	Candidates int
	// Results is the number of candidates that verified into the range.
	Results int
	// Screened is the number of candidates whose page fetch was skipped by
	// signature screening (QueryOptions.Screen); always 0 when screening is
	// off.
	Screened int
	// IndexIO counts bucket-page reads performed by filter probes.
	IndexIO storage.Counter
	// FetchIO counts page reads performed fetching candidate sets.
	FetchIO storage.Counter
	// CPU is the measured processor time of the query (wall time of the
	// in-memory work; the simulated disk contributes no wall time).
	CPU time.Duration
	// EnclosedLo, EnclosedHi are the partition points used.
	EnclosedLo, EnclosedHi float64
}

// SimIOTime returns the simulated I/O time of the query under model m.
func (st *QueryStats) SimIOTime(m storage.CostModel) time.Duration {
	return m.Time(st.IndexIO.Seq()+st.FetchIO.Seq(), st.IndexIO.Rand()+st.FetchIO.Rand())
}

// Index is a built similar-set retrieval index. It is safe for concurrent
// use: queries, estimates, and snapshots take a shared (read) lock and run
// in parallel; Insert and Delete take the exclusive lock and serialize
// against everything. Public entry points acquire ix.mu exactly once and
// delegate to unexported *Locked variants, so they must never call one
// another — a reentrant RLock deadlocks once a writer is queued.
type Index struct {
	// mu guards every field below that mutates after Build: sigs, n, the
	// store heap, the B+tree, filter-index pages, and both pagers. plan,
	// hist, emb, and buildOpts are immutable after Build.
	mu    sync.RWMutex
	emb   *embed.Embedder
	plan  optimize.Plan
	sfis  map[float64]*filter.Index
	dfis  map[float64]*filter.Index
	store *storage.SetStore
	tree  *btree.Tree
	hist  *simdist.Histogram
	// sigs holds the STORED signatures in the signing family's packed
	// layout (for the default classic-64 family the packed layout is the
	// historical full Signature, bit for bit). All similarity estimates go
	// through fam; filter keys always come from classic full signatures.
	sigs []minhash.Signature
	n    int
	// fam is the signing family; classic64 short-circuits the packing
	// paths, recoverable says whether embedding bits can be re-derived from
	// stored words, famEps is the family's 95% half-width at unionHint.
	// All immutable after Build.
	fam         minhash.Family
	classic64   bool
	recoverable bool
	famEps      float64
	unionHint   int
	// fis lists the filter indices in plan order; sfiOrd/dfiOrd map a
	// partition point to its ordinal in fis. Plan order is identical across
	// shards built from the same plan, which is what lets the engine derive
	// one set of probe keys per query and test every shard's summary with
	// it. Immutable after Build.
	fis    []*filter.Index
	sfiOrd map[float64]int
	dfiOrd map[float64]int
	// sum is the shard-pruning digest (see summary.go): the pointer is
	// immutable after Build, its counters are atomics maintained by
	// Insert/Delete under ix.mu's write side and read lock-free by the
	// engine's scatter pruning.
	sum *Summary
	// sidSizeBucket records each sid's size-histogram bucket (noSizeBucket
	// for tombstones) so Delete can decrement the histogram without
	// fetching the set. Guarded by mu; parallel to sigs.
	sidSizeBucket []uint8
	// keyBuf is Insert/Delete's per-FI key scratch (exclusive lock held).
	keyBuf []uint64
	// fiPagers holds one bucket-page pager per filter index (giving each
	// index its own pager is what makes concurrent population race-free and
	// page layout deterministic); dataPager holds B+tree nodes. The set
	// heap lives inside the SetStore.
	fiPagers  []*storage.Pager
	dataPager *storage.Pager
	// scratch pools per-query buffers (query signature, probe vectors,
	// merge outputs) so steady-state queries allocate only their results.
	scratch sync.Pool
	// buildOpts records how the index was built, for snapshots. The Embed
	// options stored are the resolved ones (defaults applied).
	buildOpts Options
}

// treeLocator adapts btree.Tree to storage.SetLocator.
type treeLocator struct {
	t       *btree.Tree
	countIO bool
}

// Locate resolves sid through the B+tree. Lookup I/O is charged only when
// the index was built with CountLocatorIO; the paper's cost analysis
// charges one random access per candidate set and treats the sid index as
// cached (200k entries fit in a few megabytes).
func (l treeLocator) Locate(sid storage.SID, io *storage.Counter) (uint64, uint32, error) {
	if !l.countIO {
		io = nil
	}
	v, err := l.t.Lookup(uint64(sid), io)
	if err != nil {
		return 0, 0, err
	}
	return v.Offset, v.Length, nil
}

// Build preprocesses the collection per Sections 3 and 5 and returns a
// ready index. The input slice is not retained. An empty collection is
// accepted only when the caller supplies the similarity distribution or a
// plan override — a shard of a partitioned engine can start empty and fill
// by Insert, but a standalone build has nothing to optimize against.
func Build(sets []set.Set, opt Options) (*Index, error) {
	if len(sets) == 0 && opt.Distribution == nil && opt.PlanOverride == nil {
		return nil, fmt.Errorf("core: empty collection")
	}
	eopt := opt.Embed
	if eopt.K == 0 {
		eopt = embed.DefaultOptions()
	}
	emb, err := embed.New(eopt)
	if err != nil {
		return nil, err
	}
	scfg, err := opt.Signing.Normalize()
	if err != nil {
		return nil, err
	}
	fam, err := scfg.New(emb.Perms(), emb.K(), eopt.Seed)
	if err != nil {
		return nil, err
	}

	if opt.Tombstones != nil {
		if len(opt.Tombstones) != len(sets) {
			return nil, fmt.Errorf("core: %d tombstone marks for %d sets", len(opt.Tombstones), len(sets))
		}
		if opt.PlanOverride == nil || (opt.PrecomputedSignatures == nil && opt.PackedSignatures == nil) {
			return nil, fmt.Errorf("core: Tombstones requires PlanOverride and precomputed signatures")
		}
	}
	tombstoned := func(i int) bool { return opt.Tombstones != nil && opt.Tombstones[i] }
	live := len(sets)
	for _, dead := range opt.Tombstones {
		if dead {
			live--
		}
	}

	// Validate supplied signatures up front, before any build side effect
	// (store appends, signing): a wrong-length signature must fail the
	// build cleanly rather than panic deep inside the pipeline.
	if opt.PrecomputedSignatures != nil {
		if len(opt.PrecomputedSignatures) != len(sets) {
			return nil, fmt.Errorf("core: %d precomputed signatures for %d sets", len(opt.PrecomputedSignatures), len(sets))
		}
		for i, sig := range opt.PrecomputedSignatures {
			if tombstoned(i) {
				if sig != nil {
					return nil, fmt.Errorf("core: tombstoned position %d carries a signature", i)
				}
				continue
			}
			if len(sig) != emb.K() {
				return nil, fmt.Errorf("core: signature %d has %d coordinates, embedding has k=%d", i, len(sig), emb.K())
			}
		}
	}
	if opt.PackedSignatures != nil {
		if opt.PlanOverride == nil {
			return nil, fmt.Errorf("core: PackedSignatures requires PlanOverride")
		}
		if len(opt.PackedSignatures) != len(sets) {
			return nil, fmt.Errorf("core: %d packed signatures for %d sets", len(opt.PackedSignatures), len(sets))
		}
		for i, w := range opt.PackedSignatures {
			if tombstoned(i) {
				if w != nil {
					return nil, fmt.Errorf("core: tombstoned position %d carries a packed signature", i)
				}
				continue
			}
			if len(w) != fam.Words() {
				return nil, fmt.Errorf("core: packed signature %d has %d words, family %s/b=%d wants %d",
					i, len(w), fam.Name(), fam.BitsPerHash(), fam.Words())
			}
		}
	}

	resolved := opt
	resolved.Embed = eopt
	resolved.Signing = scfg
	resolved.Tombstones = nil       // transient load instruction, not a build parameter
	resolved.PackedSignatures = nil // likewise
	workers := resolveWorkers(opt.Workers)
	ix := &Index{
		buildOpts:   resolved,
		emb:         emb,
		fam:         fam,
		classic64:   scfg.IsClassic64(),
		recoverable: fam.Recoverable(emb.EmbedBits()),
		sfis:        make(map[float64]*filter.Index),
		dfis:        make(map[float64]*filter.Index),
		sfiOrd:      make(map[float64]int),
		dfiOrd:      make(map[float64]int),
		store:       storage.NewSetStoreWithPayload(opt.PageSize, opt.PayloadPerElem),
		n:           live,
		dataPager:   storage.NewPager(opt.PageSize),
	}
	famWords := fam.Words()
	ix.scratch.New = func() any {
		return &queryScratch{sig: make(minhash.Signature, emb.K()), packed: make([]uint64, famWords)}
	}

	// 1. Persist the collection; sids are dense append order. Tombstoned
	// positions keep their sid allocated but are deleted on the spot and
	// never enter the locator.
	if !opt.DisableBTree {
		tree, err := btree.New(ix.dataPager)
		if err != nil {
			return nil, err
		}
		ix.tree = tree
	}
	for i, s := range sets {
		sid := ix.store.Append(s)
		if tombstoned(i) {
			if err := ix.store.Delete(sid); err != nil {
				return nil, err
			}
			continue
		}
		if ix.tree != nil {
			off, length, err := ix.store.Location(sid)
			if err != nil {
				return nil, err
			}
			if err := ix.tree.Insert(uint64(sid), btree.Value{Offset: off, Length: length}); err != nil {
				return nil, err
			}
		}
	}
	if ix.tree != nil {
		ix.store.SetLocator(treeLocator{t: ix.tree, countIO: opt.CountLocatorIO})
	}

	// 2. Min-hash signatures. fullSigs are the classic full-width
	// signatures that drive the Hamming embedding (filter keys) and D_S;
	// ix.sigs is the stored family representation. For classic-64 the two
	// coincide. fullSigs may stay nil on packed-only loads, where filters
	// are populated from packed words (recoverable families) or by
	// re-signing classic from the stored sets.
	var fullSigs []minhash.Signature
	if opt.PrecomputedSignatures != nil {
		fullSigs = opt.PrecomputedSignatures
	}
	switch {
	case opt.PackedSignatures != nil:
		packed := make([]minhash.Signature, len(opt.PackedSignatures))
		for i, w := range opt.PackedSignatures {
			if w != nil {
				packed[i] = minhash.Signature(w)
			}
		}
		ix.sigs = packed
		if ix.classic64 && fullSigs == nil {
			fullSigs = packed // identical representation at 64 bits/hash
		}
	case ix.classic64:
		if fullSigs == nil {
			fullSigs = signCollection(emb, sets, workers)
			nilTombstoned(fullSigs, opt.Tombstones)
		}
		ix.sigs = fullSigs
	default:
		if fullSigs == nil {
			fullSigs = signCollection(emb, sets, workers)
			nilTombstoned(fullSigs, opt.Tombstones)
		}
		ix.sigs = packCollection(fam, fullSigs, sets, workers)
	}

	// 3. Similarity distribution D_S (skipped under a plan override; the
	// packed-only input shape always carries one). Estimation always runs
	// on the classic full signatures, so D_S — and the plan derived from
	// it — is identical across signing families.
	ix.hist = opt.Distribution
	if ix.hist == nil && opt.PlanOverride == nil {
		h, err := EstimateDistribution(sets, fullSigs, opt)
		if err != nil {
			return nil, err
		}
		ix.hist = h
	}

	// 4. Plan: placement, kinds, table budget (Figure 4). The capture
	// model needs the signature length of the embedding it serves.
	if opt.PlanOverride != nil {
		ix.plan = *opt.PlanOverride
	} else {
		popt := opt.Plan
		if popt.SignatureK == 0 {
			popt.SignatureK = emb.K()
		}
		plan, err := optimize.BuildPlan(ix.hist, popt)
		if err != nil {
			return nil, err
		}
		ix.plan = plan
	}

	// 5. Materialize the filter indices and insert every signature. Each
	// index draws bucket pages from its own pager and is populated serially
	// by one goroutine, so the batteries fill concurrently with no shared
	// mutable state and a page layout independent of scheduling.
	fidxs := make([]*filter.Index, len(ix.plan.FIs))
	for i, fi := range ix.plan.FIs {
		pager := storage.NewPager(opt.PageSize)
		fidx, err := filter.New(pager, filter.Options{
			Kind:            fi.Kind,
			Threshold:       embed.HammingFromJaccard(fi.Point),
			Dim:             emb.Dimension(),
			Tables:          fi.Tables,
			Seed:            opt.DistSeed + int64(i)*7919 + 13,
			ExpectedEntries: len(sets),
		})
		if err != nil {
			return nil, err
		}
		ix.fiPagers = append(ix.fiPagers, pager)
		fidxs[i] = fidx
		if fi.Kind == filter.Dissimilar {
			ix.dfis[fi.Point] = fidx
			ix.dfiOrd[fi.Point] = i
		} else {
			ix.sfis[fi.Point] = fidx
			ix.sfiOrd[fi.Point] = i
		}
	}
	ix.fis = fidxs
	switch {
	case fullSigs != nil:
		populateFilters(emb, fullSigs, fidxs, workers)
	case ix.recoverable:
		populateFiltersPacked(emb, fam, ix.sigs, fidxs, workers)
	default:
		// Packed-only load of a family that cannot reproduce the embedding
		// bits: re-sign classic from the stored sets for key derivation
		// only (deterministic, so keys match the original build exactly).
		full := signCollection(emb, sets, workers)
		nilTombstoned(full, opt.Tombstones)
		populateFilters(emb, full, fidxs, workers)
	}

	// 6. Pruning summary: occupancy refcounts straight from the populated
	// buckets (O(entries), no re-hashing) plus the live-size histogram.
	// Load, recovery, and retune all funnel through Build, so every rebuilt
	// core carries a summary consistent with its own plan generation.
	ix.sum = newSummary()
	for ord, f := range fidxs {
		f.RangeStoredKeys(func(table int, key uint64) { ix.sum.addStoredKey(ord, table, key) })
	}
	ix.sidSizeBucket = make([]uint8, len(sets))
	for i, s := range sets {
		if tombstoned(i) {
			ix.sidSizeBucket[i] = noSizeBucket
			continue
		}
		ix.sidSizeBucket[i] = ix.sum.addSize(s.Len())
	}

	// 7. Family confidence half-width. The union hint (≈ average pair
	// union) defaults to 2× the mean live set size; it is recorded in
	// buildOpts so snapshots and retune rebuilds reproduce the same width.
	hint := opt.UnionSizeHint
	if hint <= 0 && live > 0 {
		total := 0
		for i, s := range sets {
			if !tombstoned(i) {
				total += s.Len()
			}
		}
		hint = 2 * total / live
	}
	ix.unionHint = hint
	ix.famEps = fam.Eps95(hint)
	ix.buildOpts.UnionSizeHint = hint
	return ix, nil
}

// nilTombstoned clears signatures at tombstoned positions after a fresh
// signing pass (a tombstoned placeholder signs like an empty set, but must
// enter no filter index and screen against nothing).
func nilTombstoned(sigs []minhash.Signature, tombstones []bool) {
	if tombstones == nil {
		return
	}
	for i, dead := range tombstones {
		if dead {
			sigs[i] = nil
		}
	}
}

// EstimateDistribution reproduces Build's similarity-distribution step as
// a standalone function: the exact histogram from the raw sets when
// opt.DistSample is negative, otherwise the Lemma 1 signature-pair sample
// (default min(100·N, 200000) pairs, seeded with opt.DistSeed+7). The
// sharded engine calls it once over the whole collection before
// partitioning, so every shard plans from the same D_S a monolithic Build
// would have seen — that shared distribution is what keeps plans (and
// therefore filter candidacy) identical across shard counts.
func EstimateDistribution(sets []set.Set, sigs []minhash.Signature, opt Options) (*simdist.Histogram, error) {
	if opt.Distribution != nil {
		return opt.Distribution, nil
	}
	if opt.DistSample < 0 {
		return simdist.ExactPairs(sets, opt.DistBins), nil
	}
	sample := opt.DistSample
	if sample == 0 {
		sample = 100 * len(sets)
		if sample > 200000 {
			sample = 200000
		}
	}
	maxPairs := len(sets) * (len(sets) - 1) / 2
	if sample > maxPairs {
		sample = maxPairs
	}
	if sample < 1 {
		sample = 1
	}
	return simdist.SampleSignaturePairsN(sigs, sample, opt.DistBins, opt.DistSeed+7, resolveWorkers(opt.Workers))
}

// EstimateDistributionFamily is EstimateDistribution with pair
// similarities estimated through a signing family from PACKED signatures —
// the retune path of non-classic families, whose captured signatures are
// packed. The pair sample sequence is identical to EstimateDistribution's
// (same seed arithmetic), only the per-pair estimator differs.
func EstimateDistributionFamily(sets []set.Set, sigs []minhash.Signature, fam minhash.Family, opt Options) (*simdist.Histogram, error) {
	if opt.Distribution != nil {
		return opt.Distribution, nil
	}
	if opt.DistSample < 0 {
		return simdist.ExactPairs(sets, opt.DistBins), nil
	}
	sample := opt.DistSample
	if sample == 0 {
		sample = 100 * len(sets)
		if sample > 200000 {
			sample = 200000
		}
	}
	maxPairs := len(sets) * (len(sets) - 1) / 2
	if sample > maxPairs {
		sample = maxPairs
	}
	if sample < 1 {
		sample = 1
	}
	est := func(a, b minhash.Signature) (float64, error) { return fam.Estimate(a, b) }
	return simdist.SampleSignaturePairsEst(sigs, sample, opt.DistBins, opt.DistSeed+7, resolveWorkers(opt.Workers), est)
}

// SignCollection computes every set's min-hash signature exactly as Build
// does (index-addressed parallel writes, bit-identical for every worker
// count). The embedder must come from the same options the signatures will
// be used with. The sharded engine signs the whole collection once and
// hands each shard its slice as PrecomputedSignatures.
func SignCollection(emb *embed.Embedder, sets []set.Set, workers int) []minhash.Signature {
	return signCollection(emb, sets, resolveWorkers(workers))
}

// SortMatches orders results by descending similarity, ties by ascending
// sid — the query processor's total order. Exported for the engine's
// cross-shard gather, which must merge per-shard result slices back into
// exactly this order.
func SortMatches(matches []Match) { sortMatches(matches) }

// Sets returns the live collection as in-memory set views, indexed by sid
// (tombstoned sids are skipped, so after deletions the result is dense but
// renumbered relative to the original sids).
func (ix *Index) Sets() ([]set.Set, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]set.Set, 0, ix.n)
	err := ix.store.Scan(nil, func(sid storage.SID, s set.Set) bool {
		out = append(out, s)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetsBySID returns the collection indexed by original sid: slot i holds
// sid i's set, with tombstoned sids left as nil pointers. Unlike Sets, no
// renumbering happens after deletions, which is what sid-addressed callers
// (the durability layer's replay, the public snapshot's name alignment)
// need.
func (ix *Index) SetsBySID() ([]*set.Set, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]*set.Set, len(ix.sigs))
	err := ix.store.Scan(nil, func(sid storage.SID, s set.Set) bool {
		cp := s
		out[sid] = &cp
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CaptureRebuild returns everything a from-scratch Build needs to
// reproduce this index's exact sid space at a consistent point in time:
// the sets and STORED signatures indexed by sid (full classic under the
// default family, the family's packed words otherwise — feed them back as
// PrecomputedSignatures or PackedSignatures accordingly), and the
// tombstone marks for deleted sids. The captured signatures alias the index's (signatures are
// immutable once assigned), and sets alias the store's append-only heap —
// both stay valid as the live index keeps mutating, because neither is
// ever rewritten in place. The re-tuner captures each shard under its
// shard mutex, rebuilds off-lock from the capture, and replays the
// journaled delta at swap time.
func (ix *Index) CaptureRebuild() (sets []set.Set, sigs []minhash.Signature, tombstones []bool, err error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.sigs)
	sets = make([]set.Set, n)
	sigs = make([]minhash.Signature, n)
	tombstones = make([]bool, n)
	copy(sigs, ix.sigs)
	for i := range tombstones {
		tombstones[i] = true
	}
	err = ix.store.Scan(nil, func(sid storage.SID, s set.Set) bool {
		sets[sid] = s
		tombstones[sid] = false
		return true
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: capturing collection for rebuild: %w", err)
	}
	return sets, sigs, tombstones, nil
}

// Signature returns sid's STORED signature — full classic under the
// default family, the family's packed words otherwise (nil for tombstoned
// sids). Signatures are immutable once assigned, so the returned slice
// stays valid without the lock. The engine feeds it to the drift tracker
// right after an insert, avoiding a second signing pass; the tracker's
// estimator must therefore be the family's.
func (ix *Index) Signature(sid storage.SID) minhash.Signature {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(sid) >= len(ix.sigs) {
		return nil
	}
	return ix.sigs[sid]
}

// BuildOptions returns the resolved options the index was built with
// (immutable after Build). The re-tuner copies them, overrides the plan
// and inputs, and rebuilds — preserving every knob (page size, seeds,
// worker budget, cost-model switches) the original build used.
func (ix *Index) BuildOptions() Options { return ix.buildOpts }

// Plan returns the optimizer's plan for inspection.
func (ix *Index) Plan() optimize.Plan { return ix.plan }

// Distribution returns the similarity distribution the index was tuned to.
func (ix *Index) Distribution() *simdist.Histogram { return ix.hist }

// Len returns the collection size.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// NumAllocated returns the allocated sid space: live sets plus tombstones.
// Sids are dense in [0, NumAllocated).
func (ix *Index) NumAllocated() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// Store exposes the underlying set store (for the scan baseline and eval).
func (ix *Index) Store() *storage.SetStore { return ix.store }

// Embedder exposes the embedding pipeline (queries must use the same one).
func (ix *Index) Embedder() *embed.Embedder { return ix.emb }

// IndexPages returns the number of pages consumed by filter-index buckets,
// summed across the per-index pagers.
func (ix *Index) IndexPages() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, p := range ix.fiPagers {
		n += p.NumPages()
	}
	return n
}

// enclose finds the partition points minimally enclosing [a, b] among
// {0} ∪ cuts ∪ {1}.
func (ix *Index) enclose(a, b float64) (lo, hi float64) {
	lo, hi = 0.0, 1.0
	for _, c := range ix.plan.Cuts {
		if c <= a && c > lo {
			lo = c
		}
		if c >= b && c < hi {
			hi = c
		}
	}
	return lo, hi
}

// sidDiffInto appends a \ b to dst for sorted sid slices and returns the
// grown slice (sorted-merge, no maps, no per-call allocation once dst has
// capacity).
func sidDiffInto(dst, a, b []storage.SID) []storage.SID {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] == b[j]:
			i++
			j++
		default:
			j++
		}
	}
	return dst
}

// sidUnionInto appends a ∪ b to dst for sorted sid slices and returns the
// grown slice.
func sidUnionInto(dst, a, b []storage.SID) []storage.SID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Candidates runs only the filter stage for the range [s1, s2], returning
// the deduplicated candidate sids (the paper's answer set A before
// verification). Index I/O is charged to stats.
func (ix *Index) Candidates(q set.Set, s1, s2 float64, stats *QueryStats) ([]storage.SID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.candidatesLocked(q, s1, s2, stats)
}

func (ix *Index) candidatesLocked(q set.Set, s1, s2 float64, stats *QueryStats) ([]storage.SID, error) {
	if s1 > s2 {
		return nil, fmt.Errorf("core: invalid range [%g, %g]", s1, s2)
	}
	sig := ix.emb.Sign(q)
	return ix.candidatesFromSignature(sig, s1, s2, stats, nil)
}

// candidatesFromSignature runs the Section 4.3 filter combination. When sc
// is non-nil, probe vectors and merge outputs are written into its reusable
// buffers and the returned slice aliases sc (valid until sc's next use);
// with a nil sc every slice is freshly allocated.
func (ix *Index) candidatesFromSignature(sig minhash.Signature, s1, s2 float64, stats *QueryStats, sc *queryScratch) ([]storage.SID, error) {
	src := ix.emb.Bits(sig)
	lo, hi := ix.enclose(s1, s2)
	stats.EnclosedLo, stats.EnclosedHi = lo, hi

	// probe fills buffer slot with the filter vector at point p (nil when
	// the battery has no index there).
	probe := func(m map[float64]*filter.Index, p float64, slot int) []storage.SID {
		f, ok := m[p]
		if !ok {
			return nil
		}
		if sc == nil {
			return f.Vector(src, &stats.IndexIO)
		}
		sc.bufs[slot] = f.VectorAppend(src, &stats.IndexIO, sc.bufs[slot][:0])
		return sc.bufs[slot]
	}
	// merged stores a merge output back into its slot (retaining grown
	// capacity for the next query) and returns it.
	out := func(slot int) []storage.SID {
		if sc == nil {
			return nil
		}
		return sc.bufs[slot][:0]
	}
	merged := func(slot int, v []storage.SID) []storage.SID {
		if sc != nil {
			sc.bufs[slot] = v
		}
		return v
	}

	_, hiIsDFI := ix.dfis[hi]
	_, loIsSFI := ix.sfis[lo]
	var a []storage.SID
	switch {
	case hiIsDFI:
		// lo = r_i, up = r_j: A = DissimVector(up) \ DissimVector(lo);
		// DissimVector(0) is empty.
		a = merged(4, sidDiffInto(out(4), probe(ix.dfis, hi, 0), probe(ix.dfis, lo, 1)))
	case loIsSFI:
		// lo = t_i, up = t_j: A = SimVector(lo) \ SimVector(up);
		// SimVector(1) is empty.
		var upper []storage.SID
		if hi < 1 {
			upper = probe(ix.sfis, hi, 1)
		}
		a = merged(4, sidDiffInto(out(4), probe(ix.sfis, lo, 0), upper))
	default:
		// Mixed: combine around the δ point carrying both kinds
		// (Section 4.3 third case).
		dPoint, ok := ix.bothKindsPoint()
		if !ok {
			return nil, fmt.Errorf("core: no usable filter indices for range [%g, %g]", s1, s2)
		}
		var loVec []storage.SID
		if lo > 0 {
			loVec = probe(ix.dfis, lo, 1)
		}
		var hiVec []storage.SID
		if hi < 1 {
			hiVec = probe(ix.sfis, hi, 3)
		}
		d1 := merged(4, sidDiffInto(out(4), probe(ix.dfis, dPoint, 0), loVec))
		d2 := merged(5, sidDiffInto(out(5), probe(ix.sfis, dPoint, 2), hiVec))
		a = merged(6, sidUnionInto(out(6), d1, d2))
	}
	stats.Candidates = len(a)
	return a, nil
}

// bothKindsPoint returns the smallest probe point carrying both a
// dissimilarity- and a similarity-kind filter index. Smallest (rather
// than map-iteration first) keeps the chosen pivot — and every artifact
// derived from the query plan — identical across runs.
func (ix *Index) bothKindsPoint() (float64, bool) {
	points := make([]float64, 0, len(ix.dfis))
	for p := range ix.dfis {
		if _, ok := ix.sfis[p]; ok {
			points = append(points, p)
		}
	}
	if len(points) == 0 {
		return 0, false
	}
	sort.Float64s(points)
	return points[0], true
}

// Query answers the set similarity range query (q, [s1, s2]) of
// Definition 2: filter, fetch, verify. Results are sorted by descending
// similarity, ties by ascending sid.
func (ix *Index) Query(q set.Set, s1, s2 float64) ([]Match, QueryStats, error) {
	return ix.QueryWithOptions(q, s1, s2, QueryOptions{})
}

// QueryWithOptions is Query with the processor tunables of QueryOptions:
// signature screening and bounded verification parallelism. The zero value
// reproduces Query exactly.
func (ix *Index) QueryWithOptions(q set.Set, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.queryLocked(q, s1, s2, opt)
}

func (ix *Index) queryLocked(q set.Set, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	return ix.presignedLocked(q, nil, s1, s2, opt)
}

// presignedLocked is the range-query processor with an optional caller-
// supplied signature. A nil sig signs q locally (the single-index path);
// the sharded engine signs once per query and fans the same signature to
// every shard — embedders are built from identical options, so the local
// signature would be bit-identical anyway, and skipping the per-shard
// SignInto removes the dominant redundant CPU cost of a scatter.
func (ix *Index) presignedLocked(q set.Set, sig minhash.Signature, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	var stats QueryStats
	start := time.Now()
	if s1 > s2 {
		return nil, stats, fmt.Errorf("core: invalid range [%g, %g]", s1, s2)
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	if sig == nil {
		ix.emb.SignInto(q, sc.sig)
		sig = sc.sig
	}
	cands, err := ix.candidatesFromSignature(sig, s1, s2, &stats, sc)
	if err != nil {
		return nil, stats, err
	}
	var qp []uint64
	if opt.Screen {
		qp = ix.packQuery(q, sig, sc.packed)
	}
	matches, err := ix.verifyCandidates(q, qp, cands, s1, s2, opt, &stats)
	if err != nil {
		return nil, stats, err
	}
	sortMatches(matches)
	stats.Results = len(matches)
	stats.CPU = time.Since(start)
	return matches, stats, nil
}

// QueryPresigned is QueryWithOptions with the query's min-hash signature
// already computed (by an embedder built from the same options — the
// engine's sign-once scatter path). sig must have the embedding's k
// coordinates and is not retained.
func (ix *Index) QueryPresigned(q set.Set, sig minhash.Signature, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.presignedLocked(q, sig, s1, s2, opt)
}

// sortMatches orders results by descending similarity, ties by ascending
// sid — a deterministic total order, so serial and parallel verification
// return identical slices.
func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].SID < matches[j].SID
	})
}

// Insert adds a new set to the collection and all filter indices, returning
// its sid — the dynamic maintenance the paper notes hash indices support.
// The optimizer's plan is not re-derived; for drastic distribution shifts,
// rebuild.
func (ix *Index) Insert(s set.Set) (storage.SID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	sid := ix.store.Append(s)
	if ix.tree != nil {
		off, length, err := ix.store.Location(sid)
		if err != nil {
			return 0, err
		}
		if err := ix.tree.Insert(uint64(sid), btree.Value{Offset: off, Length: length}); err != nil {
			return 0, err
		}
	}
	sig := ix.emb.Sign(s)
	stored := sig
	if !ix.classic64 {
		w := make([]uint64, ix.fam.Words())
		if !ix.fam.PackFull(sig, w) {
			ix.fam.Sign(s, w)
		}
		stored = minhash.Signature(w)
	}
	ix.sigs = append(ix.sigs, stored)
	src := ix.emb.Bits(sig)
	// Derive each FI's table keys once, feeding both the table and the
	// pruning summary (plan order, so summary slots agree across shards).
	for ord, f := range ix.fis {
		ix.keyBuf = f.AppendInsertKeys(src, ix.keyBuf[:0])
		f.InsertWithKeys(ix.keyBuf, sid)
		ix.sum.addKeys(ord, ix.keyBuf)
	}
	ix.sidSizeBucket = append(ix.sidSizeBucket, ix.sum.addSize(s.Len()))
	ix.n++
	return sid, nil
}

// Delete removes sid from every filter index and tombstones its record —
// the deletion side of the paper's "fully dynamic" claim. The sid stays
// allocated (queries simply never return it); heap compaction is out of
// scope.
func (ix *Index) Delete(sid storage.SID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if int(sid) >= len(ix.sigs) {
		return fmt.Errorf("core: sid %d out of range", sid)
	}
	if ix.sigs[sid] == nil {
		return fmt.Errorf("core: sid %d already deleted", sid)
	}
	// Key derivation needs the classic embedding bits. Families that can't
	// reproduce them from stored words re-sign from the set, which must be
	// fetched before the record is tombstoned.
	var src lsh.BitSource
	switch {
	case ix.classic64:
		src = ix.emb.Bits(ix.sigs[sid])
	case ix.recoverable:
		src = &embed.PackedSigBits{E: ix.emb, Fam: ix.fam, Words: ix.sigs[sid]}
	default:
		s, err := ix.store.Fetch(sid, nil)
		if err != nil {
			return err
		}
		src = ix.emb.Bits(ix.emb.Sign(s))
	}
	if err := ix.store.Delete(sid); err != nil {
		return err
	}
	// Same keys Insert stored (same signature, same sampled positions), so
	// the summary refcounts return exactly to their pre-insert values.
	for ord, f := range ix.fis {
		ix.keyBuf = f.AppendInsertKeys(src, ix.keyBuf[:0])
		f.DeleteWithKeys(ix.keyBuf, sid)
		ix.sum.removeKeys(ord, ix.keyBuf)
	}
	ix.sum.removeSizeBucket(ix.sidSizeBucket[sid])
	ix.sidSizeBucket[sid] = noSizeBucket
	ix.sigs[sid] = nil
	ix.n--
	return nil
}

// FilterIndexes reports the built structures as (point, kind, tables, r)
// rows for inspection, ascending by point with DFIs first.
func (ix *Index) FilterIndexes() []optimize.FI {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]optimize.FI, 0, len(ix.sfis)+len(ix.dfis))
	for p, f := range ix.dfis {
		out = append(out, optimize.FI{Point: p, Kind: filter.Dissimilar, Tables: f.Tables(), R: f.SampledBits()})
	}
	for p, f := range ix.sfis {
		out = append(out, optimize.FI{Point: p, Kind: filter.Similar, Tables: f.Tables(), R: f.SampledBits()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Point != out[j].Point {
			return out[i].Point < out[j].Point
		}
		return out[i].Kind == filter.Dissimilar && out[j].Kind == filter.Similar
	})
	return out
}

// EstimateSimilarity returns the signing family's estimate of sim(q, sid)
// without touching storage, together with the family's 95%-confidence
// half-width (the classic Chernoff width under the default family).
func (ix *Index) EstimateSimilarity(q set.Set, sid storage.SID) (est float64, epsAt95 float64, err error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(sid) >= len(ix.sigs) {
		return 0, 0, fmt.Errorf("core: sid %d out of range", sid)
	}
	if ix.sigs[sid] == nil {
		return 0, 0, fmt.Errorf("core: sid %d deleted", sid)
	}
	qs := ix.emb.Sign(q)
	qp := ix.packQuery(q, qs, make([]uint64, ix.fam.Words()))
	est, err = ix.fam.Estimate(qp, ix.sigs[sid])
	if err != nil {
		return 0, 0, err
	}
	return est, ix.famEps, nil
}

// packQuery derives the query's stored-family representation from its full
// classic signature, writing into dst (length fam.Words()) for families
// that pack, or signing from the set for families on a different hash
// stream. For classic-64 it returns the full signature itself.
func (ix *Index) packQuery(q set.Set, full minhash.Signature, dst []uint64) []uint64 {
	if ix.classic64 {
		return full
	}
	if !ix.fam.PackFull(full, dst) {
		ix.fam.Sign(q, dst)
	}
	return dst
}

// SigningFamily returns the index's signing family (immutable after Build).
func (ix *Index) SigningFamily() minhash.Family { return ix.fam }

// SigningConfig returns the resolved signing selection.
func (ix *Index) SigningConfig() minhash.Config { return ix.buildOpts.Signing }

// Eps95 is the signing family's two-sided 95%-confidence half-width — the
// default screening margin and the planner's screen-only answer width.
func (ix *Index) Eps95() float64 { return ix.famEps }

// SignatureBytesPerSet is the stored signature footprint per live set.
func (ix *Index) SignatureBytesPerSet() int { return ix.fam.SignatureBytes() }

// UnionSizeHint returns the resolved average-union hint the family width
// was computed at (0 when the collection was empty at build).
func (ix *Index) UnionSizeHint() int { return ix.unionHint }

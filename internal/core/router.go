package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/set"
	"repro/internal/storage"
)

// EstimateAnswerSize predicts the expected number of sets a random query
// with range [lo, hi] returns, from the similarity distribution the index
// was tuned to: E_a(σ1, σ2) = (2/|S|)·∫ D_S (the Section 5 identity). It
// returns an error if the index was built with a plan override and no
// distribution.
func (ix *Index) EstimateAnswerSize(lo, hi float64) (float64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.hist == nil {
		return 0, fmt.Errorf("core: index has no similarity distribution (built with a plan override)")
	}
	if ix.hist.Total() == 0 {
		return 0, nil
	}
	n := float64(ix.store.Len())
	pairsMass := ix.hist.Mass(lo, hi) / ix.hist.Total() * (n * (n - 1) / 2)
	return 2 * pairsMass / n, nil
}

// EstimateCandidates predicts the expected candidate count of a query with
// range [lo, hi]: the modeled capture integral of the enclosing filter
// combination over the whole distribution — answer, in-interval extras,
// and false positives together.
func (ix *Index) EstimateCandidates(lo, hi float64) (float64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.estimateCandidatesLocked(lo, hi)
}

func (ix *Index) estimateCandidatesLocked(lo, hi float64) (float64, error) {
	if ix.hist == nil {
		return 0, fmt.Errorf("core: index has no similarity distribution (built with a plan override)")
	}
	if ix.hist.Total() == 0 {
		return 0, nil
	}
	elo, ehi := ix.enclose(lo, hi)
	captured := ix.hist.Integrate(0, 1, func(s float64) float64 {
		return ix.plan.CaptureAt(elo, ehi, s)
	})
	n := float64(ix.store.Len())
	return 2 * (captured / ix.hist.Total() * (n * (n - 1) / 2)) / n, nil
}

// Route says which access path RouteQuery predicts to be cheaper.
type Route int

const (
	// RouteIndex predicts the filter indices win.
	RouteIndex Route = iota
	// RouteScan predicts a sequential scan wins.
	RouteScan
)

// String renders the route.
func (r Route) String() string {
	if r == RouteScan {
		return "scan"
	}
	return "index"
}

// RoutePlan explains a routing decision.
type RoutePlan struct {
	// Route is the chosen access path.
	Route Route
	// PredictedCandidates is the modeled candidate count for the index
	// path.
	PredictedCandidates float64
	// IndexCost and ScanCost are the modeled I/O times under the cost
	// model.
	IndexCost, ScanCost time.Duration
}

// RouteQuery models both access paths for the range [lo, hi] under cost
// model m and picks the cheaper — the decision rule behind the paper's
// Section 6 analysis (index wins while the result size is below roughly
// |S|·a/rtn; above it, scan). Probe I/O (one bucket per allocated table of
// the touched filter indices) is included, which the paper's estimate
// ignores.
func (ix *Index) RouteQuery(lo, hi float64, m storage.CostModel) (RoutePlan, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.routeQueryLocked(lo, hi, m)
}

func (ix *Index) routeQueryLocked(lo, hi float64, m storage.CostModel) (RoutePlan, error) {
	cand, err := ix.estimateCandidatesLocked(lo, hi)
	if err != nil {
		return RoutePlan{}, err
	}
	pagesPerSet := ix.store.AvgPagesPerSet()
	if pagesPerSet < 1 {
		pagesPerSet = 1
	}
	probes := int64(ix.touchedTables(lo, hi))
	// Each candidate costs one random seek plus sequential continuation
	// pages; each probe costs one random bucket-page read.
	randReads := int64(cand) + probes
	seqReads := int64(cand * (pagesPerSet - 1))
	rp := RoutePlan{
		PredictedCandidates: cand,
		IndexCost:           m.Time(seqReads, randReads),
		ScanCost:            m.Time(ix.store.NumPages(), 0),
	}
	if rp.IndexCost <= rp.ScanCost {
		rp.Route = RouteIndex
	} else {
		rp.Route = RouteScan
	}
	return rp, nil
}

// touchedTables counts the hash tables a query with the given range would
// probe: the l values of the filter indices its Section 4.3 combination
// consults.
func (ix *Index) touchedTables(lo, hi float64) int {
	elo, ehi := ix.enclose(lo, hi)
	total := 0
	if f, ok := ix.dfis[ehi]; ok {
		total += f.Tables()
		if g, ok := ix.dfis[elo]; ok && elo > 0 {
			total += g.Tables()
		}
		return total
	}
	if f, ok := ix.sfis[elo]; ok {
		total += f.Tables()
		if g, ok := ix.sfis[ehi]; ok && ehi < 1 {
			total += g.Tables()
		}
		return total
	}
	if dp, ok := ix.bothKindsPoint(); ok {
		total += ix.dfis[dp].Tables() + ix.sfis[dp].Tables()
		if g, ok := ix.dfis[elo]; ok && elo > 0 {
			total += g.Tables()
		}
		if g, ok := ix.sfis[ehi]; ok && ehi < 1 {
			total += g.Tables()
		}
	}
	return total
}

// QueryAuto runs the query on whichever access path RouteQuery predicts to
// be cheaper, returning the results, the route taken, and the stats of the
// path that ran. Scan-path stats map into QueryStats: the full sequential
// heap read appears as FetchIO and Candidates is the number of sets
// examined.
func (ix *Index) QueryAuto(q set.Set, lo, hi float64, m storage.CostModel) ([]Match, Route, QueryStats, error) {
	// One shared lock spans routing and execution, so a concurrent
	// Insert/Delete cannot slip between the cost decision and the query.
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rp, err := ix.routeQueryLocked(lo, hi, m)
	if err != nil {
		return nil, RouteIndex, QueryStats{}, err
	}
	if rp.Route == RouteIndex {
		matches, stats, err := ix.queryLocked(q, lo, hi, QueryOptions{})
		return matches, RouteIndex, stats, err
	}
	var stats QueryStats
	start := time.Now()
	var matches []Match
	err = ix.store.Scan(&stats.FetchIO, func(sid storage.SID, s set.Set) bool {
		stats.Candidates++
		sim := q.Jaccard(s)
		if sim >= lo && sim <= hi {
			matches = append(matches, Match{SID: sid, Similarity: sim})
		}
		return true
	})
	if err != nil {
		return nil, RouteScan, stats, err
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].SID < matches[j].SID
	})
	stats.Results = len(matches)
	stats.CPU = time.Since(start)
	return matches, RouteScan, stats, nil
}

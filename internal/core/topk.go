package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/minhash"
	"repro/internal/set"
	"repro/internal/storage"
)

// TopK returns the k sets most similar to q, best first. It is the
// nearest-neighbour application of the filter indices (Section 7 relates
// the same machinery to Indyk's NN reductions): Similarity Filter Indices
// are probed from the highest partition point downward, candidates are
// verified exactly, and the walk stops as soon as k verified results sit
// at or above the next partition point — nothing below that point can
// improve the answer. Like range queries, the result is one-sided
// approximate: returned similarities are exact, but a true neighbour can
// be missed with the filter's false-negative probability at its level.
//
// Ties break by ascending sid. If the filters surface fewer than k sets
// even at the lowest partition point, fewer are returned; a scan fallback
// is deliberately not performed (use scan.Query for exact answers).
func (ix *Index) TopK(q set.Set, k int) ([]Match, QueryStats, error) {
	return ix.TopKPresigned(q, nil, k)
}

// TopKPresigned is TopK with the query's min-hash signature already
// computed (by an embedder built from the same options — the engine's
// sign-once scatter path). A nil sig signs q locally.
func (ix *Index) TopKPresigned(q set.Set, sig minhash.Signature, k int) ([]Match, QueryStats, error) {
	var stats QueryStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", k)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := time.Now()
	if sig == nil {
		sig = ix.emb.Sign(q)
	}
	src := ix.emb.Bits(sig)

	// SFI points, descending; then the δ-point DFI as the final, loosest
	// stage (it captures the low-similarity remainder).
	points := make([]float64, 0, len(ix.sfis))
	for p := range ix.sfis {
		points = append(points, p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(points)))

	seen := make(map[storage.SID]struct{})
	var results []Match
	verify := func(sids []storage.SID) error {
		for _, sid := range sids {
			if _, dup := seen[sid]; dup {
				continue
			}
			seen[sid] = struct{}{}
			stats.Candidates++
			s, err := ix.store.Fetch(sid, &stats.FetchIO)
			if err != nil {
				return fmt.Errorf("core: fetching candidate %d: %w", sid, err)
			}
			results = append(results, Match{SID: sid, Similarity: q.Jaccard(s)})
		}
		return nil
	}
	done := func(floor float64) bool {
		if len(results) < k {
			return false
		}
		sort.Slice(results, func(i, j int) bool {
			if results[i].Similarity != results[j].Similarity {
				return results[i].Similarity > results[j].Similarity
			}
			return results[i].SID < results[j].SID
		})
		return results[k-1].Similarity >= floor
	}

	for i, p := range points {
		if err := verify(ix.sfis[p].Vector(src, &stats.IndexIO)); err != nil {
			return nil, stats, err
		}
		floor := 0.0
		if i+1 < len(points) {
			floor = points[i+1]
		}
		if done(floor) {
			break
		}
	}
	if len(results) < k {
		// Last resort below the lowest SFI: the δ-point DFI covers the
		// dissimilar remainder.
		if dp, ok := ix.bothKindsPoint(); ok {
			if err := verify(ix.dfis[dp].Vector(src, &stats.IndexIO)); err != nil {
				return nil, stats, err
			}
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].SID < results[j].SID
	})
	if len(results) > k {
		results = results[:k]
	}
	stats.Results = len(results)
	stats.CPU = time.Since(start)
	return results, stats, nil
}

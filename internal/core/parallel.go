// Deterministic parallelism for the build and query hot paths.
//
// The paper's preprocessing (Section 3 signing, Section 5 filter-index
// population) and its query processor (Section 4.3 filter → fetch → verify)
// are embarrassingly parallel. This file fans both across bounded worker
// pools while keeping every observable bit identical to the serial code:
//
//   - Signing writes are index-addressed (worker i writes only sigs[i]),
//     so chunk scheduling cannot reorder anything.
//   - Distribution sampling pre-draws its pair sequence from the seeded rng
//     before fan-out (see simdist.SampleSignaturePairsN).
//   - Each filter index is populated serially by one goroutine from its own
//     pager, so its bucket chains and page layout are a pure function of
//     (plan, seed, signatures) — exactly what snapshot rebuilds require.
//   - Parallel verification merges per-worker I/O counters with atomics
//     after the workers join, so IndexIO/FetchIO accounting stays exact,
//     and the final sort is a total order, so result slices are identical.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/minhash"
	"repro/internal/set"
	"repro/internal/storage"
)

// defaultMinParallelVerify is the candidate count below which per-query
// verification stays serial: under ~50 simulated fetches the goroutine
// hand-off costs more than it saves.
const defaultMinParallelVerify = 48

// QueryOptions tunes the query processor beyond the basic range. The zero
// value reproduces Query's default behaviour (no screening, GOMAXPROCS
// verification workers above the default candidate threshold).
type QueryOptions struct {
	// Screen enables signature screening: before paying a random-access
	// fetch, a candidate's similarity is estimated through the index's
	// signing family from the stored packed signatures (a word-parallel
	// popcount loop, no I/O) and the fetch is skipped when the estimate
	// falls outside [s1−ε, s2+ε]. Skipped candidates are counted in
	// QueryStats.Screened. Screening trades a small recall loss (true
	// matches whose estimate errs by more than ε) for one random page read
	// per screened candidate; all returned matches remain exact.
	Screen bool
	// ScreenMargin is ε on the Jaccard scale. 0 selects the signing
	// family's 95%-confidence half-width (the same bound
	// EstimateSimilarity reports — the classic Chernoff width under the
	// default family), which keeps the extra false-negative rate under 5%
	// per candidate.
	ScreenMargin float64
	// Workers bounds query parallelism: the batch fan-out pool of
	// QueryBatch and per-query candidate verification. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces serial processing.
	Workers int
	// MinParallelVerify is the candidate count at or above which
	// verification fans across workers (0 selects a built-in default).
	MinParallelVerify int
	// AllowApproximate permits the engine's planner to answer from
	// signature estimates alone (the screen-only plan) when the query
	// range is wide relative to the estimator's confidence width. Core
	// itself ignores the flag: it gates which executor the engine
	// dispatches, not how any executor behaves.
	AllowApproximate bool
}

// resolveWorkers maps an Options/QueryOptions worker count to a concrete
// pool size.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SplitPool divides a worker pool of size pool across n consumers
// proportionally: every consumer gets at least one worker, the remainder
// pool%n is spread over the first consumers, and the shares sum to
// max(pool, n) — so nesting a per-consumer pool inside the split never
// oversubscribes the machine by more than the unavoidable one-per-consumer
// floor. QueryBatch uses it to hand each batch worker its verification
// budget; the engine uses it to hand each shard its scatter budget.
func SplitPool(pool, n int) []int {
	if n <= 0 {
		return nil
	}
	if pool < n {
		pool = n
	}
	shares := make([]int, n)
	base, rem := pool/n, pool%n
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
	}
	return shares
}

// chernoffEps95 solves 2·exp(-2k·eps²) = 0.05 for eps: the 95%-confidence
// half-width of the k-coordinate agreement estimator.
func chernoffEps95(k int) float64 {
	return math.Sqrt(math.Log(2/0.05) / (2 * float64(k)))
}

// parallelFor invokes fn over [0, n) in contiguous chunks of the given
// size, fanned across up to workers goroutines (workers <= 1 runs inline).
// fn must only write state addressed by its own index range.
func parallelFor(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// signChunk is the work-stealing granularity of the signing pool: large
// enough to amortize the cursor bump, small enough to balance skewed set
// sizes.
const signChunk = 64

// signCollection computes every set's min-hash signature across a worker
// pool. Writes are index-addressed, so the result is bit-identical to the
// serial loop for every worker count. Each chunk's signatures share one
// flat coordinate block (a single allocation per chunk instead of one per
// set).
func signCollection(emb *embed.Embedder, sets []set.Set, workers int) []minhash.Signature {
	sigs := make([]minhash.Signature, len(sets))
	k := emb.K()
	parallelFor(len(sets), workers, signChunk, func(lo, hi int) {
		buf := make([]uint64, (hi-lo)*k)
		for i := lo; i < hi; i++ {
			sig := minhash.Signature(buf[(i-lo)*k : (i-lo+1)*k : (i-lo+1)*k])
			emb.SignInto(sets[i], sig)
			sigs[i] = sig
		}
	})
	return sigs
}

// populateFilters inserts every signature into every filter index, one
// goroutine per index (bounded by workers). Indices are independent
// structures drawing pages from their own pagers, and each goroutine
// inserts sids in ascending order — the same per-index insertion sequence
// as the serial build, so bucket chains come out identical.
func populateFilters(emb *embed.Embedder, sigs []minhash.Signature, fis []*filter.Index, workers int) {
	populate := func(f *filter.Index) {
		// One reusable BitSource view per goroutine: swapping the signature
		// in place avoids an interface allocation per (index, sid) pair.
		src := &embed.SigBits{E: emb}
		for sid, sig := range sigs {
			if sig == nil {
				continue
			}
			src.Sig = sig
			f.Insert(src, storage.SID(sid))
		}
	}
	if workers <= 1 || len(fis) <= 1 {
		for _, f := range fis {
			populate(f)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, f := range fis {
		wg.Add(1)
		sem <- struct{}{}
		go func(f *filter.Index) {
			defer wg.Done()
			defer func() { <-sem }()
			populate(f)
		}(f)
	}
	wg.Wait()
}

// packCollection derives the stored (packed) signatures of a non-classic-64
// family from the full classic signatures, falling back to signing from the
// set for families on a different hash stream (SuperMinHash). Writes are
// index-addressed, so the result is bit-identical for every worker count.
func packCollection(fam minhash.Family, full []minhash.Signature, sets []set.Set, workers int) []minhash.Signature {
	out := make([]minhash.Signature, len(full))
	words := fam.Words()
	parallelFor(len(full), workers, signChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if full[i] == nil {
				continue
			}
			dst := make([]uint64, words)
			if !fam.PackFull(full[i], dst) {
				fam.Sign(sets[i], dst)
			}
			out[i] = minhash.Signature(dst)
		}
	})
	return out
}

// populateFiltersPacked is populateFilters over PACKED signatures whose
// family can reproduce the embedding bits from storage (Recoverable) — the
// packed-signature load path that avoids re-signing the collection.
func populateFiltersPacked(emb *embed.Embedder, fam minhash.Family, sigs []minhash.Signature, fis []*filter.Index, workers int) {
	populate := func(f *filter.Index) {
		src := &embed.PackedSigBits{E: emb, Fam: fam}
		for sid, sig := range sigs {
			if sig == nil {
				continue
			}
			src.Words = sig
			f.Insert(src, storage.SID(sid))
		}
	}
	if workers <= 1 || len(fis) <= 1 {
		for _, f := range fis {
			populate(f)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, f := range fis {
		wg.Add(1)
		sem <- struct{}{}
		go func(f *filter.Index) {
			defer wg.Done()
			defer func() { <-sem }()
			populate(f)
		}(f)
	}
	wg.Wait()
}

// queryScratch holds the reusable per-query buffers pooled on the index:
// the full query signature, its packed family representation (screening),
// and the probe/merge sid vectors of the Section 4.3 filter combination.
// Steady-state queries allocate only their results.
type queryScratch struct {
	sig    minhash.Signature
	packed []uint64
	bufs   [7][]storage.SID
}

// verifyChunk runs the fetch-and-verify loop (with optional signature
// screening) over one candidate slice, appending matches to dst and
// charging fetches to io. qp is the query's packed family signature (nil
// unless screening).
func (ix *Index) verifyChunk(q set.Set, qp []uint64, cands []storage.SID, s1, s2 float64, screen bool, screenLo, screenHi float64, dst []Match, io *storage.Counter, screened *int) ([]Match, error) {
	for _, sid := range cands {
		if screen {
			est, err := ix.fam.Estimate(qp, ix.sigs[sid])
			if err != nil {
				return dst, fmt.Errorf("core: screening candidate %d: %w", sid, err)
			}
			if est < screenLo || est > screenHi {
				*screened++
				continue
			}
		}
		s, err := ix.store.Fetch(sid, io)
		if err != nil {
			return dst, fmt.Errorf("core: fetching candidate %d: %w", sid, err)
		}
		sim := q.Jaccard(s)
		if sim >= s1 && sim <= s2 {
			dst = append(dst, Match{SID: sid, Similarity: sim})
		}
	}
	return dst, nil
}

// verifyCandidates fetches and verifies the candidate set, in parallel
// above the candidate-count threshold. Per-worker I/O counters and screened
// counts are merged into stats with atomics after the workers join, so the
// totals equal the serial accounting exactly.
func (ix *Index) verifyCandidates(q set.Set, qp []uint64, cands []storage.SID, s1, s2 float64, opt QueryOptions, stats *QueryStats) ([]Match, error) {
	var screenLo, screenHi float64
	if opt.Screen {
		eps := opt.ScreenMargin
		if eps <= 0 {
			eps = ix.famEps
		}
		screenLo, screenHi = s1-eps, s2+eps
	}
	minPar := opt.MinParallelVerify
	if minPar <= 0 {
		minPar = defaultMinParallelVerify
	}
	workers := resolveWorkers(opt.Workers)
	if workers <= 1 || len(cands) < minPar {
		matches := make([]Match, 0, len(cands)/4+1)
		var screened int
		matches, err := ix.verifyChunk(q, qp, cands, s1, s2, opt.Screen, screenLo, screenHi, matches, &stats.FetchIO, &screened)
		stats.Screened += screened
		return matches, err
	}

	var (
		wg                  sync.WaitGroup
		fetchSeq, fetchRand atomic.Int64
		screenedN           atomic.Int64
		chunkMatches        = make([][]Match, workers)
		chunkErrs           = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		lo := w * len(cands) / workers
		hi := (w + 1) * len(cands) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var io storage.Counter
			var screened int
			m, err := ix.verifyChunk(q, qp, cands[lo:hi], s1, s2, opt.Screen, screenLo, screenHi, nil, &io, &screened)
			chunkMatches[w], chunkErrs[w] = m, err
			fetchSeq.Add(io.Seq())
			fetchRand.Add(io.Rand())
			screenedN.Add(int64(screened))
		}(w, lo, hi)
	}
	wg.Wait()
	stats.FetchIO.RecordSeq(fetchSeq.Load())
	stats.FetchIO.RecordRand(fetchRand.Load())
	stats.Screened += int(screenedN.Load())
	total := 0
	for _, m := range chunkMatches {
		total += len(m)
	}
	matches := make([]Match, 0, total)
	for w := 0; w < workers; w++ {
		if chunkErrs[w] != nil {
			return nil, chunkErrs[w]
		}
		matches = append(matches, chunkMatches[w]...)
	}
	return matches, nil
}

// BatchQuery is one entry of a QueryBatch call.
type BatchQuery struct {
	// Q is the query set.
	Q set.Set
	// Lo, Hi is the Jaccard similarity range [s1, s2].
	Lo, Hi float64
	// Sig, if non-nil, is Q's min-hash signature computed by an embedder
	// built from the same options (the engine signs each query once and
	// fans the signature to every shard's sub-batch). Nil signs locally.
	Sig minhash.Signature
}

// BatchResult is the outcome of one batch entry: exactly what Query would
// have returned for it.
type BatchResult struct {
	Matches []Match
	Stats   QueryStats
	Err     error
}

// QueryBatch answers a slice of range queries concurrently under a single
// shared (read) lock, fanning them across a bounded worker pool. Each entry
// produces exactly the matches and I/O accounting a serial Query call would
// have (results are a consistent point-in-time view: concurrent Insert and
// Delete calls serialize before or after the whole batch). Options apply to
// every entry; the worker pool is split proportionally between batch
// fan-out and per-query verification, so batch workers × verification
// workers never exceeds the pool (beyond the one-worker-per-query floor).
func (ix *Index) QueryBatch(queries []BatchQuery, opt QueryOptions) []BatchResult {
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pool := resolveWorkers(opt.Workers)
	workers := pool
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		inner := opt
		inner.Workers = pool
		if inner.Workers < 1 {
			inner.Workers = 1
		}
		for i := range queries {
			r := &results[i]
			r.Matches, r.Stats, r.Err = ix.presignedLocked(queries[i].Q, queries[i].Sig, queries[i].Lo, queries[i].Hi, inner)
		}
		return results
	}
	// Split the verification pool proportionally: batch worker w owns
	// shares[w] verification workers, and the shares sum to the pool — a
	// saturated batch leaves one verification worker per query, a small
	// batch on a wide machine fans each query's verification across the
	// idle remainder, and intermediate shapes (e.g. pool=6, 4 queries) no
	// longer collapse every query's verification to a single worker while
	// a third of the machine idles. Verification width never changes
	// results (pinned by the batch determinism tests), only scheduling.
	shares := SplitPool(pool, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inner := opt
			inner.Workers = shares[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				r := &results[i]
				r.Matches, r.Stats, r.Err = ix.presignedLocked(queries[i].Q, queries[i].Sig, queries[i].Lo, queries[i].Hi, inner)
			}
		}(w)
	}
	wg.Wait()
	return results
}

package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/optimize"
	"repro/internal/set"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildWorkers builds the shared test collection with the given worker
// count and seed.
func buildWorkers(t *testing.T, n, budget, workers int, seed int64) (*Index, []set.Set) {
	t.Helper()
	sets, err := workload.Generate(workload.Set1Params(n))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ix, err := Build(sets, Options{
		Embed:    embed.Options{K: 64, Bits: 8, Seed: seed},
		Plan:     optimize.Options{Budget: budget, RecallTarget: 0.9},
		DistSeed: seed,
		Workers:  workers,
	})
	if err != nil {
		t.Fatalf("build(workers=%d): %v", workers, err)
	}
	return ix, sets
}

// requireSameIndex fails unless a and b have bit-identical signatures and
// filter-index bit positions, and agree on query answers for a few ranges.
func requireSameIndex(t *testing.T, label string, a, b *Index, sets []set.Set) {
	t.Helper()
	if len(a.sigs) != len(b.sigs) {
		t.Fatalf("%s: signature counts differ: %d vs %d", label, len(a.sigs), len(b.sigs))
	}
	for sid := range a.sigs {
		s1, s2 := a.sigs[sid], b.sigs[sid]
		if len(s1) != len(s2) {
			t.Fatalf("%s: sid %d signature lengths differ", label, sid)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: sid %d coordinate %d differs: %d vs %d", label, sid, i, s1[i], s2[i])
			}
		}
	}
	comparePositions := func(name string, p1, p2 map[float64]*filter.Index) {
		t.Helper()
		if len(p1) != len(p2) {
			t.Fatalf("%s %s: point counts differ: %d vs %d", label, name, len(p1), len(p2))
		}
		for point, f1 := range p1 {
			f2, ok := p2[point]
			if !ok {
				t.Fatalf("%s %s: point %g missing", label, name, point)
			}
			if f1.Tables() != f2.Tables() || f1.Entries() != f2.Entries() {
				t.Fatalf("%s %s point %g: shape differs (tables %d vs %d, entries %d vs %d)",
					label, name, point, f1.Tables(), f2.Tables(), f1.Entries(), f2.Entries())
			}
			for i := 0; i < f1.Tables(); i++ {
				q1, q2 := f1.Positions(i), f2.Positions(i)
				if len(q1) != len(q2) {
					t.Fatalf("%s %s point %g table %d: position counts differ", label, name, point, i)
				}
				for j := range q1 {
					if q1[j] != q2[j] {
						t.Fatalf("%s %s point %g table %d position %d: %d vs %d",
							label, name, point, i, j, q1[j], q2[j])
					}
				}
			}
		}
	}
	comparePositions("SFI", a.sfis, b.sfis)
	comparePositions("DFI", a.dfis, b.dfis)
	if a.IndexPages() != b.IndexPages() {
		t.Fatalf("%s: index pages differ: %d vs %d", label, a.IndexPages(), b.IndexPages())
	}
	for _, r := range [][2]float64{{0.8, 1.0}, {0.3, 0.6}, {0.0, 0.2}} {
		for _, qi := range []int{0, len(sets) / 2, len(sets) - 1} {
			m1, st1, err := a.Query(sets[qi], r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			m2, st2, err := b.Query(sets[qi], r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if len(m1) != len(m2) {
				t.Fatalf("%s range %v sid %d: %d vs %d results", label, r, qi, len(m1), len(m2))
			}
			for i := range m1 {
				if m1[i] != m2[i] {
					t.Fatalf("%s range %v sid %d result %d differs: %+v vs %+v", label, r, qi, i, m1[i], m2[i])
				}
			}
			if st1.IndexIO != st2.IndexIO || st1.FetchIO != st2.FetchIO {
				t.Fatalf("%s range %v sid %d: I/O accounting differs: %v/%v vs %v/%v",
					label, r, qi, &st1.IndexIO, &st1.FetchIO, &st2.IndexIO, &st2.FetchIO)
			}
		}
	}
}

// TestParallelBuildDeterminism requires the parallel build to be
// bit-identical to the serial one — signatures, sampled bit positions,
// page layout, query answers, and I/O accounting — for several worker
// counts and seeds. This is the core contract of Options.Workers: the
// worker count is a throughput knob, never an observable.
func TestParallelBuildDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		serial, sets := buildWorkers(t, 250, 30, 1, seed)
		for _, workers := range []int{2, 4, 8} {
			par, _ := buildWorkers(t, 250, 30, workers, seed)
			requireSameIndex(t, fmt.Sprintf("seed=%d workers=%d", seed, workers), serial, par, sets)
		}
	}
}

// TestParallelBuildAtGOMAXPROCS pins the Workers=0 default (GOMAXPROCS)
// against the serial build under different GOMAXPROCS settings, since that
// is the configuration every default caller runs.
func TestParallelBuildAtGOMAXPROCS(t *testing.T) {
	serial, sets := buildWorkers(t, 200, 30, 1, 3)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		par, _ := buildWorkers(t, 200, 30, 0, 3)
		requireSameIndex(t, fmt.Sprintf("GOMAXPROCS=%d", procs), serial, par, sets)
	}
}

// TestParallelVerificationMatchesSerial forces the parallel verification
// path (threshold 1) and requires byte-identical matches and exact
// FetchIO accounting versus the serial path on the same index.
func TestParallelVerificationMatchesSerial(t *testing.T) {
	ix, sets := buildSmall(t, 400, 40)
	for _, r := range [][2]float64{{0.0, 1.0}, {0.3, 0.8}, {0.8, 1.0}} {
		for qi := 0; qi < 8; qi++ {
			q := sets[qi*31%len(sets)]
			serialM, serialSt, err := ix.QueryWithOptions(q, r[0], r[1], QueryOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parM, parSt, err := ix.QueryWithOptions(q, r[0], r[1], QueryOptions{Workers: 8, MinParallelVerify: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(serialM) != len(parM) {
				t.Fatalf("range %v: %d vs %d matches", r, len(serialM), len(parM))
			}
			for i := range serialM {
				if serialM[i] != parM[i] {
					t.Fatalf("range %v match %d differs: %+v vs %+v", r, i, serialM[i], parM[i])
				}
			}
			if serialSt.FetchIO != parSt.FetchIO || serialSt.Candidates != parSt.Candidates {
				t.Fatalf("range %v: stats differ: fetch %v vs %v, candidates %d vs %d",
					r, &serialSt.FetchIO, &parSt.FetchIO, serialSt.Candidates, parSt.Candidates)
			}
		}
	}
}

// TestQueryBatchMatchesSerial requires QueryBatch to return, per entry,
// exactly what a serial Query call returns — matches and exact per-query
// I/O counters — at several pool widths.
func TestQueryBatchMatchesSerial(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchQuery, len(qs))
	type serialAnswer struct {
		matches []Match
		stats   QueryStats
	}
	want := make([]serialAnswer, len(qs))
	for i, q := range qs {
		batch[i] = BatchQuery{Q: sets[q.SID], Lo: q.Lo, Hi: q.Hi}
		m, st, err := ix.Query(sets[q.SID], q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = serialAnswer{m, st}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		results := ix.QueryBatch(batch, QueryOptions{Workers: workers})
		if len(results) != len(batch) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(results), len(batch))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d entry %d: %v", workers, i, r.Err)
			}
			if len(r.Matches) != len(want[i].matches) {
				t.Fatalf("workers=%d entry %d: %d vs %d matches", workers, i, len(r.Matches), len(want[i].matches))
			}
			for j := range r.Matches {
				if r.Matches[j] != want[i].matches[j] {
					t.Fatalf("workers=%d entry %d match %d differs", workers, i, j)
				}
			}
			if r.Stats.IndexIO != want[i].stats.IndexIO || r.Stats.FetchIO != want[i].stats.FetchIO {
				t.Fatalf("workers=%d entry %d: I/O differs: %v/%v vs %v/%v", workers, i,
					&r.Stats.IndexIO, &r.Stats.FetchIO, &want[i].stats.IndexIO, &want[i].stats.FetchIO)
			}
			if r.Stats.Candidates != want[i].stats.Candidates || r.Stats.Results != want[i].stats.Results {
				t.Fatalf("workers=%d entry %d: counts differ", workers, i)
			}
		}
	}
}

// TestQueryBatchPropagatesErrors checks per-entry error isolation: an
// invalid range fails its own entry without poisoning the rest.
func TestQueryBatchPropagatesErrors(t *testing.T) {
	ix, sets := buildSmall(t, 100, 30)
	batch := []BatchQuery{
		{Q: sets[0], Lo: 0.5, Hi: 1.0},
		{Q: sets[1], Lo: 0.9, Hi: 0.1}, // inverted
		{Q: sets[2], Lo: 0.0, Hi: 0.4},
	}
	results := ix.QueryBatch(batch, QueryOptions{Workers: 4})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid entries failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("inverted range did not fail")
	}
	if got := ix.QueryBatch(nil, QueryOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestScreeningWideMarginIsExact checks the screening guardrail: with a
// margin of 1 the widened window covers [s1-1, s2+1] ⊇ [0, 1], so no
// candidate can be screened out and results must be identical to the
// unscreened query.
func TestScreeningWideMarginIsExact(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	for qi := 0; qi < 10; qi++ {
		q := sets[qi*17%len(sets)]
		plain, plainSt, err := ix.Query(q, 0.4, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		screened, st, err := ix.QueryWithOptions(q, 0.4, 0.9, QueryOptions{Screen: true, ScreenMargin: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.Screened != 0 {
			t.Fatalf("margin=1 screened %d candidates", st.Screened)
		}
		if len(plain) != len(screened) {
			t.Fatalf("margin=1 changed results: %d vs %d", len(plain), len(screened))
		}
		for i := range plain {
			if plain[i] != screened[i] {
				t.Fatalf("margin=1 result %d differs", i)
			}
		}
		if plainSt.FetchIO != st.FetchIO {
			t.Fatalf("margin=1 changed fetch I/O: %v vs %v", &plainSt.FetchIO, &st.FetchIO)
		}
	}
}

// TestScreeningReducesFetchIO checks that a tight margin on a selective
// range actually skips fetches: Screened > 0, FetchIO strictly below the
// unscreened query, and every returned match still verified exact and
// inside the range.
func TestScreeningReducesFetchIO(t *testing.T) {
	ix, sets := buildSmall(t, 500, 60)
	var screenedTotal int
	var reduced bool
	for qi := 0; qi < 20; qi++ {
		q := sets[qi*13%len(sets)]
		_, plainSt, err := ix.Query(q, 0.85, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		matches, st, err := ix.QueryWithOptions(q, 0.85, 1.0, QueryOptions{Screen: true, ScreenMargin: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		screenedTotal += st.Screened
		if st.FetchIO.Rand() < plainSt.FetchIO.Rand() {
			reduced = true
		}
		if st.FetchIO.Rand() > plainSt.FetchIO.Rand() {
			t.Fatalf("screening increased fetch I/O: %v vs %v", &st.FetchIO, &plainSt.FetchIO)
		}
		for _, m := range matches {
			if m.Similarity < 0.85 || m.Similarity > 1.0 {
				t.Fatalf("screened query returned out-of-range match %+v", m)
			}
		}
	}
	if screenedTotal == 0 {
		t.Fatal("tight margin screened nothing across 20 selective queries")
	}
	if !reduced {
		t.Fatal("screening never reduced fetch I/O")
	}
}

// TestScreeningDefaultMargin checks that Screen with margin 0 picks the
// Chernoff bound (not a zero margin that would screen half of everything).
func TestScreeningDefaultMargin(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	// With the 95% bound, near-duplicate self-queries must keep their hits.
	for qi := 0; qi < 10; qi++ {
		q := sets[qi]
		matches, _, err := ix.QueryWithOptions(q, 0.95, 1.0, QueryOptions{Screen: true})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if int(m.SID) == qi {
				found = true
			}
		}
		if !found {
			t.Fatalf("default-margin screening dropped the self-match of sid %d", qi)
		}
	}
}

// TestQueryBatchUnderMutation races QueryBatch against concurrent Insert
// and Delete (run with -race): batches must see a consistent point-in-time
// view and never error.
func TestQueryBatchUnderMutation(t *testing.T) {
	ix, sets := buildSmall(t, 200, 30)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 16, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchQuery, len(qs))
	for i, q := range qs {
		batch[i] = BatchQuery{Q: sets[q.SID], Lo: q.Lo, Hi: q.Hi}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				opt := QueryOptions{Workers: 1 + g, Screen: i%2 == 0}
				for _, r := range ix.QueryBatch(batch, opt) {
					if r.Err != nil {
						errs <- r.Err
						return
					}
				}
			}
		}(g)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < 20; i++ {
				base := uint64(2_000_000 + w*10_000 + i*100)
				sid, err := ix.Insert(set.New(base, base+1, base+2))
				if err != nil {
					errs <- err
					return
				}
				if i%2 == 0 {
					if err := ix.Delete(sid); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("batch under mutation: %v", err)
	}
}

// TestParallelForCoversRange checks the chunked scheduler visits every
// index exactly once for assorted sizes, worker counts, and chunk sizes.
func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 257} {
		for _, workers := range []int{1, 2, 4, 9} {
			for _, chunk := range []int{1, 7, 64} {
				var mu sync.Mutex
				seen := make([]int, n)
				parallelFor(n, workers, chunk, func(lo, hi int) {
					mu.Lock()
					defer mu.Unlock()
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d workers=%d chunk=%d: index %d visited %d times", n, workers, chunk, i, c)
					}
				}
			}
		}
	}
}

// TestVerifyCandidatesErrorPropagation checks that a fetch failure (sid
// past the store) surfaces as an error from both the serial and parallel
// verification paths rather than a panic or silent drop.
func TestVerifyCandidatesErrorPropagation(t *testing.T) {
	ix, sets := buildSmall(t, 100, 30)
	sig := ix.emb.Sign(sets[0])
	bogus := make([]storage.SID, 60)
	for i := range bogus {
		bogus[i] = storage.SID(1 << 30)
	}
	var stats QueryStats
	if _, err := ix.verifyCandidates(sets[0], sig, bogus, 0, 1, QueryOptions{Workers: 1}, &stats); err == nil {
		t.Fatal("serial verification swallowed a fetch failure")
	}
	stats = QueryStats{}
	if _, err := ix.verifyCandidates(sets[0], sig, bogus, 0, 1, QueryOptions{Workers: 4, MinParallelVerify: 1}, &stats); err == nil {
		t.Fatal("parallel verification swallowed a fetch failure")
	}
}

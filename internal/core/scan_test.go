package core

import (
	"math"
	"testing"
)

// scanRanges covers every case of the Section 4.3 range combination: a
// pure-DFI high band, an interior band, half-open ranges, and the full
// interval.
var scanRanges = [][2]float64{
	{0.9, 1.0},
	{0.75, 0.85},
	{0.5, 1.0},
	{0.1, 0.9},
	{0.0, 1.0},
}

// TestScanMatchesQueryPresigned pins the direct-scan executor's exactness
// contract: for every range and query, ScanPresigned returns the same
// candidates and byte-identical matches as the filter-probe pipeline,
// with screening on and off. This is the foundation the planner's
// byte-identity guarantee rests on.
func TestScanMatchesQueryPresigned(t *testing.T) {
	ix, sets := buildWorkers(t, 300, 60, 0, 42)
	for _, screen := range []bool{false, true} {
		opt := QueryOptions{Screen: screen}
		for _, r := range scanRanges {
			for _, qi := range []int{0, len(sets) / 3, len(sets) - 1} {
				want, wantStats, err := ix.QueryPresigned(sets[qi], nil, r[0], r[1], opt)
				if err != nil {
					t.Fatalf("probe screen=%v range=%v sid=%d: %v", screen, r, qi, err)
				}
				got, gotStats, err := ix.ScanPresigned(sets[qi], nil, r[0], r[1], opt)
				if err != nil {
					t.Fatalf("scan screen=%v range=%v sid=%d: %v", screen, r, qi, err)
				}
				if len(got) != len(want) {
					t.Fatalf("screen=%v range=%v sid=%d: scan %d matches, probe %d",
						screen, r, qi, len(got), len(want))
				}
				for i := range want {
					if got[i].SID != want[i].SID ||
						math.Float64bits(got[i].Similarity) != math.Float64bits(want[i].Similarity) {
						t.Fatalf("screen=%v range=%v sid=%d match %d: scan %+v, probe %+v",
							screen, r, qi, i, got[i], want[i])
					}
				}
				if gotStats.Candidates != wantStats.Candidates {
					t.Fatalf("screen=%v range=%v sid=%d: scan saw %d candidates, probe %d",
						screen, r, qi, gotStats.Candidates, wantStats.Candidates)
				}
				if gotStats.EnclosedLo != wantStats.EnclosedLo || gotStats.EnclosedHi != wantStats.EnclosedHi {
					t.Fatalf("screen=%v range=%v sid=%d: enclosures differ: [%g,%g] vs [%g,%g]",
						screen, r, qi, gotStats.EnclosedLo, gotStats.EnclosedHi,
						wantStats.EnclosedLo, wantStats.EnclosedHi)
				}
			}
		}
	}
}

// TestScanChargesSequentialIO pins the cost-model shape the planner
// prices: the scan executor reads the heap sequentially and performs no
// random candidate fetches.
func TestScanChargesSequentialIO(t *testing.T) {
	ix, sets := buildWorkers(t, 300, 60, 0, 42)
	_, st, err := ix.ScanPresigned(sets[0], nil, 0.5, 1.0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FetchIO.Rand() != 0 {
		t.Fatalf("scan performed %d random reads; want 0", st.FetchIO.Rand())
	}
	if st.FetchIO.Seq() == 0 {
		t.Fatal("scan charged no sequential reads")
	}
}

// TestScreenPresigned pins the screen-only executor: same candidate set
// as the probe pipeline, zero data fetches, and every reported match is
// a signature estimate inside the requested range.
func TestScreenPresigned(t *testing.T) {
	ix, sets := buildWorkers(t, 300, 60, 0, 42)
	for _, r := range scanRanges {
		for _, qi := range []int{0, len(sets) / 2} {
			_, probeStats, err := ix.QueryPresigned(sets[qi], nil, r[0], r[1], QueryOptions{})
			if err != nil {
				t.Fatalf("probe range=%v sid=%d: %v", r, qi, err)
			}
			got, st, err := ix.ScreenPresigned(sets[qi], nil, r[0], r[1], QueryOptions{})
			if err != nil {
				t.Fatalf("screen range=%v sid=%d: %v", r, qi, err)
			}
			if st.Candidates != probeStats.Candidates {
				t.Fatalf("range=%v sid=%d: screen saw %d candidates, probe %d",
					r, qi, st.Candidates, probeStats.Candidates)
			}
			if st.FetchIO.Rand() != 0 || st.FetchIO.Seq() != 0 {
				t.Fatalf("range=%v sid=%d: screen-only fetched data pages (%d rand, %d seq)",
					r, qi, st.FetchIO.Rand(), st.FetchIO.Seq())
			}
			if st.Results != len(got) || st.Screened != st.Candidates-len(got) {
				t.Fatalf("range=%v sid=%d: accounting results=%d screened=%d for %d/%d",
					r, qi, st.Results, st.Screened, len(got), st.Candidates)
			}
			for _, m := range got {
				if m.Similarity < r[0] || m.Similarity > r[1] {
					t.Fatalf("range=%v sid=%d: estimate %g outside range", r, qi, m.Similarity)
				}
			}
		}
	}
}

// TestScanInvalidRange pins error parity with the probe pipeline.
func TestScanInvalidRange(t *testing.T) {
	ix, sets := buildWorkers(t, 50, 60, 0, 42)
	if _, _, err := ix.ScanPresigned(sets[0], nil, 0.9, 0.5, QueryOptions{}); err == nil {
		t.Fatal("inverted range accepted by ScanPresigned")
	}
	if _, _, err := ix.ScreenPresigned(sets[0], nil, 0.9, 0.5, QueryOptions{}); err == nil {
		t.Fatal("inverted range accepted by ScreenPresigned")
	}
}

// TestChernoffEps95 sanity-checks the exported confidence width: positive
// and shrinking with k.
func TestChernoffEps95(t *testing.T) {
	e64, e256 := ChernoffEps95(64), ChernoffEps95(256)
	if e64 <= 0 || e256 <= 0 || e256 >= e64 {
		t.Fatalf("eps95(64)=%g eps95(256)=%g; want positive and decreasing", e64, e256)
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func TestEstimateAnswerSizeTracksTruth(t *testing.T) {
	ix, sets := buildSmall(t, 600, 60)
	for _, r := range [][2]float64{{0, 0.1}, {0.1, 0.3}, {0.5, 1}} {
		est, err := ix.EstimateAnswerSize(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		// True average answer size over a sample of queries.
		trueAvg := 0.0
		const probes = 40
		for q := 0; q < probes; q++ {
			cnt := 0
			for _, s := range sets {
				sim := sets[q*7%len(sets)].Jaccard(s)
				if sim >= r[0] && sim <= r[1] {
					cnt++
				}
			}
			trueAvg += float64(cnt)
		}
		trueAvg /= probes
		// The estimate is distribution-based; demand the right order of
		// magnitude (factor 3 + small absolute slack).
		if est > 3*trueAvg+20 || trueAvg > 3*est+20 {
			t.Errorf("range %v: estimate %.1f vs measured %.1f", r, est, trueAvg)
		}
	}
}

func TestEstimateCandidatesAtLeastAnswer(t *testing.T) {
	ix, _ := buildSmall(t, 500, 60)
	for _, r := range [][2]float64{{0.05, 0.2}, {0.3, 0.6}, {0.8, 1}} {
		ans, err := ix.EstimateAnswerSize(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		cand, err := ix.EstimateCandidates(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		// Candidates include the captured part of the answer plus extras;
		// they cannot dramatically undercut the capture-weighted answer.
		if cand < 0 {
			t.Fatalf("range %v: negative candidate estimate %g", r, cand)
		}
		if cand > float64(ix.Len())*1.01 {
			t.Errorf("range %v: candidate estimate %g above collection size", r, cand)
		}
		_ = ans
	}
}

func TestRouteQueryPicksCheaper(t *testing.T) {
	ix, _ := buildSmall(t, 600, 60)
	m := storage.DefaultCostModel()
	// A full-range query has a huge answer: scan must win.
	rp, err := ix.RouteQuery(0, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	if rp.IndexCost <= 0 || rp.ScanCost <= 0 {
		t.Fatalf("degenerate costs: %+v", rp)
	}
	if rp.Route != RouteScan {
		t.Errorf("full-range query routed to %v (index %v vs scan %v)", rp.Route, rp.IndexCost, rp.ScanCost)
	}
	if RouteIndex.String() != "index" || RouteScan.String() != "scan" {
		t.Error("route strings wrong")
	}
}

func TestQueryAutoAgreesWithExplicitPaths(t *testing.T) {
	ix, sets := buildSmall(t, 400, 50)
	m := storage.DefaultCostModel()
	for _, r := range [][2]float64{{0.9, 1}, {0, 1}} {
		matches, route, stats, err := ix.QueryAuto(sets[0], r[0], r[1], m)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Results != len(matches) {
			t.Errorf("route %v: stats.Results %d vs %d matches", route, stats.Results, len(matches))
		}
		for _, mt := range matches {
			sim := sets[0].Jaccard(sets[mt.SID])
			if math.Abs(sim-mt.Similarity) > 1e-12 || sim < r[0] || sim > r[1] {
				t.Errorf("route %v: bad match %+v (true %g)", route, mt, sim)
			}
		}
		if route == RouteScan {
			// Scan path is exact: must return the full answer.
			truth := exactAnswer(sets, sets[0], r[0], r[1])
			if len(matches) != len(truth) {
				t.Errorf("scan route returned %d of %d", len(matches), len(truth))
			}
			if stats.FetchIO.Seq() == 0 {
				t.Error("scan route recorded no sequential I/O")
			}
		}
	}
}

func TestTouchedTablesPositive(t *testing.T) {
	ix, _ := buildSmall(t, 300, 40)
	for _, r := range [][2]float64{{0, 0.05}, {0.5, 0.8}, {0.9, 1}, {0, 1}} {
		if got := ix.touchedTables(r[0], r[1]); got <= 0 {
			t.Errorf("range %v: touchedTables = %d", r, got)
		}
	}
}

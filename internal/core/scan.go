// Alternative query executors for the cost-based planner.
//
// ScanPresigned is the direct-scan plan: one sequential pass over the
// shard heap, recomputing each live set's filter candidacy from its stored
// signature instead of probing bucket pages. Candidacy uses the exact
// insert-key = probe-key test the hash tables implement (a stored entry
// collides with the probe in table i iff its insert key equals probe key
// i), evaluated over the full Section 4.3 case combination including the
// negative sides — so the candidate set, and therefore the verified
// answer, is byte-identical to QueryPresigned's. What changes is only the
// access path: seq(heap pages) instead of rand(tables + candidates).
//
// ScreenPresigned is the screen-only plan: the normal filter probe, but
// candidates are answered from the min-hash agreement estimator without
// fetching a single data page. Approximate by construction — similarities
// are estimates and boundary sets can be misplaced. The engine only ever
// dispatches it under QueryOptions.AllowApproximate; core itself does not
// gate.
package core

import (
	"fmt"
	"time"

	"repro/internal/embed"
	"repro/internal/lsh"
	"repro/internal/minhash"
	"repro/internal/set"
	"repro/internal/simdist"
	"repro/internal/storage"
)

// ChernoffEps95 returns the 95%-confidence half-width of the k-coordinate
// min-hash agreement estimator (the classic family's screening margin).
// Family-aware callers should prefer Index.Eps95, which accounts for the
// packed-width debiasing and SuperMinHash's variance reduction.
func ChernoffEps95(k int) float64 { return chernoffEps95(k) }

// scanProbe is the precomputed candidacy test of one Section 4.3 range:
// up to two (positive, optional negative) FI pairs, with the query's
// per-table probe keys derived once. candidate = (∈posA ∧ ∉negA) ∨
// (∈posB ∧ ∉negB); ordinal -1 marks an absent term.
type scanProbe struct {
	posA, negA, posB, negB int
	keys                   map[int][]uint64 // consulted FI ordinal → query probe keys
}

// buildScanProbe mirrors candidatesFromSignature's case analysis exactly,
// including which negative probes exist (probe() there returns nil for an
// absent index, and DissimVector(lo=0)/SimVector(hi=1) are never probed).
func (ix *Index) buildScanProbe(sig minhash.Signature, s1, s2 float64, stats *QueryStats) (scanProbe, error) {
	p := scanProbe{posA: -1, negA: -1, posB: -1, negB: -1, keys: make(map[int][]uint64)}
	src := ix.emb.Bits(sig)
	lo, hi := ix.enclose(s1, s2)
	stats.EnclosedLo, stats.EnclosedHi = lo, hi

	_, hiIsDFI := ix.dfis[hi]
	_, loIsSFI := ix.sfis[lo]
	switch {
	case hiIsDFI:
		p.posA = ix.dfiOrd[hi]
		if _, ok := ix.dfis[lo]; ok {
			p.negA = ix.dfiOrd[lo]
		}
	case loIsSFI:
		p.posA = ix.sfiOrd[lo]
		if _, ok := ix.sfis[hi]; ok && hi < 1 {
			p.negA = ix.sfiOrd[hi]
		}
	default:
		dPoint, ok := ix.bothKindsPoint()
		if !ok {
			return p, fmt.Errorf("core: no usable filter indices for range [%g, %g]", s1, s2)
		}
		p.posA = ix.dfiOrd[dPoint]
		if _, ok := ix.dfis[lo]; ok && lo > 0 {
			p.negA = ix.dfiOrd[lo]
		}
		p.posB = ix.sfiOrd[dPoint]
		if _, ok := ix.sfis[hi]; ok && hi < 1 {
			p.negB = ix.sfiOrd[hi]
		}
	}
	for _, ord := range []int{p.posA, p.negA, p.posB, p.negB} {
		if ord >= 0 {
			if _, done := p.keys[ord]; !done {
				p.keys[ord] = ix.fis[ord].AppendProbeKeys(src, nil)
			}
		}
	}
	return p, nil
}

// candidate evaluates the combination for one stored signature. member
// recomputes the stored entry's insert keys for ord and compares them
// table-by-table against the query's probe keys — exactly the collision
// test the hash tables perform, without touching bucket pages.
func (p *scanProbe) candidate(ix *Index, src lsh.BitSource, keyBuf *[]uint64) bool {
	member := func(ord int) bool {
		qkeys := p.keys[ord]
		*keyBuf = ix.fis[ord].AppendInsertKeys(src, (*keyBuf)[:0])
		for t, k := range *keyBuf {
			if k == qkeys[t] {
				return true
			}
		}
		return false
	}
	if p.posA >= 0 && member(p.posA) && !(p.negA >= 0 && member(p.negA)) {
		return true
	}
	return p.posB >= 0 && member(p.posB) && !(p.negB >= 0 && member(p.negB))
}

// ScanPresigned answers the range query (q, [s1, s2]) by sequentially
// scanning the stored collection, with filter candidacy recomputed per
// live set from its stored signature. Matches are byte-identical to
// QueryPresigned with the same options (screening included); FetchIO
// charges the sequential heap read and IndexIO stays zero. A nil sig
// signs q locally.
func (ix *Index) ScanPresigned(q set.Set, sig minhash.Signature, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var stats QueryStats
	start := time.Now()
	if s1 > s2 {
		return nil, stats, fmt.Errorf("core: invalid range [%g, %g]", s1, s2)
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	if sig == nil {
		ix.emb.SignInto(q, sc.sig)
		sig = sc.sig
	}
	probe, err := ix.buildScanProbe(sig, s1, s2, &stats)
	if err != nil {
		return nil, stats, err
	}

	var screenLo, screenHi float64
	var qp []uint64
	if opt.Screen {
		eps := opt.ScreenMargin
		if eps <= 0 {
			eps = ix.famEps
		}
		screenLo, screenHi = s1-eps, s2+eps
		qp = ix.packQuery(q, sig, sc.packed)
	}

	// Candidacy recomputes each stored entry's insert keys, which need the
	// classic embedding bits: read them from stored words when the family
	// can reproduce them, otherwise re-sign classic from the scanned set
	// (the scan already has the set in hand, so this costs CPU only).
	var matches []Match
	var scanErr error
	sb := embed.SigBits{E: ix.emb}
	pb := embed.PackedSigBits{E: ix.emb, Fam: ix.fam}
	var resigned minhash.Signature
	if !ix.classic64 && !ix.recoverable {
		resigned = make(minhash.Signature, ix.emb.K())
	}
	var keyBuf []uint64
	err = ix.store.Scan(&stats.FetchIO, func(sid storage.SID, s set.Set) bool {
		var src lsh.BitSource
		switch {
		case ix.classic64:
			sb.Sig = ix.sigs[sid]
			src = &sb
		case ix.recoverable:
			pb.Words = ix.sigs[sid]
			src = &pb
		default:
			ix.emb.SignInto(s, resigned)
			sb.Sig = resigned
			src = &sb
		}
		if !probe.candidate(ix, src, &keyBuf) {
			return true
		}
		stats.Candidates++
		if opt.Screen {
			est, err := ix.fam.Estimate(qp, ix.sigs[sid])
			if err != nil {
				scanErr = fmt.Errorf("core: screening candidate %d: %w", sid, err)
				return false
			}
			if est < screenLo || est > screenHi {
				stats.Screened++
				return true
			}
		}
		sim := q.Jaccard(s)
		if sim >= s1 && sim <= s2 {
			matches = append(matches, Match{SID: sid, Similarity: sim})
		}
		return true
	})
	if scanErr != nil {
		return nil, stats, scanErr
	}
	if err != nil {
		return nil, stats, err
	}
	sortMatches(matches)
	stats.Results = len(matches)
	stats.CPU = time.Since(start)
	return matches, stats, nil
}

// ScreenPresigned answers the range query from the filter candidates'
// signature estimates alone: the normal bucket probes run (IndexIO is
// charged), but no data page is ever fetched — each candidate whose
// estimated similarity falls in [s1, s2] is returned with that estimate
// as its similarity. Candidates estimated outside the range count as
// Screened. Approximate: callers opt in through the engine's
// AllowApproximate gate; core does not check it. A nil sig signs q
// locally.
func (ix *Index) ScreenPresigned(q set.Set, sig minhash.Signature, s1, s2 float64, opt QueryOptions) ([]Match, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var stats QueryStats
	start := time.Now()
	if s1 > s2 {
		return nil, stats, fmt.Errorf("core: invalid range [%g, %g]", s1, s2)
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	if sig == nil {
		ix.emb.SignInto(q, sc.sig)
		sig = sc.sig
	}
	cands, err := ix.candidatesFromSignature(sig, s1, s2, &stats, sc)
	if err != nil {
		return nil, stats, err
	}
	qp := ix.packQuery(q, sig, sc.packed)
	matches := make([]Match, 0, len(cands)/4+1)
	for _, sid := range cands {
		est, err := ix.fam.Estimate(qp, ix.sigs[sid])
		if err != nil {
			return nil, stats, fmt.Errorf("core: screening candidate %d: %w", sid, err)
		}
		if est >= s1 && est <= s2 {
			matches = append(matches, Match{SID: sid, Similarity: est})
		} else {
			stats.Screened++
		}
	}
	sortMatches(matches)
	stats.Results = len(matches)
	stats.CPU = time.Since(start)
	return matches, stats, nil
}

// CaptureFraction returns the Lemma 1 capture estimate for the range
// [lo, hi] as a fraction of the collection: the modeled capture integral
// of the enclosing filter combination over hist, normalized by hist's
// total mass. A nil hist falls back to the build-time distribution; ok is
// false when no usable distribution exists. Reads only state immutable
// after Build (plan, cuts) plus the caller's histogram, so no lock is
// taken — the engine calls it with the tuner's live sketch.
func (ix *Index) CaptureFraction(hist *simdist.Histogram, lo, hi float64) (float64, bool) {
	if hist == nil {
		hist = ix.hist
	}
	if hist == nil || hist.Total() == 0 {
		return 0, false
	}
	elo, ehi := ix.enclose(lo, hi)
	captured := hist.Integrate(0, 1, func(s float64) float64 {
		return ix.plan.CaptureAt(elo, ehi, s)
	})
	return captured / hist.Total(), true
}

// ProbeTables returns the number of hash tables a query with the given
// range probes under the Section 4.3 case analysis (each probe is one
// random bucket-page read in the cost model). Plan state is immutable
// after Build, so no lock is taken.
func (ix *Index) ProbeTables(lo, hi float64) int { return ix.touchedTables(lo, hi) }

// ScanCostInputs returns the shard's live set count, sequential heap page
// count, and average pages per set — the per-shard inputs of the planner's
// cost comparison.
func (ix *Index) ScanCostInputs() (live int, scanPages int64, pagesPerSet float64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.store.Live(), ix.store.NumPages(), ix.store.AvgPagesPerSet()
}

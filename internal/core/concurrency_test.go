package core

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/set"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestConcurrentQueries exercises the documented guarantee that a built
// index is safe for concurrent queries (run with -race to check).
func TestConcurrentQueries(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 32, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(qs))
	for _, q := range qs {
		wg.Add(1)
		go func(q workload.Query) {
			defer wg.Done()
			if _, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi); err != nil {
				errs <- err
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

// TestConcurrentQueriesDeterministic verifies that concurrency does not
// change results: the same query run concurrently and serially agrees.
func TestConcurrentQueriesDeterministic(t *testing.T) {
	ix, sets := buildSmall(t, 200, 30)
	serial, _, err := ix.Query(sets[0], 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]Match, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, _, err := ix.Query(sets[0], 0.5, 1.0)
			if err == nil {
				results[g] = m
			}
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if len(got) != len(serial) {
			t.Fatalf("goroutine %d: %d results, serial %d", g, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("goroutine %d: result %d differs", g, i)
			}
		}
	}
}

// TestConcurrentMixedReadWrite hammers the index with simultaneous
// queries, top-k probes, estimates, snapshots, inserts, and deletes. It
// exists for the race detector: every access path must go through
// Index.mu, and -race fails the build of this test if one bypasses it.
// Functional checks are deliberately loose (writers change the answer set
// while readers run); what must hold is that nothing panics, no call
// returns an internal inconsistency error, and the final Len reflects
// every insert and delete exactly once.
func TestConcurrentMixedReadWrite(t *testing.T) {
	const (
		initial   = 200
		readers   = 8
		writers   = 4
		perWriter = 10
	)
	ix, sets := buildSmall(t, initial, 30)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 64, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	var readersWG, writersWG sync.WaitGroup
	errs := make(chan error, readers+writers)
	stop := make(chan struct{})

	// Readers: each loops over queries of every flavour until the writers
	// finish, so reads genuinely overlap the mutations.
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func(g int) {
			defer readersWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(g*13+i)%len(qs)]
				switch i % 4 {
				case 0:
					if _, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := ix.TopK(sets[q.SID], 3); err != nil {
						errs <- err
						return
					}
				case 2:
					// Estimate against a sid writers never delete.
					if _, _, err := ix.EstimateSimilarity(sets[q.SID], storage.SID(q.SID)); err != nil {
						errs <- err
						return
					}
					_ = ix.Len()
					_ = ix.IndexPages()
				case 3:
					if err := ix.Save(io.Discard); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}

	// Writers: each inserts perWriter fresh sets and deletes half of them
	// again. Deletions only touch sids this writer created, so they never
	// collide with the readers' probe sids or with each other.
	var inserted, deleted atomic.Int64
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				base := uint64(1_000_000 + w*10_000 + i*100)
				s := set.New(base, base+1, base+2, base+3, base+4)
				sid, err := ix.Insert(s)
				if err != nil {
					errs <- err
					return
				}
				inserted.Add(1)
				if i%2 == 0 {
					if err := ix.Delete(sid); err != nil {
						errs <- err
						return
					}
					deleted.Add(1)
				}
			}
		}(w)
	}

	// Writers do bounded work; once they finish (or bail on error), release
	// the readers and drain everything.
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent mixed op: %v", err)
	}

	wantLen := initial + int(inserted.Load()) - int(deleted.Load())
	if got := ix.Len(); got != wantLen {
		t.Errorf("Len = %d after stress, want %d (%d inserted, %d deleted)",
			got, wantLen, inserted.Load(), deleted.Load())
	}
	// The surviving inserts must actually be queryable.
	probe := set.New(1_000_100, 1_000_101, 1_000_102, 1_000_103, 1_000_104)
	if _, _, err := ix.Query(probe, 0.0, 1.0); err != nil {
		t.Errorf("post-stress query: %v", err)
	}
}

package core

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentQueries exercises the documented guarantee that a built
// index is safe for concurrent queries (run with -race to check).
func TestConcurrentQueries(t *testing.T) {
	ix, sets := buildSmall(t, 300, 40)
	qs, err := workload.Queries(len(sets), workload.QueryParams{Count: 32, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(qs))
	for _, q := range qs {
		wg.Add(1)
		go func(q workload.Query) {
			defer wg.Done()
			if _, _, err := ix.Query(sets[q.SID], q.Lo, q.Hi); err != nil {
				errs <- err
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

// TestConcurrentQueriesDeterministic verifies that concurrency does not
// change results: the same query run concurrently and serially agrees.
func TestConcurrentQueriesDeterministic(t *testing.T) {
	ix, sets := buildSmall(t, 200, 30)
	serial, _, err := ix.Query(sets[0], 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]Match, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, _, err := ix.Query(sets[0], 0.5, 1.0)
			if err == nil {
				results[g] = m
			}
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if len(got) != len(serial) {
			t.Fatalf("goroutine %d: %d results, serial %d", g, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("goroutine %d: result %d differs", g, i)
			}
		}
	}
}

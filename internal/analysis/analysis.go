// Package analysis is a minimal, self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary used by this repository's custom
// vet suite (cmd/ssrvet). The build environment is hermetic — no module
// proxy — so the framework is grown from the standard library's go/ast and
// go/types instead of depending on x/tools; the API mirrors x/tools closely
// enough that the analyzers would port to a *analysis.Analyzer with only
// import-path changes.
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. Drivers (the multichecker in cmd/ssrvet, the fixture
// runner in analysistest) load packages, construct passes, and collect what
// the analyzers report.
//
// Suppression: a diagnostic is dropped when the offending line (or the line
// immediately above it) carries a comment of the form
//
//	//ssrvet:ignore analyzername -- reason
//
// A bare "//ssrvet:ignore" suppresses every analyzer on that line. This is
// the escape hatch for the rare site where an invariant is deliberately,
// documentedly violated. Like //go:build, the directive must start the
// comment with no space after the slashes; prose mentioning it is inert.
// A directive without a "-- reason" is itself reported (CheckIgnores).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces and
	// why the invariant matters.
	Doc string
	// Run applies the analyzer to one package. It reports findings through
	// pass.Report/Reportf; the error return is for operational failures
	// (not findings).
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Category is the reporting analyzer's name.
	Category string
	// Message states the violation and the expected remedy.
	Message string
}

// Pass carries one analyzer run over one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos values to file positions.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's recorded facts for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// ignores maps filename → line numbers carrying an ignore directive
	// naming this analyzer (or naming no analyzer, which matches all).
	ignores map[string]map[int]bool
}

// Reportf reports a formatted diagnostic at pos unless the line is
// suppressed by an ignore directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position.Filename, position.Line) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(filename string, line int) bool {
	lines, ok := p.ignores[filename]
	if !ok {
		return false
	}
	// A directive suppresses its own line and the line directly below it
	// (so it can sit above a long statement).
	return lines[line] || lines[line-1]
}

// ignorePrefix is the directive marker. Like //go:build, a directive
// comment starts with it exactly — no space after the slashes — so prose
// that merely mentions the directive is never parsed as one.
const ignorePrefix = "//ssrvet:ignore"

// Directive is one parsed ssrvet:ignore comment.
type Directive struct {
	// Pos is the comment's position.
	Pos token.Pos
	// Analyzers names the suppressed analyzers; empty means all.
	Analyzers []string
	// Reason is the justification after "--", empty when omitted.
	Reason string
}

// ParseDirectives extracts every ssrvet:ignore directive from the files'
// comments.
func ParseDirectives(files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := c.Text[len(ignorePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //ssrvet:ignoreXYZ is not the directive
				}
				args := strings.TrimSpace(rest)
				d := Directive{Pos: c.Pos()}
				if i := strings.Index(args, "--"); i >= 0 {
					d.Reason = strings.TrimSpace(args[i+2:])
					args = strings.TrimSpace(args[:i])
				}
				for _, f := range strings.Fields(args) {
					d.Analyzers = append(d.Analyzers, strings.TrimSuffix(f, ","))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// CheckIgnores reports every suppression directive that carries no
// "-- reason" justification. A suppression without a recorded why is a
// time bomb: the next reader cannot tell a deliberate exception from a
// silenced bug. Drivers run it once per package (not per analyzer, so an
// unjustified directive is one diagnostic, not one per suite member).
func CheckIgnores(files []*ast.File, report func(Diagnostic)) {
	for _, d := range ParseDirectives(files) {
		if d.Reason != "" {
			continue
		}
		report(Diagnostic{
			Pos:      d.Pos,
			Category: "ignore",
			Message:  "ssrvet:ignore without a justification: append \"-- reason\" explaining why the invariant is deliberately violated",
		})
	}
}

// BuildIgnores scans the files' comments for ssrvet:ignore directives and
// installs the suppression index for the named analyzer. Drivers call this
// once per (package, analyzer) before Run.
func (p *Pass) BuildIgnores() {
	p.ignores = make(map[string]map[int]bool)
	for _, d := range ParseDirectives(p.Files) {
		if len(d.Analyzers) > 0 && !containsName(d.Analyzers, p.Analyzer.Name) {
			continue
		}
		pos := p.Fset.Position(d.Pos)
		if p.ignores[pos.Filename] == nil {
			p.ignores[pos.Filename] = make(map[int]bool)
		}
		p.ignores[pos.Filename][pos.Line] = true
	}
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ErrorType is the predeclared error interface type, for result-signature
// matching.
var ErrorType = types.Universe.Lookup("error").Type()

// IsErrorType reports whether t is exactly the predeclared error type.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, ErrorType)
}

// Package mapuse is a maprange fixture: map iteration order leaking into
// slices, streams, and return values is flagged; collect-then-sort,
// counting, and map-to-map shapes pass.
package mapuse

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// AppendUnsorted leaks iteration order into a slice that is never
// sorted.
func AppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted afterwards"
	}
	return keys
}

// AppendSorted is the sanctioned collect-then-sort idiom.
func AppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AppendSortSlice sorts through sort.Slice with a comparator.
func AppendSortSlice(m map[float64]int) []float64 {
	var points []float64
	for p := range m {
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	return points
}

// AppendSortReverse sorts through a wrapper (sort.Reverse over a typed
// slice), the top-k probe-order shape.
func AppendSortReverse(m map[float64]bool) []float64 {
	points := make([]float64, 0, len(m))
	for p := range m {
		points = append(points, p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(points)))
	return points
}

// AppendValueDerived taints through an intermediate local.
func AppendValueDerived(m map[string]int, out []int) []int {
	for _, v := range m {
		doubled := v * 2
		out = append(out, doubled) // want "never sorted afterwards"
	}
	return out
}

// AppendInsensitive appends data unrelated to the iteration: a counter
// per entry is order-free.
func AppendInsensitive(m map[string]int) []int {
	var ones []int
	for range m {
		ones = append(ones, 1)
	}
	return ones
}

// IndexedCounterWrite is positional append in disguise.
func IndexedCounterWrite(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k // want "loop-carried index"
		i++
	}
	return out
}

// IndexedCounterSorted repairs the positional write with a sort.
func IndexedCounterSorted(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k
		i++
	}
	sort.Strings(out)
	return out
}

// EncodeInLoop streams entries in iteration order — unsortable after the
// fact.
func EncodeInLoop(m map[string]int, enc *gob.Encoder) {
	for k, v := range m {
		enc.Encode(k) // want "writes iteration-ordered data"
		_ = v
	}
}

// FprintInLoop writes iteration-ordered text.
func FprintInLoop(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "writes iteration-ordered data"
	}
}

// ReturnFirstMatch selects a winner by iteration order.
func ReturnFirstMatch(m map[float64]int, other map[float64]int) (float64, bool) {
	for p := range m {
		if _, ok := other[p]; ok {
			return p, true // want "selects a result by iteration order"
		}
	}
	return 0, false
}

// ReturnInsensitive returns a value independent of which iteration hit.
func ReturnInsensitive(m map[string]int) bool {
	for _, v := range m {
		if v > 10 {
			return true
		}
	}
	return false
}

// Aggregate sums — commutative, order-free.
func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MapToMap builds another map — unordered to unordered.
func MapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// PerIterationLocal appends into a slice scoped to the iteration.
func PerIterationLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

package maprange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/mapuse", maprange.Analyzer)
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6", len(diags))
	}
}

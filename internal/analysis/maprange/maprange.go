// Package maprange defines an analyzer guarding the repo's determinism
// contract against Go's randomized map iteration order.
//
// Why this matters here: the paper's Lemma 1 error bounds are verified by
// bit-exact golden fixtures — snapshots, signatures, and benchmark
// checksums are pinned byte for byte across runs and machines. A `range`
// over a map whose iteration order leaks into an output slice, an
// encoded stream, or a returned value silently breaks that contract:
// the code is correct on every run and identical on none.
//
// The analyzer flags, inside `for ... range m` where m is a map:
//
//   - an append into a slice declared outside the loop whose appended
//     values derive from the iteration (key or value), unless the slice
//     is sorted after the loop in the same function — the
//     collect-then-sort idiom is the sanctioned fix;
//   - a write into an outside slice at a loop-carried index (the
//     positional cousin of append), under the same sorted-after escape;
//   - a call that writes the key or value to an encoder or writer
//     (Encode, Write*, fmt.Fprint*) — order reaches the output stream
//     directly and no later sort can repair it;
//   - a return statement whose results reference the key or value —
//     "first match wins" selects a different winner every run.
//
// Order-insensitive bodies pass untouched: counting, summing, building
// another map, deleting, or appending values that do not depend on the
// iteration variables.
package maprange

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags map iteration order leaking into order-sensitive sinks.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "forbid map iteration order reaching slices, encoders, or return values that feed deterministic artifacts; sort keys first or sort the result",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody finds map ranges in one function body (including nested
// function literals, each checked against its own body for the
// sorted-after escape).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, found := pass.TypesInfo.Types[rs.X]; !found || !isMap(tv.Type) {
			return true
		}
		checkRange(pass, rs, body)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkRange inspects one map range's body for order-sensitive sinks.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	iterObjs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
	}
	// Assignments inside the body extend the taint: x := v makes x
	// iteration-derived too. One forward pass suffices for the shapes in
	// this repo.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !referencesAny(pass, rhs, iterObjs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					iterObjs[obj] = true
				}
			}
		}
		return true
	})
	// Loop-carried counters: objects assigned or incremented in the body
	// make an indexed write positional.
	counters := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if obj := rootObj(pass, s.X); obj != nil {
				counters[obj] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						counters[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// Nested map ranges are checked by their own visit.
			return true
		case *ast.AssignStmt:
			checkAppend(pass, s, rs, enclosing, iterObjs)
			checkIndexedWrite(pass, s, rs, enclosing, counters)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				checkSinkCall(pass, call, iterObjs)
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				if referencesAny(pass, e, iterObjs) {
					pass.Reportf(s.Pos(), "return inside a map range selects a result by iteration order, which differs every run: sort the keys and iterate the slice instead")
					break
				}
			}
		}
		return true
	})
}

// checkAppend flags `dst = append(dst, ...iteration-derived...)` where
// dst outlives the loop and is never sorted afterwards.
func checkAppend(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, enclosing *ast.BlockStmt, iterObjs map[types.Object]bool) {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		dst := rootObj(pass, call.Args[0])
		if dst == nil || declaredWithin(dst, rs) {
			continue
		}
		sensitive := false
		for _, arg := range call.Args[1:] {
			if referencesAny(pass, arg, iterObjs) {
				sensitive = true
			}
		}
		if !sensitive || sortedAfter(pass, enclosing, rs, dst) {
			continue
		}
		pass.Reportf(as.Pos(), "append of map-iteration data into %s, which is never sorted afterwards: iteration order is randomized, so the slice differs every run; sort the keys first or sort %s before it is used", dst.Name(), dst.Name())
	}
}

// checkIndexedWrite flags `dst[i] = ...` where dst outlives the loop and
// i is a loop-carried counter — positional writes with the same ordering
// hazard as append.
func checkIndexedWrite(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, enclosing *ast.BlockStmt, counters map[types.Object]bool) {
	for _, lhs := range as.Lhs {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			continue
		}
		base := rootObj(pass, ix.X)
		if base == nil || declaredWithin(base, rs) {
			continue
		}
		if bt, found := pass.TypesInfo.Types[ix.X]; !found || !isSliceOrArray(bt.Type) {
			continue
		}
		idx := rootObj(pass, ix.Index)
		if idx == nil || !counters[idx] || declaredWithin(idx, rs) {
			continue
		}
		if sortedAfter(pass, enclosing, rs, base) {
			continue
		}
		pass.Reportf(as.Pos(), "write into %s at loop-carried index %s inside a map range: positions follow the randomized iteration order; sort the keys first or sort %s before it is used", base.Name(), idx.Name(), base.Name())
	}
}

func isSliceOrArray(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		return isSliceOrArray(t.Underlying().(*types.Pointer).Elem())
	}
	return false
}

// sinkMethods are calls whose argument order reaches an output stream.
var sinkMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkSinkCall flags encoder/writer calls fed iteration-derived data —
// unsortable after the fact.
func checkSinkCall(pass *analysis.Pass, call *ast.CallExpr, iterObjs map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		if referencesAny(pass, arg, iterObjs) {
			pass.Reportf(call.Pos(), "%s inside a map range writes iteration-ordered data to the output: the stream differs every run and no later sort can repair it; iterate sorted keys instead", sel.Sel.Name)
			return
		}
	}
}

// sortedAfter reports whether a sort call referencing obj appears after
// the range statement in the enclosing body — the collect-then-sort
// escape.
func sortedAfter(pass *analysis.Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort and slices packages' sorting entry
// points.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// referencesAny reports whether e mentions any of the objects.
func referencesAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// refersTo reports whether e mentions obj, looking through sort.Reverse /
// sort.Float64Slice style wrappers by inspecting the whole expression.
func refersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootObj resolves the base identifier of x (looking through selectors,
// indexes, and parens) to its object.
func rootObj(pass *analysis.Pass, x ast.Expr) types.Object {
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			// Prefer the selected field/var itself when it resolves; a
			// selector like ix.sigs names the field, not the receiver.
			if obj := pass.TypesInfo.Uses[v.Sel]; obj != nil {
				return obj
			}
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the range
// statement (per-iteration locals are order-insensitive).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// Package atomuse is an atomicview fixture: atomic-typed fields accessed
// outside their method set and mixed atomic/plain access to ordinary
// fields are flagged; disciplined use passes.
package atomuse

import (
	"sync/atomic"
)

type view struct {
	gen uint64
}

// Engine mirrors the planView pattern: view swaps atomically, counters
// bump through the free functions.
type Engine struct {
	view    atomic.Pointer[view]
	closed  atomic.Bool
	queries uint64
	hits    uint64
	plainOK int
}

// LoadStore uses the atomic API throughout.
func (e *Engine) LoadStore(v *view) *view {
	old := e.view.Load()
	e.view.Store(v)
	if e.closed.Load() {
		return nil
	}
	return old
}

// CopyField copies the atomic pointer by value — a torn view.
func (e *Engine) CopyField() {
	v := e.view // want "outside its atomic API"
	_ = v
}

// AliasField leaks the atomic's address to arbitrary code.
func (e *Engine) AliasField() *atomic.Bool {
	return &e.closed // want "outside its atomic API"
}

// CountAtomic bumps the counter through the free function.
func (e *Engine) CountAtomic() {
	atomic.AddUint64(&e.queries, 1)
	atomic.AddUint64(&e.hits, 1)
}

// CountPlain races CountAtomic: same field, no synchronization.
func (e *Engine) CountPlain() {
	e.queries++ // want "plain access is a data race"
}

// ReadPlain races too — an unsynchronized load of an atomic counter.
func (e *Engine) ReadPlain() uint64 {
	return e.hits // want "plain access is a data race"
}

// PlainOnly is an ordinary field with ordinary access — no atomic use
// anywhere, nothing to flag.
func (e *Engine) PlainOnly() int {
	e.plainOK++
	return e.plainOK
}

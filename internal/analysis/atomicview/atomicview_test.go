package atomicview_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicview"
)

func TestAtomicView(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/atomuse", atomicview.Analyzer)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}

// Package atomicview defines an analyzer enforcing all-or-nothing atomic
// access to shared fields.
//
// Why this matters here: the engine's query-serving state lives behind an
// atomic.Pointer (the planView pattern) so queries never block on a plan
// swap. That guarantee holds only if every access goes through the
// atomic API — one plain read of the field compiles to an unsynchronized
// load, and the race detector only catches it on the schedules a test
// happens to run. The same applies to counters bumped with the
// sync/atomic free functions: a single plain `x.n++` elsewhere undoes
// the whole discipline.
//
// The analyzer flags, in non-test code:
//
//   - any access to a field of an atomic type (atomic.Pointer[T],
//     atomic.Bool, atomic.Int64, atomic.Value, ...) that is not a call
//     of its atomic method set — copying the field, assigning it,
//     or taking its address all bypass (or tear) the protocol;
//   - a plain read or write of a plain-typed field that is elsewhere
//     accessed through the sync/atomic free functions
//     (atomic.AddUint64(&x.f, 1) in one function, x.f++ in another —
//     the mixed-view race).
//
// Initialization in a constructor is not exempted automatically: even
// before publication a Store costs nothing, and exempting "constructors"
// statically is guesswork. The rare deliberate pre-publication plain
// write takes an //ssrvet:ignore with its reason.
package atomicview

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags non-atomic access to atomically-shared fields.
var Analyzer = &analysis.Analyzer{
	Name: "atomicview",
	Doc:  "require every access to an atomic-typed or atomically-updated field to go through the sync/atomic API; one plain access is an undetected data race",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	v := &visitor{pass: pass, atomicFn: map[*types.Var][]token.Pos{}, plain: map[*types.Var][]token.Pos{}}
	for _, f := range pass.Files {
		v.file(f)
	}
	// Mixed-view check: plain uses of fields that are elsewhere updated
	// through the sync/atomic free functions.
	for field, plainSites := range v.plain {
		if len(v.atomicFn[field]) == 0 {
			continue
		}
		for _, pos := range plainSites {
			pass.Reportf(pos, "field %s is updated through sync/atomic elsewhere (e.g. %s); this plain access is a data race — use atomic loads/stores for every access", field.Name(), pass.Fset.Position(v.atomicFn[field][0]))
		}
	}
	return nil
}

type visitor struct {
	pass *analysis.Pass
	// atomicFn records fields passed as &x.f to sync/atomic functions.
	atomicFn map[*types.Var][]token.Pos
	// plain records every other use of those candidate fields.
	plain map[*types.Var][]token.Pos
}

// file walks one file with an explicit parent stack, so a selector's use
// context (method call vs. plain access) is decidable.
func (v *visitor) file(f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.SelectorExpr:
			v.selector(x, stack)
		case *ast.CallExpr:
			v.call(x)
		}
		return true
	})
}

// selector checks one field access.
func (v *visitor) selector(sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := v.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if isAtomicType(field.Type()) {
		if !isAtomicMethodCall(v.pass, sel, stack) {
			v.pass.Reportf(sel.Pos(), "field %s has atomic type %s but is accessed outside its atomic API: copying, assigning, or aliasing the field bypasses the synchronization it exists for", field.Name(), types.TypeString(field.Type(), types.RelativeTo(v.pass.Pkg)))
		}
		return
	}
	// Plain-typed field: classify this use as atomic (&x.f passed to a
	// sync/atomic function) or plain.
	if isAtomicFnOperand(v.pass, sel, stack) {
		return // recorded by call()
	}
	v.plain[field] = append(v.plain[field], sel.Pos())
}

// call records fields whose address feeds a sync/atomic free function.
func (v *visitor) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		un, ok := arg.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		fsel, ok := un.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if s, ok := v.pass.TypesInfo.Selections[fsel]; ok && s.Kind() == types.FieldVal {
			if field, ok := s.Obj().(*types.Var); ok {
				v.atomicFn[field] = append(v.atomicFn[field], un.Pos())
			}
		}
	}
}

// isAtomicType reports whether t is a named type of package sync/atomic
// (Bool, Int32, Int64, Uint32, Uint64, Uintptr, Pointer[T], Value).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isAtomicMethodCall reports whether sel (x.field) is the receiver of a
// method call resolved into sync/atomic — x.field.Load(), .Store(), etc.
func isAtomicMethodCall(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || parent.X != sel {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[parent.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == parent
}

// isAtomicFnOperand reports whether sel is the &-operand of a sync/atomic
// free-function call (atomic.AddUint64(&x.f, 1)).
func isAtomicFnOperand(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	un, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND || un.X != sel {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	fsel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[fsel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// Package seededrand defines an analyzer forbidding the global math/rand
// (and math/rand/v2) top-level generator in library code.
//
// Why this matters here: the paper's guarantees are statistical. MinHash
// permutation coefficients (Section 3.1) and SFI/DFI sampled bit positions
// (Section 4.1) must be a pure function of an explicit seed, or two
// processes cannot agree on an embedding, snapshots cannot rebuild filter
// indices deterministically (core's persistence relies on exactly this, and
// experiment results stop being reproducible). The global generator is
// process-wide mutable state: any package calling rand.Intn perturbs every
// other consumer, and since Go 1.20 it is randomly seeded, so "forgot to
// inject the seed" bugs do not even fail loudly — they silently skew recall.
//
// The analyzer flags any reference to a top-level math/rand function that
// reads or mutates the global source (Intn, Float64, Perm, Shuffle, Seed,
// ...). Constructing an injected generator (rand.New, rand.NewSource,
// rand.NewPCG, rand.NewZipf) and type references (rand.Rand, rand.Source)
// are allowed.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags global math/rand usage in library packages.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid the global math/rand generator in library code; randomness must flow through an injected *rand.Rand or explicit seed so MinHash permutations and sampled bit positions are reproducible",
	Run:  run,
}

// forbidden lists the top-level functions that touch the global generator,
// across math/rand and math/rand/v2.
var forbidden = map[string]bool{
	// math/rand (v1)
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
	"N": true,
}

// randPackages are the import paths whose globals are policed.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok || !randPackages[pkgName.Imported().Path()] {
			return true
		}
		if !forbidden[sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"call to global %s.%s: library code must draw randomness from an injected *rand.Rand (or explicit seed) so results are reproducible",
			pkgName.Imported().Path(), sel.Sel.Name)
		return true
	})
	return nil
}

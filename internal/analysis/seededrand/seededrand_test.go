package seededrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/randuse", seededrand.Analyzer)
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5", len(diags))
	}
}

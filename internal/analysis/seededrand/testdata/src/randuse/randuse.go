// Package randuse is a seededrand fixture: global math/rand calls are
// flagged, injected generators are allowed.
package randuse

import (
	"math/rand"
)

// GlobalDraws uses the process-wide generator: every call site is flagged.
func GlobalDraws() int {
	n := rand.Intn(10)                 // want "global math/rand.Intn"
	f := rand.Float64()                // want "global math/rand.Float64"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand.Shuffle"
	rand.Seed(42)                      // want "global math/rand.Seed"
	return n + int(f)
}

// PermRef flags even a bare function reference, not just calls.
var PermRef = rand.Perm // want "global math/rand.Perm"

// Injected draws from an explicitly seeded generator: allowed.
func Injected(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + rng.Perm(3)[0]
}

// TypeUse references math/rand types without touching the global: allowed.
func TypeUse(rng *rand.Rand) *rand.Rand {
	var _ rand.Source
	return rng
}

// Suppressed documents a deliberate exception via the ignore directive.
func Suppressed() int {
	//ssrvet:ignore seededrand -- fixture: demonstrating suppression
	return rand.Intn(3)
}

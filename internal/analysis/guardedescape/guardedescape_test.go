package guardedescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guardedescape"
)

func TestGuardedEscape(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/escape", guardedescape.Analyzer)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}

// Package escape is a guardedescape fixture: returning guarded slices/maps
// is flagged; copies, scalars, and unguarded structs pass.
package escape

import "sync"

// Registry guards its containers with a mutex.
type Registry struct {
	mu    sync.Mutex
	items []int
	index map[string]int
	meta  struct{ tags []string }
	name  string
}

// Items leaks the guarded slice.
func (r *Registry) Items() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items // want "aliasing state guarded"
}

// Index leaks the guarded map.
func (r *Registry) Index() map[string]int {
	return r.index // want "aliasing state guarded"
}

// Tags leaks through a nested selector chain.
func (r *Registry) Tags() []string {
	return r.meta.tags // want "aliasing state guarded"
}

// ItemsCopy returns a copy: the approved pattern.
func (r *Registry) ItemsCopy() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.items))
	copy(out, r.items)
	return out
}

// Name returns a scalar; strings are immutable.
func (r *Registry) Name() string {
	return r.name
}

// Len derives a scalar from guarded state.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Frozen documents an immutable-after-construction escape hatch.
func (r *Registry) Frozen() []int {
	return r.items //ssrvet:ignore guardedescape -- fixture: demonstrating suppression
}

// RW uses an RWMutex: also guarded.
type RW struct {
	mu   sync.RWMutex
	data []byte
}

// Data leaks from under an RWMutex.
func (w *RW) Data() []byte {
	return w.data // want "aliasing state guarded"
}

// Plain has no mutex: returning its slice is the caller's business.
type Plain struct {
	values []int
}

// Values is allowed: no lock promises concurrency safety here.
func (p Plain) Values() []int {
	return p.values
}

// Package guardedescape defines an analyzer forbidding methods on
// mutex-holding structs from returning internal slices or maps that alias
// lock-guarded state.
//
// Why this matters here: the service layer documents "safe for concurrent
// use" on types like ssr.Collection, core.Index, and server.Server, and
// backs the promise with a sync.Mutex/RWMutex field. That promise is void
// if a method hands out a reference into guarded state — the caller then
// reads (or worse, appends to) the slice after the lock is released, racing
// with the next mutation. The race detector only catches the schedules it
// sees; this analyzer rejects the aliasing shape outright: a return of
// recv.field (or recv.a.b) whose type is a slice or map, from a method on a
// struct that carries a mutex.
//
// The required pattern is to copy before returning (as Collection.Get and
// Index.Sets already do). Read-only escape hatches must carry an
// //ssrvet:ignore directive and a comment explaining why aliasing is safe
// (e.g. the field is immutable after construction).
package guardedescape

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags lock-guarded aliasing returns.
var Analyzer = &analysis.Analyzer{
	Name: "guardedescape",
	Doc:  "forbid methods on mutex-holding structs from returning internal slices/maps that alias lock-guarded state; return a copy instead",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded := mutexHolders(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
				continue
			}
			recvField := fn.Recv.List[0]
			named := receiverNamed(pass, recvField)
			if named == nil || !guarded[named] {
				continue
			}
			var recvObj types.Object
			if len(recvField.Names) == 1 {
				recvObj = pass.TypesInfo.Defs[recvField.Names[0]]
			}
			if recvObj == nil {
				continue // anonymous receiver cannot leak its fields
			}
			checkMethod(pass, fn, recvObj)
		}
	}
	return nil
}

// mutexHolders finds the package's named struct types with a direct
// sync.Mutex or sync.RWMutex field (named or embedded).
func mutexHolders(pass *analysis.Pass) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutex(st.Field(i).Type()) {
				out[named] = true
				break
			}
		}
	}
	return out
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly behind
// a pointer).
func isMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverNamed resolves the receiver field's base named type.
func receiverNamed(pass *analysis.Pass, recv *ast.Field) *types.Named {
	tv, ok := pass.TypesInfo.Types[recv.Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkMethod walks the method body for returns of receiver-rooted
// selector chains with slice or map type. Function literals inside the
// method are walked too: they close over the same receiver.
func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl, recvObj types.Object) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			expr := ast.Unparen(res)
			if !rootedAtReceiver(pass, expr, recvObj) {
				continue
			}
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok {
				continue
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(res.Pos(),
					"method %s returns %s, aliasing state guarded by the struct's mutex: return a copy (or document immutability with //ssrvet:ignore)",
					fn.Name.Name, types.ExprString(res))
			}
		}
		return true
	})
}

// rootedAtReceiver reports whether expr is a selector chain (x.f, x.f.g,
// possibly with parens) whose root identifier is the method receiver.
func rootedAtReceiver(pass *analysis.Pass, expr ast.Expr, recvObj types.Object) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for {
		x := ast.Unparen(sel.X)
		switch inner := x.(type) {
		case *ast.SelectorExpr:
			sel = inner
		case *ast.Ident:
			return pass.TypesInfo.Uses[inner] == recvObj
		default:
			return false
		}
	}
}

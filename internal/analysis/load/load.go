// Package load turns Go packages on disk into the parsed, type-checked form
// the analysis framework consumes, without golang.org/x/tools. It shells out
// to `go list -export` for dependency export data (compiled by the ordinary
// build, so loading is hermetic and fast), parses the target packages from
// source, and type-checks them with the standard gc importer reading that
// export data. This is the same layering go/packages uses in its
// NeedExportFile mode, grown locally from the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path ("repro/internal/lsh").
	ImportPath string
	// Dir is the directory holding the sources.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info records the type-checker's facts about Files.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` in dir for the given patterns
// and decodes the package stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types importer resolving import paths through the
// export-data files in exports.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// parseFiles parses the named files in dir into fset.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves patterns (e.g. "./...") in dir and returns the matched
// packages parsed from source and fully type-checked. Dependencies —
// including the standard library — are consumed as compiled export data, so
// only the packages under analysis pay parsing and checking cost. Test files
// are not loaded: the vet suite governs production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("load: parsing %s: %v", t.ImportPath, err)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return out, nil
}

// Dir type-checks the single package rooted at dir (every non-test .go file
// in it), resolving its imports — typically just the standard library — via
// export data. It exists for analysistest, whose fixture packages live under
// testdata/ where go list will not enumerate them.
func Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports to export data. go list compiles them
	// into the build cache on demand; run it from the fixture dir's module
	// (testdata sits inside this repo, so the repo module context applies).
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	name := files[0].Name.Name
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	_, files := parse(t, `package p

func f() {
	_ = 1 //ssrvet:ignore droppederr -- read-only fd
	_ = 2 //ssrvet:ignore lockorder, maprange
	_ = 3 //ssrvet:ignore
}
`)
	ds := ParseDirectives(files)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3", len(ds))
	}
	if got := ds[0].Analyzers; len(got) != 1 || got[0] != "droppederr" {
		t.Errorf("directive 0 analyzers = %v, want [droppederr]", got)
	}
	if ds[0].Reason != "read-only fd" {
		t.Errorf("directive 0 reason = %q, want %q", ds[0].Reason, "read-only fd")
	}
	if got := ds[1].Analyzers; len(got) != 2 || got[0] != "lockorder" || got[1] != "maprange" {
		t.Errorf("directive 1 analyzers = %v, want [lockorder maprange]", got)
	}
	if ds[1].Reason != "" || ds[2].Reason != "" {
		t.Errorf("directives 1 and 2 should have empty reasons")
	}
	if len(ds[2].Analyzers) != 0 {
		t.Errorf("bare directive should name no analyzers, got %v", ds[2].Analyzers)
	}
}

// TestCheckIgnoresUnjustified pins the suppression policy: an ignore with
// no "-- reason" text is itself a diagnostic, a justified one is not.
func TestCheckIgnoresUnjustified(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = 1 //ssrvet:ignore droppederr
	_ = 2 //ssrvet:ignore droppederr -- documented exception
	_ = 3 //ssrvet:ignore -- bare but explained
}
`)
	var diags []Diagnostic
	CheckIgnores(files, func(d Diagnostic) { diags = append(diags, d) })
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the reasonless directive): %v", len(diags), diags)
	}
	if diags[0].Category != "ignore" {
		t.Errorf("category = %q, want %q", diags[0].Category, "ignore")
	}
	if !strings.Contains(diags[0].Message, "justification") {
		t.Errorf("message %q does not mention the missing justification", diags[0].Message)
	}
	if got := fset.Position(diags[0].Pos).Line; got != 4 {
		t.Errorf("diagnostic on line %d, want 4", got)
	}
}

// TestBuildIgnoresSuppression pins that directives suppress their own line
// and the line below, for the named analyzer only.
func TestBuildIgnoresSuppression(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = 1 //ssrvet:ignore alpha -- known
	//ssrvet:ignore beta -- next line
	_ = 2
	_ = 3
}
`)
	report := func(name string, line int) bool {
		var got []Diagnostic
		p := &Pass{
			Analyzer: &Analyzer{Name: name},
			Fset:     fset,
			Files:    files,
			Report:   func(d Diagnostic) { got = append(got, d) },
		}
		p.BuildIgnores()
		file := fset.File(files[0].Pos())
		p.Reportf(file.LineStart(line), "finding")
		return len(got) > 0
	}
	if report("alpha", 4) {
		t.Errorf("alpha on line 4 should be suppressed by the same-line directive")
	}
	if !report("beta", 4) {
		t.Errorf("beta on line 4 should not be suppressed by alpha's directive")
	}
	if report("beta", 6) {
		t.Errorf("beta on line 6 should be suppressed by the directive above")
	}
	if !report("beta", 7) {
		t.Errorf("beta on line 7 is past the directive's reach and should report")
	}
}

// Package loopuse is a looplife fixture: goroutines running unbounded
// loops with no stop signal are flagged; the stop-channel, context,
// work-channel, and WaitGroup shapes pass.
package loopuse

import (
	"context"
	"sync"
	"time"
)

// Forever leaks: nothing can stop the loop.
func Forever() {
	go func() { // want "no stop signal"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// NamedLeak leaks through a named function: spin has no stop parameter.
func NamedLeak() {
	go spin() // want "no stop signal"
}

func spin() {
	for {
		time.Sleep(time.Second)
	}
}

// LocalChannel leaks: the channel is made inside the goroutine, so no
// owner can ever close or signal it.
func LocalChannel() {
	go func() { // want "no stop signal"
		tick := make(chan struct{})
		for {
			<-tick
		}
	}()
}

// StopChannel is the autoTuneLoop shape: select on an owner-supplied
// stop channel.
func StopChannel(stop chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

// NamedStop passes the stop channel into a named loop function.
func NamedStop(stop chan struct{}) {
	go loop(stop)
}

func loop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// ContextLoop watches ctx.Done.
func ContextLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// Worker is the pool shape: WaitGroup join plus a closable work channel.
func Worker(wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			v, ok := <-work
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// RangeWorker drains an owner-supplied channel; close stops it.
func RangeWorker(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// Bounded terminates by construction: a conditioned loop is not flagged.
func Bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
		}
	}()
}

// Package looplife defines an analyzer for unkillable goroutines.
//
// The repo's long-running goroutines all follow one shape: the loop
// selects on a stop signal supplied by the owner (autoTuneLoop's stop
// channel, a context's Done, or a closed work channel) and the owner
// joins on a done channel or WaitGroup. A background loop started
// without any such signal cannot be shut down — Close returns, the test
// binary exits, but under a server the goroutine keeps ticking, holding
// references and racing the teardown it never observes.
//
// The analyzer flags a `go` statement whose launched function — a
// function literal, or a same-package function or method whose body is
// visible — contains an unbounded `for` loop (no condition) and none of:
//
//   - a receive from a channel that originates outside the goroutine
//     body (a captured or parameter stop/work channel, or <-ctx.Done());
//   - a range over such a channel;
//   - a (*sync.WaitGroup).Done call (the worker-pool join shape).
//
// A loop that exits only on an internal computed condition trips the
// analyzer too; if the termination argument is real, say so with
// //ssrvet:ignore looplife -- <why it terminates>.
package looplife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags goroutines running unbounded loops with no stop signal.
var Analyzer = &analysis.Analyzer{
	Name: "looplife",
	Doc:  "require every goroutine with an unbounded for loop to watch a stop channel, context, or WaitGroup so the owner can shut it down",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, g, decls)
			if body == nil {
				return true
			}
			if hasEndlessLoop(body) && !hasStopSignal(pass, body) {
				pass.Reportf(g.Pos(), "goroutine runs an unbounded for loop with no stop signal: no receive from an external channel, no ctx.Done, no WaitGroup join — it cannot be shut down and leaks past Close")
			}
			return true
		})
	}
	return nil
}

// launchedBody resolves the body of the function a go statement starts:
// the literal itself, or the declaration of a same-package function or
// method. Cross-package calls return nil — their bodies are not visible,
// and the callee package is analyzed in its own right.
func launchedBody(pass *analysis.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasEndlessLoop reports whether body contains a `for { ... }` loop with
// no condition, outside any nested function literal (a nested literal
// runs on its own goroutine or call and is judged there).
func hasEndlessLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasStopSignal reports whether body contains any shutdown-observing
// construct: a receive from (or range over) a channel rooted outside the
// body, or a sync.WaitGroup Done call.
func hasStopSignal(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && rootedOutside(pass, x.X, body) {
				found = true
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(x.X).Underlying().(*types.Chan); ok && rootedOutside(pass, x.X, body) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pass, x) {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootedOutside reports whether the leftmost identifier of expr resolves
// to an object declared outside body — a parameter, a captured variable,
// or a package-level name. A channel made inside the goroutine cannot
// carry a shutdown signal from its owner.
func rootedOutside(pass *analysis.Pass, expr ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.CallExpr:
			expr = x.Fun
		case *ast.ParenExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return false
		}
	}
}

// isWaitGroupDone reports whether call is wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

package looplife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/looplife"
)

func TestLoopLife(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/loopuse", looplife.Analyzer)
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3", len(diags))
	}
}

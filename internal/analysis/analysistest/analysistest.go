// Package analysistest runs an analyzer over fixture packages and checks
// the reported diagnostics against expectations written in the fixtures —
// the same contract as golang.org/x/tools/go/analysis/analysistest, grown
// locally because the build environment has no module proxy.
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ directory. An
// expectation is a line comment of the form
//
//	x := a == b // want "floating-point"
//
// where the quoted string is a regexp that must match the message of a
// diagnostic reported on that line. Multiple `want` strings on one line
// demand multiple diagnostics. Lines with no want comment must produce no
// diagnostics; unmatched expectations and unexpected diagnostics both fail
// the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRE matches a want comment and captures the quoted regexps after it.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE captures each double-quoted or backquoted string.
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir, applies the analyzer, and reports
// mismatches between diagnostics and want comments as test errors. It
// returns the diagnostics for any further assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkg, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	pass.BuildIgnores()
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	expects, err := parseExpectations(dir)
	if err != nil {
		t.Fatalf("parsing expectations: %v", err)
	}

	// Match each diagnostic against an unconsumed expectation on its line.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		base := filepath.Base(pos.Filename)
		matched := false
		for i := range expects {
			e := &expects[i]
			if e.hit || e.file != base || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", base, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// parseExpectations scans the fixture sources for want comments.
func parseExpectations(dir string) ([]expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []expectation
	for _, entry := range entries {
		name := entry.Name()
		if entry.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", name, i+1)
			}
			for _, q := range quoted {
				raw := q[1]
				if raw == "" {
					raw = q[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", name, i+1, raw, err)
				}
				out = append(out, expectation{file: name, line: i + 1, re: re, raw: raw})
			}
		}
	}
	return out, nil
}

// Package floatuse is a floatcmp fixture: computed-float equality is
// flagged; exact sentinels, constant folds, and ordered comparisons pass.
package floatuse

// Computed flags equality between two runtime floats.
func Computed(a, b float64) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	return a != b // want "floating-point != comparison"
}

// NamedFloat flags equality on defined float types too.
type Similarity float64

// SameSim compares two defined-type floats.
func SameSim(x, y Similarity) bool {
	return x == y // want "floating-point == comparison"
}

// ConstantOperand flags comparison against a non-sentinel constant: 0.3 is
// not exactly representable, so drift on the variable side breaks it.
func ConstantOperand(a float64) bool {
	return a == 0.3 // want "floating-point == comparison"
}

// Float32 flags the narrow type as well.
func Float32(a, b float32) bool {
	return a == b // want "floating-point == comparison"
}

// Sentinels allows the exact 0/1 checks the probability code leans on.
func Sentinels(mass, target float64) bool {
	if mass == 0 || target == 1 {
		return true
	}
	return mass != 0.0
}

// Ordered comparisons are not equality; rounding moves them by at most one
// ulp, which the math already tolerates.
func Ordered(a, b float64) bool {
	return a < b || a >= b
}

// Ints are not floats.
func Ints(a, b int) bool {
	return a == b
}

// Folded is compile-time constant arithmetic: exact.
func Folded() bool {
	const half = 0.5
	return half == 0.25*2
}

// Suppressed demonstrates the deliberate-exception directive.
func Suppressed(a, b float64) bool {
	return a == b //ssrvet:ignore floatcmp -- fixture: demonstrating suppression
}

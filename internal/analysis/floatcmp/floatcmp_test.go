package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/floatuse", floatcmp.Analyzer)
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5", len(diags))
	}
}

// Package floatcmp defines an analyzer forbidding == and != between
// floating-point operands in the probability-math packages.
//
// Why this matters here: the optimizer's partition points, the collision
// curves p_{r,l}(s), and the recall/precision integrals are all computed in
// float64. Exact equality between two *computed* floats is almost never the
// intended predicate — quantile placement, Hamming-scale conversion, and
// histogram integration each introduce rounding, so an == that "works today"
// silently stops matching after any arithmetic reordering, and the failure
// mode is not a crash but a filter index quietly dropping out of a query
// combination (skewed recall, Section 4.3). Comparisons must go through a
// tolerance helper (repro/internal/floats) or be restructured.
//
// Two comparisons stay legal because they are exact by construction:
//
//   - comparison against a constant whose value is exactly 0 or 1. These are
//     the sentinel values of the domain (empty mass, unset target, the ends
//     of the similarity scale); both are exactly representable and testing
//     them is idiomatic ("was this ever assigned?").
//   - comparisons where both operands are constants (folded at compile time).
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid == and != on floating-point operands outside a tolerance helper; rounding makes computed-float equality meaningless and the resulting bugs skew recall silently",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		xt := pass.TypesInfo.Types[bin.X]
		yt := pass.TypesInfo.Types[bin.Y]
		if !isFloat(xt.Type) || !isFloat(yt.Type) {
			return true
		}
		// Both constant: folded at compile time, exact.
		if xt.Value != nil && yt.Value != nil {
			return true
		}
		// One side an exact 0 or 1 sentinel: exactly representable.
		if isExactSentinel(xt.Value) || isExactSentinel(yt.Value) {
			return true
		}
		pass.Reportf(bin.OpPos,
			"floating-point %s comparison: use a tolerance helper (repro/internal/floats) or compare against the exact sentinels 0/1",
			bin.Op)
		return true
	})
	return nil
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isExactSentinel reports whether v is a compile-time constant equal to
// exactly 0 or 1.
func isExactSentinel(v constant.Value) bool {
	if v == nil {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0)) ||
		constant.Compare(v, token.EQL, constant.MakeInt64(1))
}

package droppederr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/erruse", droppederr.Analyzer)
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6", len(diags))
	}
}

package droppederr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/erruse", droppederr.Analyzer)
	if len(diags) != 7 {
		t.Errorf("got %d diagnostics, want 7", len(diags))
	}
}

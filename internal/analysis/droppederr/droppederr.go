// Package droppederr defines an analyzer forbidding silently discarded
// errors in the persistence and serving layers.
//
// Why this matters here: the storage, textio, snapshot, and HTTP packages
// are the repo's durability and integration boundary. A dropped write or
// encode error there does not crash — it truncates a snapshot, emits a
// half-written response body, or loses a set, and the next reader sees
// corruption with no trail back to the cause. (The seed repo shipped exactly
// this bug: server.writeJSON ignored json.Encoder.Encode's error.)
//
// The analyzer flags, in non-test code:
//
//   - `_ = f()` and `x, _ := f()` where the discarded value is the
//     predeclared error type;
//   - a call used as a bare statement whose signature returns an error
//     (every result discarded);
//   - `defer f.Close()` / `defer f.Sync()` on an *os.File and
//     `defer w.Flush()` on a *bufio.Writer. Deferred calls are otherwise
//     exempt (there is usually no error path to return on), but these are
//     the write-ahead-log bug class: a file or buffered writer that
//     silently loses its final flush surfaces as a truncated log,
//     snapshot, or benchmark report on the next read. Flush/close such
//     writers explicitly and surface the error (see
//     internal/wal.Writer.Close), or annotate read-only fds with
//     //ssrvet:ignore and the reason.
//
// Deliberate discards remain possible and visible: the never-failing
// writers *bytes.Buffer and *strings.Builder, the fmt.Print family, and
// fmt.Fprint* aimed at os.Stdout/os.Stderr (terminal diagnostics) are
// exempt; anything else needs an //ssrvet:ignore directive with a reason.
package droppederr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags discarded errors on I/O and persistence call sites.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarding errors (blank assignment or bare call statement) in persistence and serving code; dropped I/O errors surface later as silent corruption",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, stmt)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				checkBareCall(pass, call)
			}
		case *ast.DeferStmt:
			checkDefer(pass, stmt)
		}
		return true
	})
	return nil
}

// checkDefer flags `defer f.Close()` / `defer f.Sync()` on *os.File and
// `defer w.Flush()` on *bufio.Writer: the deferred error vanishes, and
// for a written file or buffered writer that error is the only signal
// that buffered data never reached its destination.
func checkDefer(pass *analysis.Pass, stmt *ast.DeferStmt) {
	sel, ok := stmt.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := types.TypeString(sig.Recv().Type(), nil)
	switch {
	case recv == "*os.File" && (fn.Name() == "Close" || fn.Name() == "Sync"):
		pass.Reportf(stmt.Pos(), "deferred (*os.File).%s discards its error: a failed flush is silent data loss; close explicitly and check, or document a read-only fd with //ssrvet:ignore", fn.Name())
	case recv == "*bufio.Writer" && fn.Name() == "Flush":
		pass.Reportf(stmt.Pos(), "deferred (*bufio.Writer).Flush discards its error: the final buffer never reaching the underlying writer is silent truncation; flush explicitly and check the error")
	}
}

// checkAssign flags blank identifiers bound to error values.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// x, _ := f(): positions map through the call's result tuple.
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok {
			return // map/type-assert commas are boolean, not error
		}
		sig := callSignature(pass, call)
		if sig == nil || sig.Results().Len() != len(stmt.Lhs) {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && analysis.IsErrorType(sig.Results().At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _: handle it or document the discard with //ssrvet:ignore", calleeName(pass, call))
			}
		}
		return
	}
	if len(stmt.Lhs) == len(stmt.Rhs) {
		for i, lhs := range stmt.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[stmt.Rhs[i]]; ok && analysis.IsErrorType(tv.Type) {
				pass.Reportf(lhs.Pos(), "error value discarded with _: handle it or document the discard with //ssrvet:ignore")
			}
		}
	}
}

// checkBareCall flags expression statements that drop an error result.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	returnsError := false
	for i := 0; i < sig.Results().Len(); i++ {
		if analysis.IsErrorType(sig.Results().At(i).Type()) {
			returnsError = true
			break
		}
	}
	if !returnsError || isExemptCallee(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s ignored: it returns an error; handle it or document the discard with //ssrvet:ignore", calleeName(pass, call))
}

// callSignature resolves the signature of call's callee, or nil for type
// conversions and builtins.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isExemptCallee allows the never-failing writers and terminal print
// helpers whose error results are conventionally ignored.
func isExemptCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			// Terminal diagnostics: writing to the process's own stdout or
			// stderr is the Print family with the stream spelled out. Any
			// other writer (a file, a response body) keeps the check.
			return len(call.Args) > 0 && isStdStream(pass, call.Args[0])
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch types.TypeString(sig.Recv().Type(), nil) {
	case "*bytes.Buffer", "*strings.Builder":
		return true
	}
	return false
}

// isStdStream reports whether e names os.Stdout, os.Stderr, or
// flag.CommandLine.Output() — the process's own terminal streams.
func isStdStream(pass *analysis.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[x.Sel]
		if !ok {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
			return false
		}
		return v.Name() == "Stdout" || v.Name() == "Stderr"
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		return ok && fn.FullName() == "(*flag.FlagSet).Output"
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return obj.FullName()
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}

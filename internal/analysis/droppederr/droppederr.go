// Package droppederr defines an analyzer forbidding silently discarded
// errors in the persistence and serving layers.
//
// Why this matters here: the storage, textio, snapshot, and HTTP packages
// are the repo's durability and integration boundary. A dropped write or
// encode error there does not crash — it truncates a snapshot, emits a
// half-written response body, or loses a set, and the next reader sees
// corruption with no trail back to the cause. (The seed repo shipped exactly
// this bug: server.writeJSON ignored json.Encoder.Encode's error.)
//
// The analyzer flags, in non-test code:
//
//   - `_ = f()` and `x, _ := f()` where the discarded value is the
//     predeclared error type;
//   - a call used as a bare statement whose signature returns an error
//     (every result discarded).
//
// Deliberate discards remain possible and visible: deferred calls are
// exempt (the `defer f.Close()` idiom has no error path to return on), as
// are the never-failing writers *bytes.Buffer and *strings.Builder and the
// fmt.Print family; anything else needs an //ssrvet:ignore directive with a
// reason.
package droppederr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags discarded errors on I/O and persistence call sites.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarding errors (blank assignment or bare call statement) in persistence and serving code; dropped I/O errors surface later as silent corruption",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, stmt)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				checkBareCall(pass, call)
			}
		}
		return true
	})
	return nil
}

// checkAssign flags blank identifiers bound to error values.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// x, _ := f(): positions map through the call's result tuple.
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok {
			return // map/type-assert commas are boolean, not error
		}
		sig := callSignature(pass, call)
		if sig == nil || sig.Results().Len() != len(stmt.Lhs) {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && analysis.IsErrorType(sig.Results().At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _: handle it or document the discard with //ssrvet:ignore", calleeName(pass, call))
			}
		}
		return
	}
	if len(stmt.Lhs) == len(stmt.Rhs) {
		for i, lhs := range stmt.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[stmt.Rhs[i]]; ok && analysis.IsErrorType(tv.Type) {
				pass.Reportf(lhs.Pos(), "error value discarded with _: handle it or document the discard with //ssrvet:ignore")
			}
		}
	}
}

// checkBareCall flags expression statements that drop an error result.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	returnsError := false
	for i := 0; i < sig.Results().Len(); i++ {
		if analysis.IsErrorType(sig.Results().At(i).Type()) {
			returnsError = true
			break
		}
	}
	if !returnsError || isExemptCallee(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s ignored: it returns an error; handle it or document the discard with //ssrvet:ignore", calleeName(pass, call))
}

// callSignature resolves the signature of call's callee, or nil for type
// conversions and builtins.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isExemptCallee allows the never-failing writers and terminal print
// helpers whose error results are conventionally ignored.
func isExemptCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch types.TypeString(sig.Recv().Type(), nil) {
	case "*bytes.Buffer", "*strings.Builder":
		return true
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return obj.FullName()
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}

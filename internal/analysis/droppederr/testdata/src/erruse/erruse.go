// Package erruse is a droppederr fixture: discarded errors are flagged;
// handled errors, defers, and never-failing writers pass.
package erruse

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func write(w io.Writer) error {
	_, err := w.Write([]byte("x"))
	return err
}

func open() (*os.File, error) { return nil, nil }

// BlankAssign flags `_ = f()` on an error-returning call.
func BlankAssign(w io.Writer) {
	_ = write(w) // want "error value discarded"
}

// BlankTupleSlot flags the error position of a multi-value call.
func BlankTupleSlot() *os.File {
	f, _ := open() // want "error result of open discarded"
	return f
}

// BareStatement flags a call statement that drops its error.
func BareStatement(w io.Writer) {
	write(w) // want "result of write ignored"
}

// Handled is the happy path: the error is consumed.
func Handled(w io.Writer) error {
	if err := write(w); err != nil {
		return err
	}
	n, err := fmt.Fprintln(w, "ok")
	_ = n
	return err
}

// Deferred file close/sync is the WAL bug class: the flush error vanishes.
func Deferred(f *os.File) {
	defer f.Close() // want `deferred \(\*os.File\).Close discards its error`
}

// DeferredSync is the same hole on the fsync side.
func DeferredSync(f *os.File) {
	defer f.Sync() // want `deferred \(\*os.File\).Sync discards its error`
}

// DeferredFlush is the buffered-writer variant: the final Flush error is
// the only signal the tail of the stream was written.
func DeferredFlush(f *os.File) {
	w := bufio.NewWriter(f)
	defer w.Flush() // want `deferred \(\*bufio.Writer\).Flush discards its error`
	if _, err := w.WriteString("row\n"); err != nil {
		return
	}
}

// FlushChecked is the sanctioned shape: flush explicitly and look.
func FlushChecked(f *os.File) error {
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("row\n"); err != nil {
		return err
	}
	return w.Flush()
}

// DeferredOther stays exempt: deferring a non-file Close (or any other
// error-returning call) usually has no error path worth plumbing.
func DeferredOther(w io.WriteCloser) {
	defer w.Close()
}

// DeferredReadOnly documents a read-only fd.
func DeferredReadOnly(f *os.File) {
	defer f.Close() //ssrvet:ignore droppederr -- fixture: read-only fd
}

// NeverFails allows *bytes.Buffer, *strings.Builder, and fmt.Print*.
func NeverFails() string {
	var buf bytes.Buffer
	buf.WriteString("a")
	var sb strings.Builder
	sb.WriteString("b")
	fmt.Println("done")
	return buf.String() + sb.String()
}

// TerminalDiagnostics allows Fprint* to the process's own streams but not
// to an arbitrary writer, where the error is a real delivery signal.
func TerminalDiagnostics(w io.Writer) {
	fmt.Fprintln(os.Stderr, "usage: ...")
	fmt.Fprintf(os.Stdout, "%d\n", 1)
	fmt.Fprintln(w, "payload") // want "result of fmt.Fprintln ignored"
}

// BoolComma is not an error discard: map/type-assert commas are bool.
func BoolComma(m map[string]int) int {
	v, _ := m["k"]
	return v
}

// Suppressed documents a deliberate discard.
func Suppressed(w io.Writer) {
	_ = write(w) //ssrvet:ignore droppederr -- fixture: demonstrating suppression
}

// Package lockorder defines an analyzer enforcing a documented lock
// acquisition hierarchy and release discipline statically.
//
// Why this matters here: the engine's hot-swap machinery (retune.go) and
// the sharded durability lanes hold several mutexes at once, and the only
// thing standing between them and a deadlock is the acquisition order
// documented in the engine package comment — tune mutex first, then
// durable shard lane → engine shard → sid mapping → core index, with the
// drift tracker and collection locks as leaves. The -race stress tests
// exercise one schedule per run; this analyzer checks every call path the
// compiler can see, before any schedule runs.
//
// The analyzer is configured with an ordered list of lock Levels (New).
// Each level names mutex fields ("pkgpath.Type.field") and, for
// cross-package edges the per-package type-checker cannot see into,
// receiver types ("pkgpath.Type") whose method calls are modeled as
// transiently acquiring that level. Within the analyzed package, function
// summaries propagate acquisitions through local calls to a fixpoint, so
// a helper that locks deep in a call chain still participates.
//
// It reports, in non-test code:
//
//   - an acquisition of a lower-ranked lock while a higher-ranked one is
//     held (a hierarchy inversion — the deadlock shape);
//   - a call whose summary may acquire a lower-ranked lock while a
//     higher-ranked one is held;
//   - a Lock/RLock with a return path on which the lock is neither
//     released nor covered by a deferred unlock (the leak shape — the
//     next acquirer blocks forever).
//
// Same-level acquisitions are allowed: the per-shard mutexes form one
// level acquired in ascending shard order, a discipline the analyzer
// leaves to the -race suites. Locks acquired inside loop bodies are
// assumed balanced within the pattern (the lock-all/unlock-all loops of
// the swap protocol); branch bodies are analyzed against a copy of the
// held set, so an early-return unlock does not leak into the fallthrough
// path.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Level is one rank of the hierarchy. Levels earlier in Config.Levels
// must be acquired before later ones; locks within one level are
// unordered peers.
type Level struct {
	// Name labels the level in diagnostics ("engine-shard").
	Name string
	// Mutexes are "pkgpath.Type.field" paths of sync.Mutex/RWMutex
	// fields belonging to this level.
	Mutexes []string
	// Types are "pkgpath.Type" receivers whose method calls are modeled
	// as transiently acquiring this level — the cross-package edges.
	Types []string
}

// Config is the documented hierarchy the analyzer enforces.
type Config struct {
	// Levels in acquisition order: Levels[0] first.
	Levels []Level
	// Methods overrides the level a specific method call acquires, keyed
	// "pkgpath.Type.Method" and valued with a level name — for entry
	// points that start higher in the hierarchy than their receiver's
	// default level (e.g. Engine.Retune takes the tune mutex first).
	Methods map[string]string
}

// Repo returns the repository's documented hierarchy (the engine package
// comment and DESIGN.md): plan-cache mutexes strictly outside everything
// (cache lookups run with no engine or core lock held, and no other lock
// is ever taken under a cache mutex), then tune mutex → durable shard
// lane → engine shard → sid mapping → core index, with the drift tracker
// and the public collection lock as leaves.
func Repo() Config {
	return Config{
		Levels: []Level{
			{Name: "plan-cache", Mutexes: []string{
				"repro/internal/plan.ResultCache.mu",
				"repro/internal/plan.PlanCache.mu",
			}, Types: []string{
				"repro/internal/plan.ResultCache",
				"repro/internal/plan.PlanCache",
			}},
			{Name: "tune", Mutexes: []string{
				"repro/internal/engine.Engine.tmu",
				"repro.tuneRuntime.mu",
			}},
			{Name: "durable-shard", Mutexes: []string{
				"repro.durableShard.mu",
			}},
			{Name: "engine-shard", Mutexes: []string{
				"repro/internal/engine.shard.mu",
			}, Types: []string{
				"repro/internal/engine.Engine",
			}},
			{Name: "mapping", Mutexes: []string{
				"repro/internal/engine.Engine.gmu",
			}},
			{Name: "core", Mutexes: []string{
				"repro/internal/core.Index.mu",
			}, Types: []string{
				"repro/internal/core.Index",
			}},
			{Name: "tracker", Mutexes: []string{
				"repro/internal/tuner.Tracker.mu",
			}, Types: []string{
				"repro/internal/tuner.Tracker",
			}},
			{Name: "collection", Mutexes: []string{
				"repro.Collection.mu",
			}},
			// Replication leaves: the watermark tracker is bracketed
			// around engine reservations but never holds its mutex across
			// another acquisition (the allocation frontier is read before
			// locking), and the source's subscriber registry only does
			// non-blocking sends under its mutex.
			{Name: "replication", Mutexes: []string{
				"repro.replTracker.mu",
				"repro.ReplicationSource.mu",
			}},
		},
		Methods: map[string]string{
			// Retunes serialize on the tune mutex before touching any
			// shard; callers must hold nothing when entering them.
			"repro/internal/engine.Engine.Retune":      "tune",
			"repro/internal/engine.Engine.MaybeRetune": "tune",
		},
	}
}

// New builds the analyzer for one hierarchy.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc:  "enforce the documented lock acquisition hierarchy and require every Lock to be released (or defer-released) on every return path",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

const unranked = -1

// checker carries one package's run.
type checker struct {
	pass *analysis.Pass
	cfg  Config
	// mutexRank maps "pkgpath.Type.field" to its level index.
	mutexRank map[string]int
	// typeRank maps "pkgpath.Type" to the level its methods acquire.
	typeRank map[string]int
	// methodRank overrides typeRank per "pkgpath.Type.Method".
	methodRank map[string]int
	// names are the level names by rank.
	names []string
	// decls maps package functions to their bodies for summaries.
	decls map[*types.Func]*ast.FuncDecl
	// summary maps a package function to the set of ranks it (or its
	// local callees) may acquire.
	summary map[*types.Func]map[int]bool
}

func run(pass *analysis.Pass, cfg Config) error {
	c := &checker{
		pass:       pass,
		cfg:        cfg,
		mutexRank:  map[string]int{},
		typeRank:   map[string]int{},
		methodRank: map[string]int{},
		summary:    map[*types.Func]map[int]bool{},
		decls:      map[*types.Func]*ast.FuncDecl{},
	}
	for rank, lvl := range cfg.Levels {
		c.names = append(c.names, lvl.Name)
		for _, m := range lvl.Mutexes {
			c.mutexRank[m] = rank
		}
		for _, t := range lvl.Types {
			c.typeRank[t] = rank
		}
	}
	for name, lvlName := range cfg.Methods {
		for rank, lvl := range cfg.Levels {
			if lvl.Name == lvlName {
				c.methodRank[name] = rank
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
	c.buildSummaries()
	for fn := range c.decls {
		c.checkFunc(c.decls[fn])
	}
	return nil
}

// chain renders the hierarchy for diagnostics.
func (c *checker) chain() string { return strings.Join(c.names, " → ") }

// buildSummaries computes, to a fixpoint, the set of lock levels each
// package function may acquire — directly, through a classed external
// receiver, or through a local callee.
func (c *checker) buildSummaries() {
	for fn := range c.decls {
		c.summary[fn] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.decls {
			sum := c.summary[fn]
			before := len(sum)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch acq := c.classify(call); acq.kind {
				case acqLock:
					if acq.rank != unranked {
						sum[acq.rank] = true
					}
				case acqTransient:
					sum[acq.rank] = true
				case acqLocal:
					for r := range c.summary[acq.fn] {
						sum[r] = true
					}
				}
				return true
			})
			if len(sum) != before {
				changed = true
			}
		}
	}
}

// acquisition kinds classify one call expression.
const (
	acqNone = iota
	acqLock
	acqUnlock
	acqTransient
	acqLocal
)

type acquisition struct {
	kind int
	// rank is the hierarchy level (unranked for unclassed mutexes).
	rank int
	// key identifies the lock instance syntactically ("sh.mu").
	key string
	// read marks RLock/RUnlock.
	read bool
	// fn is the local callee for acqLocal.
	fn *types.Func
	// label names the callee or lock for diagnostics.
	label string
}

// classify resolves what a call expression does to the lock state.
func (c *checker) classify(call *ast.CallExpr) acquisition {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Plain identifier call: local function?
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok {
				if _, local := c.decls[fn]; local {
					return acquisition{kind: acqLocal, fn: fn, label: fn.Name()}
				}
			}
		}
		return acquisition{kind: acqNone}
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if key, rank, ok := c.lockOperand(sel.X); ok {
			return acquisition{
				kind: acqLock, rank: rank, key: key,
				read:  strings.Contains(sel.Sel.Name, "R"),
				label: key,
			}
		}
	case "Unlock", "RUnlock":
		if key, rank, ok := c.lockOperand(sel.X); ok {
			return acquisition{
				kind: acqUnlock, rank: rank, key: key,
				read: sel.Sel.Name == "RUnlock",
			}
		}
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return acquisition{kind: acqNone}
	}
	if _, local := c.decls[fn]; local {
		return acquisition{kind: acqLocal, fn: fn, label: fn.Name()}
	}
	if recv := receiverTypePath(fn); recv != "" {
		if rank, ok := c.methodRank[recv+"."+fn.Name()]; ok {
			return acquisition{kind: acqTransient, rank: rank, label: fn.FullName()}
		}
		if rank, ok := c.typeRank[recv]; ok {
			return acquisition{kind: acqTransient, rank: rank, label: fn.FullName()}
		}
	}
	return acquisition{kind: acqNone}
}

// lockOperand resolves the receiver of a Lock/Unlock-family call to an
// instance key and hierarchy rank. It accepts any expression of mutex
// type; only field selectors resolve to a configured rank.
func (c *checker) lockOperand(x ast.Expr) (key string, rank int, ok bool) {
	tv, found := c.pass.TypesInfo.Types[x]
	if !found || !isMutexType(tv.Type) {
		return "", 0, false
	}
	rank = unranked
	if sel, isSel := x.(*ast.SelectorExpr); isSel {
		if s, hasSel := c.pass.TypesInfo.Selections[sel]; hasSel && s.Kind() == types.FieldVal {
			if fieldVar, isVar := s.Obj().(*types.Var); isVar {
				if owner := namedTypePath(s.Recv()); owner != "" {
					if r, classed := c.mutexRank[owner+"."+fieldVar.Name()]; classed {
						rank = r
					}
				}
			}
		}
	}
	return types.ExprString(x), rank, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedTypePath renders t's named type as "pkgpath.Type", looking through
// one pointer.
func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// receiverTypePath renders fn's receiver as "pkgpath.Type", or "" for
// plain functions.
func receiverTypePath(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypePath(sig.Recv().Type())
}

// held is one acquired lock in the walk state.
type held struct {
	rank     int
	key      string
	read     bool
	pos      token.Pos
	deferred bool
}

// checkFunc walks one function body, tracking held locks along the
// straight-line path and checking order at every acquisition and balance
// at every return.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	state := c.walkBlock(fd.Body, nil)
	if !endsTerminally(fd.Body.List) {
		c.checkBalance(state, fd.Body.End())
	}
}

// walkBlock walks stmts sequentially, mutating and returning the held
// state.
func (c *checker) walkBlock(b *ast.BlockStmt, state []held) []held {
	if b == nil {
		return state
	}
	for _, s := range b.List {
		state = c.walkStmt(s, state)
	}
	return state
}

func copyHeld(state []held) []held { return append([]held(nil), state...) }

func (c *checker) walkStmt(s ast.Stmt, state []held) []held {
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		return c.walkBlock(stmt, state)
	case *ast.LabeledStmt:
		return c.walkStmt(stmt.Stmt, state)
	case *ast.IfStmt:
		if stmt.Init != nil {
			state = c.walkStmt(stmt.Init, state)
		}
		state = c.processExpr(stmt.Cond, state)
		c.walkBlock(stmt.Body, copyHeld(state))
		if stmt.Else != nil {
			c.walkStmt(stmt.Else, copyHeld(state))
		}
		return state
	case *ast.ForStmt:
		if stmt.Init != nil {
			state = c.walkStmt(stmt.Init, state)
		}
		if stmt.Cond != nil {
			state = c.processExpr(stmt.Cond, state)
		}
		body := copyHeld(state)
		body = c.walkBlock(stmt.Body, body)
		if stmt.Post != nil {
			c.walkStmt(stmt.Post, body)
		}
		return state
	case *ast.RangeStmt:
		state = c.processExpr(stmt.X, state)
		c.walkBlock(stmt.Body, copyHeld(state))
		return state
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			state = c.walkStmt(stmt.Init, state)
		}
		if stmt.Tag != nil {
			state = c.processExpr(stmt.Tag, state)
		}
		for _, cc := range stmt.Body.List {
			clause := cc.(*ast.CaseClause)
			branch := copyHeld(state)
			for _, e := range clause.List {
				branch = c.processExpr(e, branch)
			}
			for _, bs := range clause.Body {
				branch = c.walkStmt(bs, branch)
			}
		}
		return state
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			state = c.walkStmt(stmt.Init, state)
		}
		for _, cc := range stmt.Body.List {
			clause := cc.(*ast.CaseClause)
			branch := copyHeld(state)
			for _, bs := range clause.Body {
				branch = c.walkStmt(bs, branch)
			}
		}
		return state
	case *ast.SelectStmt:
		for _, cc := range stmt.Body.List {
			clause := cc.(*ast.CommClause)
			branch := copyHeld(state)
			if clause.Comm != nil {
				branch = c.walkStmt(clause.Comm, branch)
			}
			for _, bs := range clause.Body {
				branch = c.walkStmt(bs, branch)
			}
		}
		return state
	case *ast.DeferStmt:
		return c.processDefer(stmt, state)
	case *ast.GoStmt:
		// The goroutine body runs on its own stack with no inherited
		// locks; analyze it independently.
		if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
			c.walkBlock(lit.Body, nil)
		}
		for _, arg := range stmt.Call.Args {
			state = c.processExpr(arg, state)
		}
		return state
	case *ast.ReturnStmt:
		for _, e := range stmt.Results {
			state = c.processExpr(e, state)
		}
		c.checkBalance(state, stmt.Pos())
		return state
	default:
		// Expression-bearing statements: process embedded calls in
		// source order.
		return c.processNode(s, state)
	}
}

// processExpr checks the calls embedded in one expression.
func (c *checker) processExpr(e ast.Expr, state []held) []held {
	if e == nil {
		return state
	}
	return c.processNode(e, state)
}

// processNode inspects n for call expressions (pruning function
// literals, which execute on their own schedule) and applies each to the
// held state in source order.
func (c *checker) processNode(n ast.Node, state []held) []held {
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			c.walkBlock(lit.Body, nil)
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		state = c.apply(call, state)
		return true
	})
	return state
}

// apply folds one classified call into the held state, reporting
// inversions.
func (c *checker) apply(call *ast.CallExpr, state []held) []held {
	acq := c.classify(call)
	switch acq.kind {
	case acqLock:
		c.checkOrder(call.Pos(), acq.rank, fmt.Sprintf("%s.Lock", acq.key), state)
		return append(state, held{rank: acq.rank, key: acq.key, read: acq.read, pos: call.Pos()})
	case acqUnlock:
		for i := len(state) - 1; i >= 0; i-- {
			if state[i].key == acq.key && state[i].read == acq.read {
				return append(state[:i:i], state[i+1:]...)
			}
		}
		return state
	case acqTransient:
		c.checkOrder(call.Pos(), acq.rank, fmt.Sprintf("a call to %s", acq.label), state)
		return state
	case acqLocal:
		ranks := make([]int, 0, len(c.summary[acq.fn]))
		for r := range c.summary[acq.fn] {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			c.checkOrder(call.Pos(), r, fmt.Sprintf("a call to %s (which acquires %s locks)", acq.label, c.names[r]), state)
		}
		return state
	}
	return state
}

// checkOrder reports an inversion when rank is acquired below a held
// higher level. Unranked locks and same-level peers pass.
func (c *checker) checkOrder(pos token.Pos, rank int, what string, state []held) {
	if rank == unranked {
		return
	}
	for _, h := range state {
		if h.rank != unranked && h.rank > rank {
			c.pass.Reportf(pos,
				"lock order inversion: %s acquires a %q-level lock while %s (level %q) is held; the documented order is %s",
				what, c.names[rank], h.key, c.names[h.rank], c.chain())
			return
		}
	}
}

// processDefer handles a defer statement: a deferred unlock covers the
// matching held lock on every later return path; a deferred closure is
// scanned for the unlocks it performs.
func (c *checker) processDefer(stmt *ast.DeferStmt, state []held) []held {
	markDeferred := func(key string, read bool) {
		for i := len(state) - 1; i >= 0; i-- {
			if state[i].key == key && state[i].read == read && !state[i].deferred {
				state[i].deferred = true
				return
			}
		}
	}
	if acq := c.classify(stmt.Call); acq.kind == acqUnlock {
		markDeferred(acq.key, acq.read)
		return state
	}
	if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if acq := c.classify(call); acq.kind == acqUnlock {
					markDeferred(acq.key, acq.read)
				}
			}
			return true
		})
	}
	return state
}

// checkBalance reports held, non-deferred locks at a return point.
func (c *checker) checkBalance(state []held, pos token.Pos) {
	for _, h := range state {
		if h.deferred {
			continue
		}
		c.pass.Reportf(pos,
			"%s is locked at %s but not released on this return path: unlock it before returning or defer the unlock at the acquisition",
			h.key, c.pass.Fset.Position(h.pos))
	}
}

// endsTerminally reports whether the statement list cannot fall off the
// end (its last statement returns or panics), so the end-of-function
// balance check would double-report.
func endsTerminally(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		// An unconditional loop never falls through.
		return last.Cond == nil
	}
	return false
}

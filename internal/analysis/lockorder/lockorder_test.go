package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
)

// fixtureConfig mirrors the repo hierarchy onto the fixture package's
// types (load.Dir checks fixtures under their package name as the path).
func fixtureConfig() lockorder.Config {
	return lockorder.Config{
		Levels: []lockorder.Level{
			{Name: "plan-cache", Mutexes: []string{"lockuse.Cache.mu"}},
			{Name: "tune", Mutexes: []string{"lockuse.Engine.tmu"}},
			{Name: "engine-shard", Mutexes: []string{"lockuse.Shard.mu"}},
			{Name: "mapping", Mutexes: []string{"lockuse.Engine.gmu"}},
			{Name: "core", Mutexes: []string{"lockuse.Core.mu"}},
		},
	}
}

func TestLockOrder(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/lockuse", lockorder.New(fixtureConfig()))
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5", len(diags))
	}
}

// TestRepoTreeClean pins that the shipped tree satisfies the documented
// hierarchy under the repo configuration — in particular that
// internal/engine (retune.go's three-phase capture/rebuild/swap) passes
// clean. A future edit that inverts an acquisition fails here before any
// -race schedule has a chance to hit it.
func TestRepoTreeClean(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(root, "./", "./internal/engine", "./internal/core", "./internal/tuner", "./internal/plan")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	a := lockorder.New(lockorder.Repo())
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		pass.BuildIgnores()
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.ImportPath, pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}

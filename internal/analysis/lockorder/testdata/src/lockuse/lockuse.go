// Package lockuse is a lockorder fixture reproducing the repo's
// documented hierarchy in miniature: plan-cache strictly outside, then
// tune → engine-shard → mapping → core. Acquisitions that follow the
// chain pass; a deliberate inversion, a transitive inversion through a
// helper, a cache acquired under a shard lock, and locks leaked on a
// return path are flagged.
package lockuse

import "sync"

// Cache is the plan-cache level: acquired only with nothing else held.
type Cache struct {
	mu      sync.Mutex
	entries int
}

// Core is the lowest level of the fixture hierarchy.
type Core struct {
	mu sync.RWMutex
	n  int
}

// Shard is the engine-shard level.
type Shard struct {
	mu   sync.Mutex
	core *Core
}

// Engine is the top: tmu is the tune level, gmu the mapping level.
type Engine struct {
	tmu    sync.Mutex
	gmu    sync.RWMutex
	shards []*Shard
	locals []uint32
}

// Chain acquires straight down the documented order.
func (e *Engine) Chain() {
	e.tmu.Lock()
	sh := e.shards[0]
	sh.mu.Lock()
	e.gmu.Lock()
	sh.core.mu.Lock()
	sh.core.n++
	sh.core.mu.Unlock()
	e.gmu.Unlock()
	sh.mu.Unlock()
	e.tmu.Unlock()
}

// Inverted acquires the shard level while holding the core level — the
// deliberate inversion the acceptance criteria pin.
func (e *Engine) Inverted() {
	sh := e.shards[0]
	sh.core.mu.Lock()
	sh.mu.Lock() // want "lock order inversion"
	sh.mu.Unlock()
	sh.core.mu.Unlock()
}

// CacheInsideShard acquires the plan-cache level while holding a shard
// lock — the inversion the planner's lock discipline forbids: cache
// lookups must complete before any shard lock is taken.
func (e *Engine) CacheInsideShard(c *Cache) {
	sh := e.shards[0]
	sh.mu.Lock()
	c.mu.Lock() // want "lock order inversion"
	c.entries++
	c.mu.Unlock()
	sh.mu.Unlock()
}

// CacheBeforeShard is the sanctioned shape: the cache lookup completes
// with nothing held, then the pipeline descends the chain.
func (e *Engine) CacheBeforeShard(c *Cache) {
	c.mu.Lock()
	hit := c.entries > 0
	c.mu.Unlock()
	if !hit {
		sh := e.shards[0]
		sh.mu.Lock()
		sh.mu.Unlock()
	}
}

// lockShard is a helper whose summary carries the engine-shard level.
func (e *Engine) lockShard() {
	sh := e.shards[0]
	sh.mu.Lock()
	sh.mu.Unlock()
}

// TransitiveInverted reaches the inversion through a local call: the
// helper's summary propagates the shard acquisition under the held
// mapping lock.
func (e *Engine) TransitiveInverted() {
	e.gmu.Lock()
	e.lockShard() // want "lock order inversion"
	e.gmu.Unlock()
}

// Leak locks and returns without releasing.
func (e *Engine) Leak() int {
	e.gmu.Lock()
	return len(e.locals) // want "not released on this return path"
}

// LeakBranch releases on the fallthrough path but not on the early
// return.
func (e *Engine) LeakBranch(fail bool) int {
	e.gmu.Lock()
	if fail {
		return -1 // want "not released on this return path"
	}
	n := len(e.locals)
	e.gmu.Unlock()
	return n
}

// DeferClean is the canonical balanced shape.
func (e *Engine) DeferClean() int {
	e.gmu.RLock()
	defer e.gmu.RUnlock()
	return len(e.locals)
}

// EarlyReturnClean releases explicitly on both paths.
func (e *Engine) EarlyReturnClean(fail bool) int {
	e.gmu.Lock()
	if fail {
		e.gmu.Unlock()
		return -1
	}
	n := len(e.locals)
	e.gmu.Unlock()
	return n
}

// SameLevelPeers holds two shard mutexes at once: peers within one level
// are unordered (the ascending-index discipline is dynamic, not static).
func (e *Engine) SameLevelPeers() {
	a, b := e.shards[0], e.shards[1]
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// SwapShape is the retune swap protocol: lock every shard in a loop,
// publish, unlock in reverse — balanced by the paired loops.
func (e *Engine) SwapShape() {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	e.locals = append(e.locals, 0)
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
}

// DeferredClosureClean releases through a deferred closure.
func (e *Engine) DeferredClosureClean() int {
	e.tmu.Lock()
	defer func() {
		e.tmu.Unlock()
	}()
	return len(e.locals)
}

// DownThenUp is sequential, not nested: the mapping lock is released
// before the shard lock is taken.
func (e *Engine) DownThenUp() {
	e.gmu.RLock()
	n := len(e.locals)
	e.gmu.RUnlock()
	if n > 0 {
		e.shards[0].mu.Lock()
		e.shards[0].mu.Unlock()
	}
}

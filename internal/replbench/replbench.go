// Package replbench measures the replication subsystem end to end: the
// write-to-visible replication lag of a live follower tailing a durable
// primary, and the latency of hedged scatter-gather reads through the
// router against direct primary reads — with a byte-identity check that
// every routed answer matches the primary's, whichever backend won the
// hedge. It lives outside internal/experiments for the same reason
// shardbench does: it exercises the public ssr package through real
// HTTP nodes.
package replbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	ssr "repro"
	"repro/internal/replica"
	"repro/internal/server"
)

// Config scales the benchmark. Zero values select laptop-scale defaults.
type Config struct {
	// N is the seeded collection size on the primary.
	N int
	// Writes is the number of lag-probed writes (each timed from Add on
	// the primary to visibility on the follower).
	Writes int
	// Queries is the number of timed reads per mode (hedged, direct).
	Queries int
	// Budget is the hash-table budget; MinHashes the signature length.
	Budget    int
	MinHashes int
	// Shards is the primary's durable shard count.
	Shards int
	// HedgeDelay is the router's hedge trigger.
	HedgeDelay time.Duration
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1500
	}
	if c.Writes <= 0 {
		c.Writes = 150
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Budget <= 0 {
		c.Budget = 64
	}
	if c.MinHashes <= 0 {
		c.MinHashes = 16
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Report is the JSON document `ssrbench -exp replica -json` emits.
type Report struct {
	Sets    int `json:"sets"`
	Shards  int `json:"shards"`
	Writes  int `json:"writes"`
	Queries int `json:"queries"`

	// Replication lag: wall time from a primary Add returning to the
	// write being visible (and fully settled) on the follower.
	LagP50Micros float64 `json:"lagP50Micros"`
	LagP99Micros float64 `json:"lagP99Micros"`

	// Hedged reads through the router vs direct primary reads.
	HedgedP50Micros float64 `json:"hedgedP50Micros"`
	HedgedP99Micros float64 `json:"hedgedP99Micros"`
	DirectP50Micros float64 `json:"directP50Micros"`
	DirectP99Micros float64 `json:"directP99Micros"`
	// HedgesFired is how many secondary attempts the router launched
	// across the read workload.
	HedgesFired uint64 `json:"hedgesFired"`
	// IdenticalAnswers is true when every routed answer was byte-equal
	// to the primary's direct answer for the same query.
	IdenticalAnswers bool `json:"identicalAnswers"`
}

// percentile returns the p-quantile of sorted durations in microseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

func sortedLat(lat []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), lat...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// elems generates a small overlapping element set for index i.
func elems(i int) []string {
	out := make([]string, 0, 6)
	for j := 0; j < 6; j++ {
		out = append(out, fmt.Sprintf("e-%d", i*3+j))
	}
	return out
}

// Run executes the benchmark, prints a human-readable summary to w, and
// returns the structured report.
func Run(w io.Writer, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	primaryDir, err := os.MkdirTemp("", "replbench-primary-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(primaryDir)
	followerDir, err := os.MkdirTemp("", "replbench-follower-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(followerDir)

	c := ssr.NewCollection()
	for i := 0; i < cfg.N; i++ {
		c.Add(elems(rng.Intn(cfg.N))...)
	}
	ix, err := ssr.CreateDurable(primaryDir, c, ssr.Options{
		Budget: cfg.Budget, MinHashes: cfg.MinHashes, Seed: cfg.Seed, Shards: cfg.Shards,
	}, ssr.DurableOptions{Sync: ssr.SyncNever})
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	// The primary node serves the full HTTP surface with the replication
	// stream mounted; the follower mirrors it and serves reads.
	h, err := replica.NewHandler(ix, replica.HandlerOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	primarySrv := httptest.NewServer(server.NewWithConfig(ix, server.Config{Role: "primary", Replication: h}))
	defer primarySrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fol, err := replica.StartFollower(ctx, replica.FollowerOptions{
		Dir: followerDir, Primary: primarySrv.URL,
		Heartbeat: 20 * time.Millisecond, ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer fol.Close()

	waitUntil := func(what string, cond func() bool) error {
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("replbench: timed out waiting for %s", what)
			}
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	}
	mirrored := func(target int) func() bool {
		return func() bool {
			st := fol.Status()
			return st.Connected && st.CaughtUp && st.LagBytes == 0 &&
				fol.Index().Internal().Len() == target
		}
	}
	if err := waitUntil("initial catch-up", mirrored(ix.Internal().Len())); err != nil {
		return nil, err
	}

	rep := &Report{Sets: cfg.N, Shards: cfg.Shards, Writes: cfg.Writes, Queries: cfg.Queries}

	// Phase 1 — replication lag: time each write from the primary's Add
	// returning to the follower having fully settled it.
	lags := make([]time.Duration, 0, cfg.Writes)
	for i := 0; i < cfg.Writes; i++ {
		start := time.Now()
		if _, err := ix.Add(elems(cfg.N + i)...); err != nil {
			return nil, err
		}
		if err := waitUntil("write visibility", mirrored(ix.Internal().Len())); err != nil {
			return nil, err
		}
		lags = append(lags, time.Since(start))
	}
	sl := sortedLat(lags)
	rep.LagP50Micros = percentile(sl, 0.50)
	rep.LagP99Micros = percentile(sl, 0.99)

	// Phase 2 — hedged vs direct reads. The follower node fronts the live
	// mirror; the router hedges across both.
	followerSrv := httptest.NewServer(server.NewWithConfig(nil, server.Config{
		Role: "follower", ReadOnly: true, Index: fol.Index,
		Readiness: func() (bool, map[string]any) {
			st := fol.Status()
			return st.CaughtUp, map[string]any{"lagBytes": st.LagBytes}
		},
	}))
	defer followerSrv.Close()
	rt := replica.NewRouter(replica.RouterOptions{
		Primary:    primarySrv.URL,
		Followers:  []string{followerSrv.URL},
		HedgeDelay: cfg.HedgeDelay,
		ProbeEvery: 10 * time.Millisecond,
	})
	defer rt.Close()
	routerSrv := httptest.NewServer(rt)
	defer routerSrv.Close()

	routerState := func() (ready int, hedges uint64, err error) {
		resp, err := http.Get(routerSrv.URL + "/router/status")
		if err != nil {
			return 0, 0, err
		}
		defer resp.Body.Close()
		var st struct {
			Backends []struct {
				Ready bool `json:"ready"`
			} `json:"backends"`
			Hedges uint64 `json:"hedges"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return 0, 0, err
		}
		for _, b := range st.Backends {
			if b.Ready {
				ready++
			}
		}
		return ready, st.Hedges, nil
	}
	if err := waitUntil("router readiness", func() bool {
		n, _, err := routerState()
		return err == nil && n == 2
	}); err != nil {
		return nil, err
	}

	post := func(url, body string) ([]byte, error) {
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
		}
		return data, nil
	}
	matchesOf := func(body []byte) (json.RawMessage, error) {
		var r struct {
			Matches json.RawMessage `json:"matches"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return r.Matches, nil
	}

	queries := make([]string, cfg.Queries)
	for i := range queries {
		q, err := json.Marshal(elems(rng.Intn(cfg.N)))
		if err != nil {
			return nil, err
		}
		queries[i] = fmt.Sprintf(`{"elements":%s,"lo":0.3,"hi":1.0}`, q)
	}

	identical := true
	hedgedLat := make([]time.Duration, 0, cfg.Queries)
	directLat := make([]time.Duration, 0, cfg.Queries)
	for _, q := range queries {
		start := time.Now()
		direct, err := post(primarySrv.URL+"/query", q)
		if err != nil {
			return nil, err
		}
		directLat = append(directLat, time.Since(start))

		start = time.Now()
		routed, err := post(routerSrv.URL+"/query", q)
		if err != nil {
			return nil, err
		}
		hedgedLat = append(hedgedLat, time.Since(start))

		dm, err := matchesOf(direct)
		if err != nil {
			return nil, err
		}
		rm, err := matchesOf(routed)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(dm, rm) {
			identical = false
		}
	}
	sh, sd := sortedLat(hedgedLat), sortedLat(directLat)
	rep.HedgedP50Micros = percentile(sh, 0.50)
	rep.HedgedP99Micros = percentile(sh, 0.99)
	rep.DirectP50Micros = percentile(sd, 0.50)
	rep.DirectP99Micros = percentile(sd, 0.99)
	rep.IdenticalAnswers = identical
	if _, hedges, err := routerState(); err == nil {
		rep.HedgesFired = hedges
	}

	fmt.Fprintf(w, "replication bench: %d sets, %d shards, %d writes, %d reads/mode\n",
		rep.Sets, rep.Shards, rep.Writes, rep.Queries)
	fmt.Fprintf(w, "  replication lag   p50 %8.0fµs   p99 %8.0fµs\n", rep.LagP50Micros, rep.LagP99Micros)
	fmt.Fprintf(w, "  hedged read       p50 %8.0fµs   p99 %8.0fµs   (%d hedges fired)\n",
		rep.HedgedP50Micros, rep.HedgedP99Micros, rep.HedgesFired)
	fmt.Fprintf(w, "  direct read       p50 %8.0fµs   p99 %8.0fµs\n", rep.DirectP50Micros, rep.DirectP99Micros)
	fmt.Fprintf(w, "  identical answers %v\n", rep.IdenticalAnswers)
	return rep, nil
}

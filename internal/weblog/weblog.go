// Package weblog parses raw HTTP access logs into per-client set
// collections — the paper's actual preprocessing step ("we parse and
// record for each unique IP address the collection of http log strings
// associated with that address", Section 6).
//
// The parser accepts NCSA Common/Combined Log Format lines:
//
//	127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] "GET /a.gif HTTP/1.0" 200 2326
//
// Each client (first field) accumulates the set of distinct request paths.
// Malformed lines are counted and skipped rather than failing the load —
// real logs always contain garbage.
package weblog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Collection is the parsed result: per-client page sets.
type Collection struct {
	// Clients lists client identifiers (IPs) in first-seen order; the
	// index of a client is its sid.
	Clients []string
	// Pages holds each client's distinct request paths, aligned with
	// Clients, each sorted lexically.
	Pages [][]string
	// Lines is the number of input lines read.
	Lines int
	// Malformed is the number of lines skipped as unparseable.
	Malformed int
}

// Parse reads an access log. Only clients with at least minPages distinct
// paths are kept (minPages <= 1 keeps everyone) — the paper-style guard
// against one-hit clients bloating the collection.
func Parse(r io.Reader, minPages int) (*Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	pages := make(map[string]map[string]struct{})
	order := []string{}
	c := &Collection{}
	for sc.Scan() {
		c.Lines++
		client, path, ok := parseLine(sc.Text())
		if !ok {
			c.Malformed++
			continue
		}
		set, seen := pages[client]
		if !seen {
			set = make(map[string]struct{})
			pages[client] = set
			order = append(order, client)
		}
		set[path] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weblog: %w", err)
	}
	for _, client := range order {
		set := pages[client]
		if len(set) < minPages {
			continue
		}
		list := make([]string, 0, len(set))
		for p := range set {
			list = append(list, p)
		}
		sort.Strings(list)
		c.Clients = append(c.Clients, client)
		c.Pages = append(c.Pages, list)
	}
	return c, nil
}

// parseLine extracts (client, requestPath) from one NCSA-format line.
func parseLine(line string) (client, path string, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", "", false
	}
	// Client is the first whitespace-delimited field.
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 {
		return "", "", false
	}
	client = line[:sp]
	// The request is the first double-quoted section: "METHOD path PROTO".
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return "", "", false
	}
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return "", "", false
	}
	req := line[q1+1 : q1+1+q2]
	parts := strings.Fields(req)
	if len(parts) < 2 {
		return "", "", false
	}
	path = parts[1]
	if path == "" {
		return "", "", false
	}
	// Strip query strings: /page?x=1 and /page are the same resource for
	// similarity purposes.
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
		if path == "" {
			return "", "", false
		}
	}
	return client, path, true
}

// EmitSynthetic writes count plausible Common Log Format lines derived
// from per-client page sets (the inverse of Parse, for tests and demos):
// every page of every client produces one line, cycling timestamps.
func EmitSynthetic(w io.Writer, clients []string, pages [][]string) error {
	if len(clients) != len(pages) {
		return fmt.Errorf("weblog: %d clients but %d page lists", len(clients), len(pages))
	}
	bw := bufio.NewWriter(w)
	i := 0
	for ci, client := range clients {
		for _, p := range pages[ci] {
			_, err := fmt.Fprintf(bw, "%s - - [10/Oct/2000:13:%02d:%02d -0700] \"GET %s HTTP/1.0\" 200 %d\n",
				client, (i/60)%60, i%60, p, 500+i%1500)
			if err != nil {
				return err
			}
			i++
		}
	}
	return bw.Flush()
}

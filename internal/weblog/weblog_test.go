package weblog

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `10.0.0.1 - - [10/Oct/2000:13:55:36 -0700] "GET /index.html HTTP/1.0" 200 2326
10.0.0.1 - - [10/Oct/2000:13:55:37 -0700] "GET /logo.gif HTTP/1.0" 200 412
10.0.0.2 - frank [10/Oct/2000:13:55:38 -0700] "GET /index.html HTTP/1.1" 200 2326
10.0.0.1 - - [10/Oct/2000:13:55:39 -0700] "GET /index.html HTTP/1.0" 304 0
10.0.0.2 - - [10/Oct/2000:13:55:40 -0700] "POST /login?next=/home HTTP/1.1" 302 0
garbage line without quotes
10.0.0.3 - - [10/Oct/2000:13:55:41 -0700] "BROKEN" 400 0

# a comment
`

func TestParse(t *testing.T) {
	c, err := Parse(strings.NewReader(sample), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lines != 9 {
		t.Errorf("Lines = %d", c.Lines)
	}
	if c.Malformed != 4 { // garbage, BROKEN, blank, comment
		t.Errorf("Malformed = %d", c.Malformed)
	}
	if len(c.Clients) != 2 {
		t.Fatalf("clients = %v", c.Clients)
	}
	if c.Clients[0] != "10.0.0.1" || c.Clients[1] != "10.0.0.2" {
		t.Errorf("client order = %v", c.Clients)
	}
	// 10.0.0.1 hit /index.html twice: distinct pages only.
	if got := c.Pages[0]; len(got) != 2 || got[0] != "/index.html" || got[1] != "/logo.gif" {
		t.Errorf("pages[0] = %v", got)
	}
	// Query string stripped.
	if got := c.Pages[1]; len(got) != 2 || got[0] != "/index.html" || got[1] != "/login" {
		t.Errorf("pages[1] = %v", got)
	}
}

func TestParseMinPages(t *testing.T) {
	c, err := Parse(strings.NewReader(sample), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clients) != 2 {
		t.Fatalf("clients = %v", c.Clients)
	}
	c, err = Parse(strings.NewReader(sample), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clients) != 0 {
		t.Errorf("minPages 3 kept %v", c.Clients)
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"# comment",
		"onlyclient",
		`1.2.3.4 no quotes here`,
		`1.2.3.4 - - [t] "GET" 200 1`,      // request too short
		`1.2.3.4 - - [t] "unterminated`,    // one quote
		`1.2.3.4 - - [t] "GET ? HTTP/1.0"`, // empty path after query strip
	}
	for _, line := range bad {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	client, path, ok := parseLine(`2001:db8::1 - - [t] "HEAD /x HTTP/2" 200 5`)
	if !ok || client != "2001:db8::1" || path != "/x" {
		t.Errorf("ipv6 line: %q %q %v", client, path, ok)
	}
}

func TestEmitParseRoundTrip(t *testing.T) {
	clients := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}
	pages := [][]string{
		{"/a", "/b", "/c"},
		{"/a", "/x"},
		{"/z"},
	}
	var buf bytes.Buffer
	if err := EmitSynthetic(&buf, clients, pages); err != nil {
		t.Fatal(err)
	}
	c, err := Parse(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Malformed != 0 {
		t.Errorf("round-trip produced %d malformed lines", c.Malformed)
	}
	if len(c.Clients) != 3 {
		t.Fatalf("clients = %v", c.Clients)
	}
	for i := range clients {
		if c.Clients[i] != clients[i] {
			t.Errorf("client %d = %s", i, c.Clients[i])
		}
		if len(c.Pages[i]) != len(pages[i]) {
			t.Errorf("pages[%d] = %v, want %v", i, c.Pages[i], pages[i])
			continue
		}
		for j := range pages[i] {
			if c.Pages[i][j] != pages[i][j] {
				t.Errorf("pages[%d][%d] = %s", i, j, c.Pages[i][j])
			}
		}
	}
}

func TestEmitValidation(t *testing.T) {
	if err := EmitSynthetic(&bytes.Buffer{}, []string{"a"}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the replay scanner: it must never
// panic, never report a valid prefix longer than the input, and replaying
// the reported valid prefix must reproduce exactly the same records.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	// A healthy two-record log as a seed so mutations explore near-valid
	// framing.
	var healthy []byte
	healthy = appendFrame(healthy, Record{Op: OpCheckpoint, Seq: 1})
	healthy = appendFrame(healthy, Record{Op: OpInsert, SID: 3, Elements: []string{"a", "bc"}})
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		valid, n, err := Replay(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("Replay of in-memory bytes errored: %v", err)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid %d > input %d", valid, len(data))
		}
		if n != len(recs) {
			t.Fatalf("n=%d but delivered %d", n, len(recs))
		}
		// Determinism: the valid prefix alone replays identically.
		i := 0
		valid2, n2, err := Replay(bytes.NewReader(data[:valid]), func(r Record) error {
			if i >= len(recs) {
				t.Fatalf("prefix replay produced extra record %+v", r)
			}
			i++
			return nil
		})
		if err != nil || valid2 != valid || n2 != n {
			t.Fatalf("prefix replay: valid=%d n=%d err=%v, want %d/%d/nil", valid2, n2, err, valid, n)
		}
	})
}

package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords covers all three ops including edge shapes: empty set,
// empty-string element, max sid.
func testRecords() []Record {
	return []Record{
		{Op: OpCheckpoint, Seq: 7},
		{Op: OpInsert, SID: 0, Elements: []string{"apple", "banana"}},
		{Op: OpInsert, SID: 1, Elements: nil},
		{Op: OpInsert, SID: 2, Elements: []string{""}},
		{Op: OpInsert, SID: 1<<32 - 1, Elements: []string{"x"}},
		{Op: OpDelete, SID: 1},
		{Op: OpCheckpoint, Seq: 0},
	}
}

// normalize maps nil and empty element slices together for comparison.
func normalize(r Record) Record {
	if len(r.Elements) == 0 {
		r.Elements = nil
	}
	return r
}

func writeLog(t *testing.T, recs []Record, policy Policy) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.log")
	w, err := OpenWriter(path, 0, policy, 0, 0)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			recs := testRecords()
			path := writeLog(t, recs, policy)
			var got []Record
			valid, n, err := ReplayFile(path, func(r Record) error {
				got = append(got, normalize(r))
				return nil
			})
			if err != nil {
				t.Fatalf("ReplayFile: %v", err)
			}
			if n != len(recs) {
				t.Fatalf("replayed %d records, want %d", n, len(recs))
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if valid != fi.Size() {
				t.Fatalf("valid prefix %d, file size %d", valid, fi.Size())
			}
			for i := range recs {
				if !reflect.DeepEqual(normalize(recs[i]), got[i]) {
					t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
				}
			}
		})
	}
}

func TestSizeAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "size.log")
	w, err := OpenWriter(path, 0, SyncNever, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	size := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if size != fi.Size() {
		t.Fatalf("Writer.Size %d, file size %d", size, fi.Size())
	}
}

// TestOpenWriterTruncates checks that reopening at a shorter prefix
// physically discards the tail.
func TestOpenWriterTruncates(t *testing.T) {
	recs := testRecords()
	path := writeLog(t, recs, SyncNever)
	// Compute the boundary after the first record.
	var first int64
	_, _, err := ReplayFile(path, func(Record) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first = int64(frameHeaderSize) + int64(binary.LittleEndian.Uint32(data[:4]))
	w, err := OpenWriter(path, first, SyncNever, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Op: OpDelete, SID: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, _, err := ReplayFile(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []Record{recs[0], {Op: OpDelete, SID: 42}}
	if len(got) != 2 || !reflect.DeepEqual(got[0], want[0]) || !reflect.DeepEqual(got[1], want[1]) {
		t.Fatalf("after truncate+append: got %+v, want %+v", got, want)
	}
}

// TestTornTail verifies that every truncation of a valid log replays some
// record prefix cleanly, and that the reported valid offset is consistent:
// replaying only the valid prefix yields the same records.
func TestTornTail(t *testing.T) {
	recs := testRecords()
	path := writeLog(t, recs, SyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		var got []Record
		valid, n, err := Replay(bytes.NewReader(data[:cut]), func(r Record) error {
			got = append(got, normalize(r))
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: Replay error: %v", cut, err)
		}
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid %d exceeds input", cut, valid)
		}
		if n > len(recs) {
			t.Fatalf("cut %d: %d records from %d written", cut, n, len(recs))
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(normalize(recs[i]), got[i]) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, got[i], recs[i])
			}
		}
	}
}

// TestBitFlip verifies that flipping any single byte yields either a clean
// stop or a correct prefix — never a panic, never a record that was not
// written (except the flipped byte landing inside an element string, which
// the CRC catches, so actually never).
func TestBitFlip(t *testing.T) {
	recs := testRecords()
	path := writeLog(t, recs, SyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		corrupt := bytes.Clone(data)
		corrupt[off] ^= 0x40
		var got []Record
		valid, _, err := Replay(bytes.NewReader(corrupt), func(r Record) error {
			got = append(got, normalize(r))
			return nil
		})
		if err != nil {
			t.Fatalf("offset %d: Replay error: %v", off, err)
		}
		if valid > int64(len(corrupt)) {
			t.Fatalf("offset %d: valid %d exceeds input", off, valid)
		}
		// Every replayed record must match the written sequence up to the
		// first one whose frame contained the flipped byte; since the CRC
		// rejects the damaged frame, all delivered records must be an exact
		// prefix of what was written. Exception: a flip in a length field
		// can re-frame the stream, but then the CRC of the misframed payload
		// fails with overwhelming probability — if it ever passed we would
		// see a mismatched record here and want to know.
		for i, r := range got {
			if i >= len(recs) || !reflect.DeepEqual(normalize(recs[i]), r) {
				t.Fatalf("offset %d: replay produced non-prefix record %d: %+v", off, i, r)
			}
		}
	}
}

func TestStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sticky.log")
	w, err := OpenWriter(path, 0, SyncNever, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Close the fd out from under the writer to force a write failure.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	first := w.Append(Record{Op: OpDelete, SID: 1})
	if first == nil {
		t.Fatal("Append on closed file succeeded")
	}
	second := w.Append(Record{Op: OpDelete, SID: 2})
	if second == nil {
		t.Fatal("Append after failure succeeded")
	}
	if w.Sync() == nil {
		t.Fatal("Sync after failure succeeded")
	}
	if w.Close() == nil {
		t.Fatal("Close after failure succeeded")
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "interval.log")
	w, err := OpenWriter(path, 0, SyncInterval, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First append syncs (lastSync zero → interval elapsed); later appends
	// within the hour must not move lastSync.
	if err := w.Append(Record{Op: OpDelete, SID: 1}); err != nil {
		t.Fatal(err)
	}
	stamp := w.lastSync
	if stamp.IsZero() {
		t.Fatal("first append under SyncInterval did not sync")
	}
	if err := w.Append(Record{Op: OpDelete, SID: 2}); err != nil {
		t.Fatal(err)
	}
	if w.lastSync != stamp {
		t.Fatal("append within interval synced")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.lastSync == stamp {
		t.Fatal("explicit Sync did not update lastSync")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"", 0, false},
		{"Always", 0, false},
		{"fsync", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":    {},
		"unknown op":       {99},
		"insert no sid":    {byte(OpInsert)},
		"insert sid only":  {byte(OpInsert), 5},
		"insert count lie": {byte(OpInsert), 5, 200}, // claims 200 elements, 0 bytes left
		"delete no sid":    {byte(OpDelete)},
		"ckpt no seq":      {byte(OpCheckpoint)},
		"trailing bytes":   {byte(OpDelete), 5, 0xFF},
		"sid overflow":     append([]byte{byte(OpDelete)}, binary.AppendUvarint(nil, 1<<33)...),
	}
	for name, payload := range cases {
		if _, err := decodePayload(payload); err == nil {
			t.Errorf("%s: decodePayload accepted %v", name, payload)
		}
	}
}

// TestReplayMissingFile: a nonexistent log replays as empty.
func TestReplayMissingFile(t *testing.T) {
	valid, n, err := ReplayFile(filepath.Join(t.TempDir(), "nope.log"), func(Record) error {
		t.Fatal("callback invoked for missing file")
		return nil
	})
	if err != nil || valid != 0 || n != 0 {
		t.Fatalf("got valid=%d n=%d err=%v, want zeros", valid, n, err)
	}
}

// TestPreallocPadding: a preallocating writer keeps the file physically
// larger than its logical size, replay of the padded file stops cleanly at
// the zero tail, and Close trims the padding so the sealed log is
// byte-identical to one written without preallocation.
func TestPreallocPadding(t *testing.T) {
	recs := testRecords()
	plain := writeLog(t, recs, SyncNever)
	path := filepath.Join(t.TempDir(), "pre.log")
	w, err := OpenWriter(path, 0, SyncNever, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	logical := w.Size()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 4096 || logical >= 4096 {
		t.Fatalf("physical %d (want 4096), logical %d", fi.Size(), logical)
	}
	// Replay of the live, padded file: every record, valid == logical.
	var got []Record
	valid, n, err := ReplayFile(path, func(r Record) error {
		got = append(got, normalize(r))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || valid != logical {
		t.Fatalf("padded replay: %d records (want %d), valid %d (want %d)", n, len(recs), valid, logical)
	}
	for i := range recs {
		if !reflect.DeepEqual(normalize(recs[i]), got[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sealed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed, want) {
		t.Fatalf("sealed padded log differs from plain log: %d vs %d bytes", len(sealed), len(want))
	}
}

// TestPreallocExtension: a chunk smaller than the traffic forces repeated
// zero-fill extensions; records stay replayable throughout.
func TestPreallocExtension(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ext.log")
	w, err := OpenWriter(path, 0, SyncNever, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Op: OpInsert, SID: uint32(i), Elements: []string{"elem", "another-elem"}}
		want = append(want, r)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	logical := w.Size()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < logical || fi.Size()%64 != 0 {
		t.Fatalf("physical %d not a chunk multiple covering logical %d", fi.Size(), logical)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, _, err := ReplayFile(path, func(r Record) error {
		got = append(got, normalize(r))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after extensions: got %d records, want %d", len(got), len(want))
	}
}

// TestPreallocCrashReopen: a crash leaves the zero padding on disk. Replay
// finds the valid prefix, and reopening there (with preallocation again)
// appends past it correctly.
func TestPreallocCrashReopen(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.log")
	w, err := OpenWriter(path, 0, SyncAlways, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: snapshot the padded on-disk bytes, never Close.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != 4096 {
		t.Fatalf("expected padded 4096-byte file, got %d", len(data))
	}
	crashed := filepath.Join(dir, "crashed.log")
	if err := os.WriteFile(crashed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	valid, n, err := ReplayFile(crashed, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("crashed replay: %d records, want %d", n, len(recs))
	}
	w2, err := OpenWriter(crashed, valid, SyncAlways, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Op: OpDelete, SID: 99}
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, _, err := ReplayFile(crashed, func(r Record) error {
		got = append(got, normalize(r))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)+1 || !reflect.DeepEqual(got[len(got)-1], extra) {
		t.Fatalf("after reopen+append: %d records, last %+v", len(got), got[len(got)-1])
	}
}

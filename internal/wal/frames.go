package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReadFramesAt reads whole verified frames from r starting at byte offset
// off, never crossing limit (the log's known valid length — the writer's
// logical size for a live segment, the file size for a sealed one) and
// returning at most roughly maxBytes of frame data (always at least one
// frame when one is available). It returns the raw frame bytes exactly as
// they sit in the log, so a mirror that appends them elsewhere reproduces
// the byte-identical file, and next — the offset of the first byte not
// returned.
//
// The scan has the same torn-tail tolerance as Replay: a short header, a
// zero or oversized length field, a frame extending past limit, or a
// checksum mismatch ends the scan cleanly at the last intact boundary.
// Only I/O errors are reported. This is the offset-addressable read the
// replication layer streams from: callers resume from any (offset) token
// that lies on a frame boundary, which every returned next is.
func ReadFramesAt(r io.ReaderAt, off, limit int64, maxBytes int) (data []byte, next int64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	next = off
	var header [frameHeaderSize]byte
	for {
		if next+frameHeaderSize > limit {
			return data, next, nil
		}
		if _, err := r.ReadAt(header[:], next); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return data, next, nil
			}
			return data, next, fmt.Errorf("wal: reading frame header at %d: %w", next, err)
		}
		length := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > MaxFrameSize {
			return data, next, nil // torn tail or preallocation padding
		}
		end := next + frameHeaderSize + int64(length)
		if end > limit {
			return data, next, nil // frame not (yet) fully within the valid prefix
		}
		frame := make([]byte, frameHeaderSize+length)
		if _, err := r.ReadAt(frame, next); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return data, next, nil
			}
			return data, next, fmt.Errorf("wal: reading frame at %d: %w", next, err)
		}
		if crc32.Checksum(frame[frameHeaderSize:], castagnoli) != sum {
			return data, next, nil // torn write or bit rot
		}
		data = append(data, frame...)
		next = end
		if len(data) >= maxBytes {
			return data, next, nil
		}
	}
}

// ReadFramesFile is ReadFramesAt over the log file at path. A missing
// file reads as empty with os.ErrNotExist surfaced, so callers can
// distinguish "no more data" from "segment compacted away".
func ReadFramesFile(path string, off, limit int64, maxBytes int) (data []byte, next int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, off, err
	}
	if limit < 0 {
		fi, err := f.Stat()
		if err != nil {
			return nil, off, errors.Join(fmt.Errorf("wal: stat log: %w", err), f.Close())
		}
		limit = fi.Size()
	}
	data, next, err = ReadFramesAt(f, off, limit, maxBytes)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: closing log after frame read: %w", cerr)
	}
	return data, next, err
}

// AppendRecordFrame encodes rec as one frame appended to dst — the
// canonical wire encoding, byte-identical to what Writer.Append puts in
// the log. The replication layer uses it to reproduce header records
// locally without re-reading the primary's bytes.
func AppendRecordFrame(dst []byte, rec Record) []byte {
	return appendFrame(dst, rec)
}

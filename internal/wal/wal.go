// Package wal implements the durable write-ahead log under the dynamic
// index: a flat stream of CRC32C-framed Insert/Delete/Checkpoint records
// appended by the mutation path and replayed at startup.
//
// # Frame format
//
// Every record is one self-checking frame:
//
//	frame   := length(uint32 LE) ‖ crc(uint32 LE) ‖ payload
//	payload := op(1 byte) ‖ body
//
// where crc is the CRC32C (Castagnoli) checksum of payload and length its
// byte count. Bodies are varint-coded:
//
//	Insert     sid, element count, then (byte length, raw bytes) per element
//	Delete     sid
//	Checkpoint checkpoint sequence number (the segment header record)
//
// The framing is what makes torn tails recoverable: a crash can truncate
// the file mid-frame or leave a frame whose payload never fully reached the
// platter, and replay detects either case (short read or checksum mismatch)
// and stops cleanly at the last intact record. See Replay.
//
// # Sync policy
//
// A Writer offers the three standard durability/throughput trade-offs:
// fsync after every record (SyncAlways, no acknowledged write is ever
// lost), fsync at most once per interval (SyncInterval, bounded loss
// window), or never fsync explicitly (SyncNever, loss bounded only by the
// OS writeback horizon). Every policy writes whole frames straight to the
// file and syncs on Close, and replay semantics are identical under every
// policy — only the loss window differs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Op identifies a record type.
type Op byte

const (
	// OpInsert records the addition of a set (sid + string elements).
	OpInsert Op = 1
	// OpDelete records the removal of a sid.
	OpDelete Op = 2
	// OpCheckpoint is the segment header: the first record of every log
	// segment, naming the checkpoint generation the segment follows.
	OpCheckpoint Op = 3
)

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("op(%d)", byte(op))
	}
}

// Record is one logged operation.
type Record struct {
	// Op is the record type.
	Op Op
	// SID is the target set id for OpInsert (the id the insert was
	// assigned — replay verifies it) and OpDelete.
	SID uint32
	// Seq is the checkpoint generation for OpCheckpoint records.
	Seq uint64
	// Elements holds the inserted set's elements for OpInsert.
	Elements []string
}

// frameHeaderSize is the fixed prefix of every frame: uint32 payload
// length + uint32 CRC32C.
const frameHeaderSize = 8

// MaxFrameSize bounds one frame's payload. It exists so that replay of a
// corrupt length field cannot be tricked into a giant allocation; it
// comfortably exceeds the server's 16MB request cap, the largest legitimate
// record source.
const MaxFrameSize = 32 << 20

// castagnoli is the CRC32C polynomial table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended records are forced to stable storage.
type Policy int

const (
	// SyncAlways fsyncs after every Append: no acknowledged record is lost
	// on crash. The default.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on the first Append after the configured interval
	// has elapsed since the previous sync (and on Sync/Close): crash loss
	// is bounded by roughly one interval of traffic.
	SyncInterval
	// SyncNever leaves flushing to the OS (and to explicit Sync/Close
	// calls): fastest, loss bounded only by kernel writeback.
	SyncNever
)

// String names the policy for flags and logs.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the flag spellings "always", "interval", "never".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (have: always, interval, never)", s)
	}
}

// Writer appends framed records to a log file. It is safe for concurrent
// use; record order is the lock acquisition order. Errors are sticky: once
// a write or sync fails, every later call reports the first failure, so a
// caller cannot silently keep acknowledging writes into a broken log.
//
// # Preallocation
//
// With a nonzero prealloc chunk the writer extends the file with zeroed
// chunks ahead of the append position (one full fsync per extension) and
// then overwrites the zeros in place, so the steady-state sync after each
// record is an fdatasync that never has to journal an i_size or block
// allocation change. On journaling filesystems that turns per-record
// durability from a serialized journal commit into plain data writes,
// which both cost less and overlap across independent files — the basis
// of the sharded WAL's throughput scaling. Replay is unaffected: a zeroed
// tail reads as a zero length field, which ends the scan exactly like a
// torn tail (see Replay), and Close trims the padding away so a cleanly
// closed log is byte-identical to an unpadded one.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	policy   Policy
	interval time.Duration
	lastSync time.Time
	size     int64  // logical length: bytes of appended frames
	alloc    int64  // physical length: >= size when preallocation padded the tail
	prealloc int64  // extension chunk; 0 disables preallocation
	buf      []byte // frame scratch, reused across appends
	err      error  // first write/sync failure, sticky
}

// DefaultSyncInterval is the SyncInterval period when none is given.
const DefaultSyncInterval = 100 * time.Millisecond

// OpenWriter opens (creating if absent) the log file at path for
// appending, truncated to size bytes first — the recovery path passes the
// verified prefix length so a torn tail (or stale preallocation padding)
// is physically discarded before new records follow it. A fresh log uses
// size 0. A positive prealloc enables zero-fill preallocation in chunks of
// that many bytes.
func OpenWriter(path string, size int64, policy Policy, interval time.Duration, prealloc int64) (*Writer, error) {
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	if prealloc < 0 {
		prealloc = 0
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		return nil, errors.Join(fmt.Errorf("wal: truncating log to %d: %w", size, err), f.Close())
	}
	if _, err := f.Seek(size, 0); err != nil {
		return nil, errors.Join(fmt.Errorf("wal: seeking log to %d: %w", size, err), f.Close())
	}
	return &Writer{f: f, policy: policy, interval: interval, size: size, alloc: size, prealloc: prealloc}, nil
}

// extendLocked grows the physical file with zeroed chunks until at least
// need bytes fit, then fsyncs so the new size and block allocations are
// journaled once — every in-place write that follows can settle for
// fdatasync.
func (w *Writer) extendLocked(need int64) error {
	target := w.alloc
	for target < need {
		target += w.prealloc
	}
	zeros := make([]byte, target-w.alloc)
	if _, err := w.f.WriteAt(zeros, w.alloc); err != nil {
		w.err = fmt.Errorf("wal: preallocating log to %d: %w", target, err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: syncing preallocation: %w", err)
		return w.err
	}
	w.alloc = target
	return nil
}

// appendFrame encodes rec as one frame into dst.
func appendFrame(dst []byte, rec Record) []byte {
	// Reserve the header; payload length and CRC are patched in after the
	// payload is known.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, byte(rec.Op))
	switch rec.Op {
	case OpInsert:
		dst = binary.AppendUvarint(dst, uint64(rec.SID))
		dst = binary.AppendUvarint(dst, uint64(len(rec.Elements)))
		for _, e := range rec.Elements {
			dst = binary.AppendUvarint(dst, uint64(len(e)))
			dst = append(dst, e...)
		}
	case OpDelete:
		dst = binary.AppendUvarint(dst, uint64(rec.SID))
	case OpCheckpoint:
		dst = binary.AppendUvarint(dst, rec.Seq)
	}
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodePayload parses a verified frame payload into a Record.
func decodePayload(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("wal: empty payload")
	}
	rec := Record{Op: Op(b[0])}
	b = b[1:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated %s body", rec.Op)
		}
		b = b[n:]
		return v, nil
	}
	switch rec.Op {
	case OpInsert:
		sid, err := uvarint()
		if err != nil {
			return Record{}, err
		}
		if sid > 1<<32-1 {
			return Record{}, fmt.Errorf("wal: insert sid %d overflows uint32", sid)
		}
		rec.SID = uint32(sid)
		count, err := uvarint()
		if err != nil {
			return Record{}, err
		}
		// Every element costs at least one length byte, so a count beyond
		// the remaining payload is corruption — checked before allocating.
		if count > uint64(len(b)) {
			return Record{}, fmt.Errorf("wal: insert claims %d elements in %d bytes", count, len(b))
		}
		rec.Elements = make([]string, count)
		for i := range rec.Elements {
			n, err := uvarint()
			if err != nil {
				return Record{}, err
			}
			if n > uint64(len(b)) {
				return Record{}, fmt.Errorf("wal: element %d overruns payload", i)
			}
			rec.Elements[i] = string(b[:n])
			b = b[n:]
		}
	case OpDelete:
		sid, err := uvarint()
		if err != nil {
			return Record{}, err
		}
		if sid > 1<<32-1 {
			return Record{}, fmt.Errorf("wal: delete sid %d overflows uint32", sid)
		}
		rec.SID = uint32(sid)
	case OpCheckpoint:
		seq, err := uvarint()
		if err != nil {
			return Record{}, err
		}
		rec.Seq = seq
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(rec.Op))
	}
	if len(b) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after %s record", len(b), rec.Op)
	}
	return rec, nil
}

// Append writes rec as one frame and applies the sync policy. On return
// under SyncAlways the record is on stable storage; under the other
// policies it is at least in the kernel. The first failed write or sync
// poisons the writer (see Writer).
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = appendFrame(w.buf[:0], rec)
	if w.prealloc > 0 && w.size+int64(len(w.buf)) > w.alloc {
		if err := w.extendLocked(w.size + int64(len(w.buf))); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("wal: appending %s record: %w", rec.Op, err)
		return w.err
	}
	w.size += int64(len(w.buf))
	switch w.policy {
	case SyncAlways:
		return w.syncLocked()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			return w.syncLocked()
		}
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	// Inside the preallocated region only data blocks changed, so the
	// metadata-skipping sync suffices; without preallocation every append
	// moved i_size and a full fsync is required.
	var err error
	if w.prealloc > 0 && w.size <= w.alloc {
		err = fdatasync(w.f)
	} else {
		err = w.f.Sync()
	}
	if err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.lastSync = time.Now()
	return nil
}

// Size returns the log length in bytes (valid frames only; the writer
// never leaves partial frames behind short of a crash or write error).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close syncs and closes the log, trimming any preallocation padding so a
// cleanly closed log carries no zeroed tail. A close without a successful
// sync is a durability hole, so both error paths are surfaced.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	syncErr := w.err
	if syncErr == nil && w.alloc > w.size {
		if err := w.f.Truncate(w.size); err != nil {
			syncErr = fmt.Errorf("wal: trimming preallocation on close: %w", err)
			w.err = syncErr
		} else {
			w.alloc = w.size
		}
	}
	if syncErr == nil {
		if err := w.f.Sync(); err != nil {
			syncErr = fmt.Errorf("wal: fsync on close: %w", err)
			w.err = syncErr
		}
	}
	closeErr := w.f.Close()
	if closeErr != nil {
		closeErr = fmt.Errorf("wal: close: %w", closeErr)
		if w.err == nil {
			w.err = closeErr
		}
	}
	return errors.Join(syncErr, closeErr)
}

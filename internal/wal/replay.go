package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Replay scans framed records from r, invoking fn for each intact one in
// order. It returns the byte length of the valid prefix and the number of
// records delivered.
//
// Torn-tail tolerance: a short header, short payload, oversized length
// field, checksum mismatch, or malformed body ends the scan cleanly —
// valid then points at the last intact frame boundary and err is nil.
// Everything from that offset on is a casualty of the crash (or of media
// corruption) and the caller is expected to truncate it away. Only an
// error returned by fn, or a read error other than EOF, is propagated.
func Replay(r io.Reader, fn func(Record) error) (valid int64, n int, err error) {
	var header [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, n, nil // clean end or torn header
			}
			return valid, n, fmt.Errorf("wal: reading frame header: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > MaxFrameSize {
			return valid, n, nil // corrupt length field
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, n, nil // torn payload
			}
			return valid, n, fmt.Errorf("wal: reading frame payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return valid, n, nil // bit rot or torn write inside the frame
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return valid, n, nil // frame verified but body malformed
		}
		if err := fn(rec); err != nil {
			return valid, n, err
		}
		valid += int64(frameHeaderSize) + int64(length)
		n++
	}
}

// ReplayFile replays the log at path. A missing file replays as empty.
func ReplayFile(path string, fn func(Record) error) (valid int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("wal: opening log: %w", err)
	}
	valid, n, err = Replay(f, fn)
	if cerr := f.Close(); cerr != nil && err == nil {
		// The file was only read; a close failure cannot lose data, but it
		// can signal a dying device, so it is not swallowed.
		err = fmt.Errorf("wal: closing log after replay: %w", cerr)
	}
	return valid, n, err
}

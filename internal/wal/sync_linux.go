//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fdatasync forces f's data (not its unchanged metadata) to stable
// storage. The preallocated append path relies on it: in-place writes to
// already-allocated blocks need no journal commit, so per-record syncs on
// independent files overlap instead of serializing through the journal.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

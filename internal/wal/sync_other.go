//go:build !linux

package wal

import "os"

// fdatasync falls back to a full fsync where the data-only sync syscall is
// not portably available; correctness is identical, only the journal-
// commit saving is lost.
func fdatasync(f *os.File) error {
	return f.Sync()
}

// Package bitvec implements dense binary vectors in Hamming space.
//
// The paper embeds every set into a D-dimensional Hamming space (Section 3.2)
// and then reasons about Hamming distance and Hamming similarity
// (Definitions 3 and 4) of those vectors. Vector is that representation:
// a fixed-length bit string packed into 64-bit words with constant-time bit
// access and word-at-a-time popcount distance.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-dimension binary vector. The zero value is a
// zero-dimension vector; use New to create one of a given dimension.
type Vector struct {
	bits []uint64
	n    int // dimension in bits
}

// New returns an all-zero vector of dimension n bits.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative dimension")
	}
	return Vector{bits: make([]uint64, (n+63)/64), n: n}
}

// FromBits builds a vector from a bool slice, bit i = b[i].
func FromBits(b []bool) Vector {
	v := New(len(b))
	for i, set := range b {
		if set {
			v.Set(i)
		}
	}
	return v
}

// Len returns the dimension (number of bits) of the vector.
func (v Vector) Len() int { return v.n }

// Words exposes the packed words backing the vector. Bits beyond Len are
// always zero. The caller must not modify the slice.
func (v Vector) Words() []uint64 { return v.bits }

// Get returns bit i as a bool.
func (v Vector) Get(i int) bool {
	return v.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Bit returns bit i as 0 or 1.
func (v Vector) Bit(i int) byte {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set sets bit i to 1.
func (v Vector) Set(i int) { v.bits[i>>6] |= 1 << (uint(i) & 63) }

// Clear sets bit i to 0.
func (v Vector) Clear(i int) { v.bits[i>>6] &^= 1 << (uint(i) & 63) }

// SetTo sets bit i to the given value.
func (v Vector) SetTo(i int, val bool) {
	if val {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Reset zeroes every bit, so the vector's backing array can be reused for a
// fresh embedding without reallocating.
func (v Vector) Reset() {
	for i := range v.bits {
		v.bits[i] = 0
	}
}

// OnesCount returns the number of 1 bits.
func (v Vector) OnesCount() int {
	n := 0
	for _, w := range v.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	cp := make([]uint64, len(v.bits))
	copy(cp, v.bits)
	return Vector{bits: cp, n: v.n}
}

// Complement returns the bitwise complement of v (every bit flipped), the
// q̄ vector of Theorem 2 used by the Dissimilarity Filter Index.
func (v Vector) Complement() Vector {
	out := New(v.n)
	for i, w := range v.bits {
		out.bits[i] = ^w
	}
	out.maskTail()
	return out
}

// maskTail zeroes the unused bits of the last word so that word-level
// operations (popcount, equality) stay exact.
func (v Vector) maskTail() {
	if r := uint(v.n) & 63; r != 0 && len(v.bits) > 0 {
		v.bits[len(v.bits)-1] &= (1 << r) - 1
	}
}

// Equal reports whether two vectors have the same dimension and bits.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.bits {
		if u.bits[i] != w {
			return false
		}
	}
	return true
}

// HammingDistance returns d_H(v, u), the number of differing bits
// (Definition 3). It panics if the dimensions differ.
func (v Vector) HammingDistance(u Vector) int {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: dimension mismatch %d vs %d", v.n, u.n))
	}
	d := 0
	for i, w := range v.bits {
		d += bits.OnesCount64(w ^ u.bits[i])
	}
	return d
}

// HammingSimilarity returns S_H(v, u) = 1 - d_H(v, u)/t, the fraction of
// agreeing bits (Definition 4). A zero-dimension pair has similarity 1.
func (v Vector) HammingSimilarity(u Vector) float64 {
	if v.n == 0 {
		return 1
	}
	return 1 - float64(v.HammingDistance(u))/float64(v.n)
}

// Extract gathers the bits at the given positions, in order, into a compact
// key of at most 64 bits. It panics if len(positions) > 64. This is the bit
// sampling step of the Similarity Filter Index (Section 4.1).
func (v Vector) Extract(positions []int) uint64 {
	if len(positions) > 64 {
		panic("bitvec: Extract supports at most 64 positions; use ExtractWide")
	}
	var key uint64
	for i, p := range positions {
		if v.Get(p) {
			key |= 1 << uint(i)
		}
	}
	return key
}

// ExtractWide gathers the bits at the given positions into a packed word
// slice, for sample sizes beyond 64 bits.
func (v Vector) ExtractWide(positions []int) []uint64 {
	out := make([]uint64, (len(positions)+63)/64)
	for i, p := range positions {
		if v.Get(p) {
			out[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return out
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for tests
// and debugging of small vectors.
func (v Vector) String() string {
	b := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		b[i] = '0' + v.Bit(i)
	}
	return string(b)
}

package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Errorf("OnesCount = %d", v.OnesCount())
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
		if v.Bit(i) != 1 {
			t.Errorf("Bit(%d) != 1", i)
		}
	}
	if v.OnesCount() != 8 {
		t.Errorf("OnesCount = %d, want 8", v.OnesCount())
	}
	v.Clear(63)
	if v.Get(63) {
		t.Error("bit 63 still set after Clear")
	}
	v.SetTo(63, true)
	if !v.Get(63) {
		t.Error("SetTo(true) failed")
	}
	v.SetTo(63, false)
	if v.Get(63) {
		t.Error("SetTo(false) failed")
	}
}

func TestFromBitsAndString(t *testing.T) {
	v := FromBits([]bool{true, false, true, true})
	if got := v.String(); got != "1011" {
		t.Errorf("String = %q, want 1011", got)
	}
}

func TestHammingDistanceKnown(t *testing.T) {
	a := FromBits([]bool{true, false, true, false})
	b := FromBits([]bool{true, true, false, false})
	if got := a.HammingDistance(b); got != 2 {
		t.Errorf("distance = %d, want 2", got)
	}
	if got := a.HammingSimilarity(b); got != 0.5 {
		t.Errorf("similarity = %g, want 0.5", got)
	}
	if got := a.HammingDistance(a); got != 0 {
		t.Errorf("self distance = %d", got)
	}
}

func TestHammingDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	New(10).HammingDistance(New(11))
}

func TestComplement(t *testing.T) {
	// Dimension not a multiple of 64 exercises tail masking.
	v := New(70)
	v.Set(0)
	v.Set(69)
	c := v.Complement()
	if c.Get(0) || c.Get(69) {
		t.Error("complement kept set bits")
	}
	if !c.Get(1) || !c.Get(68) {
		t.Error("complement cleared zero bits")
	}
	if got, want := c.OnesCount(), 68; got != want {
		t.Errorf("OnesCount = %d, want %d (tail mask broken)", got, want)
	}
	// d(v, ~v) must be the full dimension.
	if got := v.HammingDistance(c); got != 70 {
		t.Errorf("distance to complement = %d, want 70", got)
	}
}

func TestComplementSimilarityIdentity(t *testing.T) {
	// Theorem 2's underpinning: S_H(h, ~q) = 1 - S_H(h, q).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		h, q := randomVec(rng, n), randomVec(rng, n)
		lhs := h.HammingSimilarity(q.Complement())
		rhs := 1 - h.HammingSimilarity(q)
		if diff := lhs - rhs; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("n=%d: S(h,~q)=%g, 1-S(h,q)=%g", n, lhs, rhs)
		}
	}
}

func randomVec(rng *rand.Rand, n int) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestCloneIndependence(t *testing.T) {
	v := New(64)
	v.Set(5)
	c := v.Clone()
	c.Set(6)
	if v.Get(6) {
		t.Error("Clone aliases original")
	}
	if !c.Get(5) {
		t.Error("Clone lost bits")
	}
	if !v.Equal(v.Clone()) {
		t.Error("clone not Equal")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Error("equal zero vectors differ")
	}
	b.Set(64)
	if a.Equal(b) {
		t.Error("different vectors equal")
	}
	if a.Equal(New(66)) {
		t.Error("different dimensions equal")
	}
}

func TestExtract(t *testing.T) {
	v := New(100)
	v.Set(3)
	v.Set(97)
	key := v.Extract([]int{3, 50, 97})
	// bit order: positions[0] → key bit 0.
	if key != 0b101 {
		t.Errorf("Extract = %b, want 101", key)
	}
}

func TestExtractWide(t *testing.T) {
	v := New(200)
	positions := make([]int, 100)
	for i := range positions {
		positions[i] = i * 2
		if i%3 == 0 {
			v.Set(i * 2)
		}
	}
	words := v.ExtractWide(positions)
	if len(words) != 2 {
		t.Fatalf("got %d words, want 2", len(words))
	}
	for i := range positions {
		want := i%3 == 0
		got := words[i/64]&(1<<(uint(i)%64)) != 0
		if got != want {
			t.Fatalf("extracted bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestExtractTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for >64 positions")
		}
	}()
	New(100).Extract(make([]int, 65))
}

func TestDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		a, b, c := randomVec(rng, n), randomVec(rng, n), randomVec(rng, n)
		dab, dba := a.HammingDistance(b), b.HammingDistance(a)
		if dab != dba {
			return false // symmetry
		}
		if dab < 0 || dab > n {
			return false // range
		}
		if a.HammingDistance(a) != 0 {
			return false // identity
		}
		// Triangle inequality.
		if a.HammingDistance(c) > dab+b.HammingDistance(c) {
			return false
		}
		// Popcount path agrees with bit-by-bit count.
		naive := 0
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				naive++
			}
		}
		return naive == dab
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnesCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := randomVec(rng, n)
		naive := 0
		for i := 0; i < n; i++ {
			if v.Get(i) {
				naive++
			}
		}
		return naive == v.OnesCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Summary-based shard pruning for the scatter paths.
//
// Every shard carries a core.Summary (see internal/core/summary.go): an
// occupancy refcount over its filter-table keys plus a live set-size
// histogram, maintained under the shard's core write lock and readable
// lock-free. Because all shards of one plan generation share an identical
// plan with identical per-FI sampled positions, a query's probe keys are
// shard-independent: the engine derives one core.ShardProbe per query
// (against shard 0's core, whose immutable plan state stands in for all)
// and tests each shard's summary against it.
//
// A shard is skipped only when it provably contributes nothing:
//
//   - its candidate set is empty (no probe key of any positive-probe FI is
//     occupied — candidates are subsets of those FIs' probe vectors), or
//   - no live set can verify into range (the size histogram bounds exact
//     Jaccard via J(q,s) <= min/max of the cardinalities, and that bound
//     falls strictly below s1 — or, for TopK, strictly below another
//     shard's already-established k-th-best similarity).
//
// Both tests are upper bounds, so pruning never changes the gathered
// match slice — only the I/O and candidate accounting of the shards that
// were never probed. The soundness property tests pin byte-identity of
// matches with pruning forced on vs off.
//
// The scratch pool here also serves the issue's allocation point: the
// scatter previously allocated its matches/errs fan-out slices per query.
// The per-shard stats slice stays freshly allocated — it escapes into the
// returned QueryStats.PerShard.
package engine

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/minhash"
	"repro/internal/set"
)

// scatterScratch is the reusable per-query state of one scatter.
type scatterScratch struct {
	sig     minhash.Signature
	matches [][]core.Match
	errs    []error
	skip    []bool
}

// getScatter returns pooled scratch sized for n shards and a k-coordinate
// signature.
func (e *Engine) getScatter(n, k int) *scatterScratch {
	sc, _ := e.scatterPool.Get().(*scatterScratch)
	if sc == nil {
		sc = &scatterScratch{}
	}
	if cap(sc.sig) < k {
		sc.sig = make(minhash.Signature, k)
	}
	sc.sig = sc.sig[:k]
	if cap(sc.matches) < n {
		sc.matches = make([][]core.Match, n)
		sc.errs = make([]error, n)
		sc.skip = make([]bool, n)
	}
	sc.matches = sc.matches[:n]
	sc.errs = sc.errs[:n]
	sc.skip = sc.skip[:n]
	for i := 0; i < n; i++ {
		sc.matches[i] = nil
		sc.errs[i] = nil
		sc.skip[i] = false
	}
	return sc
}

func (e *Engine) putScatter(sc *scatterScratch) { e.scatterPool.Put(sc) }

// pruneRange marks the shards a range query [s1, s2] can skip. It returns
// the probe (nil when pruning is off or inapplicable — invalid range or a
// plan with no usable FI, where every shard must run to fail identically)
// and the number of shards marked in skip.
func (e *Engine) pruneRange(v *planView, q set.Set, sig minhash.Signature, s1, s2 float64, skip []bool) (*core.ShardProbe, int) {
	if e.pruneOff.Load() {
		return nil, 0
	}
	probe, ok := v.cores[0].BuildRangeProbe(q, sig, s1, s2)
	if !ok {
		return nil, 0
	}
	pruned := 0
	for si := range skip {
		sum := v.cores[si].Summary()
		if sum.Empty(probe) || sum.SizeUpperBound(probe.QLen) < s1 {
			skip[si] = true
			pruned++
		}
	}
	return probe, pruned
}

// pruneOccupancy is pruneRange restricted to the occupancy test. The
// screen-only plan answers from signature ESTIMATES, and the size
// histogram bounds only EXACT Jaccard — an estimate can land inside
// [s1, s2] for a set whose exact similarity (and size bound) sits below
// s1 — so size-based pruning is unsound there. Occupancy remains sound:
// screen-only candidates still come from the same filter probe vectors.
func (e *Engine) pruneOccupancy(v *planView, q set.Set, sig minhash.Signature, s1, s2 float64, skip []bool) (*core.ShardProbe, int) {
	if e.pruneOff.Load() {
		return nil, 0
	}
	probe, ok := v.cores[0].BuildRangeProbe(q, sig, s1, s2)
	if !ok {
		return nil, 0
	}
	pruned := 0
	for si := range skip {
		if v.cores[si].Summary().Empty(probe) {
			skip[si] = true
			pruned++
		}
	}
	return probe, pruned
}

// topkThreshold shares the best known k-th similarity across the shard
// goroutines of one TopK scatter: a monotone CAS-max over float bits
// (valid because similarities are non-negative, where IEEE-754 ordering
// matches the bit ordering).
type topkThreshold struct{ bits atomic.Uint64 }

func (t *topkThreshold) load() float64 { return math.Float64frombits(t.bits.Load()) }

func (t *topkThreshold) raise(sim float64) {
	if sim < 0 {
		return
	}
	b := math.Float64bits(sim)
	for {
		cur := t.bits.Load()
		if b <= cur || t.bits.CompareAndSwap(cur, b) {
			return
		}
	}
}
